// Snapshot persistence tests (src/svc/snapshot.h):
//  - encode/decode round-trip over every database in examples/data/ —
//    FormatDatabase output must be bit-identical and version / query /
//    constraints preserved;
//  - a corruption table (truncation, bit flips, bad magic, header lies,
//    session mismatch) where every corrupt file must be quarantined, never
//    loaded and never a crash;
//  - crash-safety under injected faults: a failed Save leaves the previous
//    snapshot intact (ZEROONE_FAULT=ON builds only).

#include "svc/snapshot.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "constraints/fd.h"
#include "constraints/ind.h"
#include "data/io.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "query/parser.h"

#ifndef ZEROONE_EXAMPLES_DIR
#error "ZEROONE_EXAMPLES_DIR must point at examples/data"
#endif

namespace zeroone {
namespace svc {
namespace {

std::vector<std::string> ExampleDatabases() {
  std::vector<std::string> paths;
  DIR* dir = ::opendir(ZEROONE_EXAMPLES_DIR);
  if (dir == nullptr) return paths;
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name.size() > 3 && name.substr(name.size() - 3) == ".zo") {
      paths.push_back(std::string(ZEROONE_EXAMPLES_DIR) + "/" + name);
    }
  }
  ::closedir(dir);
  return paths;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteWholeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

// An RAII temp directory (removed recursively, one level deep).
class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/zo1snap_test_XXXXXX";
    path_ = ::mkdtemp(templ);
  }
  ~TempDir() {
    if (path_.empty()) return;
    if (DIR* dir = ::opendir(path_.c_str())) {
      while (dirent* entry = ::readdir(dir)) {
        std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// SessionState holds a shared_mutex and is neither copyable nor movable,
// so states are built behind a unique_ptr.
std::unique_ptr<SessionState> MakeState(const Database& db) {
  auto state = std::make_unique<SessionState>();
  state->db = db;
  state->version = 7;
  return state;
}

TEST(SnapshotCodec, RoundTripsEveryExampleDatabase) {
  std::vector<std::string> examples = ExampleDatabases();
  ASSERT_FALSE(examples.empty())
      << "no *.zo files under " << ZEROONE_EXAMPLES_DIR;
  for (const std::string& path : examples) {
    SCOPED_TRACE(path);
    StatusOr<Database> db = ParseDatabase(ReadWholeFile(path));
    ASSERT_TRUE(db.ok()) << db.status().message();
    std::unique_ptr<SessionState> state = MakeState(*db);
    StatusOr<std::string> image = EncodeSnapshot("rt", *state);
    ASSERT_TRUE(image.ok()) << image.status().message();

    std::string session;
    SessionState decoded;
    Status status = DecodeSnapshot(*image, &session, &decoded);
    ASSERT_TRUE(status.ok()) << status.message();
    EXPECT_EQ(session, "rt");
    EXPECT_EQ(decoded.version, state->version);
    // Bit-identical database text is the round-trip contract.
    EXPECT_EQ(FormatDatabase(decoded.db), FormatDatabase(state->db));
    EXPECT_FALSE(decoded.has_query);
  }
}

TEST(SnapshotCodec, RoundTripsQueryAndConstraints) {
  StatusOr<Database> db =
      ParseDatabase("R(2) = { (a, _1), (b, _2) } S(1) = { (a) }");
  ASSERT_TRUE(db.ok());
  std::unique_ptr<SessionState> state = MakeState(*db);
  state->version = 41;
  StatusOr<Query> query =
      ParseQuery("Q(x) := exists y . R(x, y) & S(x)");
  ASSERT_TRUE(query.ok()) << query.status().message();
  state->query = *query;
  state->has_query = true;
  FunctionalDependency fd("R", 2, {0}, 1);
  state->fds.push_back(fd);
  state->constraints.push_back(std::make_shared<FunctionalDependency>(fd));
  state->constraints.push_back(std::make_shared<InclusionDependency>(
      "S", 1, std::vector<std::size_t>{0}, "R", 2,
      std::vector<std::size_t>{0}));

  StatusOr<std::string> image = EncodeSnapshot("full", *state);
  ASSERT_TRUE(image.ok()) << image.status().message();
  std::string session;
  SessionState decoded;
  Status status = DecodeSnapshot(*image, &session, &decoded);
  ASSERT_TRUE(status.ok()) << status.message();

  EXPECT_EQ(decoded.version, 41u);
  EXPECT_TRUE(decoded.has_query);
  EXPECT_EQ(decoded.query.ToString(), state->query.ToString());
  ASSERT_EQ(decoded.fds.size(), 1u);
  EXPECT_EQ(decoded.fds[0].ToString(), fd.ToString());
  ASSERT_EQ(decoded.constraints.size(), 2u);
  EXPECT_EQ(decoded.constraints[0]->ToString(),
            state->constraints[0]->ToString());
  EXPECT_EQ(decoded.constraints[1]->ToString(),
            state->constraints[1]->ToString());
  // Encoding the decoded state reproduces the image byte for byte.
  StatusOr<std::string> again = EncodeSnapshot("full", decoded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *image);
}

TEST(SnapshotStoreTest, SaveThenLoadAllInstallsSession) {
  TempDir tmp;
  ASSERT_FALSE(tmp.path().empty());
  SnapshotStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  StatusOr<Database> db = ParseDatabase("M(1) = { (m0), (m1) }");
  ASSERT_TRUE(db.ok());
  std::unique_ptr<SessionState> state = MakeState(*db);
  state->version = 3;
  ASSERT_TRUE(store.Save("alpha", *state).ok());

  SessionRegistry sessions;
  SnapshotStore::LoadReport report = store.LoadAll(&sessions);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  std::shared_ptr<SessionState> loaded = sessions.GetOrCreate("alpha");
  EXPECT_EQ(loaded->version, 3u);
  EXPECT_EQ(FormatDatabase(loaded->db), FormatDatabase(state->db));
}

TEST(SnapshotStoreTest, LoadAllRemovesStaleTempFiles) {
  TempDir tmp;
  SnapshotStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  const std::string stale =
      tmp.path() + "/ghost.zo1snap.tmp.12345.0";
  WriteWholeFile(stale, "half-written garbage");
  SessionRegistry sessions;
  SnapshotStore::LoadReport report = store.LoadAll(&sessions);
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(report.tmp_removed, 1u);
  EXPECT_NE(::access(stale.c_str(), F_OK), 0) << "stale tmp not removed";
}

struct CorruptionCase {
  const char* name;
  // Mutates a valid snapshot image into a corrupt one.
  std::string (*corrupt)(std::string image);
};

std::string Truncate(std::string image) {
  return image.substr(0, image.size() / 2);
}
std::string FlipBodyBit(std::string image) {
  image[image.size() - 2] ^= 0x01;  // Inside the body; CRC now mismatches.
  return image;
}
std::string BadMagic(std::string image) {
  image[0] = 'X';
  return image;
}
std::string BodyBytesLie(std::string image) {
  std::size_t pos = image.find("body_bytes=");
  image.insert(pos + 11, "9");  // Claims a 10× larger body than present.
  return image;
}
std::string EmptyFile(std::string) { return ""; }

const CorruptionCase kCorruptionCases[] = {
    {"truncated", Truncate},   {"bitflip", FlipBodyBit},
    {"badmagic", BadMagic},    {"bodylie", BodyBytesLie},
    {"emptyfile", EmptyFile},
};

TEST(SnapshotStoreTest, CorruptSnapshotsAreQuarantinedNotLoaded) {
  StatusOr<Database> db = ParseDatabase("R(1) = { (a) }");
  ASSERT_TRUE(db.ok());
  std::unique_ptr<SessionState> state = MakeState(*db);
  for (const CorruptionCase& test_case : kCorruptionCases) {
    SCOPED_TRACE(test_case.name);
    TempDir tmp;
    SnapshotStore store(tmp.path());
    ASSERT_TRUE(store.Prepare().ok());
    StatusOr<std::string> image = EncodeSnapshot("victim", *state);
    ASSERT_TRUE(image.ok());
    const std::string path = store.PathFor("victim");
    WriteWholeFile(path, test_case.corrupt(*image));

    SessionRegistry sessions;
    SnapshotStore::LoadReport report = store.LoadAll(&sessions);
    EXPECT_EQ(report.loaded, 0u);
    EXPECT_EQ(report.quarantined, 1u);
    // The corrupt file was renamed aside, not deleted: evidence survives.
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
    EXPECT_EQ(::access((path + ".corrupt").c_str(), F_OK), 0);
    // The session was not created from garbage.
    EXPECT_EQ(sessions.size(), 0u);
  }
}

TEST(SnapshotStoreTest, SessionNameMismatchIsQuarantined) {
  StatusOr<Database> db = ParseDatabase("R(1) = { (a) }");
  ASSERT_TRUE(db.ok());
  std::unique_ptr<SessionState> state = MakeState(*db);
  TempDir tmp;
  SnapshotStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  StatusOr<std::string> image = EncodeSnapshot("alice", *state);
  ASSERT_TRUE(image.ok());
  // A snapshot whose header names a different session than its filename
  // (e.g. a hand-copied file) must not silently install as "bob".
  WriteWholeFile(store.PathFor("bob"), *image);
  SessionRegistry sessions;
  SnapshotStore::LoadReport report = store.LoadAll(&sessions);
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(sessions.size(), 0u);
}

std::vector<std::string> DirEntries(const std::string& dir) {
  std::vector<std::string> entries;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") entries.push_back(name);
    }
    ::closedir(d);
  }
  return entries;
}

// Save publishes with an atomic rename, so a LoadAll racing a storm of
// Saves of the same session must only ever observe complete snapshots:
// never a quarantine, never a torn read, never a version that was not
// written. (Saves may *fail* — a concurrent LoadAll sweeps in-flight tmp
// files, which is fine at startup where LoadAll really runs — but they
// must never publish a partial file.)
TEST(SnapshotStoreTest, ConcurrentSavesRacingLoadAllStayAtomic) {
  TempDir tmp;
  SnapshotStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  StatusOr<Database> db = ParseDatabase("R(1) = { (race) }");
  ASSERT_TRUE(db.ok());

  constexpr std::uint64_t kSaves = 1000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t v = 1; v <= kSaves; ++v) {
      std::unique_ptr<SessionState> state = MakeState(*db);
      state->version = v;
      (void)store.Save("racer", *state);  // Sweep-induced failures are ok.
    }
    done.store(true);
  });

  std::uint64_t observed = 0;
  std::uint64_t last_version = 0;
  while (!done.load()) {
    SessionRegistry sessions;
    SnapshotStore::LoadReport report = store.LoadAll(&sessions);
    ASSERT_EQ(report.quarantined, 0u)
        << "LoadAll observed a torn snapshot mid-save";
    ASSERT_LE(report.loaded, 1u);
    if (report.loaded == 1) {
      ++observed;
      const std::uint64_t version = sessions.GetOrCreate("racer")->version;
      ASSERT_GE(version, 1u);
      ASSERT_LE(version, kSaves);
      // Versions only move forward: rename publishes monotonically.
      ASSERT_GE(version, last_version);
      last_version = version;
    }
    // Back-to-back LoadAlls would sweep every in-flight tmp and starve
    // the writer's renames; a short pause lets publications land.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer.join();

  // The dust settles: one more Save must land and reload exactly.
  std::unique_ptr<SessionState> final_state = MakeState(*db);
  final_state->version = kSaves + 1;
  ASSERT_TRUE(store.Save("racer", *final_state).ok());
  SessionRegistry sessions;
  SnapshotStore::LoadReport report = store.LoadAll(&sessions);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(sessions.GetOrCreate("racer")->version, kSaves + 1);
  EXPECT_GT(observed, 0u) << "the race never observed a published snapshot";
}

#if ZEROONE_FAULT_ENABLED

class SnapshotFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Registry::Global().Clear(); }
};

TEST_F(SnapshotFaultTest, TmpFromFaultedSaveIsGoneAndCrashTmpSweptAtLoad) {
  TempDir tmp;
  SnapshotStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  StatusOr<Database> db = ParseDatabase("R(1) = { (kept) }");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(store.Save("s", *MakeState(*db)).ok());

  // The fault fires between temp-write and rename: Save fails and its
  // failure path removes the half-published tmp immediately.
  ASSERT_TRUE(
      fault::Registry::Global().Configure("snap.rename.fail=#1").ok());
  StatusOr<Database> newer = ParseDatabase("R(1) = { (lost) }");
  ASSERT_TRUE(newer.ok());
  EXPECT_FALSE(store.Save("s", *MakeState(*newer)).ok());
  fault::Registry::Global().Clear();
  for (const std::string& name : DirEntries(tmp.path())) {
    EXPECT_EQ(name.find(".tmp."), std::string::npos)
        << "failed Save leaked tmp file " << name;
  }

  // A *crash* in that same window has no failure path: the fully-written
  // tmp stays behind. Even though its content is a valid image, the next
  // LoadAll must sweep it, never load it.
  StatusOr<std::string> image = EncodeSnapshot("s", *MakeState(*newer));
  ASSERT_TRUE(image.ok());
  const std::string stale = store.PathFor("s") + ".tmp.424242.7";
  WriteWholeFile(stale, *image);
  SessionRegistry sessions;
  SnapshotStore::LoadReport report = store.LoadAll(&sessions);
  EXPECT_EQ(report.tmp_removed, 1u);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_NE(::access(stale.c_str(), F_OK), 0) << "stale tmp not swept";
  // The never-renamed state is invisible; the last published one serves.
  EXPECT_NE(FormatDatabase(sessions.GetOrCreate("s")->db).find("kept"),
            std::string::npos);
  EXPECT_EQ(FormatDatabase(sessions.GetOrCreate("s")->db).find("lost"),
            std::string::npos);
}

TEST_F(SnapshotFaultTest, FailedSaveLeavesOldSnapshotIntact) {
  const char* failing_sites[] = {"snap.write.fail", "snap.fsync.fail",
                                 "snap.rename.fail"};
  for (const char* site : failing_sites) {
    SCOPED_TRACE(site);
    fault::Registry::Global().Clear();
    TempDir tmp;
    SnapshotStore store(tmp.path());
    ASSERT_TRUE(store.Prepare().ok());
    StatusOr<Database> old_db = ParseDatabase("R(1) = { (old) }");
    ASSERT_TRUE(old_db.ok());
    ASSERT_TRUE(store.Save("s", *MakeState(*old_db)).ok());
    const std::string before = ReadWholeFile(store.PathFor("s"));

    ASSERT_TRUE(
        fault::Registry::Global().Configure(std::string(site) + "=#1").ok());
    StatusOr<Database> new_db = ParseDatabase("R(1) = { (new) }");
    ASSERT_TRUE(new_db.ok());
    Status failed = store.Save("s", *MakeState(*new_db));
    EXPECT_FALSE(failed.ok()) << "injected " << site << " must fail Save";
    // Crash-safety contract: the old snapshot is untouched, byte for byte.
    EXPECT_EQ(ReadWholeFile(store.PathFor("s")), before);

    fault::Registry::Global().Clear();
    SessionRegistry sessions;
    SnapshotStore::LoadReport report = store.LoadAll(&sessions);
    EXPECT_EQ(report.loaded, 1u);
    EXPECT_NE(FormatDatabase(sessions.GetOrCreate("s")->db).find("old"),
              std::string::npos);
  }
}

TEST_F(SnapshotFaultTest, InjectedCorruptionIsCaughtAtLoad) {
  TempDir tmp;
  SnapshotStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  ASSERT_TRUE(
      fault::Registry::Global().Configure("snap.corrupt=#1").ok());
  StatusOr<Database> db = ParseDatabase("R(1) = { (a), (b) }");
  ASSERT_TRUE(db.ok());
  // The write itself "succeeds" — the corruption is only discoverable at
  // load time, exactly like real silent media corruption.
  ASSERT_TRUE(store.Save("s", *MakeState(*db)).ok());
  fault::Registry::Global().Clear();

  SessionRegistry sessions;
  SnapshotStore::LoadReport report = store.LoadAll(&sessions);
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(sessions.size(), 0u);
}

#endif  // ZEROONE_FAULT_ENABLED

}  // namespace
}  // namespace svc
}  // namespace zeroone
