#include "query/eval.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/io.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(EvalTest, AtomAndProjection) {
  Database db = Db("E(2) = { (a, b), (b, c) }");
  Query q = Q("Q(x) := exists y . E(x, y)");
  std::vector<Tuple> answers = EvaluateQuery(q, db);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_TRUE(EvaluateMembership(q, db, Tuple{Value::Constant("a")}));
  EXPECT_TRUE(EvaluateMembership(q, db, Tuple{Value::Constant("b")}));
  EXPECT_FALSE(EvaluateMembership(q, db, Tuple{Value::Constant("c")}));
}

TEST(EvalTest, DistanceTwoFromConstant) {
  // The example after Definition 3: φ(x) = ∃y E(c,y) ∧ E(y,x) on
  // G = {(c,c'), (c',⊥)} returns {⊥}.
  Database db = Db("E(2) = { (c, cp), (cp, _d2) }");
  Query q = Q("phi(x) := exists y . E(c, y) & E(y, x)");
  std::vector<Tuple> answers = NaiveEvaluate(q, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], Tuple{Value::Null("d2")});
}

TEST(EvalTest, NegationAndDifference) {
  Database db = Db("R(1) = { (a), (b) }  S(1) = { (b) }");
  Query q = Q("Q(x) := R(x) & !S(x)");
  std::vector<Tuple> answers = EvaluateQuery(q, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], Tuple{Value::Constant("a")});
}

TEST(EvalTest, UniversalQuantifierActiveDomain) {
  Database db = Db("U(1) = { (a), (b) }  R(1) = { (a), (b), (c) }");
  EXPECT_TRUE(EvaluateMembership(Q(":= forall x . U(x) -> R(x)"), db,
                                 Tuple{}));
  EXPECT_FALSE(EvaluateMembership(Q(":= forall x . R(x) -> U(x)"), db,
                                  Tuple{}));
}

TEST(EvalTest, EqualityIsSyntacticOnNulls) {
  Database db = Db("R(2) = { (_q1, _q2) }");
  // Nulls are distinct values syntactically: naive evaluation of x = y
  // under R(x,y) fails, of x != y succeeds.
  EXPECT_FALSE(
      EvaluateMembership(Q(":= exists x, y . R(x, y) & x = y"), db, Tuple{}));
  EXPECT_TRUE(EvaluateMembership(Q(":= exists x, y . R(x, y) & x != y"), db,
                                 Tuple{}));
}

TEST(EvalTest, BooleanConstantsAndEmptyDb) {
  Database db;
  db.AddRelation("R", 1);
  EXPECT_TRUE(EvaluateMembership(Q(":= true"), db, Tuple{}));
  EXPECT_FALSE(EvaluateMembership(Q(":= false"), db, Tuple{}));
  // ∃x over an empty active domain is false; ∀x is vacuously true.
  EXPECT_FALSE(EvaluateMembership(Q(":= exists x . x = x"), db, Tuple{}));
  EXPECT_TRUE(EvaluateMembership(Q(":= forall x . R(x)"), db, Tuple{}));
}

TEST(EvalTest, MissingRelationIsEmpty) {
  Database db = Db("R(1) = { (a) }");
  EXPECT_FALSE(EvaluateMembership(Q(":= exists x . Zzz(x)"), db, Tuple{}));
}

TEST(EvalTest, RepeatedFreeVariableMembership) {
  Database db = Db("R(2) = { (a, a), (a, b) }");
  Query q = Q("Q(x, x) := R(x, x)");
  EXPECT_TRUE(EvaluateMembership(
      q, db, Tuple{Value::Constant("a"), Value::Constant("a")}));
  EXPECT_FALSE(EvaluateMembership(
      q, db, Tuple{Value::Constant("a"), Value::Constant("b")}));
  std::vector<Tuple> answers = EvaluateQuery(q, db);
  ASSERT_EQ(answers.size(), 1u);
}

TEST(EvalTest, NaiveEvaluationOnIntroExample) {
  // Section 1: naive answers are (c1,⊥1) and (c2,⊥2).
  Database db = Db(
      "R1(2) = { (c1, _1), (c2, _1), (c2, _2) }"
      "R2(2) = { (c1, _2), (c2, _1), (_3, _1) }");
  Query q = Q("Q(x, y) := R1(x, y) & !R2(x, y)");
  std::vector<Tuple> naive = NaiveEvaluate(q, db);
  ASSERT_EQ(naive.size(), 2u);
  EXPECT_TRUE(std::count(naive.begin(), naive.end(),
                         (Tuple{Value::Constant("c1"), Value::Null("1")})));
  EXPECT_TRUE(std::count(naive.begin(), naive.end(),
                         (Tuple{Value::Constant("c2"), Value::Null("2")})));
}

// Proposition 1 / Definition 3: the direct syntactic evaluator agrees with
// the via-bijection reference implementation on randomized instances.
class NaiveEvalAgreement : public ::testing::TestWithParam<int> {};

TEST_P(NaiveEvalAgreement, DirectMatchesBijection) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 5}, {"S", 1, 3}};
  db_options.constant_pool = 4;
  db_options.null_pool = 3;
  db_options.null_probability = 0.4;
  db_options.seed = static_cast<std::uint64_t>(GetParam());
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 1;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 1000;
  Query fo = GenerateRandomFo(q_options, 0.3);

  std::vector<Tuple> direct = NaiveEvaluate(fo, db);
  std::vector<Tuple> reference = NaiveEvaluateViaBijection(fo, db);
  std::sort(direct.begin(), direct.end());
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(direct, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveEvalAgreement,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace zeroone
