// Tests for the HTTP/1.1 gateway (svc/http.h): the JSON-body → request-line
// assembly, the wire-status → HTTP-status mapping, keep-alive and
// pipelining over a live server, the 404/405/413 edges — and the parity
// battery the gateway exists for: for every error class the dispatcher can
// produce (BAD_REQUEST, UNAVAILABLE, DEADLINE_EXCEEDED, OVERLOADED), the
// HTTP JSON payload must be byte-for-byte the string a raw ZO1 client
// receives, because both fronts feed the same RequestSink.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "svc/client.h"
#include "svc/http.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace zeroone {
namespace svc {
namespace {

// With 5 nulls `certain` takes several hundred ms — long enough that
// deadline and overload behavior are observable (same database svc_test.cc
// uses for those paths).
constexpr const char* kSlowDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4), (c5, _5) }";
constexpr const char* kQuery = "Q(x) := exists y . R(x, y)";

Request MakeRequest(const std::string& command, const std::string& args = "",
                    const std::string& session = "default") {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

// ---------------------------------------------------------------------------
// AssembleQueryLine (pure)

TEST(AssembleQueryLineTest, CommandOnly) {
  StatusOr<std::string> line = AssembleQueryLine(R"({"command": "ping"})");
  ASSERT_TRUE(line.ok()) << line.status().message();
  EXPECT_EQ(*line, "ping");
}

TEST(AssembleQueryLineTest, AllFields) {
  StatusOr<std::string> line = AssembleQueryLine(
      R"json({"command": "certain", "args": "Q(x)", "id": "q7",)json"
      R"json( "session": "alpha", "deadline_ms": 250, "nocache": true,)json"
      R"json( "explain": true})json");
  ASSERT_TRUE(line.ok()) << line.status().message();
  // The assembled line must parse back to the same request.
  StatusOr<Request> parsed = ParseRequestLine(*line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->command, "certain");
  EXPECT_EQ(parsed->args, "Q(x)");
  EXPECT_EQ(parsed->id, "q7");
  EXPECT_EQ(parsed->session, "alpha");
  EXPECT_EQ(parsed->deadline_ms, 250u);
  EXPECT_TRUE(parsed->no_cache);
}

TEST(AssembleQueryLineTest, NullMeansAbsent) {
  StatusOr<std::string> line = AssembleQueryLine(
      R"({"command": "ping", "args": null, "deadline_ms": null})");
  ASSERT_TRUE(line.ok()) << line.status().message();
  EXPECT_EQ(*line, "ping");
}

TEST(AssembleQueryLineTest, RejectsMissingCommand) {
  StatusOr<std::string> line = AssembleQueryLine(R"({"args": "x"})");
  ASSERT_FALSE(line.ok());
  EXPECT_NE(line.status().message().find("command"), std::string::npos)
      << line.status().message();
}

TEST(AssembleQueryLineTest, RejectsUnknownField) {
  EXPECT_FALSE(AssembleQueryLine(R"({"command": "ping", "bogus": 1})").ok());
}

TEST(AssembleQueryLineTest, RejectsDuplicateField) {
  EXPECT_FALSE(
      AssembleQueryLine(R"({"command": "ping", "command": "ping"})").ok());
}

TEST(AssembleQueryLineTest, RejectsNonObjectAndMalformedJson) {
  EXPECT_FALSE(AssembleQueryLine("").ok());
  EXPECT_FALSE(AssembleQueryLine("[1, 2]").ok());
  EXPECT_FALSE(AssembleQueryLine(R"("ping")").ok());
  EXPECT_FALSE(AssembleQueryLine(R"({"command": "ping")").ok());
  EXPECT_FALSE(AssembleQueryLine(R"({"command": "ping"} trailing)").ok());
  EXPECT_FALSE(AssembleQueryLine(R"({"deadline_ms": 1.5, "command": "p"})")
                   .ok());
}

TEST(AssembleQueryLineTest, DecodesStringEscapes) {
  StatusOr<std::string> line = AssembleQueryLine(
      R"({"command": "db", "args": "R(1) = { (\"a\") }\t"})");
  ASSERT_TRUE(line.ok()) << line.status().message();
  EXPECT_NE(line->find("R(1) = { (\"a\") }\t"), std::string::npos) << *line;
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(HttpStatusForTest, FullMapping) {
  EXPECT_EQ(HttpHandler::HttpStatusFor(WireStatus::kOk), 200);
  EXPECT_EQ(HttpHandler::HttpStatusFor(WireStatus::kErr), 422);
  EXPECT_EQ(HttpHandler::HttpStatusFor(WireStatus::kBadRequest), 400);
  EXPECT_EQ(HttpHandler::HttpStatusFor(WireStatus::kOverloaded), 503);
  EXPECT_EQ(HttpHandler::HttpStatusFor(WireStatus::kShuttingDown), 503);
  EXPECT_EQ(HttpHandler::HttpStatusFor(WireStatus::kUnavailable), 503);
  EXPECT_EQ(HttpHandler::HttpStatusFor(WireStatus::kDeadlineExceeded), 504);
}

// ---------------------------------------------------------------------------
// End to end over a live server

// A parsed HTTP/1.1 response.
struct HttpResponse {
  int code = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  std::string Header(const std::string& name) const {
    for (const auto& [key, value] : headers) {
      if (key.size() == name.size() &&
          std::equal(key.begin(), key.end(), name.begin(),
                     [](char a, char b) {
                       return std::tolower(static_cast<unsigned char>(a)) ==
                              std::tolower(static_cast<unsigned char>(b));
                     })) {
        return value;
      }
    }
    return "";
  }
};

// Splits a byte stream of back-to-back HTTP responses (as a pipelined
// keep-alive connection delivers them). Fails the test on framing errors.
std::vector<HttpResponse> SplitHttpResponses(const std::string& stream) {
  std::vector<HttpResponse> responses;
  std::size_t at = 0;
  while (at < stream.size()) {
    HttpResponse response;
    std::size_t head_end = stream.find("\r\n\r\n", at);
    EXPECT_NE(head_end, std::string::npos)
        << "truncated response head at offset " << at;
    if (head_end == std::string::npos) break;
    std::string head = stream.substr(at, head_end - at);
    std::size_t line_end = head.find("\r\n");
    std::string status_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    EXPECT_EQ(status_line.rfind("HTTP/1.1 ", 0), 0u) << status_line;
    response.code = std::atoi(status_line.c_str() + 9);
    std::size_t content_length = 0;
    std::size_t cursor =
        line_end == std::string::npos ? head.size() : line_end + 2;
    while (cursor < head.size()) {
      std::size_t eol = head.find("\r\n", cursor);
      if (eol == std::string::npos) eol = head.size();
      std::string line = head.substr(cursor, eol - cursor);
      cursor = eol + 2;
      std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string key = line.substr(0, colon);
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      if (key == "Content-Length") {
        content_length = static_cast<std::size_t>(std::atoll(value.c_str()));
      }
      response.headers.emplace_back(std::move(key), std::move(value));
    }
    std::size_t body_start = head_end + 4;
    EXPECT_LE(body_start + content_length, stream.size())
        << "truncated response body";
    response.body = stream.substr(body_start, content_length);
    at = body_start + content_length;
    responses.push_back(std::move(response));
  }
  return responses;
}

class RawSocket {
 public:
  ~RawSocket() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool SendRaw(std::string_view bytes) {
    while (!bytes.empty()) {
      ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      bytes.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  std::string ReadAll() {
    std::string all;
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return all;
      all.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

std::string PostQuery(const std::string& json,
                      const std::string& extra_headers = "") {
  std::string request = "POST /v1/query HTTP/1.1\r\n";
  request += "Host: test\r\n";
  request += extra_headers;
  request += "Content-Length: " + std::to_string(json.size()) + "\r\n\r\n";
  request += json;
  return request;
}

class HttpServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    options.http_port = 0;
    server_ = std::make_unique<Server>(options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.message();
    ASSERT_GT(server_->http_port(), 0);
  }

  // Sends `bytes`, half-closes, and returns the parsed response stream.
  std::vector<HttpResponse> Exchange(const std::string& bytes) {
    RawSocket socket;
    EXPECT_TRUE(socket.Connect(server_->http_port()));
    EXPECT_TRUE(socket.SendRaw(bytes));
    socket.ShutdownWrite();
    return SplitHttpResponses(socket.ReadAll());
  }

  // The ZO1 answer for the same request — the parity reference.
  Response Zo1Call(const Request& request) {
    BlockingClient client;
    Status status = client.Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(status.ok()) << status.message();
    StatusOr<Response> response = client.Call(request);
    EXPECT_TRUE(response.ok()) << response.status().message();
    return response.ok() ? *response : Response{};
  }

  // Asserts the HTTP response carries exactly the ZO1 response's payload
  // (and status), i.e. {"status": S, "id": I, "payload": P} with P equal
  // byte-for-byte modulo JSON string escaping.
  void ExpectParity(const HttpResponse& http, const Response& zo1) {
    EXPECT_EQ(http.code, HttpHandler::HttpStatusFor(zo1.status));
    std::string expected = "{\"status\":\"";
    expected += WireStatusName(zo1.status);
    expected += "\",\"id\":\"" + JsonEscape(zo1.id) + "\"";
    expected += ",\"payload\":\"" + JsonEscape(zo1.payload) + "\"}";
    EXPECT_EQ(http.body, expected);
  }

  std::unique_ptr<Server> server_;
};

TEST_F(HttpServerTest, PostQueryAnswersAndKeepsAlive) {
  StartServer(ServerOptions{});
  std::vector<HttpResponse> responses =
      Exchange(PostQuery(R"({"command": "ping", "id": "7"})"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].code, 200);
  EXPECT_EQ(responses[0].Header("Connection"), "keep-alive");
  EXPECT_EQ(responses[0].Header("Content-Type"), "application/json");
  EXPECT_EQ(responses[0].body,
            R"({"status":"OK","id":"7","payload":"pong"})");
}

TEST_F(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  StartServer(ServerOptions{});
  std::string bytes;
  for (int i = 0; i < 5; ++i) {
    bytes += PostQuery(R"({"command": "ping", "id": ")" +
                       std::to_string(i) + R"("})");
  }
  std::vector<HttpResponse> responses = Exchange(bytes);
  ASSERT_EQ(responses.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(responses[i].code, 200);
    EXPECT_NE(responses[i].body.find("\"id\":\"" + std::to_string(i) + "\""),
              std::string::npos)
        << responses[i].body;
  }
}

TEST_F(HttpServerTest, ConnectionCloseIsHonored) {
  StartServer(ServerOptions{});
  RawSocket socket;
  ASSERT_TRUE(socket.Connect(server_->http_port()));
  ASSERT_TRUE(socket.SendRaw(PostQuery(R"({"command": "ping"})",
                                       "Connection: close\r\n")));
  // No ShutdownWrite: the server must close on its own after answering.
  std::vector<HttpResponse> responses = SplitHttpResponses(socket.ReadAll());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].code, 200);
  EXPECT_EQ(responses[0].Header("Connection"), "close");
}

TEST_F(HttpServerTest, Http10DefaultsToClose) {
  StartServer(ServerOptions{});
  RawSocket socket;
  ASSERT_TRUE(socket.Connect(server_->http_port()));
  std::string body = R"({"command": "ping"})";
  ASSERT_TRUE(socket.SendRaw(
      "POST /v1/query HTTP/1.0\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body));
  std::vector<HttpResponse> responses = SplitHttpResponses(socket.ReadAll());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].code, 200);
  EXPECT_EQ(responses[0].Header("Connection"), "close");
}

TEST_F(HttpServerTest, MetricsEndpointDumpsTheRegistry) {
  StartServer(ServerOptions{});
  // Serve one request first so the counters exist and are nonzero.
  Exchange(PostQuery(R"({"command": "ping"})"));
  std::vector<HttpResponse> responses =
      Exchange("GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].code, 200);
  EXPECT_NE(responses[0].body.find("svc.server.requests"), std::string::npos)
      << responses[0].body.substr(0, 200);
}

TEST_F(HttpServerTest, UnknownPathIs404KnownPathWrongMethodIs405) {
  StartServer(ServerOptions{});
  std::vector<HttpResponse> responses = Exchange(
      "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /v1/query HTTP/1.1\r\nHost: t\r\n\r\n"
      "POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].code, 404);
  EXPECT_EQ(responses[1].code, 405);
  EXPECT_EQ(responses[2].code, 405);
}

TEST_F(HttpServerTest, OversizedHeadIs413AndCloses) {
  StartServer(ServerOptions{});
  std::string request = "GET /metrics HTTP/1.1\r\nX-Pad: ";
  request += std::string(20 * 1024, 'x');  // Over the 16KB head cap.
  request += "\r\n\r\n";
  RawSocket socket;
  ASSERT_TRUE(socket.Connect(server_->http_port()));
  ASSERT_TRUE(socket.SendRaw(request));
  std::vector<HttpResponse> responses = SplitHttpResponses(socket.ReadAll());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].code, 413);
  EXPECT_EQ(responses[0].Header("Connection"), "close");
}

TEST_F(HttpServerTest, OversizedBodyIs413) {
  StartServer(ServerOptions{});
  RawSocket socket;
  ASSERT_TRUE(socket.Connect(server_->http_port()));
  // Declared over the body cap: rejected from the header alone, before any
  // body bytes arrive.
  ASSERT_TRUE(socket.SendRaw(
      "POST /v1/query HTTP/1.1\r\nContent-Length: " +
      std::to_string(kMaxRequestBytes + 1) + "\r\n\r\n"));
  std::vector<HttpResponse> responses = SplitHttpResponses(socket.ReadAll());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].code, 413);
}

TEST_F(HttpServerTest, MalformedJsonBodyIs400WithBadRequestEnvelope) {
  StartServer(ServerOptions{});
  std::vector<HttpResponse> responses = Exchange(PostQuery("not json"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].code, 400);
  EXPECT_NE(responses[0].body.find("\"status\":\"BAD_REQUEST\""),
            std::string::npos)
      << responses[0].body;
}

// ---------------------------------------------------------------------------
// Parity battery: HTTP payload == ZO1 payload, error class by error class.

TEST_F(HttpServerTest, ParityBadRequest) {
  StartServer(ServerOptions{});
  Response zo1 = Zo1Call(MakeRequest("bogus"));
  ASSERT_EQ(zo1.status, WireStatus::kBadRequest);
  std::vector<HttpResponse> responses =
      Exchange(PostQuery(R"({"command": "bogus"})"));
  ASSERT_EQ(responses.size(), 1u);
  ExpectParity(responses[0], zo1);
  // The documented string, verbatim, on both fronts.
  EXPECT_EQ(zo1.payload, "unknown command 'bogus' (see docs/serving.md)");
}

TEST_F(HttpServerTest, ParityControlByteInJsonString) {
  StartServer(ServerOptions{});
  // A control byte smuggled through a JSON escape cannot split the
  // assembled request line — it reaches the ZO1 parser as one line and is
  // rejected with the parser's own BAD_REQUEST string.
  std::vector<HttpResponse> responses = Exchange(
      PostQuery(R"({"command": "ping", "args": "a\u0001b"})"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].code, 400);
  EXPECT_NE(responses[0].body.find("control byte"), std::string::npos)
      << responses[0].body;
}

TEST_F(HttpServerTest, ParityUnavailableOnReadOnlyFollower) {
  StartServer(ServerOptions{});
  server_->dispatcher().SetReadOnly(true);
  Response zo1 = Zo1Call(MakeRequest("db", "R(1) = { (c1) }"));
  ASSERT_EQ(zo1.status, WireStatus::kUnavailable);
  EXPECT_EQ(zo1.payload,
            "read-only follower: 'db' not applied; retry after failover");
  std::vector<HttpResponse> responses = Exchange(
      PostQuery(R"({"command": "db", "args": "R(1) = { (c1) }"})"));
  ASSERT_EQ(responses.size(), 1u);
  ExpectParity(responses[0], zo1);
}

TEST_F(HttpServerTest, ParityDeadlineExceeded) {
  StartServer(ServerOptions{});
  {
    BlockingClient setup;
    ASSERT_TRUE(setup.Connect("127.0.0.1", server_->port()).ok());
    ASSERT_EQ(setup.Call(MakeRequest("db", kSlowDb))->status, WireStatus::kOk);
    ASSERT_EQ(setup.Call(MakeRequest("query", kQuery))->status,
              WireStatus::kOk);
  }
  Request slow = MakeRequest("certain");
  slow.deadline_ms = 30;  // Far below the ~0.5s evaluation time.
  slow.no_cache = true;
  Response zo1 = Zo1Call(slow);
  ASSERT_EQ(zo1.status, WireStatus::kDeadlineExceeded);
  EXPECT_EQ(zo1.payload,
            "deadline exceeded during 'certain'; partial result discarded");
  std::vector<HttpResponse> responses = Exchange(PostQuery(
      R"({"command": "certain", "deadline_ms": 30, "nocache": true})"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].code, 504);
  ExpectParity(responses[0], zo1);
}

TEST_F(HttpServerTest, ParityOverloaded) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  StartServer(options);
  {
    BlockingClient setup;
    ASSERT_TRUE(setup.Connect("127.0.0.1", server_->port()).ok());
    ASSERT_EQ(setup.Call(MakeRequest("db", kSlowDb))->status, WireStatus::kOk);
    ASSERT_EQ(setup.Call(MakeRequest("query", kQuery))->status,
              WireStatus::kOk);
  }
  // A pipelined burst of slow uncacheable requests: the first occupies the
  // single worker, one fits the queue, the rest must be OVERLOADED — on
  // both fronts, with the same payload string.
  constexpr int kBurst = 8;
  const std::string kOverloadedPayload =
      "work queue full (capacity 1); retry later";

  std::string zo1_payload;
  {
    BlockingClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    Request request = MakeRequest("certain");
    request.no_cache = true;
    for (int i = 0; i < kBurst; ++i) {
      ASSERT_TRUE(client.Send(request).ok());
    }
    for (int i = 0; i < kBurst; ++i) {
      StatusOr<Response> response = client.Receive();
      ASSERT_TRUE(response.ok()) << response.status().message();
      if (response->status == WireStatus::kOverloaded) {
        zo1_payload = response->payload;
      }
    }
  }
  ASSERT_EQ(zo1_payload, kOverloadedPayload);

  std::string bytes;
  for (int i = 0; i < kBurst; ++i) {
    bytes += PostQuery(R"({"command": "certain", "nocache": true})");
  }
  std::vector<HttpResponse> responses = Exchange(bytes);
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kBurst));
  int overloaded = 0;
  for (const HttpResponse& response : responses) {
    if (response.code != 503) continue;
    ++overloaded;
    EXPECT_NE(
        response.body.find("\"payload\":\"" + JsonEscape(zo1_payload) + "\""),
        std::string::npos)
        << response.body;
  }
  EXPECT_GE(overloaded, 1) << "burst of " << kBurst
                           << " never tripped the admission queue";
}

}  // namespace
}  // namespace svc
}  // namespace zeroone
