// Differential conformance test for the epoll serving core: the same
// seeded, reproducible script of commands is driven against a server in
// legacy thread-per-connection mode and one in epoll event-loop mode, and
// the two wire transcripts must be byte-identical — raw response frames,
// compared as bytes, not parsed-and-reinterpreted. The script covers every
// response status the server can produce on a live connection: OK, ERR,
// BAD_REQUEST, OVERLOADED, DEADLINE_EXCEEDED (both the mid-evaluation and
// the expired-in-queue variants), and UNAVAILABLE (via a deterministic
// injected fault). Three distinct seeds run in CI.
//
// Determinism notes:
//  - The script is driven sequentially (one outstanding request at a time)
//    except in the explicitly pipelined phases, so thread scheduling cannot
//    reorder responses.
//  - OVERLOADED is produced with threads=1/queue=1 and timing margins of
//    hundreds of milliseconds against an evaluation that takes at least
//    that long, not with races.
//  - Fault sites are process-global, so the registry is configured
//    identically before each server run and cleared after.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "fault/fault.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace zeroone {
namespace svc {
namespace {

constexpr const char* kFastDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4) }";
// Slow enough (5 nulls) that a 50ms deadline always expires mid-evaluation
// and a queued request always outlives a 20ms deadline, even without
// sanitizers; sanitizers only widen the margin.
constexpr const char* kSlowDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4), (c5, _5) }";
constexpr const char* kQuery = "Q(x) := exists y . R(x, y)";

// A raw TCP client that captures response frames as uninterpreted bytes.
// BlockingClient would parse and could normalize; byte-identity demands the
// wire form itself.
class RawClient {
 public:
  ~RawClient() { Close(); }

  void Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void SendRaw(std::string_view bytes) {
    while (!bytes.empty()) {
      ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      bytes.remove_prefix(static_cast<std::size_t>(n));
    }
  }

  void SendLine(const Request& request) {
    SendRaw(FormatRequestLine(request) + "\n");
  }

  // Appends the next `count` complete frames, as raw bytes, to *out. On
  // EOF or a transport error before `count` frames, appends a marker so
  // the divergence shows up in the transcript comparison.
  void ReadFrames(std::size_t count, std::vector<std::string>* out) {
    while (count > 0) {
      Response parsed;
      StatusOr<std::size_t> consumed = ParseResponseFrame(buffer_, &parsed);
      if (!consumed.ok()) {
        out->push_back("<<frame error: " + consumed.status().message() +
                       ">>");
        return;
      }
      if (*consumed > 0) {
        out->push_back(buffer_.substr(0, *consumed));
        buffer_.erase(0, *consumed);
        --count;
        continue;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        out->push_back("<<eof>>");
        return;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  // Reads to EOF; returns any trailing bytes (expected: none).
  std::string ReadUntilEof() {
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return buffer_;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

Request Req(const std::string& command, const std::string& args = "",
            const std::string& session = "default") {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

// One Call round-trip over the raw client: send, capture the raw frame.
void Roundtrip(RawClient& client, const Request& request,
               std::vector<std::string>* transcript) {
  client.SendLine(request);
  client.ReadFrames(1, transcript);
}

// Drives the full scripted session against one server configuration and
// returns the transcript of raw frames (plus synthetic markers and a final
// stats digest). `legacy` selects the reader model; everything else is
// identical between the two runs.
std::vector<std::string> RunTranscript(bool legacy, std::uint32_t seed) {
  static int run_counter = 0;
  std::string snapdir =
      std::filesystem::temp_directory_path() /
      ("zo1_diff_" + std::string(legacy ? "legacy" : "epoll") + "_" +
       std::to_string(seed) + "_" + std::to_string(run_counter++));
  std::filesystem::remove_all(snapdir);
  std::filesystem::create_directories(snapdir);

  // Identical fault-registry state for both runs (sites are
  // process-global): armed later, in the UNAVAILABLE phase.
  fault::Registry::Global().Clear();

  ServerOptions options;
  options.threads = 1;          // One worker: queue timing is deterministic.
  options.queue_capacity = 1;   // One slot: the overload phase fills it.
  options.snapshot_dir = snapdir;
  options.legacy_readers = legacy;
  options.event_threads = 2;
  Server server(options);
  Status started = server.Start();
  EXPECT_TRUE(started.ok()) << started.message();
  EXPECT_EQ(server.event_threads(), legacy ? 0u : 2u);

  std::vector<std::string> transcript;
  {
    RawClient client;
    client.Connect(server.port());

    // Phase A — preamble: a session with nulls and a query.
    Roundtrip(client, Req("db", kFastDb), &transcript);
    Roundtrip(client, Req("query", kQuery), &transcript);

    // Phase B — seeded random script, driven sequentially. Raw engine
    // output (not a distribution) so the same seed gives the same script
    // on any standard library. Random db inserts use constants only: the
    // null count stays fixed, so evaluation stays fast.
    std::mt19937 rng(seed);
    int insert_counter = 0;
    for (int i = 0; i < 40; ++i) {
      std::uint32_t choice = static_cast<std::uint32_t>(rng()) % 10;
      Request request;
      switch (choice) {
        case 0:
        case 1:
          request = Req("certain");
          break;
        case 2:
          request = Req("possible");
          break;
        case 3:
          request = Req("naive");
          break;
        case 4:
          request = Req("ping");
          break;
        case 5:
          request = Req("stats");
          break;
        case 6:
          ++insert_counter;
          request = Req("db", StrCat("R(2) = { (k", insert_counter, ", v",
                                     insert_counter, ") }"));
          break;
        case 7:
          request = Req("query", kQuery);
          break;
        case 8:
          request = Req("save");
          break;
        default:
          request = Req("mu", "(c1");  // Malformed tuple: deterministic ERR.
          break;
      }
      request.id = StrCat("id", i);
      if (static_cast<std::uint32_t>(rng()) % 3 == 0) {
        request.no_cache = true;
      }
      if (static_cast<std::uint32_t>(rng()) % 4 == 0) {
        // A session with no query set: reads answer a deterministic ERR.
        request.session = "alt";
      }
      Roundtrip(client, request, &transcript);
    }

    // Phase C — DEADLINE_EXCEEDED mid-evaluation: certain over the slow
    // session takes hundreds of ms, the deadline is 50ms.
    Roundtrip(client, Req("db", kSlowDb, "slow"), &transcript);
    Roundtrip(client, Req("query", kQuery, "slow"), &transcript);
    {
      Request request = Req("certain", "", "slow");
      request.deadline_ms = 50;
      Roundtrip(client, request, &transcript);
    }

    // Phase D — DEADLINE_EXCEEDED while queued: pipeline a full slow
    // evaluation (no deadline, cache bypassed) and behind it a ping whose
    // 20ms deadline expires long before the single worker gets to it.
    {
      Request slow = Req("certain", "", "slow");
      slow.no_cache = true;
      Request queued = Req("ping");
      queued.deadline_ms = 20;
      client.SendLine(slow);
      // Let the single worker dequeue the slow request (the queue holds
      // only one entry, so the ping must find it empty to be *queued*
      // rather than rejected OVERLOADED). The evaluation runs for hundreds
      // of ms beyond this, so the 20ms deadline still expires in queue.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      client.SendLine(queued);
      client.ReadFrames(2, &transcript);
    }

    // Phase E — OVERLOADED: occupy the worker with a slow evaluation,
    // park a filler in the single queue slot, then burst three more
    // requests against the full queue. Same-connection ordering guarantees
    // the filler's submit happens before the burst's; the 150ms sleep
    // guarantees the worker has dequeued the slow request (which runs for
    // hundreds of ms) before the filler arrives.
    {
      Request slow = Req("certain", "", "slow");
      slow.no_cache = true;
      client.SendLine(slow);
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      client.SendLine(Req("ping"));  // Occupies the queue slot.
      for (int i = 0; i < 3; ++i) client.SendLine(Req("ping"));
      client.ReadFrames(5, &transcript);
    }

#if ZEROONE_FAULT_ENABLED
    // Phase F — UNAVAILABLE: a deterministically injected mutate fault.
    // Fault-off builds compile the site away, so the phase is skipped
    // there (both serving models skip it identically).
    Status armed =
        fault::Registry::Global().Configure("svc.session.mutate.fail=#1");
    EXPECT_TRUE(armed.ok()) << armed.message();
    Roundtrip(client, Req("db", "R(2) = { (x, y) }"), &transcript);
    fault::Registry::Global().Clear();
#endif
  }

  // Phase G — BAD_REQUEST frames on a fresh connection, ending with an
  // oversized line that poisons the framing: the server answers
  // BAD_REQUEST once more, stops reading, and half-closes after flushing.
  {
    RawClient bad;
    bad.Connect(server.port());
    bad.SendRaw("frobnicate\n");            // Unknown command.
    bad.SendRaw("@id=!! ping\n");           // Bad token character.
    bad.SendRaw("@deadline_ms=abc ping\n");  // Non-numeric deadline.
    bad.SendRaw("\xff\xfe ping\n");         // Invalid UTF-8.
    bad.ReadFrames(4, &transcript);
    bad.SendRaw(std::string(kMaxRequestBytes + 4096, 'a'));
    bad.SendRaw("\n");
    bad.ReadFrames(1, &transcript);
    std::string trailing = bad.ReadUntilEof();
    transcript.push_back("<<after oversized: eof, " +
                         std::to_string(trailing.size()) +
                         " trailing bytes>>");
  }

  server.Shutdown();
  fault::Registry::Global().Clear();

  // Digest of the server-side counters the script determines exactly.
  Server::Stats stats = server.stats();
  transcript.push_back(StrCat(
      "<<stats: conns=", stats.connections_accepted,
      " requests=", stats.requests_received, " bad=", stats.bad_requests,
      " overloaded=", stats.overloaded, " overflows=", stats.outbox_overflows,
      ">>"));
  std::filesystem::remove_all(snapdir);
  return transcript;
}

class SvcEpollDiffTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SvcEpollDiffTest, LegacyAndEpollTranscriptsAreByteIdentical) {
  const std::uint32_t seed = GetParam();
  std::vector<std::string> legacy = RunTranscript(/*legacy=*/true, seed);
  std::vector<std::string> epoll = RunTranscript(/*legacy=*/false, seed);
  ASSERT_EQ(legacy.size(), epoll.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i], epoll[i]) << "transcript diverges at frame " << i;
  }
  // The transcript must actually have exercised every interesting status.
  auto contains = [&](const char* needle) {
    for (const std::string& frame : epoll) {
      if (frame.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("ZO1 OK"));
  EXPECT_TRUE(contains("ZO1 ERR"));
  EXPECT_TRUE(contains("ZO1 BAD_REQUEST"));
  EXPECT_TRUE(contains("ZO1 OVERLOADED"));
  EXPECT_TRUE(contains("ZO1 DEADLINE_EXCEEDED"));
  EXPECT_TRUE(contains("not started"));  // The queued-expiry variant.
#if ZEROONE_FAULT_ENABLED
  EXPECT_TRUE(contains("ZO1 UNAVAILABLE"));  // Needs the injected fault.
#endif
  EXPECT_FALSE(contains("<<frame error"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvcEpollDiffTest,
                         ::testing::Values(11u, 202u, 3003u));

}  // namespace
}  // namespace svc
}  // namespace zeroone
