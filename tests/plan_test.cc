// Unit and integration tests for zeroone::plan — the cost model, the
// bytecode compiler/VM, the plan cache (including invalidation through the
// svc dispatcher, sequential and raced), the clause/body orderers, and the
// explain surfaces.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "data/database.h"
#include "data/io.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "plan/cache.h"
#include "plan/clause_plan.h"
#include "plan/compiler.h"
#include "plan/cost.h"
#include "plan/datalog_plan.h"
#include "plan/ir.h"
#include "plan/mode.h"
#include "plan/vm.h"
#include "query/eval.h"
#include "query/parser.h"
#include "svc/dispatch.h"
#include "svc/protocol.h"

namespace zeroone {
namespace {

template <typename Fn>
auto WithPlanMode(plan::PlanMode mode, Fn&& body) {
  plan::PlanMode previous = plan::plan_mode();
  plan::SetPlanMode(mode);
  auto result = body();
  plan::SetPlanMode(previous);
  return result;
}

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().message();
  return std::move(query).value();
}

// ---------------------------------------------------------------------------
// Relation statistics and the cost model.

TEST(RelationStatsTest, CountsRowsAndPerColumnDistincts) {
  Database db = Db("R(2) = { (a, x), (b, x), (c, x), (c, y) }");
  RelationStats stats = db.relation("R").Stats();
  EXPECT_EQ(stats.rows, 4u);
  ASSERT_EQ(stats.distinct_per_column.size(), 2u);
  EXPECT_EQ(stats.distinct_per_column[0], 3u);  // a, b, c
  EXPECT_EQ(stats.distinct_per_column[1], 2u);  // x, y
}

TEST(RelationStatsTest, MutationInvalidatesCachedStats) {
  Database db = Db("R(1) = { (a) }");
  EXPECT_EQ(db.relation("R").Stats().rows, 1u);
  db.mutable_relation("R").Insert(Tuple({Value::Constant("b")}));
  EXPECT_EQ(db.relation("R").Stats().rows, 2u);
}

TEST(CostModelTest, BoundColumnsDivideTheEstimate) {
  Database db = Db("R(2) = { (a, x), (b, x), (c, x), (c, y) }");
  RelationStats stats = db.relation("R").Stats();
  EXPECT_DOUBLE_EQ(plan::EstimateMatches(stats, {}), 4.0);
  EXPECT_DOUBLE_EQ(plan::EstimateMatches(stats, {0}), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(plan::EstimateMatches(stats, {1}), 2.0);
  EXPECT_DOUBLE_EQ(plan::EstimateMatches(stats, {0, 1}), 4.0 / 6.0);
}

// ---------------------------------------------------------------------------
// Planner, compiler, VM.

TEST(PlannerTest, ExplainNamesCandidatesMasksAndEstimates) {
  Database db = Db("R(2) = { (a, x), (b, y) } S(1) = { (a) }");
  // Written S-first; with x and y both bound, R estimates 2/(2*2) = 0.5
  // rows against S's 1/1 = 1, so the planner must hoist R ahead of S.
  Query query = Q("Q(x) := exists y . S(x) & R(x, y)");
  std::string explain = ExplainQueryPlan(query, db);
  EXPECT_NE(explain.find("plan [enumerate]"), std::string::npos) << explain;
  EXPECT_NE(explain.find("est="), std::string::npos) << explain;
  std::size_t s_pos = explain.find("check S");
  std::size_t r_pos = explain.find("check R");
  ASSERT_NE(s_pos, std::string::npos) << explain;
  ASSERT_NE(r_pos, std::string::npos) << explain;
  EXPECT_LT(r_pos, s_pos) << explain;
}

TEST(CompilerTest, DisassembleListsEveryInstruction) {
  Database db = Db("R(2) = { (a, x) }");
  Query query = Q("Q(x) := exists y . R(x, y)");
  plan::CompiledQuery compiled = plan::CompileFormulaQuery(
      *query.formula(), query.free_variables(), query.variable_count(),
      query.variable_names(), db, /*enumerate=*/true);
  std::string listing = compiled.program.Disassemble();
  EXPECT_NE(listing.find("loop"), std::string::npos) << listing;
  EXPECT_NE(listing.find("check R"), std::string::npos) << listing;
  EXPECT_NE(listing.find("emit"), std::string::npos) << listing;
  EXPECT_NE(listing.find("halt true"), std::string::npos) << listing;
}

TEST(VmTest, EnumerateMatchesInterpreterOnHandWrittenQueries) {
  Database db = Db(
      "R(2) = { (c1, _1), (c2, _2), (c3, c1), (c1, c2) } "
      "S(1) = { (c1), (_2) }");
  const char* queries[] = {
      "Q(x) := exists y . R(x, y)",
      "Q(x) := S(x) & !(exists y . R(x, y))",
      "Q(x, y) := R(x, y) | (S(x) & S(y))",
      "Q(x) := forall y . (R(x, y) -> S(y))",
      "Q(x, x2) := R(x, x2) & x = x2",
      "Q() := exists x . S(x)",
  };
  for (const char* text : queries) {
    Query query = Q(text);
    auto interpreted = WithPlanMode(plan::PlanMode::kInterpret,
                                    [&] { return EvaluateQuery(query, db); });
    auto compiled = WithPlanMode(plan::PlanMode::kCompiled,
                                 [&] { return EvaluateQuery(query, db); });
    EXPECT_EQ(interpreted, compiled) << text;
  }
}

TEST(VmTest, MembershipMatchesInterpreterIncludingRepeatedVariables) {
  Database db = Db("R(2) = { (c1, c1), (c1, c2), (_1, _1) }");
  Query query = Q("Q(x, x) := R(x, x)");
  std::vector<Value> domain = db.ActiveDomain();
  for (Value a : domain) {
    for (Value b : domain) {
      Tuple t({a, b});
      bool interpreted = WithPlanMode(plan::PlanMode::kInterpret, [&] {
        return EvaluateMembership(query, db, t, domain);
      });
      bool compiled = WithPlanMode(plan::PlanMode::kCompiled, [&] {
        return EvaluateMembership(query, db, t, domain);
      });
      EXPECT_EQ(interpreted, compiled) << t.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Orderers.

TEST(ClausePlanTest, SelectiveAtomGoesFirst) {
  Database db = Db(
      "Big(2) = { (a, b), (a, c), (b, c), (c, d), (d, e), (e, a) } "
      "Tiny(1) = { (a) }");
  std::vector<plan::ClauseAtom> atoms = {
      {"Big", {Term::Variable(0), Term::Variable(1)}},
      {"Tiny", {Term::Variable(0)}},
  };
  std::vector<std::size_t> order =
      plan::OrderClauseAtoms(atoms, db, /*bound_vars=*/{});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // Tiny first: 1 row vs 6.
  EXPECT_EQ(order[1], 0u);
}

TEST(DatalogPlanTest, NegatedLiteralWaitsUntilGround) {
  Database db = Db("E(2) = { (a, b), (b, c) } Blocked(1) = { (b) }");
  std::vector<plan::BodyLiteral> body = {
      {"Blocked", {Term::Variable(0)}, /*negated=*/true},
      {"E", {Term::Variable(0), Term::Variable(1)}, /*negated=*/false},
  };
  plan::BodyOrder ordered = plan::OrderBody(body, db, -1, nullptr);
  ASSERT_EQ(ordered.order.size(), 2u);
  EXPECT_EQ(ordered.order[0], 1u);  // E binds X before !Blocked(X) runs.
  EXPECT_EQ(ordered.order[1], 0u);
}

TEST(DatalogPlanTest, DeltaLiteralEstimatesFromTheDelta) {
  Database db = Db("E(2) = { (a, b), (b, c), (c, d), (d, e) }");
  // T is intensional: 4 rows materialized, but only 1 in this round's delta.
  Database with_t = db;
  Relation& t = with_t.AddRelation("T", 2);
  t.InsertBatch(db.relation("E"));
  Relation delta("T", 2);
  delta.Insert(db.relation("E").Tuples()[0]);
  std::vector<plan::BodyLiteral> body = {
      {"E", {Term::Variable(0), Term::Variable(1)}, false},
      {"T", {Term::Variable(1), Term::Variable(2)}, false},
  };
  plan::BodyOrder ordered = plan::OrderBody(body, with_t, 1, &delta);
  // The delta literal (1 row) beats the full E scan (4 rows).
  EXPECT_EQ(ordered.order[0], 1u);
}

// ---------------------------------------------------------------------------
// Plan cache.

TEST(PlanCacheTest, LruEvictsAndStatsCount) {
  plan::PlanCache cache;
  auto entry = std::make_shared<const plan::CompiledQuery>();
  EXPECT_EQ(cache.Get("missing"), nullptr);
  cache.Put("a", entry);
  EXPECT_EQ(cache.Get("a"), entry);
  plan::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  cache.Clear();
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(PlanCacheTest, ScopeIsThreadLocalAndNests) {
  EXPECT_EQ(plan::CurrentPlanScope(), nullptr);
  {
    plan::ScopedPlanScope outer("outer");
    ASSERT_NE(plan::CurrentPlanScope(), nullptr);
    EXPECT_EQ(*plan::CurrentPlanScope(), "outer");
    {
      plan::ScopedPlanScope inner("inner");
      EXPECT_EQ(*plan::CurrentPlanScope(), "inner");
    }
    EXPECT_EQ(*plan::CurrentPlanScope(), "outer");
    std::thread other([] { EXPECT_EQ(plan::CurrentPlanScope(), nullptr); });
    other.join();
  }
  EXPECT_EQ(plan::CurrentPlanScope(), nullptr);
}

svc::Request Req(const std::string& command, const std::string& args = "",
                 const std::string& session = "plancache") {
  svc::Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  request.no_cache = true;  // Bypass the result cache; hit the plan cache.
  return request;
}

// Mutating the session between identical queries must recompile (the
// version is part of the plan-cache scope key) and answer from the new
// state; an unchanged session must reuse the cached plan. Asserted via
// PlanCache::Global() hit/miss deltas, which (unlike the obs counters)
// exist in every build configuration.
TEST(PlanCacheTest, DispatcherInvalidatesPlansOnMutation) {
  plan::PlanCache& cache = plan::PlanCache::Global();
  auto result = WithPlanMode(plan::PlanMode::kCompiled, [&] {
    svc::Dispatcher dispatcher({});
    EXPECT_EQ(dispatcher.Execute(Req("db", "R(2) = { (c1, c2) }")).status,
              svc::WireStatus::kOk);
    EXPECT_EQ(dispatcher.Execute(Req("query", "Q(x) := exists y . R(x, y)"))
                  .status,
              svc::WireStatus::kOk);

    plan::PlanCache::Stats s0 = cache.stats();
    svc::Response first = dispatcher.Execute(Req("naive"));
    EXPECT_EQ(first.status, svc::WireStatus::kOk);
    plan::PlanCache::Stats s1 = cache.stats();
    EXPECT_GE(s1.misses - s0.misses, 1u);  // Cold: compiled and cached.

    // Same session, same version: the plan cache serves the second run.
    svc::Response second = dispatcher.Execute(Req("naive"));
    EXPECT_EQ(second.payload, first.payload);
    plan::PlanCache::Stats s2 = cache.stats();
    EXPECT_GE(s2.hits - s1.hits, 1u);
    EXPECT_EQ(s2.misses, s1.misses);

    // Mutation bumps the version: the old plan is unreachable, the query
    // recompiles under the new key, and the new row must appear.
    dispatcher.Execute(Req("db", "R(2) = { (c9, c9) }"));
    svc::Response third = dispatcher.Execute(Req("naive"));
    plan::PlanCache::Stats s3 = cache.stats();
    EXPECT_GE(s3.misses - s2.misses, 1u);
    EXPECT_NE(third.payload.find("(c9)"), std::string::npos)
        << third.payload;
    EXPECT_NE(third.payload, first.payload);
    return 0;
  });
  (void)result;
}

// Raced mutations and reads: readers hold the shared session lock while
// compiling/consulting plans keyed by the version, mutators bump the
// version under the exclusive lock (the same discipline that keeps the
// result cache coherent). The mode is pinned to kCompiled before any
// thread starts — SetPlanMode is not safe against concurrent evaluation.
// Afterwards, compiled and interpreted evaluation must agree on the final
// state.
TEST(PlanCacheTest, RacedMutationsNeverServeStalePlans) {
  svc::Dispatcher dispatcher({});
  plan::PlanMode previous = plan::plan_mode();
  plan::SetPlanMode(plan::PlanMode::kCompiled);
  dispatcher.Execute(Req("db", "R(2) = { (c1, c2) }", "race"));
  dispatcher.Execute(
      Req("query", "Q(x) := exists y . R(x, y) & R(y, x)", "race"));

  constexpr int kMutations = 40;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread mutator([&] {
    for (int i = 0; i < kMutations; ++i) {
      svc::Request req =
          Req("db", StrCat("R(2) = { (m", i, ", m", i, ") }"), "race");
      if (dispatcher.Execute(req).status != svc::WireStatus::kOk) {
        ++failures;
      }
    }
    done = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done) {
        svc::Response response = dispatcher.Execute(Req("naive", "", "race"));
        if (response.status != svc::WireStatus::kOk) ++failures;
      }
    });
  }
  mutator.join();
  for (std::thread& t : readers) t.join();
  plan::SetPlanMode(previous);
  EXPECT_EQ(failures, 0);

  // Final state: every (mi, mi) loop plus nothing from nowhere — compiled
  // and interpreted answers must be byte-identical.
  auto compiled = WithPlanMode(plan::PlanMode::kCompiled, [&] {
    return dispatcher.Execute(Req("naive", "", "race")).payload;
  });
  auto interpreted = WithPlanMode(plan::PlanMode::kInterpret, [&] {
    return dispatcher.Execute(Req("naive", "", "race")).payload;
  });
  EXPECT_EQ(compiled, interpreted);
  EXPECT_NE(compiled.find("(m0)"), std::string::npos) << compiled;
  EXPECT_NE(compiled.find(StrCat("(m", kMutations - 1, ")")),
            std::string::npos)
      << compiled;
}

// ---------------------------------------------------------------------------
// svc @explain plumbing.

TEST(ExplainTest, SvcExplainPrintsPlansAndSkipsExecution) {
  svc::Dispatcher dispatcher({});
  dispatcher.Execute(Req("db", "R(2) = { (c1, c2) }", "explain"));
  dispatcher.Execute(Req("query", "Q(x) := exists y . R(x, y)", "explain"));
  svc::Request request = Req("naive", "", "explain");
  request.explain = true;
  svc::Response response = dispatcher.Execute(request);
  EXPECT_EQ(response.status, svc::WireStatus::kOk);
  EXPECT_NE(response.payload.find("plan [enumerate]"), std::string::npos)
      << response.payload;
  // Explain without a query is a command error, not a crash.
  svc::Request no_query = Req("naive", "", "explain-empty");
  no_query.explain = true;
  EXPECT_EQ(dispatcher.Execute(no_query).status, svc::WireStatus::kErr);
  // Explain on a non-evaluation command is rejected.
  svc::Request ping = Req("show", "", "explain");
  ping.explain = true;
  EXPECT_EQ(dispatcher.Execute(ping).status, svc::WireStatus::kErr);
}

TEST(ExplainTest, DatalogExplainShowsBodyOrders) {
  Database db = Db("E(2) = { (a, b), (b, c) } Blocked(1) = { (b) }");
  StatusOr<DatalogProgram> program = ParseDatalogProgram(R"(
    T(X, Y) :- E(X, Y).
    T(X, Z) :- E(X, Y), T(Y, Z).
    Free(X, Y) :- T(X, Y), !Blocked(Y).
    ?- Free
  )");
  ASSERT_TRUE(program.ok()) << program.status().message();
  std::string explain = ExplainDatalogPlan(*program, db);
  EXPECT_NE(explain.find("datalog plan"), std::string::npos) << explain;
  EXPECT_NE(explain.find("rule 0"), std::string::npos) << explain;
  EXPECT_NE(explain.find("not Blocked"), std::string::npos) << explain;
  EXPECT_NE(explain.find("est="), std::string::npos) << explain;
}

TEST(ExplainTest, ProtocolRoundTripsTheExplainOption) {
  svc::Request request;
  request.command = "naive";
  request.explain = true;
  std::string line = svc::FormatRequestLine(request);
  EXPECT_NE(line.find("@explain=1"), std::string::npos) << line;
  StatusOr<svc::Request> parsed = svc::ParseRequestLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_TRUE(parsed->explain);
  EXPECT_EQ(svc::FormatRequestLine(*parsed), line);
  // Bad values are BAD_REQUEST material, not accepted.
  EXPECT_FALSE(svc::ParseRequestLine("@explain=2 naive").ok());
}

}  // namespace
}  // namespace zeroone
