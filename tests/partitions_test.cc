#include "common/partitions.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace zeroone {
namespace {

TEST(PartitionsTest, BellNumbers) {
  const char* expected[] = {"1",   "1",   "2",    "5",    "15",
                            "52",  "203", "877",  "4140", "21147",
                            "115975"};
  for (std::size_t n = 0; n <= 10; ++n) {
    EXPECT_EQ(BellNumber(n).ToString(), expected[n]) << n;
  }
  // A large one, against the published value B(20).
  EXPECT_EQ(BellNumber(20).ToString(), "51724158235372");
}

TEST(PartitionsTest, EnumerationMatchesBellNumber) {
  for (std::size_t n = 0; n <= 7; ++n) {
    std::size_t count = 0;
    std::set<std::vector<std::size_t>> distinct;
    ForEachSetPartition(n, [&](const SetPartition& p) {
      ++count;
      EXPECT_EQ(p.blocks.size(), n);
      distinct.insert(p.blocks);
    });
    StatusOr<std::int64_t> bell = BellNumber(n).ToInt64();
    ASSERT_TRUE(bell.ok());
    EXPECT_EQ(count, static_cast<std::size_t>(*bell)) << n;
    EXPECT_EQ(distinct.size(), count) << "duplicate partitions at n=" << n;
  }
}

TEST(PartitionsTest, RestrictedGrowthInvariant) {
  ForEachSetPartition(5, [&](const SetPartition& p) {
    std::size_t max_seen = 0;
    for (std::size_t i = 0; i < p.blocks.size(); ++i) {
      EXPECT_LE(p.blocks[i], max_seen) << "not a restricted growth string";
      max_seen = std::max(max_seen, p.blocks[i] + 1);
    }
    EXPECT_EQ(p.block_count, max_seen);
  });
}

TEST(PartitionsTest, BlocksGroupsElements) {
  SetPartition p;
  p.blocks = {0, 1, 0, 2, 1};
  p.block_count = 3;
  auto blocks = p.Blocks();
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(blocks[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(blocks[2], (std::vector<std::size_t>{3}));
}

TEST(PartitionsTest, StirlingSecond) {
  EXPECT_EQ(StirlingSecond(0, 0).ToString(), "1");
  EXPECT_EQ(StirlingSecond(4, 2).ToString(), "7");
  EXPECT_EQ(StirlingSecond(10, 3).ToString(), "9330");
  EXPECT_EQ(StirlingSecond(5, 6).ToString(), "0");
  EXPECT_EQ(StirlingSecond(5, 0).ToString(), "0");
  // Σ_t S(n,t) = B(n).
  for (std::size_t n = 1; n <= 8; ++n) {
    BigInt sum(0);
    for (std::size_t t = 0; t <= n; ++t) sum += StirlingSecond(n, t);
    EXPECT_EQ(sum.ToString(), BellNumber(n).ToString()) << n;
  }
}

TEST(PartitionsTest, InjectivePartialMapCount) {
  // Number of injective partial maps from a d-set into an r-set is
  // Σ_j C(d,j) · r!/(r−j)!.
  auto expected_count = [](std::size_t d, std::size_t r) {
    // Direct computation with small numbers.
    auto choose = [](std::size_t n, std::size_t k) {
      double c = 1;
      for (std::size_t i = 0; i < k; ++i) c = c * (n - i) / (i + 1);
      return static_cast<std::size_t>(c + 0.5);
    };
    std::size_t total = 0;
    for (std::size_t j = 0; j <= std::min(d, r); ++j) {
      std::size_t arrangements = 1;
      for (std::size_t i = 0; i < j; ++i) arrangements *= r - i;
      total += choose(d, j) * arrangements;
    }
    return total;
  };
  for (std::size_t d = 0; d <= 4; ++d) {
    for (std::size_t r = 0; r <= 4; ++r) {
      std::size_t count = 0;
      std::set<std::vector<std::size_t>> distinct;
      ForEachInjectivePartialMap(d, r, [&](const std::vector<std::size_t>& m) {
        ++count;
        distinct.insert(m);
        // Verify injectivity on assigned values.
        std::set<std::size_t> used;
        for (std::size_t v : m) {
          if (v == kUnassigned) continue;
          EXPECT_LT(v, r);
          EXPECT_TRUE(used.insert(v).second);
        }
      });
      EXPECT_EQ(count, expected_count(d, r)) << d << " " << r;
      EXPECT_EQ(distinct.size(), count);
    }
  }
}

}  // namespace
}  // namespace zeroone
