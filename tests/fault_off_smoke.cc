// Compile/link smoke test for the ZEROONE_FAULT=OFF configuration. This
// translation unit is compiled with ZEROONE_FAULT_ENABLED=0 and is
// deliberately NOT linked against zeroone_fault: it can only link if
// ZO_FAULT_POINT compiles away entirely, which is exactly the guarantee
// the OFF configuration makes for instrumented library code.
#include "fault/fault.h"

#include <cstdio>

#if ZEROONE_FAULT_ENABLED
#error "fault_off_smoke must be compiled with ZEROONE_FAULT_ENABLED=0"
#endif

int main() {
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (ZO_FAULT_POINT("smoke.loop")) ++fired;
    if (ZO_FAULT_POINT("smoke.other")) ++fired;
  }
  if (fired != 0) {
    std::puts("fault-off smoke FAILED: a compiled-out site fired");
    return 1;
  }
  std::puts("fault-off smoke ok");
  return 0;
}
