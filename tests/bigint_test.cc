#include "common/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace zeroone {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
}

TEST(BigIntTest, Int64RoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{999999999}, std::int64_t{1000000000},
                         std::int64_t{-123456789012345},
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    BigInt b(v);
    EXPECT_EQ(b.ToString(), std::to_string(v)) << v;
    StatusOr<std::int64_t> back = b.ToInt64();
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
  }
}

TEST(BigIntTest, FromStringParsesAndRejects) {
  StatusOr<BigInt> ok = BigInt::FromString("-1234567890123456789012345");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->ToString(), "-1234567890123456789012345");
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a").ok());
  // Leading zeros normalize away.
  EXPECT_EQ(BigInt::FromString("000042")->ToString(), "42");
  EXPECT_EQ(BigInt::FromString("-000")->ToString(), "0");
}

TEST(BigIntTest, AdditionSubtractionSigns) {
  BigInt a(1000000000000LL);
  BigInt b(-999999999999LL);
  EXPECT_EQ((a + b).ToString(), "1");
  EXPECT_EQ((b + a).ToString(), "1");
  EXPECT_EQ((a - a).ToString(), "0");
  EXPECT_EQ((b - a).ToString(), "-1999999999999");
  EXPECT_EQ((-a).ToString(), "-1000000000000");
}

TEST(BigIntTest, CarriesAcrossLimbs) {
  BigInt a(999999999);  // One limb below the base.
  EXPECT_EQ((a + BigInt(1)).ToString(), "1000000000");
  EXPECT_EQ((a * a).ToString(), "999999998000000001");
}

TEST(BigIntTest, MultiplicationLarge) {
  StatusOr<BigInt> a = BigInt::FromString("123456789012345678901234567890");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a * *a).ToString(),
            "15241578753238836750495351562536198787501905199875019052100");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToString(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToString(), "-3");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToString(), "-3");
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).ToString(), "3");
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToString(), "-1");
}

TEST(BigIntTest, DivisionLargeExact) {
  StatusOr<BigInt> n = BigInt::FromString(
      "15241578753238836750495351562536198787501905199875019052100");
  StatusOr<BigInt> d = BigInt::FromString("123456789012345678901234567890");
  ASSERT_TRUE(n.ok() && d.ok());
  EXPECT_EQ((*n / *d).ToString(), "123456789012345678901234567890");
  EXPECT_TRUE((*n % *d).is_zero());
}

TEST(BigIntTest, DivisionWithRemainderReconstructs) {
  StatusOr<BigInt> n = BigInt::FromString("987654321987654321987654321");
  BigInt d(1234567891);
  BigInt q = *n / d;
  BigInt r = *n % d;
  EXPECT_EQ((q * d + r), *n);
  EXPECT_TRUE(r >= BigInt(0));
  EXPECT_TRUE(r < d);
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(2), BigInt(1000000000000LL));
  EXPECT_GE(BigInt(0), BigInt(0));
  EXPECT_LE(BigInt(7), BigInt(7));
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToString(), "0");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToString(), "1");
}

TEST(BigIntTest, PowAndFactorial) {
  EXPECT_EQ(BigInt::Pow(BigInt(2), 0).ToString(), "1");
  EXPECT_EQ(BigInt::Pow(BigInt(2), 64).ToString(), "18446744073709551616");
  EXPECT_EQ(BigInt::Pow(BigInt(10), 30).ToString(),
            "1000000000000000000000000000000");
  EXPECT_EQ(BigInt::Factorial(0).ToString(), "1");
  EXPECT_EQ(BigInt::Factorial(20).ToString(), "2432902008176640000");
  EXPECT_EQ(BigInt::Factorial(30).ToString(),
            "265252859812191058636308480000000");
}

TEST(BigIntTest, FallingFactorial) {
  // 10 * 9 * 8 = 720.
  EXPECT_EQ(BigInt::FallingFactorial(BigInt(10), 3).ToString(), "720");
  EXPECT_EQ(BigInt::FallingFactorial(BigInt(10), 0).ToString(), "1");
  // (3)_5 passes through zero: 3*2*1*0*(-1) = 0.
  EXPECT_TRUE(BigInt::FallingFactorial(BigInt(3), 5).is_zero());
}

TEST(BigIntTest, ToInt64OverflowDetected) {
  StatusOr<BigInt> huge = BigInt::FromString("99999999999999999999");
  ASSERT_TRUE(huge.ok());
  EXPECT_FALSE(huge->ToInt64().ok());
}

TEST(BigIntTest, ToDoubleApproximates) {
  StatusOr<BigInt> big = BigInt::FromString("1000000000000000000000");
  ASSERT_TRUE(big.ok());
  EXPECT_NEAR(big->ToDouble(), 1e21, 1e6);
  EXPECT_DOUBLE_EQ(BigInt(-42).ToDouble(), -42.0);
}

}  // namespace
}  // namespace zeroone
