// Additional theorem-level checks not covered by the per-module tests:
// Proposition 1 (bijective valuations agree), Theorem 2 for non-Boolean
// tuples, implication measures on tuples, and closed-form µ^k identities
// for the paper's instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/conditional.h"
#include "core/measure.h"
#include "core/support.h"
#include "core/support_polynomial.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "gen/scenarios.h"
#include "query/eval.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

// Proposition 1: for any two C-bijective valuations v, w,
// v⁻¹(Q(v(D))) = w⁻¹(Q(w(D))). Construct two explicitly and compare.
class Proposition1 : public ::testing::TestWithParam<int> {};

TEST_P(Proposition1, BijectiveValuationsAgree) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 4}, {"S", 1, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 3;
  db_options.null_probability = 0.45;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 130000;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 1;
  q_options.existential_variables = 1;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 130100;
  Query fo = GenerateRandomFo(q_options, 0.35);

  auto evaluate_via = [&](const Valuation& v) {
    Database complete = v.Apply(db);
    std::map<Value, Value> inverse;
    for (const auto& [null, constant] : v.assignment()) {
      inverse[constant] = null;
    }
    std::vector<Tuple> raw = EvaluateQuery(fo, complete);
    std::vector<Tuple> answers;
    for (const Tuple& t : raw) {
      std::vector<Value> values;
      for (Value value : t) {
        auto it = inverse.find(value);
        values.push_back(it == inverse.end() ? value : it->second);
      }
      answers.push_back(Tuple(std::move(values)));
    }
    std::sort(answers.begin(), answers.end());
    return answers;
  };

  Valuation v;
  Valuation w;
  for (Value null : db.Nulls()) {
    v.Bind(null, Value::FreshConstant());
    w.Bind(null, Value::FreshConstant());
  }
  ASSERT_TRUE(v.IsBijectiveAvoiding(db.Constants()));
  ASSERT_TRUE(w.IsBijectiveAvoiding(db.Constants()));
  EXPECT_EQ(evaluate_via(v), evaluate_via(w))
      << fo.ToString() << "\n" << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition1, ::testing::Range(0, 15));

// Theorem 2 for tuples: m^k with a non-Boolean tuple argument has the same
// limit as µ^k — on the intro example both approach 1 for a naive answer.
TEST(Theorem2Test, TupleVariantTracksMu) {
  IntroExample example = PaperIntroExample();
  Tuple a{Value::Constant("c1"), Value::Null("1")};
  Rational mu_prev(0);
  Rational m_prev(0);
  for (std::size_t k = 4; k <= 12; k += 4) {
    Rational mu = MuK(example.query, example.db, a, k);
    Rational m = MK(example.query, example.db, a, k);
    EXPECT_GT(mu, mu_prev) << k;
    EXPECT_GE(m, m_prev) << k;
    mu_prev = mu;
    m_prev = m;
  }
  EXPECT_GT(mu_prev, Rational(4, 5));
  EXPECT_GT(m_prev, Rational(4, 5));
}

// Implication measure on tuples: Proposition 3 is stated for Boolean
// queries; the tuple form goes through Q(ā).
TEST(ImplicationTest, TupleForm) {
  ConditionalExample example = PaperConditionalExample();
  Query sigma = ConstraintSetQuery(example.constraints);
  // µ(Σ,D) = 0 here (the IND almost surely fails for a random ⊥), so the
  // implication is almost surely true regardless of the tuple.
  EXPECT_EQ(MuLimit(sigma, example.db), 0);
  EXPECT_EQ(ImplicationMuLimit(example.query, sigma, example.db,
                               example.tuple_a),
            1);
  EXPECT_EQ(ImplicationMuLimit(example.query, sigma, example.db,
                               example.tuple_b),
            1);
}

// Closed forms for the intro example, certified by the support polynomials:
// Supp^k((c1,⊥1)) needs v(⊥1) ≠ v(⊥2) and v(⊥3) ≠ c1 → (1−1/k)²;
// Supp^k((c2,⊥2)) needs v(⊥1) ≠ v(⊥2) or v(⊥3) ≠ c2... precisely
// 1 − 1/k (the paper's "strictly more support" tuple).
TEST(ClosedFormTest, IntroExamplePolynomials) {
  IntroExample example = PaperIntroExample();
  Tuple a{Value::Constant("c1"), Value::Null("1")};
  Tuple b{Value::Constant("c2"), Value::Null("2")};
  Polynomial pa =
      ComputeSupportPolynomial(example.query, example.db, a).count;
  Polynomial pb =
      ComputeSupportPolynomial(example.query, example.db, b).count;
  // (k−1)²·k and (k−1)·k² respectively (three nulls in total).
  Polynomial k({Rational(0), Rational(1)});
  Polynomial k_minus_1({Rational(-1), Rational(1)});
  EXPECT_EQ(pa, k_minus_1 * k_minus_1 * k);
  EXPECT_EQ(pb, k_minus_1 * k * k);
  // Divide by k³: µ^k(a) = (1−1/k)² < µ^k(b) = 1−1/k at every k ≥ 2 — the
  // quantitative counterpart of a ◁ b.
  for (std::size_t kk : {2u, 5u, 9u}) {
    BigInt point(static_cast<std::int64_t>(kk));
    EXPECT_LT(pa.Evaluate(point), pb.Evaluate(point)) << kk;
  }
}

// Corollary 2 in action: almost-certainty checks have evaluation data
// complexity — checkable by the fact that the naive check agrees with the
// polynomial-method limit on every instance (covered elsewhere) and never
// touches valuations. Here: a 12-null database on which the exponential
// methods would need 12-null enumeration, while MuLimit answers instantly.
TEST(Corollary2Test, ManyNullsStillCheap) {
  Database db;
  Relation& r = db.AddRelation("R", 2);
  for (int i = 0; i < 12; ++i) {
    r.Insert({Value::Int(i), Value::Null("c2n" + std::to_string(i))});
  }
  Query q = Q("Q(x) := exists y . R(x, y)");
  for (const Tuple& t : NaiveEvaluate(q, db)) {
    EXPECT_EQ(MuLimit(q, db, t), 1);
  }
}

}  // namespace
}  // namespace zeroone
