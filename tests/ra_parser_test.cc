#include "algebra/ra_parser.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/io.h"
#include "query/eval.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

TEST(RaParserTest, BaseRelationAndArity) {
  Database db = Db("R(2) = { (a, b) }");
  StatusOr<RaExprPtr> expr = ParseRaExpr("R", db.schema());
  ASSERT_TRUE(expr.ok()) << expr.status().message();
  EXPECT_EQ((*expr)->arity(), 2u);
  EXPECT_FALSE(ParseRaExpr("Zzz", db.schema()).ok());
}

TEST(RaParserTest, SelectProjectPipeline) {
  Database db = Db("R(2) = { (a, b), (a, a), (c, d) }");
  StatusOr<RaExprPtr> expr =
      ParseRaExpr("project(select(R, 0 = 1), 0)", db.schema());
  ASSERT_TRUE(expr.ok()) << expr.status().message();
  std::vector<Tuple> result = (*expr)->Evaluate(db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], Tuple{Value::Constant("a")});
}

TEST(RaParserTest, ValueConditions) {
  Database db = Db("R(2) = { (a, b), (c, d) }  N(1) = { (7), (8) }");
  StatusOr<RaExprPtr> by_string =
      ParseRaExpr("select(R, 0 = 'a')", db.schema());
  ASSERT_TRUE(by_string.ok()) << by_string.status().message();
  EXPECT_EQ((*by_string)->Evaluate(db).size(), 1u);
  StatusOr<RaExprPtr> by_number =
      ParseRaExpr("select(N, 0 = #7)", db.schema());
  ASSERT_TRUE(by_number.ok()) << by_number.status().message();
  EXPECT_EQ((*by_number)->Evaluate(db).size(), 1u);
  StatusOr<RaExprPtr> negated =
      ParseRaExpr("select(R, 0 != 'a')", db.schema());
  ASSERT_TRUE(negated.ok()) << negated.status().message();
  EXPECT_EQ((*negated)->Evaluate(db).size(), 1u);
}

TEST(RaParserTest, JoinTimesUnionMinus) {
  Database db = Db(
      "E(2) = { (a, b), (b, c) }  F(2) = { (a, b) }");
  StatusOr<RaExprPtr> join =
      ParseRaExpr("project(join(E, E, 1 = 0), 0, 3)", db.schema());
  ASSERT_TRUE(join.ok()) << join.status().message();
  std::vector<Tuple> paths = (*join)->Evaluate(db);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (Tuple{Value::Constant("a"), Value::Constant("c")}));

  StatusOr<RaExprPtr> minus = ParseRaExpr("E minus F", db.schema());
  ASSERT_TRUE(minus.ok());
  EXPECT_EQ((*minus)->Evaluate(db).size(), 1u);
  StatusOr<RaExprPtr> uni = ParseRaExpr("E union F", db.schema());
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ((*uni)->Evaluate(db).size(), 2u);
  StatusOr<RaExprPtr> times = ParseRaExpr("E times F", db.schema());
  ASSERT_TRUE(times.ok());
  EXPECT_EQ((*times)->arity(), 4u);
}

TEST(RaParserTest, ParenthesesAndPrecedence) {
  Database db = Db("A(1) = { (x) }  B(1) = { (y) }  C(1) = { (x), (y) }");
  // minus/union associate left; times binds tighter.
  StatusOr<RaExprPtr> expr = ParseRaExpr("C minus (A union B)", db.schema());
  ASSERT_TRUE(expr.ok()) << expr.status().message();
  EXPECT_TRUE((*expr)->Evaluate(db).empty());
}

TEST(RaParserTest, ErrorCases) {
  Database db = Db("R(2) = { (a, b) }");
  const Schema& schema = db.schema();
  EXPECT_FALSE(ParseRaExpr("", schema).ok());
  EXPECT_FALSE(ParseRaExpr("select(R)", schema).ok());      // No condition.
  EXPECT_FALSE(ParseRaExpr("select(R, 5 = 0)", schema).ok());  // Range.
  EXPECT_FALSE(ParseRaExpr("project(R, 9)", schema).ok());  // Range.
  EXPECT_FALSE(ParseRaExpr("R union S3", schema).ok());     // Unknown rel.
  EXPECT_FALSE(ParseRaExpr("R R", schema).ok());            // Trailing.
  EXPECT_FALSE(ParseRaExpr("join(R, R, 0 = 9)", schema).ok());
}

TEST(RaParserTest, ParsedPlanMatchesCompiledQuery) {
  // End-to-end: parse, evaluate directly, and evaluate the FO compilation;
  // they agree (on an incomplete database, both are naive).
  Database db = Db("R1(2) = { (c1, _1), (c2, _2) }  R2(2) = { (c1, _2) }");
  StatusOr<RaExprPtr> plan = ParseRaExpr("R1 minus R2", db.schema());
  ASSERT_TRUE(plan.ok());
  std::vector<Tuple> direct = (*plan)->Evaluate(db);
  std::vector<Tuple> compiled = EvaluateQuery((*plan)->ToQuery(), db);
  std::sort(compiled.begin(), compiled.end());
  EXPECT_EQ(direct, compiled);
}

}  // namespace
}  // namespace zeroone
