// Chaos tests: retrying clients against injected faults, crash-consistent
// snapshots, and bind retry. The in-process pieces of the robustness story
// (docs/robustness.md) — the real SIGKILL harness is
// scripts/chaos_serving.sh.
//
// Fault-dependent tests are gated on ZEROONE_FAULT_ENABLED; the crash-
// semantics and retry-policy tests run in every configuration.

#include <gtest/gtest.h>

#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/snapshot.h"

namespace zeroone {
namespace svc {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::Global().Clear(); }
  void TearDown() override { fault::Registry::Global().Clear(); }

  // A per-test temp snapshot directory.
  std::string MakeSnapshotDir() {
    char templ[] = "/tmp/zo1chaos_XXXXXX";
    char* dir = ::mkdtemp(templ);
    EXPECT_NE(dir, nullptr);
    dirs_.push_back(dir);
    return dir;
  }

  void RemoveDirs() {
    for (const std::string& dir : dirs_) {
      DIR* d = ::opendir(dir.c_str());
      if (d != nullptr) {
        while (dirent* entry = ::readdir(d)) {
          std::string name = entry->d_name;
          if (name != "." && name != "..") {
            ::unlink((dir + "/" + name).c_str());
          }
        }
        ::closedir(d);
      }
      ::rmdir(dir.c_str());
    }
    dirs_.clear();
  }

  ~ChaosTest() override { RemoveDirs(); }

  std::vector<std::string> dirs_;
};

Request MakeRequest(const std::string& command, const std::string& args,
                    const std::string& session) {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

TEST_F(ChaosTest, TransientStatusClassification) {
  EXPECT_TRUE(IsTransientWireStatus(WireStatus::kOverloaded));
  EXPECT_TRUE(IsTransientWireStatus(WireStatus::kUnavailable));
  EXPECT_TRUE(IsTransientWireStatus(WireStatus::kShuttingDown));
  // An answered request must never be blindly re-sent: OK/ERR were applied
  // or definitively rejected, DEADLINE_EXCEEDED may have side effects.
  EXPECT_FALSE(IsTransientWireStatus(WireStatus::kOk));
  EXPECT_FALSE(IsTransientWireStatus(WireStatus::kErr));
  EXPECT_FALSE(IsTransientWireStatus(WireStatus::kBadRequest));
  EXPECT_FALSE(IsTransientWireStatus(WireStatus::kDeadlineExceeded));
}

TEST_F(ChaosTest, RetryBackoffIsDeterministicPerSeed) {
  // Two clients with the same policy must sleep identically; a different
  // seed must diverge. Exercised indirectly: give an unroutable port so
  // every attempt fails, and compare total backoff.
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 4;
  policy.seed = 99;
  auto run = [&](std::uint64_t seed) {
    RetryPolicy p = policy;
    p.seed = seed;
    RetryingClient client("127.0.0.1", 1, p);  // Port 1: connection refused.
    (void)client.CallWithRetry(MakeRequest("ping", "", "default"));
    return client.stats().backoff_ms;
  };
  EXPECT_EQ(run(7), run(7));
  // gave_up is recorded; the sleep totals themselves may be perturbed by
  // scheduling, but the *chosen* backoff is deterministic, so equal seeds
  // agree exactly (sleep_for only rounds up inside the recorded value).
}

TEST_F(ChaosTest, RetriesExhaustedReportsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 1;
  RetryingClient client("127.0.0.1", 1, policy);
  StatusOr<Response> response =
      client.CallWithRetry(MakeRequest("ping", "", "default"));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(client.stats().gave_up, 1u);
  EXPECT_EQ(client.stats().attempts, 2u);
}

// Simulated crash under the pre-WAL durability contract (wal=false): a
// Dispatcher with a snapshot dir executes mutations and explicit saves,
// then is dropped on the floor (no drain, no SaveAll) — exactly what
// SIGKILL leaves behind. A new Dispatcher over the same dir must see every
// saved mutation and nothing after the last save.
TEST_F(ChaosTest, CrashKeepsSavedMutationsDropsUnsaved) {
  const std::string dir = MakeSnapshotDir();
  {
    Dispatcher dispatcher(
        Dispatcher::Options{1 << 20, dir, /*wal=*/false});
    Response r1 = dispatcher.Execute(
        MakeRequest("db", "M(1) = { (acked1) }", "s"));
    ASSERT_EQ(r1.status, WireStatus::kOk) << r1.payload;
    Response saved = dispatcher.Execute(MakeRequest("save", "", "s"));
    ASSERT_EQ(saved.status, WireStatus::kOk) << saved.payload;
    Response r2 = dispatcher.Execute(
        MakeRequest("db", "M(1) = { (unsaved) }", "s"));
    ASSERT_EQ(r2.status, WireStatus::kOk) << r2.payload;
    // Crash: dispatcher destroyed with no further save.
  }
  Dispatcher restarted(Dispatcher::Options{1 << 20, dir, /*wal=*/false});
  Dispatcher::RecoveryReport report = restarted.LoadSnapshots();
  EXPECT_EQ(report.snapshots.loaded, 1u);
  EXPECT_EQ(report.snapshots.quarantined, 0u);
  Response shown = restarted.Execute(MakeRequest("show", "", "s"));
  ASSERT_EQ(shown.status, WireStatus::kOk);
  EXPECT_NE(shown.payload.find("(acked1)"), std::string::npos);
  EXPECT_EQ(shown.payload.find("(unsaved)"), std::string::npos)
      << "without a WAL, a mutation after the last save dies with the crash";
}

// The WAL retires `save` from the durability contract: the same crash with
// write-ahead logging on (the default) keeps the unsaved-but-acked
// mutation, recovered as snapshot + log tail.
TEST_F(ChaosTest, CrashWithWalKeepsEveryAckedMutation) {
  const std::string dir = MakeSnapshotDir();
  {
    Dispatcher dispatcher(Dispatcher::Options{1 << 20, dir});
    Response r1 = dispatcher.Execute(
        MakeRequest("db", "M(1) = { (acked1) }", "s"));
    ASSERT_EQ(r1.status, WireStatus::kOk) << r1.payload;
    Response saved = dispatcher.Execute(MakeRequest("save", "", "s"));
    ASSERT_EQ(saved.status, WireStatus::kOk) << saved.payload;
    Response r2 = dispatcher.Execute(
        MakeRequest("db", "M(1) = { (acked2_never_saved) }", "s"));
    ASSERT_EQ(r2.status, WireStatus::kOk) << r2.payload;
    // Crash: no drain, no further save.
  }
  Dispatcher restarted(Dispatcher::Options{1 << 20, dir});
  Dispatcher::RecoveryReport report = restarted.LoadSnapshots();
  EXPECT_EQ(report.snapshots.loaded, 1u);
  EXPECT_EQ(report.wal_records_applied, 1u) << "the post-save record";
  EXPECT_EQ(report.wal_records_skipped, 1u)
      << "the pre-save record is covered by the snapshot";
  Response shown = restarted.Execute(MakeRequest("show", "", "s"));
  ASSERT_EQ(shown.status, WireStatus::kOk);
  EXPECT_NE(shown.payload.find("(acked1)"), std::string::npos);
  EXPECT_NE(shown.payload.find("(acked2_never_saved)"), std::string::npos)
      << "an acked mutation must survive a crash even without a save";
}

TEST_F(ChaosTest, SaveWithoutSnapshotDirIsAnError) {
  Dispatcher dispatcher(Dispatcher::Options{1 << 20, ""});
  Response response = dispatcher.Execute(MakeRequest("save", "", "s"));
  EXPECT_EQ(response.status, WireStatus::kErr);
}

TEST_F(ChaosTest, BindRetryWaitsForPortToFree) {
  // Occupy an ephemeral port, then free it shortly after the server starts
  // binding. With a retry window the server must come up on that port.
  int blocker = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(blocker, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(blocker, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(blocker, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(blocker, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int port = ntohs(addr.sin_port);

  std::thread releaser([blocker] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ::close(blocker);
  });
  ServerOptions options;
  options.port = port;
  options.bind_retry_ms = 5000;
  Server server(options);
  Status started = server.Start();
  releaser.join();
  EXPECT_TRUE(started.ok()) << started.message();
  EXPECT_EQ(server.port(), port);
  server.Shutdown();
}

TEST_F(ChaosTest, BindFailsImmediatelyWithZeroRetryWindow) {
  int blocker = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(blocker, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(blocker, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(blocker, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(blocker, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  ServerOptions options;
  options.port = ntohs(addr.sin_port);
  options.bind_retry_ms = 0;
  Server server(options);
  EXPECT_FALSE(server.Start().ok());
  ::close(blocker);
}

#if ZEROONE_FAULT_ENABLED

TEST_F(ChaosTest, UnavailableMutationIsRetriedToSuccess) {
  ServerOptions options;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  // The first session mutation fails server-side with UNAVAILABLE (nothing
  // applied); the retry must succeed transparently.
  ASSERT_TRUE(fault::Registry::Global()
                  .Configure("svc.session.mutate.fail=#1")
                  .ok());
  RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  RetryingClient client("127.0.0.1", server.port(), policy);
  StatusOr<Response> response = client.CallWithRetry(
      MakeRequest("db", "M(1) = { (a) }", "u"));
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, WireStatus::kOk) << response->payload;
  EXPECT_GE(client.stats().transient_responses, 1u);
  EXPECT_GE(client.stats().retries, 1u);
  fault::Registry::Global().Clear();
  server.Shutdown();
}

TEST_F(ChaosTest, ClientSideFaultsAreRetriedToSuccess) {
  ServerOptions options;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  // Every 3rd client send "fails" (connection dropped client-side); all
  // calls must still eventually succeed via reconnect + retry.
  ASSERT_TRUE(fault::Registry::Global()
                  .Configure("seed=5,svc.client.send.fail=%3")
                  .ok());
  RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  policy.max_attempts = 10;
  RetryingClient client("127.0.0.1", server.port(), policy);
  for (int i = 0; i < 20; ++i) {
    StatusOr<Response> response =
        client.CallWithRetry(MakeRequest("ping", "", "c"));
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response->status, WireStatus::kOk);
  }
  EXPECT_GE(client.stats().transport_errors, 1u);
  EXPECT_GE(client.stats().reconnects, 2u);
  EXPECT_EQ(client.stats().gave_up, 0u);
  fault::Registry::Global().Clear();
  server.Shutdown();
}

// The full in-process chaos loop: concurrent retrying clients mutate and
// save under a mixed server/client fault plan; every acknowledged tuple
// must be visible after a restart from the snapshot directory. This is the
// deterministic-core version of scripts/chaos_serving.sh.
TEST_F(ChaosTest, AckedMutationsSurviveFaultyRunAndRestart) {
  const std::string dir = MakeSnapshotDir();
  constexpr int kClients = 4;
  constexpr int kMutations = 8;
  std::vector<std::set<std::string>> acked(kClients);
  {
    ServerOptions options;
    options.snapshot_dir = dir;
    options.threads = 4;
    Server server(options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(fault::Registry::Global()
                    .Configure("seed=42,svc.send.partial=0.05,"
                               "svc.session.mutate.fail=0.05,"
                               "svc.cache.insert.drop=0.2,"
                               "svc.client.send.fail=0.05")
                    .ok());
    std::vector<std::thread> workers;
    for (int w = 0; w < kClients; ++w) {
      workers.emplace_back([&, w] {
        RetryPolicy policy;
        policy.max_attempts = 30;
        policy.initial_backoff_ms = 1;
        policy.max_backoff_ms = 20;
        policy.seed = 100 + static_cast<std::uint64_t>(w);
        RetryingClient client("127.0.0.1", server.port(), policy);
        const std::string session = "chaos" + std::to_string(w);
        for (int i = 0; i < kMutations; ++i) {
          const std::string token =
              "m" + std::to_string(w) + "_" + std::to_string(i);
          bool done = false;
          for (int round = 0; round < 64 && !done; ++round) {
            StatusOr<Response> inserted = client.CallWithRetry(MakeRequest(
                "db", "M(1) = { (" + token + ") }", session));
            if (!inserted.ok() || inserted->status != WireStatus::kOk) {
              continue;
            }
            const std::uint64_t reconnects = client.stats().reconnects;
            StatusOr<Response> saved =
                client.CallWithRetry(MakeRequest("save", "", session));
            if (!saved.ok() || saved->status != WireStatus::kOk) continue;
            if (client.stats().reconnects != reconnects) continue;
            done = true;
          }
          ASSERT_TRUE(done) << "mutation " << token
                            << " never converged under fault plan";
          acked[w].insert(token);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    fault::Registry::Global().Clear();
    server.Shutdown();
  }

  // Restart from the snapshot directory; every acknowledged tuple must be
  // there. (Graceful drain also saved, which can only add tuples beyond
  // the acked set — acked ⊆ visible is the invariant under test.)
  ServerOptions options;
  options.snapshot_dir = dir;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Server::Stats stats = server.stats();
  EXPECT_EQ(stats.snapshots_loaded, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.snapshots_quarantined, 0u);
  RetryingClient client("127.0.0.1", server.port());
  for (int w = 0; w < kClients; ++w) {
    StatusOr<Response> shown = client.CallWithRetry(
        MakeRequest("show", "", "chaos" + std::to_string(w)));
    ASSERT_TRUE(shown.ok());
    ASSERT_EQ(shown->status, WireStatus::kOk);
    for (const std::string& token : acked[w]) {
      EXPECT_NE(shown->payload.find("(" + token + ")"), std::string::npos)
          << "acknowledged tuple " << token << " lost across restart";
    }
  }
  server.Shutdown();
}

TEST_F(ChaosTest, ChaosRunIsDeterministicForFixedSeed) {
  // The same fault plan over the same single-threaded request sequence
  // must fire identically: compare the per-site fired counts of two runs.
  auto run = [&] {
    fault::Registry::Global().Clear();
    ServerOptions options;
    Server server(options);
    EXPECT_TRUE(server.Start().ok());
    EXPECT_TRUE(fault::Registry::Global()
                    .Configure("seed=7,svc.session.mutate.fail=0.3")
                    .ok());
    RetryPolicy policy;
    policy.max_attempts = 50;
    policy.initial_backoff_ms = 1;
    RetryingClient client("127.0.0.1", server.port(), policy);
    for (int i = 0; i < 20; ++i) {
      StatusOr<Response> r = client.CallWithRetry(MakeRequest(
          "db", "M(1) = { (t" + std::to_string(i) + ") }", "det"));
      EXPECT_TRUE(r.ok() && r->status == WireStatus::kOk);
    }
    std::uint64_t fired =
        fault::Registry::Global().Stats("svc.session.mutate.fail").fired;
    fault::Registry::Global().Clear();
    server.Shutdown();
    return fired;
  };
  std::uint64_t first = run();
  std::uint64_t second = run();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, second);
}

#endif  // ZEROONE_FAULT_ENABLED

}  // namespace
}  // namespace svc
}  // namespace zeroone
