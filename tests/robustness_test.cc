// Robustness and hardening tests: concurrency of the intern tables, parser
// behavior on garbage input, arithmetic reconstruction properties, and
// mixed-constraint conditional measures.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/bigint.h"
#include "constraints/fd.h"
#include "constraints/ind.h"
#include "core/comparison.h"
#include "core/conditional.h"
#include "core/ucq_compare.h"
#include "data/io.h"
#include "data/value.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/eval.h"
#include "query/parser.h"

namespace zeroone {
namespace {

TEST(InternerTest, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 8;
  constexpr int kValuesPerThread = 200;
  std::vector<std::thread> threads;
  std::vector<std::vector<Value>> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      for (int i = 0; i < kValuesPerThread; ++i) {
        // All threads intern the same names; ids must agree.
        results[t].push_back(
            Value::Constant("shared" + std::to_string(i)));
        results[t].push_back(Value::Null("sharednull" + std::to_string(i)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]) << "thread " << t;
  }
  // Names resolve correctly after the storm.
  EXPECT_EQ(Value::Constant("shared0").name(), "shared0");
}

TEST(ParserRobustnessTest, GarbageNeverCrashes) {
  std::mt19937_64 rng(424242);
  const std::string alphabet =
      "RSxyz(),.&|!=:-<>' 0123456789_existforalltrue";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<std::size_t> length(0, 60);
  for (int i = 0; i < 500; ++i) {
    std::string text;
    std::size_t n = length(rng);
    for (std::size_t j = 0; j < n; ++j) text.push_back(alphabet[pick(rng)]);
    // Must return (ok or error), never crash or hang.
    StatusOr<Query> q = ParseQuery(text);
    StatusOr<Database> db = ParseDatabase(text);
    StatusOr<Tuple> tuple = ParseTuple(text);
    (void)q;
    (void)db;
    (void)tuple;
  }
  SUCCEED();
}

TEST(BigIntPropertyTest, DivModReconstruction) {
  std::mt19937_64 rng(777);
  std::uniform_int_distribution<std::int64_t> magnitude(
      -1000000000000LL, 1000000000000LL);
  std::uniform_int_distribution<std::int64_t> divisor(1, 99999);
  for (int i = 0; i < 300; ++i) {
    std::int64_t a = magnitude(rng);
    std::int64_t b = divisor(rng) * (i % 2 == 0 ? 1 : -1);
    BigInt big_a(a);
    BigInt big_b(b);
    BigInt q = big_a / big_b;
    BigInt r = big_a % big_b;
    // Truncated division invariants, matching int64 semantics.
    EXPECT_EQ(q * big_b + r, big_a) << a << " / " << b;
    EXPECT_EQ(*q.ToInt64(), a / b) << a << " / " << b;
    EXPECT_EQ(*r.ToInt64(), a % b) << a << " % " << b;
  }
}

TEST(EvalTest, QuantifierAlternation) {
  StatusOr<Database> db = ParseDatabase("E(2) = { (a, b), (b, a), (c, a) }");
  ASSERT_TRUE(db.ok());
  // ∀x∃y E(x,y): every node has an out-edge — true here.
  StatusOr<Query> all_out =
      ParseQuery(":= forall x . exists y . E(x, y)");
  ASSERT_TRUE(all_out.ok());
  EXPECT_TRUE(EvaluateMembership(*all_out, *db, Tuple{}));
  // ∃y∀x E(x,y): a universal sink — false (nothing points at b from c).
  StatusOr<Query> sink = ParseQuery(":= exists y . forall x . E(x, y)");
  ASSERT_TRUE(sink.ok());
  EXPECT_FALSE(EvaluateMembership(*sink, *db, Tuple{}));
  // Add edges to a: a becomes a sink only if a→a too.
  Database with_loop = *db;
  with_loop.mutable_relation("E").Insert(
      {Value::Constant("a"), Value::Constant("a")});
  EXPECT_TRUE(EvaluateMembership(*sink, with_loop, Tuple{}));
}

TEST(ConditionalTest, MixedFdAndIndConstraints) {
  // Σ mixes an FD with an IND: the conditional measure still exists and is
  // exact. R(0→1) plus R[0] ⊆ U[0]; D forces ⊥ to 1..3 via the IND while
  // the FD pins the second column.
  StatusOr<Database> db = ParseDatabase(
      "R(2) = { (_mx1, 5), (2, _mx2) }  U(1) = { (1), (2), (3) }");
  ASSERT_TRUE(db.ok());
  ConstraintSet sigma = {
      std::make_shared<FunctionalDependency>(
          "R", 2, std::vector<std::size_t>{0}, 1),
      std::make_shared<InclusionDependency>(
          "R", 2, std::vector<std::size_t>{0}, "U", 1,
          std::vector<std::size_t>{0})};
  StatusOr<Query> q = ParseQuery(":= exists x . R(x, 5)");
  ASSERT_TRUE(q.ok());
  ConditionalMeasure measure = ComputeConditionalMu(*q, sigma, *db, Tuple{});
  EXPECT_TRUE(measure.sigma_satisfiable);
  // Q holds whenever Σ does: the tuple (⊥1, 5) always supplies x with
  // second column 5 (Σ only constrains which x).
  EXPECT_EQ(measure.value, Rational(1));
  // A query pinning both columns: µ(R(2,5) | Σ). Σ-valuations: v(⊥1) ∈
  // {1,2,3}; when v(⊥1) = 2 the FD forces v(⊥2) = 5, otherwise ⊥2 is free —
  // so |Supp^k(Σ)| = 2k + 1. R(2,5) holds iff v(⊥1) = 2 (1 valuation) or
  // v(⊥2) = 5 with v(⊥1) ∈ {1,3} (2 valuations): a constant numerator 3,
  // hence the limit is 0 — an example where Q is conditionally possible yet
  // almost certainly false, with the polynomials certifying why.
  StatusOr<Query> pinned = ParseQuery(":= R(2, 5)");
  ASSERT_TRUE(pinned.ok());
  ConditionalMeasure exact = ComputeConditionalMu(*pinned, sigma, *db, Tuple{});
  EXPECT_EQ(exact.numerator, Polynomial::Constant(Rational(3)));
  EXPECT_EQ(exact.denominator,
            (Polynomial{{Rational(1), Rational(2)}}));  // 2k + 1.
  EXPECT_EQ(exact.value, Rational(0));
}

// Arity-2 agreement sweep for the Theorem 8 algorithm (the earlier sweeps
// use arity 1; repeated variables and wider tuples exercise different
// unification paths).
class UcqSepArity2 : public ::testing::TestWithParam<int> {};

TEST_P(UcqSepArity2, MatchesGenericSeparates) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 3}, {"S", 2, 3}};
  db_options.constant_pool = 2;
  db_options.null_pool = 2;
  db_options.null_probability = 0.45;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 120000;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 2}};
  q_options.free_variables = 2;
  q_options.existential_variables = 1;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 120100;
  Query ucq = GenerateRandomUcq(q_options);

  std::vector<Value> adom = db.ActiveDomain();
  // A few structured candidate pairs, including repeated components.
  std::vector<Tuple> candidates;
  for (std::size_t i = 0; i + 1 < adom.size() && candidates.size() < 4; ++i) {
    candidates.push_back(Tuple{adom[i], adom[i + 1]});
    candidates.push_back(Tuple{adom[i], adom[i]});
  }
  for (const Tuple& a : candidates) {
    for (const Tuple& b : candidates) {
      StatusOr<bool> fast = UcqSeparates(ucq, db, a, b);
      ASSERT_TRUE(fast.ok());
      EXPECT_EQ(*fast, Separates(ucq, db, a, b))
          << "Sep(" << a.ToString() << ", " << b.ToString() << ") for "
          << ucq.ToString() << "\n"
          << db.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UcqSepArity2, ::testing::Range(0, 15));

}  // namespace
}  // namespace zeroone
