// Tests for zeroone::fault — spec parsing, schedule semantics, determinism,
// and counters. Registry-API tests run in every build configuration; tests
// of the ZO_FAULT_POINT macro itself are gated on ZEROONE_FAULT_ENABLED
// because the OFF configuration compiles the macro away.

#include "fault/fault.h"

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace zeroone {
namespace fault {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { Registry::Global().Clear(); }
};

TEST_F(FaultTest, EmptySpecClearsPlan) {
  ASSERT_TRUE(Registry::Global().Configure("seed=1,a.b=0.5").ok());
  EXPECT_NE(Registry::Global().PlanString(), "");
  ASSERT_TRUE(Registry::Global().Configure("").ok());
  EXPECT_EQ(Registry::Global().PlanString(), "");
}

TEST_F(FaultTest, ParseErrors) {
  const char* bad_specs[] = {
      "nosuchsyntax",         // No '='.
      "a.b=",                 // Empty schedule.
      "a.b=1.5",              // Probability out of range.
      "a.b=-0.1",             // Negative.
      "a.b=0.5.5",            // Two dots.
      "a.b=#",                // '#' without a count.
      "a.b=#abc",             // Non-numeric count.
      "a.b=%0",               // Every-0th is meaningless.
      "seed=",                // Empty seed.
      "seed=abc",             // Non-numeric seed.
      "a b=0.5",              // Space in site name.
      "=0.5",                 // Empty site name.
  };
  for (const char* spec : bad_specs) {
    EXPECT_FALSE(Registry::Global().Configure(spec).ok())
        << "spec should be rejected: " << spec;
  }
}

TEST_F(FaultTest, ParseErrorLeavesPreviousPlan) {
  ASSERT_TRUE(Registry::Global().Configure("seed=3,x.y=#2").ok());
  std::string before = Registry::Global().PlanString();
  EXPECT_FALSE(Registry::Global().Configure("broken").ok());
  EXPECT_EQ(Registry::Global().PlanString(), before);
}

TEST_F(FaultTest, NthSchedule) {
  ASSERT_TRUE(Registry::Global().Configure("t.nth=#3").ok());
  Site& site = Registry::Global().GetSite("t.nth");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(site.Evaluate());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(Registry::Global().Stats("t.nth").hits, 6u);
  EXPECT_EQ(Registry::Global().Stats("t.nth").fired, 1u);
}

TEST_F(FaultTest, EverySchedule) {
  ASSERT_TRUE(Registry::Global().Configure("t.every=%2").ok());
  Site& site = Registry::Global().GetSite("t.every");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(site.Evaluate());
  EXPECT_EQ(fired,
            (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FaultTest, ProbabilityZeroNeverFires) {
  ASSERT_TRUE(Registry::Global().Configure("t.p0=0.0").ok());
  Site& site = Registry::Global().GetSite("t.p0");
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(site.Evaluate());
}

TEST_F(FaultTest, ProbabilityOneAlwaysFires) {
  ASSERT_TRUE(Registry::Global().Configure("t.p1=1.0").ok());
  Site& site = Registry::Global().GetSite("t.p1");
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(site.Evaluate());
}

TEST_F(FaultTest, ProbabilityRoughlyCalibrated) {
  ASSERT_TRUE(Registry::Global().Configure("seed=11,t.cal=0.25").ok());
  Site& site = Registry::Global().GetSite("t.cal");
  int fired = 0;
  for (int i = 0; i < 10000; ++i) fired += site.Evaluate() ? 1 : 0;
  // 4σ ≈ 173 around the mean of 2500.
  EXPECT_GT(fired, 2300);
  EXPECT_LT(fired, 2700);
}

TEST_F(FaultTest, SameSeedSamePattern) {
  auto run = [](const std::string& spec) {
    EXPECT_TRUE(Registry::Global().Configure(spec).ok());
    Site& site = Registry::Global().GetSite("t.det");
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(site.Evaluate());
    return fired;
  };
  std::vector<bool> first = run("seed=42,t.det=0.1");
  std::vector<bool> second = run("seed=42,t.det=0.1");
  EXPECT_EQ(first, second);  // Configure resets counters: identical runs.
  std::vector<bool> other_seed = run("seed=43,t.det=0.1");
  EXPECT_NE(first, other_seed);  // Different seed, different pattern.
}

TEST_F(FaultTest, DistinctSitesFireIndependently) {
  ASSERT_TRUE(Registry::Global().Configure("seed=7,t.a=0.5,t.b=0.5").ok());
  Site& a = Registry::Global().GetSite("t.a");
  Site& b = Registry::Global().GetSite("t.b");
  std::vector<bool> fa, fb;
  for (int i = 0; i < 64; ++i) {
    fa.push_back(a.Evaluate());
    fb.push_back(b.Evaluate());
  }
  EXPECT_NE(fa, fb);  // The site name participates in the hash.
}

TEST_F(FaultTest, UnarmedSiteNeverFiresAndCountsNoHits) {
  Registry::Global().Clear();
  Site& site = Registry::Global().GetSite("t.unarmed");
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(site.Evaluate());
  // Unarmed Evaluate is the hot path: it must not even count hits.
  EXPECT_EQ(Registry::Global().Stats("t.unarmed").fired, 0u);
}

TEST_F(FaultTest, ReconfigureResetsCounters) {
  ASSERT_TRUE(Registry::Global().Configure("t.reset=#1").ok());
  Site& site = Registry::Global().GetSite("t.reset");
  EXPECT_TRUE(site.Evaluate());
  ASSERT_TRUE(Registry::Global().Configure("t.reset=#1").ok());
  EXPECT_TRUE(site.Evaluate());  // Counter restarted: #1 fires again.
}

TEST_F(FaultTest, PlanStringRoundTrips) {
  ASSERT_TRUE(
      Registry::Global().Configure("seed=5,a.b=0.25,c.d=#3,e.f=%4").ok());
  std::string plan = Registry::Global().PlanString();
  EXPECT_NE(plan.find("seed=5"), std::string::npos);
  EXPECT_NE(plan.find("a.b="), std::string::npos);
  EXPECT_NE(plan.find("c.d=#3"), std::string::npos);
  EXPECT_NE(plan.find("e.f=%4"), std::string::npos);
  // Reinstalling the canonical form is accepted and equivalent.
  ASSERT_TRUE(Registry::Global().Configure(plan).ok());
  EXPECT_EQ(Registry::Global().PlanString(), plan);
}

TEST_F(FaultTest, ConfigureFromEnv) {
  ASSERT_EQ(setenv("ZEROONE_FAULTS", "t.env=#1", 1), 0);
  EXPECT_TRUE(Registry::Global().ConfigureFromEnv().ok());
  EXPECT_TRUE(Registry::Global().GetSite("t.env").Evaluate());
  ASSERT_EQ(unsetenv("ZEROONE_FAULTS"), 0);
  // Unset variable: no-op success, previous plan kept.
  EXPECT_TRUE(Registry::Global().ConfigureFromEnv().ok());
}

TEST_F(FaultTest, AllStatsListsConfiguredAndHitSites) {
  ASSERT_TRUE(Registry::Global().Configure("t.listed=%2").ok());
  Registry::Global().GetSite("t.listed").Evaluate();
  Registry::Global().GetSite("t.only_hit").Evaluate();
  auto stats = Registry::Global().AllStats();
  EXPECT_EQ(stats.count("t.listed"), 1u);
  EXPECT_EQ(stats.count("t.only_hit"), 1u);
  EXPECT_EQ(stats["t.listed"].hits, 1u);
}

#if ZEROONE_FAULT_ENABLED

TEST_F(FaultTest, MacroEvaluatesSite) {
  ASSERT_TRUE(Registry::Global().Configure("t.macro=#2").ok());
  EXPECT_FALSE(ZO_FAULT_POINT("t.macro"));
  EXPECT_TRUE(ZO_FAULT_POINT("t.macro"));
  EXPECT_FALSE(ZO_FAULT_POINT("t.macro"));
  EXPECT_EQ(Registry::Global().Stats("t.macro").fired, 1u);
}

TEST_F(FaultTest, MacroUnarmedIsFalse) {
  Registry::Global().Clear();
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(ZO_FAULT_POINT("t.macro.unarmed"));
  }
}

#endif  // ZEROONE_FAULT_ENABLED

}  // namespace
}  // namespace fault
}  // namespace zeroone
