#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace zeroone {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(status.message().empty());
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status status = Status::Error("something broke");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "something broke");
}

TEST(StatusOrTest, ValuePath) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, ErrorPath) {
  StatusOr<int> result = Status::Error("no value");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "no value");
}

TEST(StatusOrTest, MoveOnlyValueSupport) {
  StatusOr<std::vector<std::string>> result =
      std::vector<std::string>{"a", "b"};
  ASSERT_TRUE(result.ok());
  std::vector<std::string> extracted = std::move(result).value();
  EXPECT_EQ(extracted.size(), 2u);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

}  // namespace
}  // namespace zeroone
