#include "common/status.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/parse.h"

namespace zeroone {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(status.message().empty());
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status status = Status::Error("something broke");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "something broke");
}

TEST(StatusOrTest, ValuePath) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, ErrorPath) {
  StatusOr<int> result = Status::Error("no value");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "no value");
}

TEST(StatusOrTest, MoveOnlyValueSupport) {
  StatusOr<std::vector<std::string>> result =
      std::vector<std::string>{"a", "b"};
  ASSERT_TRUE(result.ok());
  std::vector<std::string> extracted = std::move(result).value();
  EXPECT_EQ(extracted.size(), 2u);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("arity ", 3, " vs ", 4u), "arity 3 vs 4");
  EXPECT_EQ(StrCat("x"), "x");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat('a', std::string("bc"), 1.5), "abc1.5");
}

TEST(StatusTest, VariadicErrorFormatsLikeStrCat) {
  Status status = Status::Error("expected ", 2, " columns, got ", 5);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "expected 2 columns, got 5");
}

namespace macro_helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::Error("negative: ", x);
  return Status::Ok();
}

StatusOr<int> DoubleIfPositive(int x) {
  if (x <= 0) return Status::Error("not positive: ", x);
  return 2 * x;
}

Status CheckBoth(int a, int b) {
  ZO_RETURN_IF_ERROR(FailIfNegative(a));
  ZO_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::Ok();
}

// ZO_RETURN_IF_ERROR on a StatusOr expression, from a function whose own
// return type is a differently parameterized StatusOr.
StatusOr<std::string> DescribeDouble(int x) {
  ZO_RETURN_IF_ERROR(DoubleIfPositive(x));
  return StrCat("doubles to ", 2 * x);
}

StatusOr<int> SumOfDoubles(int a, int b) {
  ZO_ASSIGN_OR_RETURN(int da, DoubleIfPositive(a));
  ZO_ASSIGN_OR_RETURN(int db, DoubleIfPositive(b));
  return da + db;
}

}  // namespace macro_helpers

TEST(StatusMacroTest, ReturnIfErrorPassesThroughOk) {
  EXPECT_TRUE(macro_helpers::CheckBoth(1, 2).ok());
}

TEST(StatusMacroTest, ReturnIfErrorReturnsFirstFailure) {
  Status status = macro_helpers::CheckBoth(-3, -4);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "negative: -3");
}

TEST(StatusMacroTest, ReturnIfErrorAdaptsStatusOr) {
  StatusOr<std::string> ok = macro_helpers::DescribeDouble(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "doubles to 8");
  StatusOr<std::string> error = macro_helpers::DescribeDouble(-1);
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().message(), "not positive: -1");
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsValues) {
  StatusOr<int> ok = macro_helpers::SumOfDoubles(2, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 10);
  StatusOr<int> error = macro_helpers::SumOfDoubles(2, 0);
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().message(), "not positive: 0");
}

// ---------------------------------------------------------------------------
// common/parse — the shared unsigned-integer parser behind every wire and
// log field (versions, cursors, sizes).

TEST(ParseUint64Test, ParsesTheFullRange) {
  struct Case {
    const char* text;
    std::uint64_t value;
  };
  const Case cases[] = {
      {"0", 0},
      {"7", 7},
      {"007", 7},  // Leading zeros are digits, not an error.
      {"4294967296", 4294967296ull},
      {"18446744073709551615", 18446744073709551615ull},  // UINT64_MAX.
  };
  for (const Case& test_case : cases) {
    SCOPED_TRACE(test_case.text);
    StatusOr<std::uint64_t> parsed = ParseUint64(test_case.text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    EXPECT_EQ(*parsed, test_case.value);
  }
}

TEST(ParseUint64Test, RejectsNonDigitsAndEmpty) {
  const char* bad[] = {"", "-1", "+1", " 1", "1 ", "1.5", "one",
                       "0x10", "12a", "18446744073709551615 "};
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_FALSE(ParseUint64(text).ok());
  }
}

TEST(ParseUint64Test, OverflowIsAnErrorNotAWrap) {
  // The review scenario: a 20-digit value used to wrap silently and come
  // back as a small — valid-looking — version or size.
  const char* overflowing[] = {
      "18446744073709551616",   // UINT64_MAX + 1.
      "99999999999999999999",   // Twenty nines.
      "184467440737095516150",  // UINT64_MAX * 10.
      "340282366920938463463374607431768211456",  // 2^128.
  };
  for (const char* text : overflowing) {
    SCOPED_TRACE(text);
    StatusOr<std::uint64_t> parsed = ParseUint64(text);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("overflows"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// common/crc32 — the checksum guarding snapshot bodies and WAL records.

TEST(Crc32Test, KnownAnswerVectors) {
  // IEEE 802.3 (polynomial 0xEDB88320) reference values; "123456789" is
  // the classic CRC-32 check value.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view("\x00\x00\x00\x00", 4)), 0x2144DF1Cu);
}

TEST(Crc32Test, ChunkedChecksumsChain) {
  const std::string text = "ZO1WAL 1 session 42\n#1 14 deadbeef\npayload";
  const std::uint32_t whole = Crc32(text);
  for (std::size_t split = 0; split <= text.size(); ++split) {
    EXPECT_EQ(Crc32(text.substr(split), Crc32(text.substr(0, split))), whole)
        << "split at " << split;
  }
}

TEST(Crc32Test, EverySingleBitFlipIsDetected) {
  // The property the WAL and snapshot framing rely on: any single-bit
  // corruption of a frame body changes the checksum.
  const std::string body = "db M(1) = { (tuple_1), (tuple_2) }";
  const std::uint32_t clean = Crc32(body);
  for (std::size_t byte = 0; byte < body.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = body;
      corrupt[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32(corrupt), clean)
          << "bit " << bit << " of byte " << byte << " undetected";
    }
  }
}

TEST(Crc32Test, TruncationAndTranspositionAreDetected) {
  const std::string body = "M(1) = { (ab), (ba) }";
  const std::uint32_t clean = Crc32(body);
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_NE(Crc32(body.substr(0, cut)), clean) << "cut at " << cut;
  }
  for (std::size_t i = 0; i + 1 < body.size(); ++i) {
    if (body[i] == body[i + 1]) continue;
    std::string swapped = body;
    std::swap(swapped[i], swapped[i + 1]);
    EXPECT_NE(Crc32(swapped), clean) << "transposition at " << i;
  }
}

}  // namespace
}  // namespace zeroone
