#include "core/comparison.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/measure.h"
#include "core/support.h"
#include "data/io.h"
#include "gen/scenarios.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(ComparisonTest, PaperSection5Example) {
  // R = {(1,⊥1),(2,⊥2)}, S = {(1,⊥2),(⊥3,⊥1)}, Q = R − S:
  // (1,⊥1) ◁ (2,⊥2) and Best(Q,D) = {(2,⊥2)}.
  BestAnswerExample example = PaperBestAnswerExample();
  EXPECT_TRUE(StrictlyDominated(example.query, example.db, example.tuple_a,
                                example.tuple_b));
  EXPECT_FALSE(StrictlyDominated(example.query, example.db, example.tuple_b,
                                 example.tuple_a));
  std::vector<Tuple> best = BestAnswers(example.query, example.db);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0], example.tuple_b);
  // And certain answers are empty, yet Best is not.
  EXPECT_TRUE(CertainAnswers(example.query, example.db).empty());
}

TEST(ComparisonTest, IntroExampleSupportComparison) {
  // Section 1: (c2,⊥2) has strictly more support than (c1,⊥1), and no tuple
  // has more support than (c2,⊥2).
  IntroExample example = PaperIntroExample();
  Tuple a{Value::Constant("c1"), Value::Null("1")};
  Tuple b{Value::Constant("c2"), Value::Null("2")};
  EXPECT_TRUE(StrictlyDominated(example.query, example.db, a, b));
  std::vector<Tuple> best = BestAnswers(example.query, example.db);
  EXPECT_TRUE(std::count(best.begin(), best.end(), b));
  EXPECT_FALSE(std::count(best.begin(), best.end(), a));
}

TEST(ComparisonTest, SeparationAsymmetry) {
  BestAnswerExample example = PaperBestAnswerExample();
  // Supp(a) ⊆ Supp(b) means Sep(a,b) is false but Sep(b,a) is true.
  EXPECT_FALSE(Separates(example.query, example.db, example.tuple_a,
                         example.tuple_b));
  EXPECT_TRUE(Separates(example.query, example.db, example.tuple_b,
                        example.tuple_a));
}

TEST(ComparisonTest, NaiveEvaluationCannotDecideDominance) {
  // Section 5.1: D with R = {(1,⊥),(⊥,2)}, Q returns R; for ā = (1,2) and
  // b̄ = (1,1), naive evaluation of Q(ā) → Q(b̄) is true, yet ā ⊴ b̄ fails.
  Database db = Db("R(2) = { (1, _s51), (_s51b, 2) }");
  Query q = Q("Q(x, y) := R(x, y)");
  Tuple a{Value::Constant("1"), Value::Constant("2")};
  Tuple b{Value::Constant("1"), Value::Constant("1")};
  EXPECT_TRUE(Separates(q, db, a, b));
  EXPECT_FALSE(WeaklyDominated(q, db, a, b));
}

TEST(ComparisonTest, CertainAnswerDominatesEverything) {
  Database db = Db("R(2) = { (a, b), (a, _d1) }");
  Query q = Q("Q(x, y) := R(x, y)");
  Tuple certain{Value::Constant("a"), Value::Constant("b")};
  // A certain answer has full support: nothing separates any tuple from
  // above it... i.e. every tuple is weakly dominated by it only if its own
  // support is full too; here (a,⊥1) ⊴ (a,b).
  Tuple partial{Value::Constant("a"), Value::Null("d1")};
  EXPECT_TRUE(WeaklyDominated(q, db, partial, certain));
  // (a,b) is certain: no valuation separates it from anything with full
  // support; it is among the best answers.
  std::vector<Tuple> best = BestAnswers(q, db);
  EXPECT_TRUE(std::count(best.begin(), best.end(), certain));
}

TEST(ComparisonTest, BestEqualsCertainWhenCertainNonEmpty) {
  // If (Q,D) ≠ ∅ then Best(Q,D) = (Q,D).
  Database db = Db("R(2) = { (a, b), (a, _e1) }");
  Query q = Q("Q(x, y) := R(x, y)");
  std::vector<Tuple> certain = CertainAnswers(q, db);
  ASSERT_FALSE(certain.empty());
  std::vector<Tuple> best = BestAnswers(q, db);
  std::sort(certain.begin(), certain.end());
  std::sort(best.begin(), best.end());
  EXPECT_EQ(best, certain);
}

TEST(ComparisonTest, Proposition7Orthogonality) {
  // Without G: Best = {a, b}, µ(a) = 1, µ(b) = 0 — (best, µ=1) and
  // (best, µ=0) realized.
  OrthogonalityExample plain = Proposition7Example(false);
  std::vector<Tuple> best = BestAnswers(plain.query, plain.db);
  EXPECT_TRUE(std::count(best.begin(), best.end(), plain.tuple_a));
  EXPECT_TRUE(std::count(best.begin(), best.end(), plain.tuple_b));
  EXPECT_EQ(MuLimit(plain.query, plain.db, plain.tuple_a), 1);
  EXPECT_EQ(MuLimit(plain.query, plain.db, plain.tuple_b), 0);

  // With G: g dominates both; a and b are non-best with unchanged measures
  // — (non-best, µ=1) and (non-best, µ=0) realized.
  OrthogonalityExample expanded = Proposition7Example(true);
  std::vector<Tuple> best_expanded =
      BestAnswers(expanded.query, expanded.db);
  Tuple g{Value::Constant("g")};
  EXPECT_TRUE(std::count(best_expanded.begin(), best_expanded.end(), g));
  EXPECT_FALSE(
      std::count(best_expanded.begin(), best_expanded.end(), expanded.tuple_a));
  EXPECT_FALSE(
      std::count(best_expanded.begin(), best_expanded.end(), expanded.tuple_b));
  EXPECT_EQ(MuLimit(expanded.query, expanded.db, expanded.tuple_a), 1);
  EXPECT_EQ(MuLimit(expanded.query, expanded.db, expanded.tuple_b), 0);
}

TEST(ComparisonTest, Proposition7MeasuresAtFiniteK) {
  // µ^k(Q,D,a) = 1 − 1/k and µ^k(Q,D,b) = 1/k, per the proof.
  OrthogonalityExample plain = Proposition7Example(false);
  for (std::size_t k : {4u, 8u}) {
    std::int64_t ki = static_cast<std::int64_t>(k);
    EXPECT_EQ(MuK(plain.query, plain.db, plain.tuple_a, k),
              Rational(ki - 1, ki));
    EXPECT_EQ(MuK(plain.query, plain.db, plain.tuple_b, k), Rational(1, ki));
  }
}

TEST(ComparisonTest, BestMuAnswers) {
  // Best_µ keeps only almost-certainly-true best answers: for Prop 7's
  // plain example, Best = {a, b} but Best_µ = {a}.
  OrthogonalityExample plain = Proposition7Example(false);
  std::vector<Tuple> best_mu = BestMuAnswers(plain.query, plain.db);
  ASSERT_EQ(best_mu.size(), 1u);
  EXPECT_EQ(best_mu[0], plain.tuple_a);
}

TEST(ComparisonTest, SupportTableCountsValuations) {
  // One null, A = {1,2} ∪ {} , bounded domain has |A|+1 = 3 values.
  Database db = Db("R(2) = { (1, _st1) }");
  Query q = Q("Q(x, y) := R(x, y)");
  Tuple t{Value::Constant("1"), Value::Null("st1")};
  SupportTable table = ComputeSupportTable(q, db, {t});
  EXPECT_EQ(table.valuation_count, 2u);  // |A ∪ A_m| = 2 for one null: {1}∪fresh.
  // The tuple is certain: all valuations witness.
  EXPECT_EQ(std::count(table.support[0].begin(), table.support[0].end(), true),
            static_cast<std::ptrdiff_t>(table.valuation_count));
}

TEST(ComparisonTest, BooleanQueryComparison) {
  // Arity-0 queries: the only tuple is (); it is best trivially.
  Database db = Db("R(1) = { (_bq1) }");
  Query q = Q(":= exists x . R(x)");
  std::vector<Tuple> best = BestAnswers(q, db);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_TRUE(best[0].empty());
}

}  // namespace
}  // namespace zeroone
