#include "query/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/io.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/eval.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(MatcherTest, SimpleJoin) {
  Database db = Db("E(2) = { (a, b), (b, c), (c, d) }");
  Query q = Q("Q(x, z) := exists y . E(x, y) & E(y, z)");
  StatusOr<std::vector<Tuple>> answers = UcqEvaluate(q, db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);  // (a,c) and (b,d).
  StatusOr<bool> member = UcqMembership(
      q, db, Tuple{Value::Constant("a"), Value::Constant("c")});
  ASSERT_TRUE(member.ok());
  EXPECT_TRUE(*member);
}

TEST(MatcherTest, RejectsNonUcq) {
  Database db = Db("E(2) = { (a, b) }");
  EXPECT_FALSE(UcqEvaluate(Q("Q(x) := !(exists y . E(x, y))"), db).ok());
}

TEST(MatcherTest, EqualitiesPinVariables) {
  Database db = Db("R(2) = { (a, b), (b, b) }");
  Query q = Q("Q(x) := exists y . R(x, y) & x = y");
  StatusOr<std::vector<Tuple>> answers = UcqEvaluate(q, db);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0], Tuple{Value::Constant("b")});
}

TEST(MatcherTest, NullsMatchSyntactically) {
  Database db = Db("R(2) = { (_m1, _m2), (_m1, _m1) }");
  Query q = Q("Q(x) := R(x, x)");
  StatusOr<std::vector<Tuple>> answers = UcqEvaluate(q, db);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0], Tuple{Value::Null("m1")});
}

// Property sweep: the backtracking matcher agrees with the exhaustive
// evaluator on random UCQ/database pairs.
class MatcherAgreement : public ::testing::TestWithParam<int> {};

TEST_P(MatcherAgreement, MatchesExhaustiveEvaluator) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 6}, {"S", 1, 4}, {"T", 3, 3}};
  db_options.constant_pool = 5;
  db_options.null_pool = 3;
  db_options.null_probability = 0.3;
  db_options.seed = static_cast<std::uint64_t>(GetParam());
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}, {"T", 3}};
  q_options.free_variables = (GetParam() % 2) + 1;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.constant_pool = 3;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 500;
  Query ucq = GenerateRandomUcq(q_options);

  std::vector<Tuple> exhaustive = EvaluateQuery(ucq, db);
  StatusOr<std::vector<Tuple>> fast = UcqEvaluate(ucq, db);
  ASSERT_TRUE(fast.ok()) << fast.status().message();
  std::sort(exhaustive.begin(), exhaustive.end());
  // UcqEvaluate returns sorted unique answers already.
  EXPECT_EQ(*fast, exhaustive)
      << "query: " << ucq.ToString() << "\ndb:\n" << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherAgreement, ::testing::Range(0, 30));

// Membership agrees with the exhaustive membership on every candidate.
class MatcherMembershipAgreement : public ::testing::TestWithParam<int> {};

TEST_P(MatcherMembershipAgreement, AllCandidates) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 5}, {"S", 1, 3}};
  db_options.constant_pool = 4;
  db_options.null_pool = 2;
  db_options.null_probability = 0.35;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 77;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 1;
  q_options.existential_variables = 1;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 600;
  Query ucq = GenerateRandomUcq(q_options);

  for (Value v : db.ActiveDomain()) {
    Tuple candidate{v};
    StatusOr<bool> fast = UcqMembership(ucq, db, candidate);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(*fast, EvaluateMembership(ucq, db, candidate))
        << candidate.ToString() << " on " << ucq.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherMembershipAgreement,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace zeroone
