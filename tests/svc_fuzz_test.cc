// Fuzz smoke for the attack surfaces that parse untrusted bytes: the wire
// protocol (ParseRequestLine / ParseResponseFrame / IsValidUtf8) and the
// snapshot loader (DecodeSnapshot / SnapshotStore::LoadAll). Two corpora,
// both seeded and reproducible:
//
//  - random bytes: uniform garbage of assorted lengths;
//  - mutation: valid exemplars (formatted requests, formatted response
//    frames, encoded snapshots) run through byte flips, truncations,
//    insertions, erasures, and splices.
//
// The property under test is "never crash, never hang": every input is
// either parsed or rejected with an error Status. The suite runs in ctest
// under the ASan/UBSan CI job (tests/CMakeLists.txt registers it like any
// other svc test), which is what turns "no crash" into "no memory error of
// any kind". A CancelToken with a deadline is installed around the loader
// passes so a pathological input that sent evaluation into a long loop
// would be cut short and fail the test rather than wedge it.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "constraints/fd.h"
#include "data/io.h"
#include "query/parser.h"
#include "svc/protocol.h"
#include "svc/session.h"
#include "svc/snapshot.h"

namespace zeroone {
namespace svc {
namespace {

std::string RandomBytes(std::mt19937_64& rng, std::size_t length) {
  std::string bytes(length, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(static_cast<std::uint8_t>(rng() & 0xff));
  }
  return bytes;
}

// Applies 1-4 random structural mutations to `base`.
std::string Mutate(std::string base, std::mt19937_64& rng) {
  int ops = 1 + static_cast<int>(rng() % 4);
  for (int op = 0; op < ops; ++op) {
    if (base.empty()) {
      base = RandomBytes(rng, 1 + rng() % 16);
      continue;
    }
    std::size_t at = rng() % base.size();
    switch (rng() % 6) {
      case 0:  // Flip one byte.
        base[at] = static_cast<char>(static_cast<std::uint8_t>(rng() & 0xff));
        break;
      case 1:  // Insert random bytes.
        base.insert(at, RandomBytes(rng, 1 + rng() % 8));
        break;
      case 2:  // Erase a span.
        base.erase(at, 1 + rng() % 16);
        break;
      case 3:  // Truncate.
        base.resize(at);
        break;
      case 4:  // Duplicate a span in place.
        base.insert(at, base.substr(at, 1 + rng() % 32));
        break;
      default:  // Splice a span from elsewhere in the input.
        base.insert(at, base.substr(rng() % base.size(), 1 + rng() % 32));
        break;
    }
  }
  return base;
}

// A populated session whose snapshot encoding exercises every section kind.
void BuildExemplarState(SessionState* state) {
  StatusOr<Database> db = ParseDatabase(
      "R(2) = { (c1, _1), (c2, c3) }\nS(1) = { (c1), (_2) }");
  ASSERT_TRUE(db.ok()) << db.status().message();
  state->db = std::move(*db);
  StatusOr<Query> query = ParseQuery("Q(x) := exists y . R(x, y)");
  ASSERT_TRUE(query.ok()) << query.status().message();
  state->query = std::move(*query);
  state->has_query = true;
  FunctionalDependency fd("R", 2, {0}, 1);
  state->fds.push_back(fd);
  state->constraints.push_back(std::make_shared<FunctionalDependency>(fd));
  state->version = 7;
}

TEST(SvcFuzzTest, RandomBytesNeverCrashProtocolParsers) {
  std::mt19937_64 rng(0xf005ba11);
  for (int i = 0; i < 4000; ++i) {
    std::size_t length = rng() % (i % 50 == 0 ? 8192 : 256);
    std::string bytes = RandomBytes(rng, length);
    (void)IsValidUtf8(bytes);
    StatusOr<Request> request = ParseRequestLine(bytes);
    if (request.ok()) {
      // Whatever parses must round-trip through its canonical form.
      StatusOr<Request> again =
          ParseRequestLine(FormatRequestLine(*request));
      ASSERT_TRUE(again.ok()) << again.status().message();
      EXPECT_EQ(again->command, request->command);
      EXPECT_EQ(again->args, request->args);
    }
    Response response;
    (void)ParseResponseFrame(bytes, &response);
  }
}

TEST(SvcFuzzTest, MutatedRequestLinesParseOrFailCleanly) {
  std::mt19937_64 rng(0x5eed0001);
  std::vector<Request> exemplars;
  {
    Request r;
    r.command = "certain";
    exemplars.push_back(r);
    r = Request{};
    r.command = "db";
    r.args = "R(2) = { (c1, _1) }";
    r.session = "alt";
    r.id = "q-17";
    exemplars.push_back(r);
    r = Request{};
    r.command = "ping";
    r.deadline_ms = 250;
    r.no_cache = true;
    exemplars.push_back(r);
    r = Request{};
    r.command = "query";
    r.args = "Q(x) := exists y . R(x, y)";
    exemplars.push_back(r);
  }
  for (int i = 0; i < 4000; ++i) {
    const Request& base = exemplars[rng() % exemplars.size()];
    std::string line = Mutate(FormatRequestLine(base), rng);
    StatusOr<Request> parsed = ParseRequestLine(line);
    if (parsed.ok()) {
      StatusOr<Request> again =
          ParseRequestLine(FormatRequestLine(*parsed));
      ASSERT_TRUE(again.ok()) << again.status().message();
      EXPECT_EQ(again->command, parsed->command);
      EXPECT_EQ(again->deadline_ms, parsed->deadline_ms);
    }
  }
}

TEST(SvcFuzzTest, MutatedResponseFramesParseIncrementally) {
  std::mt19937_64 rng(0x5eed0002);
  std::vector<std::string> exemplars = {
      FormatResponse(Response{WireStatus::kOk, "0", "pong"}),
      FormatResponse(Response{WireStatus::kErr, "id-9",
                              "payload\nwith\nnewlines\n"}),
      FormatResponse(Response{WireStatus::kOverloaded, "77",
                              std::string(2048, 'x')}),
      FormatResponse(Response{WireStatus::kDeadlineExceeded, "d", ""}),
  };
  for (int i = 0; i < 4000; ++i) {
    std::string frame = Mutate(exemplars[rng() % exemplars.size()], rng);
    // Feed in random-size chunks, as a socket would deliver it. The parser
    // must either consume a complete frame, ask for more bytes, or reject
    // — and must never re-read consumed input inconsistently.
    std::string buffer;
    std::size_t offset = 0;
    int steps = 0;
    while (offset < frame.size() && steps++ < 200) {
      std::size_t take =
          std::min<std::size_t>(1 + rng() % 64, frame.size() - offset);
      buffer.append(frame, offset, take);
      offset += take;
      Response out;
      StatusOr<std::size_t> consumed = ParseResponseFrame(buffer, &out);
      if (!consumed.ok()) break;  // Rejected: done with this input.
      if (*consumed > 0) buffer.erase(0, *consumed);
    }
  }
}

TEST(SvcFuzzTest, MutatedSnapshotsNeverCrashDecode) {
  SessionState state;
  BuildExemplarState(&state);
  StatusOr<std::string> encoded = EncodeSnapshot("fuzzed", state);
  ASSERT_TRUE(encoded.ok()) << encoded.status().message();
  // Sanity: the unmutated exemplar decodes.
  {
    std::string session;
    SessionState decoded;
    Status ok = DecodeSnapshot(*encoded, &session, &decoded);
    ASSERT_TRUE(ok.ok()) << ok.message();
    EXPECT_EQ(session, "fuzzed");
  }
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::seconds(60));
  ScopedCancelToken scoped(&token);
  std::mt19937_64 rng(0x5eed0003);
  for (int i = 0; i < 3000; ++i) {
    std::string bytes = (i % 10 == 0)
                            ? RandomBytes(rng, rng() % 512)
                            : Mutate(*encoded, rng);
    std::string session;
    SessionState decoded;
    (void)DecodeSnapshot(bytes, &session, &decoded);
  }
  EXPECT_FALSE(token.cancelled()) << "snapshot decoding fuzz pass hung";
}

TEST(SvcFuzzTest, LoadAllSurvivesDirectoryOfMutatedSnapshots) {
  SessionState state;
  BuildExemplarState(&state);
  StatusOr<std::string> encoded = EncodeSnapshot("fuzzed", state);
  ASSERT_TRUE(encoded.ok()) << encoded.status().message();

  std::mt19937_64 rng(0x5eed0004);
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::seconds(60));
  ScopedCancelToken scoped(&token);
  for (int round = 0; round < 8; ++round) {
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("zo1_fuzz_load_" + std::to_string(round));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    constexpr int kFiles = 16;
    for (int f = 0; f < kFiles; ++f) {
      std::string bytes = (f % 5 == 0) ? RandomBytes(rng, rng() % 1024)
                                       : Mutate(*encoded, rng);
      std::ofstream out(dir / ("s" + std::to_string(f) + ".zo1snap"),
                        std::ios::binary);
      out.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    }
    SnapshotStore store(dir.string());
    SessionRegistry sessions;
    SnapshotStore::LoadReport report = store.LoadAll(&sessions);
    // Every file is accounted for: installed or quarantined, no third way.
    EXPECT_EQ(report.loaded + report.quarantined,
              static_cast<std::size_t>(kFiles));
    std::filesystem::remove_all(dir);
  }
  EXPECT_FALSE(token.cancelled()) << "LoadAll fuzz pass hung";
}

}  // namespace
}  // namespace svc
}  // namespace zeroone
