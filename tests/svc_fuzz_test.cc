// Fuzz smoke for the attack surfaces that parse untrusted bytes: the wire
// protocol (ParseRequestLine / ParseResponseFrame / IsValidUtf8) and the
// snapshot loader (DecodeSnapshot / SnapshotStore::LoadAll). Two corpora,
// both seeded and reproducible:
//
//  - random bytes: uniform garbage of assorted lengths;
//  - mutation: valid exemplars (formatted requests, formatted response
//    frames, encoded snapshots) run through byte flips, truncations,
//    insertions, erasures, and splices.
//
// The property under test is "never crash, never hang": every input is
// either parsed or rejected with an error Status. The suite runs in ctest
// under the ASan/UBSan CI job (tests/CMakeLists.txt registers it like any
// other svc test), which is what turns "no crash" into "no memory error of
// any kind". A CancelToken with a deadline is installed around the loader
// passes so a pathological input that sent evaluation into a long loop
// would be cut short and fail the test rather than wedge it.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "constraints/fd.h"
#include "data/io.h"
#include "query/parser.h"
#include "svc/http.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/session.h"
#include "svc/snapshot.h"

namespace zeroone {
namespace svc {
namespace {

std::string RandomBytes(std::mt19937_64& rng, std::size_t length) {
  std::string bytes(length, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(static_cast<std::uint8_t>(rng() & 0xff));
  }
  return bytes;
}

// Applies 1-4 random structural mutations to `base`.
std::string Mutate(std::string base, std::mt19937_64& rng) {
  int ops = 1 + static_cast<int>(rng() % 4);
  for (int op = 0; op < ops; ++op) {
    if (base.empty()) {
      base = RandomBytes(rng, 1 + rng() % 16);
      continue;
    }
    std::size_t at = rng() % base.size();
    switch (rng() % 6) {
      case 0:  // Flip one byte.
        base[at] = static_cast<char>(static_cast<std::uint8_t>(rng() & 0xff));
        break;
      case 1:  // Insert random bytes.
        base.insert(at, RandomBytes(rng, 1 + rng() % 8));
        break;
      case 2:  // Erase a span.
        base.erase(at, 1 + rng() % 16);
        break;
      case 3:  // Truncate.
        base.resize(at);
        break;
      case 4:  // Duplicate a span in place.
        base.insert(at, base.substr(at, 1 + rng() % 32));
        break;
      default:  // Splice a span from elsewhere in the input.
        base.insert(at, base.substr(rng() % base.size(), 1 + rng() % 32));
        break;
    }
  }
  return base;
}

// A populated session whose snapshot encoding exercises every section kind.
void BuildExemplarState(SessionState* state) {
  StatusOr<Database> db = ParseDatabase(
      "R(2) = { (c1, _1), (c2, c3) }\nS(1) = { (c1), (_2) }");
  ASSERT_TRUE(db.ok()) << db.status().message();
  state->db = std::move(*db);
  StatusOr<Query> query = ParseQuery("Q(x) := exists y . R(x, y)");
  ASSERT_TRUE(query.ok()) << query.status().message();
  state->query = std::move(*query);
  state->has_query = true;
  FunctionalDependency fd("R", 2, {0}, 1);
  state->fds.push_back(fd);
  state->constraints.push_back(std::make_shared<FunctionalDependency>(fd));
  state->version = 7;
}

TEST(SvcFuzzTest, RandomBytesNeverCrashProtocolParsers) {
  std::mt19937_64 rng(0xf005ba11);
  for (int i = 0; i < 4000; ++i) {
    std::size_t length = rng() % (i % 50 == 0 ? 8192 : 256);
    std::string bytes = RandomBytes(rng, length);
    (void)IsValidUtf8(bytes);
    StatusOr<Request> request = ParseRequestLine(bytes);
    if (request.ok()) {
      // Whatever parses must round-trip through its canonical form.
      StatusOr<Request> again =
          ParseRequestLine(FormatRequestLine(*request));
      ASSERT_TRUE(again.ok()) << again.status().message();
      EXPECT_EQ(again->command, request->command);
      EXPECT_EQ(again->args, request->args);
    }
    Response response;
    (void)ParseResponseFrame(bytes, &response);
  }
}

TEST(SvcFuzzTest, MutatedRequestLinesParseOrFailCleanly) {
  std::mt19937_64 rng(0x5eed0001);
  std::vector<Request> exemplars;
  {
    Request r;
    r.command = "certain";
    exemplars.push_back(r);
    r = Request{};
    r.command = "db";
    r.args = "R(2) = { (c1, _1) }";
    r.session = "alt";
    r.id = "q-17";
    exemplars.push_back(r);
    r = Request{};
    r.command = "ping";
    r.deadline_ms = 250;
    r.no_cache = true;
    exemplars.push_back(r);
    r = Request{};
    r.command = "query";
    r.args = "Q(x) := exists y . R(x, y)";
    exemplars.push_back(r);
  }
  for (int i = 0; i < 4000; ++i) {
    const Request& base = exemplars[rng() % exemplars.size()];
    std::string line = Mutate(FormatRequestLine(base), rng);
    StatusOr<Request> parsed = ParseRequestLine(line);
    if (parsed.ok()) {
      StatusOr<Request> again =
          ParseRequestLine(FormatRequestLine(*parsed));
      ASSERT_TRUE(again.ok()) << again.status().message();
      EXPECT_EQ(again->command, parsed->command);
      EXPECT_EQ(again->deadline_ms, parsed->deadline_ms);
    }
  }
}

TEST(SvcFuzzTest, MutatedResponseFramesParseIncrementally) {
  std::mt19937_64 rng(0x5eed0002);
  std::vector<std::string> exemplars = {
      FormatResponse(Response{WireStatus::kOk, "0", "pong"}),
      FormatResponse(Response{WireStatus::kErr, "id-9",
                              "payload\nwith\nnewlines\n"}),
      FormatResponse(Response{WireStatus::kOverloaded, "77",
                              std::string(2048, 'x')}),
      FormatResponse(Response{WireStatus::kDeadlineExceeded, "d", ""}),
  };
  for (int i = 0; i < 4000; ++i) {
    std::string frame = Mutate(exemplars[rng() % exemplars.size()], rng);
    // Feed in random-size chunks, as a socket would deliver it. The parser
    // must either consume a complete frame, ask for more bytes, or reject
    // — and must never re-read consumed input inconsistently.
    std::string buffer;
    std::size_t offset = 0;
    int steps = 0;
    while (offset < frame.size() && steps++ < 200) {
      std::size_t take =
          std::min<std::size_t>(1 + rng() % 64, frame.size() - offset);
      buffer.append(frame, offset, take);
      offset += take;
      Response out;
      StatusOr<std::size_t> consumed = ParseResponseFrame(buffer, &out);
      if (!consumed.ok()) break;  // Rejected: done with this input.
      if (*consumed > 0) buffer.erase(0, *consumed);
    }
  }
}

TEST(SvcFuzzTest, MutatedSnapshotsNeverCrashDecode) {
  SessionState state;
  BuildExemplarState(&state);
  StatusOr<std::string> encoded = EncodeSnapshot("fuzzed", state);
  ASSERT_TRUE(encoded.ok()) << encoded.status().message();
  // Sanity: the unmutated exemplar decodes.
  {
    std::string session;
    SessionState decoded;
    Status ok = DecodeSnapshot(*encoded, &session, &decoded);
    ASSERT_TRUE(ok.ok()) << ok.message();
    EXPECT_EQ(session, "fuzzed");
  }
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::seconds(60));
  ScopedCancelToken scoped(&token);
  std::mt19937_64 rng(0x5eed0003);
  for (int i = 0; i < 3000; ++i) {
    std::string bytes = (i % 10 == 0)
                            ? RandomBytes(rng, rng() % 512)
                            : Mutate(*encoded, rng);
    std::string session;
    SessionState decoded;
    (void)DecodeSnapshot(bytes, &session, &decoded);
  }
  EXPECT_FALSE(token.cancelled()) << "snapshot decoding fuzz pass hung";
}

TEST(SvcFuzzTest, LoadAllSurvivesDirectoryOfMutatedSnapshots) {
  SessionState state;
  BuildExemplarState(&state);
  StatusOr<std::string> encoded = EncodeSnapshot("fuzzed", state);
  ASSERT_TRUE(encoded.ok()) << encoded.status().message();

  std::mt19937_64 rng(0x5eed0004);
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::seconds(60));
  ScopedCancelToken scoped(&token);
  for (int round = 0; round < 8; ++round) {
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("zo1_fuzz_load_" + std::to_string(round));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    constexpr int kFiles = 16;
    for (int f = 0; f < kFiles; ++f) {
      std::string bytes = (f % 5 == 0) ? RandomBytes(rng, rng() % 1024)
                                       : Mutate(*encoded, rng);
      std::ofstream out(dir / ("s" + std::to_string(f) + ".zo1snap"),
                        std::ios::binary);
      out.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    }
    SnapshotStore store(dir.string());
    SessionRegistry sessions;
    SnapshotStore::LoadReport report = store.LoadAll(&sessions);
    // Every file is accounted for: installed or quarantined, no third way.
    EXPECT_EQ(report.loaded + report.quarantined,
              static_cast<std::size_t>(kFiles));
    std::filesystem::remove_all(dir);
  }
  EXPECT_FALSE(token.cancelled()) << "LoadAll fuzz pass hung";
}

// ---------------------------------------------------------------------------
// HTTP gateway mutation fuzz: a live server's HTTP listener is hammered
// with torn request lines, oversized headers, bad Content-Length values,
// pipelined garbage, and seeded mutations of valid requests. The property
// is the gateway's failure contract (svc/http.h): never crash, never hang —
// every connection ends in well-formed HTTP responses (400/413/... for the
// malformed ones) or a clean close, and afterwards the server still
// answers a well-formed request.

namespace {

// AssembleQueryLine over pure garbage: the JSON reader must reject (or
// accept) without crashing, for random bytes and mutated valid bodies.
TEST(SvcFuzzTest, AssembleQueryLineSurvivesGarbageBodies) {
  std::mt19937_64 rng(0x5eed0005);
  const std::string valid =
      R"json({"command": "certain", "args": "Q(x)", "id": "q7",)json"
      R"json( "session": "alpha", "deadline_ms": 250, "nocache": true})json";
  for (int i = 0; i < 6000; ++i) {
    std::string body =
        (i % 3 == 0) ? RandomBytes(rng, rng() % 512) : Mutate(valid, rng);
    StatusOr<std::string> line = AssembleQueryLine(body);
    if (line.ok()) {
      // Framing safety: raw control bytes in the body are rejected by the
      // JSON reader, but backslash escapes legally decode to them.
      // Submit hands the whole assembled line to ParseRequestLine,
      // which rejects any control byte — so a smuggled newline can never
      // desync the ZO1 framing, it just earns BAD_REQUEST.
      if (line->find_first_of("\n\r") != std::string::npos) {
        EXPECT_FALSE(ParseRequestLine(*line).ok()) << body;
      }
    }
  }
}

class HttpFuzzSocket {
 public:
  ~HttpFuzzSocket() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval timeout{10, 0};  // The anti-hang property: reads must finish.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  // Sends what it can; a peer reset mid-send is a legal outcome here.
  void SendBestEffort(std::string_view bytes) {
    while (!bytes.empty()) {
      ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n <= 0) return;
      bytes.remove_prefix(static_cast<std::size_t>(n));
    }
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  // Reads to EOF (or reset). Returns false only on the receive timeout —
  // the one outcome the contract forbids.
  bool ReadToEof(std::string* out) {
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return errno != EAGAIN && errno != EWOULDBLOCK;
      out->append(chunk, static_cast<std::size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

// Every byte the server sent back must parse as whole HTTP/1.1 responses
// with sane status codes — a torn or interleaved response frame is a bug
// even when the request was garbage. (A suffix that is itself a truncated
// frame cannot occur: responses are written through ordered slots.)
void AssertWellFormedHttpStream(const std::string& stream,
                                const std::string& attack) {
  std::size_t at = 0;
  while (at < stream.size()) {
    ASSERT_EQ(stream.compare(at, 9, "HTTP/1.1 "), 0)
        << "desynced response stream after attack: " << attack;
    std::size_t head_end = stream.find("\r\n\r\n", at);
    ASSERT_NE(head_end, std::string::npos) << "truncated head: " << attack;
    int code = std::atoi(stream.c_str() + at + 9);
    EXPECT_TRUE(code == 200 || code == 400 || code == 404 || code == 405 ||
                code == 413 || code == 422 || code == 503 || code == 504)
        << "status " << code << " after attack: " << attack;
    std::size_t content_length = 0;
    std::size_t marker = stream.find("Content-Length: ", at);
    if (marker != std::string::npos && marker < head_end) {
      content_length = static_cast<std::size_t>(
          std::atoll(stream.c_str() + marker + 16));
    }
    at = head_end + 4 + content_length;
    ASSERT_LE(at, stream.size()) << "truncated body: " << attack;
  }
}

TEST(SvcFuzzTest, HttpGatewayMutationTableNeverCrashesOrDesyncs) {
  ServerOptions options;
  options.threads = 2;
  Server server(options);
  Status started = server.Start();
  // http_port defaults off; run the gateway on an ephemeral port.
  ASSERT_TRUE(started.ok()) << started.message();
  ASSERT_EQ(server.http_port(), -1);
  server.Shutdown();

  ServerOptions http_options;
  http_options.threads = 2;
  http_options.http_port = 0;
  Server gateway(http_options);
  started = gateway.Start();
  ASSERT_TRUE(started.ok()) << started.message();
  const int port = gateway.http_port();
  ASSERT_GT(port, 0);

  const std::string valid_request =
      "POST /v1/query HTTP/1.1\r\nHost: f\r\nContent-Length: 19\r\n\r\n"
      "{\"command\":\"ping\"}\n";
  // The handcrafted table: each row is one attack connection.
  const std::vector<std::string> attacks = {
      // Torn request lines.
      "",
      "P",
      "POST",
      "POST /v1/query",
      "POST /v1/query HTTP/1.1",
      "POST /v1/query HTTP/1.1\r\n",
      "POST  /v1/query  HTTP/1.1\r\n\r\n",       // Double spaces.
      "POST /v1/query HTTP/9.9\r\n\r\n",         // Unknown version.
      "GET\r\n\r\n",                             // No target.
      "\r\n\r\n",
      "\n\n",
      " POST /v1/query HTTP/1.1\r\n\r\n",        // Leading space.
      "POST /v1/query HTTP/1.1 extra\r\n\r\n",   // Trailing token.
      std::string(3, '\0') + "GET /metrics HTTP/1.1\r\n\r\n",
      // Oversized headers (over the 16KB head cap).
      "GET /metrics HTTP/1.1\r\nX-Pad: " + std::string(64 * 1024, 'a') +
          "\r\n\r\n",
      std::string(64 * 1024, 'x'),
      "GET " + std::string(32 * 1024, '/') + " HTTP/1.1\r\n\r\n",
      // Bad Content-Length.
      "POST /v1/query HTTP/1.1\r\nContent-Length: banana\r\n\r\n{}",
      "POST /v1/query HTTP/1.1\r\nContent-Length: -1\r\n\r\n{}",
      "POST /v1/query HTTP/1.1\r\nContent-Length: 1e9\r\n\r\n{}",
      "POST /v1/query HTTP/1.1\r\nContent-Length: 99999999999999999999"
      "\r\n\r\n{}",
      "POST /v1/query HTTP/1.1\r\nContent-Length: 10\r\n"
      "Content-Length: 20\r\n\r\n0123456789",
      "POST /v1/query HTTP/1.1\r\nContent-Length: 1000000\r\n\r\nshort",
      "POST /v1/query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n",
      // Pipelined garbage: valid, then junk, then valid-after-junk (the
      // junk must poison at most its own connection, never the process).
      valid_request + "GARBAGE NOISE\r\n\r\n" + valid_request,
      valid_request + std::string(512, '\xff'),
      "GET /metrics HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n" +
          std::string("\x00\x01\x02", 3),
  };

  for (const std::string& attack : attacks) {
    HttpFuzzSocket socket;
    ASSERT_TRUE(socket.Connect(port));
    socket.SendBestEffort(attack);
    socket.ShutdownWrite();
    std::string stream;
    ASSERT_TRUE(socket.ReadToEof(&stream))
        << "server wedged (recv timeout) on attack: " << attack.substr(0, 80);
    AssertWellFormedHttpStream(stream, attack.substr(0, 80));
  }

  // Seeded mutations of the valid exemplar, delivered in random chunks.
  std::mt19937_64 rng(0x5eed0006);
  for (int i = 0; i < 150; ++i) {
    std::string bytes = Mutate(valid_request, rng);
    HttpFuzzSocket socket;
    ASSERT_TRUE(socket.Connect(port));
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      std::size_t take =
          std::min<std::size_t>(1 + rng() % 64, bytes.size() - offset);
      socket.SendBestEffort(std::string_view(bytes).substr(offset, take));
      offset += take;
    }
    socket.ShutdownWrite();
    std::string stream;
    ASSERT_TRUE(socket.ReadToEof(&stream))
        << "server wedged on mutated request " << i;
    AssertWellFormedHttpStream(stream, "mutation #" + std::to_string(i));
  }

  // The survival proof: after the barrage, a well-formed request answers.
  {
    HttpFuzzSocket socket;
    ASSERT_TRUE(socket.Connect(port));
    socket.SendBestEffort(valid_request);
    socket.ShutdownWrite();
    std::string stream;
    ASSERT_TRUE(socket.ReadToEof(&stream));
    EXPECT_NE(stream.find("HTTP/1.1 200"), std::string::npos)
        << stream.substr(0, 200);
    EXPECT_NE(stream.find("\"payload\":\"pong\""), std::string::npos);
  }
  Server::Stats stats = gateway.stats();
  EXPECT_GT(stats.bad_requests, 0u);
  gateway.Shutdown();
}

}  // namespace

}  // namespace
}  // namespace svc
}  // namespace zeroone
