// Tests for the zeroone::svc serving subsystem: the LRU result cache, the
// bounded executor, the dispatcher's cache/invalidation behavior, and the
// TCP server end to end (concurrent correctness, overload rejection,
// deadlines, graceful drain).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "svc/cache.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/executor.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace zeroone {
namespace svc {
namespace {

// A small incomplete database: `certain` over it takes ~10-30ms (4 nulls).
constexpr const char* kFastDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4) }";
// With 5 nulls the same query takes several hundred ms — long enough that
// deadline, overload, and drain behavior are observable, short enough for
// a unit test.
constexpr const char* kSlowDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4), (c5, _5) }";
constexpr const char* kQuery = "Q(x) := exists y . R(x, y)";

Request MakeRequest(const std::string& command, const std::string& args = "",
                    const std::string& session = "default") {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

// ---------------------------------------------------------------------------
// LruCache

TEST(LruCacheTest, MissThenHit) {
  LruCache cache(4096);
  std::string value;
  EXPECT_FALSE(cache.Get("k", &value));
  cache.Put("k", "v");
  ASSERT_TRUE(cache.Get("k", &value));
  EXPECT_EQ(value, "v");
  LruCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LruCacheTest, OverwriteReplacesValue) {
  LruCache cache(4096);
  cache.Put("k", "old");
  cache.Put("k", "new");
  std::string value;
  ASSERT_TRUE(cache.Get("k", &value));
  EXPECT_EQ(value, "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedWithinByteBudget) {
  // Capacity fits exactly two entries (1-byte keys, 1-byte values).
  const std::size_t entry = 2 + LruCache::kEntryOverheadBytes;
  LruCache cache(2 * entry);
  cache.Put("a", "1");
  cache.Put("b", "2");
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));  // Refresh "a": now "b" is LRU.
  cache.Put("c", "3");                  // Evicts "b".
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_FALSE(cache.Get("b", &value));
  EXPECT_TRUE(cache.Get("c", &value));
  LruCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, 2 * entry);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(LruCacheTest, RejectsEntriesLargerThanCapacity) {
  LruCache cache(64);  // Smaller than the fixed per-entry overhead.
  cache.Put("k", "v");
  std::string value;
  EXPECT_FALSE(cache.Get("k", &value));
  EXPECT_EQ(cache.stats().oversized_rejections, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LruCacheTest, EraseIfRemovesMatchingPrefix) {
  LruCache cache(4096);
  cache.Put("s1\x1f k1", "a");
  cache.Put("s1\x1f k2", "b");
  cache.Put("s2\x1f k1", "c");
  std::size_t removed = cache.EraseIf([](std::string_view key) {
    return key.substr(0, 3) == "s1\x1f";
  });
  EXPECT_EQ(removed, 2u);
  std::string value;
  EXPECT_FALSE(cache.Get("s1\x1f k1", &value));
  EXPECT_TRUE(cache.Get("s2\x1f k1", &value));
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(LruCacheTest, ClearEmptiesEverything) {
  LruCache cache(4096);
  cache.Put("a", "1");
  cache.Put("b", "2");
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// ---------------------------------------------------------------------------
// BoundedExecutor

TEST(BoundedExecutorTest, RejectsWhenQueueFull) {
  BoundedExecutor executor(/*threads=*/1, /*queue_capacity=*/1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> done{0};
  // Occupy the single worker...
  ASSERT_TRUE(executor.TrySubmit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    ++done;
  }));
  // ...and give the worker a moment to pick the task up, so the next
  // submission lands in the queue rather than going straight to a worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(executor.TrySubmit([&] { ++done; }));  // Fills the queue.
  // Queue full: reject, never block, never drop silently.
  EXPECT_FALSE(executor.TrySubmit([&] { ++done; }));
  EXPECT_GE(executor.stats().rejected, 1u);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  executor.Drain();
  EXPECT_EQ(done.load(), 2);  // Both accepted tasks ran; the reject did not.
}

TEST(BoundedExecutorTest, DrainCompletesAcceptedTasks) {
  std::atomic<int> done{0};
  {
    BoundedExecutor executor(/*threads=*/2, /*queue_capacity=*/16);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(executor.TrySubmit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ++done;
      }));
    }
    executor.Drain();
    EXPECT_EQ(done.load(), 10);
    EXPECT_FALSE(executor.TrySubmit([&] { ++done; }));  // After drain.
  }
  EXPECT_EQ(done.load(), 10);
}

// ---------------------------------------------------------------------------
// Dispatcher (in-process, no sockets)

TEST(DispatcherTest, CachesReadsAndInvalidatesOnMutation) {
  Dispatcher dispatcher(Dispatcher::Options{});
  EXPECT_EQ(dispatcher.Execute(MakeRequest("db", kFastDb)).status,
            WireStatus::kOk);
  EXPECT_EQ(dispatcher.Execute(MakeRequest("query", kQuery)).status,
            WireStatus::kOk);

  Response cold = dispatcher.Execute(MakeRequest("certain"));
  ASSERT_EQ(cold.status, WireStatus::kOk);
  Response warm = dispatcher.Execute(MakeRequest("certain"));
  EXPECT_EQ(warm.payload, cold.payload);
  EXPECT_GE(dispatcher.cache().stats().hits, 1u);

  // Mutating the session must invalidate: add a tuple, re-ask.
  EXPECT_EQ(dispatcher.Execute(MakeRequest("db", "R(2) = { (c9, c9) }")).status,
            WireStatus::kOk);
  Response after = dispatcher.Execute(MakeRequest("certain"));
  ASSERT_EQ(after.status, WireStatus::kOk);
  EXPECT_NE(after.payload, cold.payload);  // (c9) is now a certain answer.
  EXPECT_GE(dispatcher.cache().stats().invalidations, 1u);
}

TEST(DispatcherTest, NoCacheRequestsBypassTheCache) {
  Dispatcher dispatcher(Dispatcher::Options{});
  dispatcher.Execute(MakeRequest("db", kFastDb));
  dispatcher.Execute(MakeRequest("query", kQuery));
  Request request = MakeRequest("certain");
  request.no_cache = true;
  dispatcher.Execute(request);
  dispatcher.Execute(request);
  EXPECT_EQ(dispatcher.cache().stats().hits, 0u);
  EXPECT_EQ(dispatcher.cache().stats().insertions, 0u);
}

TEST(DispatcherTest, CancelledChaseLeavesSessionUntouched) {
  Dispatcher dispatcher(Dispatcher::Options{});
  // A repairable FD violation: an uncancelled chase would rewrite the db.
  EXPECT_EQ(
      dispatcher.Execute(MakeRequest("db", "R(2) = { (a, _h1), (a, b) }"))
          .status,
      WireStatus::kOk);
  EXPECT_EQ(dispatcher.Execute(MakeRequest("fd", "R 2 0 1")).status,
            WireStatus::kOk);
  Request show = MakeRequest("show");
  show.no_cache = true;  // Compare live session state, not cache entries.
  Response before = dispatcher.Execute(show);
  ASSERT_EQ(before.status, WireStatus::kOk);

  // A chase abandoned by cancellation must not commit the half-repaired
  // database to the session (or bump its version).
  CancelToken token;
  token.Cancel();
  Response cancelled;
  {
    ScopedCancelToken scoped(&token);
    cancelled = dispatcher.Execute(MakeRequest("chase"));
  }
  EXPECT_EQ(cancelled.status, WireStatus::kDeadlineExceeded);
  Response after = dispatcher.Execute(show);
  ASSERT_EQ(after.status, WireStatus::kOk);
  EXPECT_EQ(after.payload, before.payload);

  // Without deadline pressure the same chase commits the repair.
  Response chased = dispatcher.Execute(MakeRequest("chase"));
  ASSERT_EQ(chased.status, WireStatus::kOk);
  EXPECT_NE(dispatcher.Execute(show).payload, before.payload);
}

TEST(DispatcherTest, SessionsAreIsolated) {
  Dispatcher dispatcher(Dispatcher::Options{});
  dispatcher.Execute(MakeRequest("db", kFastDb, "alpha"));
  dispatcher.Execute(MakeRequest("query", kQuery, "alpha"));
  Response beta = dispatcher.Execute(MakeRequest("certain", "", "beta"));
  EXPECT_EQ(beta.status, WireStatus::kErr);  // beta has no query set.
  Response alpha = dispatcher.Execute(MakeRequest("certain", "", "alpha"));
  EXPECT_EQ(alpha.status, WireStatus::kOk);
}

// ---------------------------------------------------------------------------
// Server end to end

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    server_ = std::make_unique<Server>(options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.message();
  }

  BlockingClient Connect() {
    BlockingClient client;
    Status status = client.Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(status.ok()) << status.message();
    return client;
  }

  // Runs the session preamble (db + query) through `client`.
  void Preamble(BlockingClient& client, const std::string& db,
                const std::string& session = "default") {
    StatusOr<Response> r = client.Call(MakeRequest("db", db, session));
    ASSERT_TRUE(r.ok()) << r.status().message();
    ASSERT_EQ(r->status, WireStatus::kOk) << r->payload;
    r = client.Call(MakeRequest("query", kQuery, session));
    ASSERT_TRUE(r.ok()) << r.status().message();
    ASSERT_EQ(r->status, WireStatus::kOk) << r->payload;
  }

  std::unique_ptr<Server> server_;
};

// Acceptance (a): concurrent clients observe answers bit-identical to a
// sequential evaluation of the same commands.
TEST_F(ServerTest, SixteenConcurrentClientsMatchSequentialAnswers) {
  ServerOptions options;
  options.threads = 4;
  options.queue_capacity = 256;
  StartServer(options);

  // Sequential reference: the same session state evaluated in-process.
  Dispatcher reference(Dispatcher::Options{});
  reference.Execute(MakeRequest("db", kFastDb));
  reference.Execute(MakeRequest("query", kQuery));
  const std::string expected_certain =
      reference.Execute(MakeRequest("certain")).payload;
  const std::string expected_possible =
      reference.Execute(MakeRequest("possible")).payload;
  const std::string expected_naive =
      reference.Execute(MakeRequest("naive")).payload;
  ASSERT_FALSE(expected_certain.empty());

  {
    BlockingClient setup = Connect();
    Preamble(setup, kFastDb);
  }

  constexpr int kClients = 16;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      BlockingClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        ++failures;
        return;
      }
      // Alternate cached and uncached so both paths are exercised under
      // concurrency.
      const struct {
        const char* command;
        const std::string* expected;
      } cases[] = {{"certain", &expected_certain},
                   {"possible", &expected_possible},
                   {"naive", &expected_naive}};
      for (int round = 0; round < 2; ++round) {
        for (const auto& c : cases) {
          Request request = MakeRequest(c.command);
          request.no_cache = (i + round) % 2 == 0;
          StatusOr<Response> response = client.Call(request);
          if (!response.ok() || response->status != WireStatus::kOk) {
            ++failures;
            return;
          }
          if (response->payload != *c.expected) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// Acceptance (b): a full bounded queue yields an explicit OVERLOADED
// response — requests are never silently dropped and the server never
// hangs.
TEST_F(ServerTest, FullQueueYieldsOverloaded) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  StartServer(options);
  {
    BlockingClient setup = Connect();
    Preamble(setup, kSlowDb);
  }

  // Pipeline a burst of slow, uncacheable requests on one connection. The
  // first occupies the worker (~hundreds of ms), the second fits the
  // queue, and with a burst this size at least one must be rejected.
  constexpr int kBurst = 8;
  BlockingClient client = Connect();
  for (int i = 0; i < kBurst; ++i) {
    Request request = MakeRequest("certain");
    request.id = std::to_string(i + 1);
    request.no_cache = true;
    ASSERT_TRUE(client.Send(request).ok());
  }
  int ok = 0, overloaded = 0, other = 0;
  for (int i = 0; i < kBurst; ++i) {
    StatusOr<Response> response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().message();
    if (response->status == WireStatus::kOk) {
      ++ok;
    } else if (response->status == WireStatus::kOverloaded) {
      ++overloaded;
    } else {
      ++other;
    }
  }
  // Every request was answered (no hang, no silent drop)...
  EXPECT_EQ(ok + overloaded + other, kBurst);
  EXPECT_EQ(other, 0);
  // ...some ran, and the overflow was rejected explicitly.
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(server_->stats().overloaded,
            static_cast<std::uint64_t>(overloaded));
}

// Acceptance (c): a request whose deadline expires mid-evaluation returns
// DEADLINE_EXCEEDED (cooperative cancellation inside the enumeration
// loops), and the cancelled partial result is never served from cache.
TEST_F(ServerTest, ExpiredDeadlineYieldsDeadlineExceeded) {
  StartServer(ServerOptions{});
  BlockingClient client = Connect();
  Preamble(client, kSlowDb);

  Request request = MakeRequest("certain");
  request.deadline_ms = 30;  // Far below the ~0.5s evaluation time.
  auto start = std::chrono::steady_clock::now();
  StatusOr<Response> response = client.Call(request);
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, WireStatus::kDeadlineExceeded)
      << response->payload;
  // Cancellation is cooperative but prompt: far sooner than completion.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(400));

  // The same query without a deadline must now compute the real answer —
  // the cancelled partial result must not have been cached.
  StatusOr<Response> full = client.Call(MakeRequest("certain"));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->status, WireStatus::kOk);
  EXPECT_NE(full->payload, response->payload);
}

// A deadline that already expired while the request sat in the queue is
// answered without starting the evaluation.
TEST_F(ServerTest, DeadlineCoversQueueTime) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 4;
  StartServer(options);
  BlockingClient client = Connect();
  Preamble(client, kSlowDb);

  Request slow = MakeRequest("certain");
  slow.id = "1";
  slow.no_cache = true;
  ASSERT_TRUE(client.Send(slow).ok());  // Occupies the single worker.
  Request queued = MakeRequest("naive");
  queued.id = "2";
  queued.deadline_ms = 20;  // Will expire long before the worker frees up.
  ASSERT_TRUE(client.Send(queued).ok());

  StatusOr<Response> first = client.Receive();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, WireStatus::kOk);
  StatusOr<Response> second = client.Receive();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, WireStatus::kDeadlineExceeded);
  EXPECT_NE(second->payload.find("not started"), std::string::npos)
      << second->payload;
}

// Acceptance (d): SIGTERM-style drain finishes in-flight requests — every
// accepted request is answered before the server exits.
TEST_F(ServerTest, DrainFinishesInFlightRequests) {
  ServerOptions options;
  options.threads = 2;
  StartServer(options);
  BlockingClient client = Connect();
  Preamble(client, kSlowDb);

  Request slow = MakeRequest("certain");
  slow.no_cache = true;
  ASSERT_TRUE(client.Send(slow).ok());
  // Let the request reach a worker, then initiate drain mid-evaluation.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->BeginShutdown();

  // The in-flight response still arrives, complete and correct.
  StatusOr<Response> response = client.Receive();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, WireStatus::kOk);
  EXPECT_NE(response->payload.find("(c"), std::string::npos)
      << response->payload;

  server_->Wait();
  // New connections are refused (or reset) after drain.
  BlockingClient late;
  if (late.Connect("127.0.0.1", server_->port()).ok()) {
    StatusOr<Response> refused = late.Call(MakeRequest("ping"));
    EXPECT_TRUE(!refused.ok() ||
                refused->status == WireStatus::kShuttingDown);
  }
}

// Responses on one connection come back in request order even when a slow
// request is pipelined before fast ones.
TEST_F(ServerTest, PipelinedResponsesArriveInOrder) {
  ServerOptions options;
  options.threads = 4;
  StartServer(options);
  BlockingClient client = Connect();
  Preamble(client, kFastDb);

  const char* ids[] = {"10", "11", "12", "13"};
  Request slow = MakeRequest("certain");
  slow.id = ids[0];
  slow.no_cache = true;
  ASSERT_TRUE(client.Send(slow).ok());
  for (int i = 1; i < 4; ++i) {
    Request fast = MakeRequest("ping");
    fast.id = ids[i];
    ASSERT_TRUE(client.Send(fast).ok());
  }
  for (const char* id : ids) {
    StatusOr<Response> response = client.Receive();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->id, id);
  }
}

}  // namespace
}  // namespace svc
}  // namespace zeroone
