// Tests for the zeroone::svc serving subsystem: the LRU result cache, the
// bounded executor, the dispatcher's cache/invalidation behavior, and the
// TCP server end to end (concurrent correctness, overload rejection,
// deadlines, graceful drain).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "svc/cache.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/executor.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace zeroone {
namespace svc {
namespace {

// A small incomplete database: `certain` over it takes ~10-30ms (4 nulls).
constexpr const char* kFastDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4) }";
// With 5 nulls the same query takes several hundred ms — long enough that
// deadline, overload, and drain behavior are observable, short enough for
// a unit test.
constexpr const char* kSlowDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4), (c5, _5) }";
constexpr const char* kQuery = "Q(x) := exists y . R(x, y)";

Request MakeRequest(const std::string& command, const std::string& args = "",
                    const std::string& session = "default") {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

// ---------------------------------------------------------------------------
// LruCache

TEST(LruCacheTest, MissThenHit) {
  LruCache cache(4096);
  std::string value;
  EXPECT_FALSE(cache.Get("k", &value));
  cache.Put("k", "v");
  ASSERT_TRUE(cache.Get("k", &value));
  EXPECT_EQ(value, "v");
  LruCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LruCacheTest, OverwriteReplacesValue) {
  LruCache cache(4096);
  cache.Put("k", "old");
  cache.Put("k", "new");
  std::string value;
  ASSERT_TRUE(cache.Get("k", &value));
  EXPECT_EQ(value, "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedWithinByteBudget) {
  // Capacity fits exactly two entries (1-byte keys, 1-byte values).
  const std::size_t entry = 2 + LruCache::kEntryOverheadBytes;
  LruCache cache(2 * entry);
  cache.Put("a", "1");
  cache.Put("b", "2");
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));  // Refresh "a": now "b" is LRU.
  cache.Put("c", "3");                  // Evicts "b".
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_FALSE(cache.Get("b", &value));
  EXPECT_TRUE(cache.Get("c", &value));
  LruCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, 2 * entry);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(LruCacheTest, RejectsEntriesLargerThanCapacity) {
  LruCache cache(64);  // Smaller than the fixed per-entry overhead.
  cache.Put("k", "v");
  std::string value;
  EXPECT_FALSE(cache.Get("k", &value));
  EXPECT_EQ(cache.stats().oversized_rejections, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LruCacheTest, EraseIfRemovesMatchingPrefix) {
  LruCache cache(4096);
  cache.Put("s1\x1f k1", "a");
  cache.Put("s1\x1f k2", "b");
  cache.Put("s2\x1f k1", "c");
  std::size_t removed = cache.EraseIf([](std::string_view key) {
    return key.substr(0, 3) == "s1\x1f";
  });
  EXPECT_EQ(removed, 2u);
  std::string value;
  EXPECT_FALSE(cache.Get("s1\x1f k1", &value));
  EXPECT_TRUE(cache.Get("s2\x1f k1", &value));
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(LruCacheTest, ClearEmptiesEverything) {
  LruCache cache(4096);
  cache.Put("a", "1");
  cache.Put("b", "2");
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// ---------------------------------------------------------------------------
// BoundedExecutor

TEST(BoundedExecutorTest, RejectsWhenQueueFull) {
  BoundedExecutor executor(/*threads=*/1, /*queue_capacity=*/1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> done{0};
  // Occupy the single worker...
  ASSERT_TRUE(executor.TrySubmit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    ++done;
  }));
  // ...and give the worker a moment to pick the task up, so the next
  // submission lands in the queue rather than going straight to a worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(executor.TrySubmit([&] { ++done; }));  // Fills the queue.
  // Queue full: reject, never block, never drop silently.
  EXPECT_FALSE(executor.TrySubmit([&] { ++done; }));
  EXPECT_GE(executor.stats().rejected, 1u);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  executor.Drain();
  EXPECT_EQ(done.load(), 2);  // Both accepted tasks ran; the reject did not.
}

TEST(BoundedExecutorTest, DrainCompletesAcceptedTasks) {
  std::atomic<int> done{0};
  {
    BoundedExecutor executor(/*threads=*/2, /*queue_capacity=*/16);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(executor.TrySubmit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ++done;
      }));
    }
    executor.Drain();
    EXPECT_EQ(done.load(), 10);
    EXPECT_FALSE(executor.TrySubmit([&] { ++done; }));  // After drain.
  }
  EXPECT_EQ(done.load(), 10);
}

// ---------------------------------------------------------------------------
// Dispatcher (in-process, no sockets)

TEST(DispatcherTest, CachesReadsAndInvalidatesOnMutation) {
  Dispatcher dispatcher(Dispatcher::Options{});
  EXPECT_EQ(dispatcher.Execute(MakeRequest("db", kFastDb)).status,
            WireStatus::kOk);
  EXPECT_EQ(dispatcher.Execute(MakeRequest("query", kQuery)).status,
            WireStatus::kOk);

  Response cold = dispatcher.Execute(MakeRequest("certain"));
  ASSERT_EQ(cold.status, WireStatus::kOk);
  Response warm = dispatcher.Execute(MakeRequest("certain"));
  EXPECT_EQ(warm.payload, cold.payload);
  EXPECT_GE(dispatcher.cache().stats().hits, 1u);

  // Mutating the session must invalidate: add a tuple, re-ask.
  EXPECT_EQ(dispatcher.Execute(MakeRequest("db", "R(2) = { (c9, c9) }")).status,
            WireStatus::kOk);
  Response after = dispatcher.Execute(MakeRequest("certain"));
  ASSERT_EQ(after.status, WireStatus::kOk);
  EXPECT_NE(after.payload, cold.payload);  // (c9) is now a certain answer.
  EXPECT_GE(dispatcher.cache().stats().invalidations, 1u);
}

TEST(DispatcherTest, NoCacheRequestsBypassTheCache) {
  Dispatcher dispatcher(Dispatcher::Options{});
  dispatcher.Execute(MakeRequest("db", kFastDb));
  dispatcher.Execute(MakeRequest("query", kQuery));
  Request request = MakeRequest("certain");
  request.no_cache = true;
  dispatcher.Execute(request);
  dispatcher.Execute(request);
  EXPECT_EQ(dispatcher.cache().stats().hits, 0u);
  EXPECT_EQ(dispatcher.cache().stats().insertions, 0u);
}

TEST(DispatcherTest, CancelledChaseLeavesSessionUntouched) {
  Dispatcher dispatcher(Dispatcher::Options{});
  // A repairable FD violation: an uncancelled chase would rewrite the db.
  EXPECT_EQ(
      dispatcher.Execute(MakeRequest("db", "R(2) = { (a, _h1), (a, b) }"))
          .status,
      WireStatus::kOk);
  EXPECT_EQ(dispatcher.Execute(MakeRequest("fd", "R 2 0 1")).status,
            WireStatus::kOk);
  Request show = MakeRequest("show");
  show.no_cache = true;  // Compare live session state, not cache entries.
  Response before = dispatcher.Execute(show);
  ASSERT_EQ(before.status, WireStatus::kOk);

  // A chase abandoned by cancellation must not commit the half-repaired
  // database to the session (or bump its version).
  CancelToken token;
  token.Cancel();
  Response cancelled;
  {
    ScopedCancelToken scoped(&token);
    cancelled = dispatcher.Execute(MakeRequest("chase"));
  }
  EXPECT_EQ(cancelled.status, WireStatus::kDeadlineExceeded);
  Response after = dispatcher.Execute(show);
  ASSERT_EQ(after.status, WireStatus::kOk);
  EXPECT_EQ(after.payload, before.payload);

  // Without deadline pressure the same chase commits the repair.
  Response chased = dispatcher.Execute(MakeRequest("chase"));
  ASSERT_EQ(chased.status, WireStatus::kOk);
  EXPECT_NE(dispatcher.Execute(show).payload, before.payload);
}

TEST(DispatcherTest, SessionsAreIsolated) {
  Dispatcher dispatcher(Dispatcher::Options{});
  dispatcher.Execute(MakeRequest("db", kFastDb, "alpha"));
  dispatcher.Execute(MakeRequest("query", kQuery, "alpha"));
  Response beta = dispatcher.Execute(MakeRequest("certain", "", "beta"));
  EXPECT_EQ(beta.status, WireStatus::kErr);  // beta has no query set.
  Response alpha = dispatcher.Execute(MakeRequest("certain", "", "alpha"));
  EXPECT_EQ(alpha.status, WireStatus::kOk);
}

// ---------------------------------------------------------------------------
// Server end to end

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    server_ = std::make_unique<Server>(options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.message();
  }

  BlockingClient Connect() {
    BlockingClient client;
    Status status = client.Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(status.ok()) << status.message();
    return client;
  }

  // Runs the session preamble (db + query) through `client`.
  void Preamble(BlockingClient& client, const std::string& db,
                const std::string& session = "default") {
    StatusOr<Response> r = client.Call(MakeRequest("db", db, session));
    ASSERT_TRUE(r.ok()) << r.status().message();
    ASSERT_EQ(r->status, WireStatus::kOk) << r->payload;
    r = client.Call(MakeRequest("query", kQuery, session));
    ASSERT_TRUE(r.ok()) << r.status().message();
    ASSERT_EQ(r->status, WireStatus::kOk) << r->payload;
  }

  std::unique_ptr<Server> server_;
};

// Acceptance (a): concurrent clients observe answers bit-identical to a
// sequential evaluation of the same commands.
TEST_F(ServerTest, SixteenConcurrentClientsMatchSequentialAnswers) {
  ServerOptions options;
  options.threads = 4;
  options.queue_capacity = 256;
  StartServer(options);

  // Sequential reference: the same session state evaluated in-process.
  Dispatcher reference(Dispatcher::Options{});
  reference.Execute(MakeRequest("db", kFastDb));
  reference.Execute(MakeRequest("query", kQuery));
  const std::string expected_certain =
      reference.Execute(MakeRequest("certain")).payload;
  const std::string expected_possible =
      reference.Execute(MakeRequest("possible")).payload;
  const std::string expected_naive =
      reference.Execute(MakeRequest("naive")).payload;
  ASSERT_FALSE(expected_certain.empty());

  {
    BlockingClient setup = Connect();
    Preamble(setup, kFastDb);
  }

  constexpr int kClients = 16;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      BlockingClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        ++failures;
        return;
      }
      // Alternate cached and uncached so both paths are exercised under
      // concurrency.
      const struct {
        const char* command;
        const std::string* expected;
      } cases[] = {{"certain", &expected_certain},
                   {"possible", &expected_possible},
                   {"naive", &expected_naive}};
      for (int round = 0; round < 2; ++round) {
        for (const auto& c : cases) {
          Request request = MakeRequest(c.command);
          request.no_cache = (i + round) % 2 == 0;
          StatusOr<Response> response = client.Call(request);
          if (!response.ok() || response->status != WireStatus::kOk) {
            ++failures;
            return;
          }
          if (response->payload != *c.expected) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// Acceptance (b): a full bounded queue yields an explicit OVERLOADED
// response — requests are never silently dropped and the server never
// hangs.
TEST_F(ServerTest, FullQueueYieldsOverloaded) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  StartServer(options);
  {
    BlockingClient setup = Connect();
    Preamble(setup, kSlowDb);
  }

  // Pipeline a burst of slow, uncacheable requests on one connection. The
  // first occupies the worker (~hundreds of ms), the second fits the
  // queue, and with a burst this size at least one must be rejected.
  constexpr int kBurst = 8;
  BlockingClient client = Connect();
  for (int i = 0; i < kBurst; ++i) {
    Request request = MakeRequest("certain");
    request.id = std::to_string(i + 1);
    request.no_cache = true;
    ASSERT_TRUE(client.Send(request).ok());
  }
  int ok = 0, overloaded = 0, other = 0;
  for (int i = 0; i < kBurst; ++i) {
    StatusOr<Response> response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().message();
    if (response->status == WireStatus::kOk) {
      ++ok;
    } else if (response->status == WireStatus::kOverloaded) {
      ++overloaded;
    } else {
      ++other;
    }
  }
  // Every request was answered (no hang, no silent drop)...
  EXPECT_EQ(ok + overloaded + other, kBurst);
  EXPECT_EQ(other, 0);
  // ...some ran, and the overflow was rejected explicitly.
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(server_->stats().overloaded,
            static_cast<std::uint64_t>(overloaded));
}

// Acceptance (c): a request whose deadline expires mid-evaluation returns
// DEADLINE_EXCEEDED (cooperative cancellation inside the enumeration
// loops), and the cancelled partial result is never served from cache.
TEST_F(ServerTest, ExpiredDeadlineYieldsDeadlineExceeded) {
  StartServer(ServerOptions{});
  BlockingClient client = Connect();
  Preamble(client, kSlowDb);

  Request request = MakeRequest("certain");
  request.deadline_ms = 30;  // Far below the ~0.5s evaluation time.
  auto start = std::chrono::steady_clock::now();
  StatusOr<Response> response = client.Call(request);
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, WireStatus::kDeadlineExceeded)
      << response->payload;
  // Cancellation is cooperative but prompt: far sooner than completion.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(400));

  // The same query without a deadline must now compute the real answer —
  // the cancelled partial result must not have been cached.
  StatusOr<Response> full = client.Call(MakeRequest("certain"));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->status, WireStatus::kOk);
  EXPECT_NE(full->payload, response->payload);
}

// A deadline that already expired while the request sat in the queue is
// answered without starting the evaluation.
TEST_F(ServerTest, DeadlineCoversQueueTime) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 4;
  StartServer(options);
  BlockingClient client = Connect();
  Preamble(client, kSlowDb);

  Request slow = MakeRequest("certain");
  slow.id = "1";
  slow.no_cache = true;
  ASSERT_TRUE(client.Send(slow).ok());  // Occupies the single worker.
  Request queued = MakeRequest("naive");
  queued.id = "2";
  queued.deadline_ms = 20;  // Will expire long before the worker frees up.
  ASSERT_TRUE(client.Send(queued).ok());

  StatusOr<Response> first = client.Receive();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, WireStatus::kOk);
  StatusOr<Response> second = client.Receive();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, WireStatus::kDeadlineExceeded);
  EXPECT_NE(second->payload.find("not started"), std::string::npos)
      << second->payload;
}

// Acceptance (d): SIGTERM-style drain finishes in-flight requests — every
// accepted request is answered before the server exits.
TEST_F(ServerTest, DrainFinishesInFlightRequests) {
  ServerOptions options;
  options.threads = 2;
  StartServer(options);
  BlockingClient client = Connect();
  Preamble(client, kSlowDb);

  Request slow = MakeRequest("certain");
  slow.no_cache = true;
  ASSERT_TRUE(client.Send(slow).ok());
  // Let the request reach a worker, then initiate drain mid-evaluation.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->BeginShutdown();

  // The in-flight response still arrives, complete and correct.
  StatusOr<Response> response = client.Receive();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, WireStatus::kOk);
  EXPECT_NE(response->payload.find("(c"), std::string::npos)
      << response->payload;

  server_->Wait();
  // New connections are refused (or reset) after drain.
  BlockingClient late;
  if (late.Connect("127.0.0.1", server_->port()).ok()) {
    StatusOr<Response> refused = late.Call(MakeRequest("ping"));
    EXPECT_TRUE(!refused.ok() ||
                refused->status == WireStatus::kShuttingDown);
  }
}

// Responses on one connection come back in request order even when a slow
// request is pipelined before fast ones.
TEST_F(ServerTest, PipelinedResponsesArriveInOrder) {
  ServerOptions options;
  options.threads = 4;
  StartServer(options);
  BlockingClient client = Connect();
  Preamble(client, kFastDb);

  const char* ids[] = {"10", "11", "12", "13"};
  Request slow = MakeRequest("certain");
  slow.id = ids[0];
  slow.no_cache = true;
  ASSERT_TRUE(client.Send(slow).ok());
  for (int i = 1; i < 4; ++i) {
    Request fast = MakeRequest("ping");
    fast.id = ids[i];
    ASSERT_TRUE(client.Send(fast).ok());
  }
  for (const char* id : ids) {
    StatusOr<Response> response = client.Receive();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->id, id);
  }
}

// ---------------------------------------------------------------------------
// Adversarial clients (the epoll event loop must shrug all of these off)

// A raw socket for clients that misbehave below the Request abstraction:
// dribbling bytes, half-closing mid-frame, or never reading.
class RawSocket {
 public:
  ~RawSocket() { Close(); }

  bool Connect(int port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (rcvbuf > 0) {
      // Must be set before connect() to shrink the advertised window, so
      // the server's unsent bytes pile up in *its* outbox, not our kernel.
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool SendRaw(std::string_view bytes) {
    while (!bytes.empty()) {
      ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      bytes.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  // Reads until EOF or error; returns everything received.
  std::string ReadAll() {
    std::string all;
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return all;
      all.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int fd() const { return fd_; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

// Slowloris: a client dribbles a request line a byte at a time. The event
// loop must keep serving everyone else at full speed — the dribbler costs
// an input buffer, not a thread.
TEST_F(ServerTest, SlowlorisClientDoesNotStallOthers) {
  ServerOptions options;
  options.threads = 2;
  options.event_threads = 1;  // Worst case: dribbler shares the only loop.
  StartServer(options);

  RawSocket loris;
  ASSERT_TRUE(loris.Connect(server_->port()));
  const std::string line = "ping\n";
  BlockingClient other = Connect();
  std::uint64_t worst_us = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    ASSERT_TRUE(loris.SendRaw(line.substr(i, 1)));
    // Between dribbled bytes, a well-behaved client must see normal
    // latency on the same event loop.
    auto begin = std::chrono::steady_clock::now();
    StatusOr<Response> response = other.Call(MakeRequest("ping"));
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
    worst_us = std::max<std::uint64_t>(worst_us,
                                       static_cast<std::uint64_t>(elapsed));
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response->status, WireStatus::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Once the dribbled line completes, it is answered like any other.
  loris.ShutdownWrite();  // No more requests: the server EOFs back after.
  std::string frame = loris.ReadAll();
  EXPECT_NE(frame.find("ZO1 OK"), std::string::npos) << frame;
  // Generous bound (sanitizer-friendly): pings next to a stalled reader
  // must not take anywhere near a human-visible pause.
  EXPECT_LT(worst_us, 500000u) << "ping latency degraded to " << worst_us
                               << "us beside a slowloris client";
}

// Half-open: the client shuts down its write side mid-frame. The partial
// line is never answered; the server flushes nothing, half-closes back,
// and retires the connection instead of leaking it.
TEST_F(ServerTest, HalfOpenConnectionMidFrameIsRetired) {
  ServerOptions options;
  options.threads = 2;
  StartServer(options);

  {
    RawSocket half;
    ASSERT_TRUE(half.Connect(server_->port()));
    ASSERT_TRUE(half.SendRaw("cert"));  // No newline: an incomplete frame.
    half.ShutdownWrite();
    // EOF with a dangling partial line: no response, just EOF back.
    EXPECT_EQ(half.ReadAll(), "");
  }
  {
    // A complete request followed by SHUT_WR must still be answered: the
    // half-close says "no more requests", not "drop my responses".
    RawSocket half;
    ASSERT_TRUE(half.Connect(server_->port()));
    ASSERT_TRUE(half.SendRaw("ping\n"));
    half.ShutdownWrite();
    std::string frames = half.ReadAll();
    EXPECT_NE(frames.find("ZO1 OK"), std::string::npos) << frames;
  }
  // The server is unscathed.
  BlockingClient client = Connect();
  StatusOr<Response> response = client.Call(MakeRequest("ping"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOk);
}

// Connection churn: 500 connect/close cycles, alternating between clean
// requests and immediate disconnects, must neither leak connections nor
// degrade the server.
TEST_F(ServerTest, ConnectCloseChurnLeavesServerHealthy) {
  ServerOptions options;
  options.threads = 2;
  options.event_threads = 2;
  StartServer(options);

  for (int i = 0; i < 500; ++i) {
    RawSocket churn;
    ASSERT_TRUE(churn.Connect(server_->port())) << "cycle " << i;
    if (i % 3 == 0) {
      ASSERT_TRUE(churn.SendRaw("ping\n"));
      churn.ShutdownWrite();
      std::string frames = churn.ReadAll();
      EXPECT_NE(frames.find("ZO1 OK"), std::string::npos) << frames;
    }
    churn.Close();
  }
  BlockingClient client = Connect();
  StatusOr<Response> response = client.Call(MakeRequest("ping"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOk);
  EXPECT_GE(server_->stats().connections_accepted, 500u);
}

// A client that never reads: its responses pile up in the bounded outbox
// until the bound trips, then the connection is torn down — and clients
// sharing the worker pool and event loop never notice.
TEST_F(ServerTest, NeverReadingClientTripsOutboxBoundOnly) {
  ServerOptions options;
  options.threads = 2;
  options.event_threads = 1;     // The victim shares the loop with it.
  options.outbox_max_bytes = 64 * 1024;
  options.so_sndbuf = 8 * 1024;  // Keep kernel buffering from hiding it.
  StartServer(options);

  // ~6KiB per `show` response: enough that a few dozen unsent responses
  // overflow a 64KiB outbox.
  std::string big_db = "R(2) = { ";
  for (int i = 0; i < 200; ++i) {
    big_db += StrCat(i == 0 ? "" : ", ", "(k", i, ", v", i, ")");
  }
  big_db += " }";

  RawSocket glutton;
  ASSERT_TRUE(glutton.Connect(server_->port(), /*rcvbuf=*/4 * 1024));
  ASSERT_TRUE(glutton.SendRaw(
      FormatRequestLine(MakeRequest("db", big_db, "hoard")) + "\n"));
  const std::string show_line =
      FormatRequestLine(MakeRequest("show", "", "hoard")) + "\n";
  // Pipeline `show`s without ever reading. Stop once the server has cut
  // us off (send fails) or after a bounded volume.
  bool cut_off = false;
  for (int i = 0; i < 400 && !cut_off; ++i) {
    cut_off = !glutton.SendRaw(show_line);
  }
  // The overflow trip is asynchronous to our sends; poll the stat.
  for (int i = 0; i < 100 && server_->stats().outbox_overflows == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server_->stats().outbox_overflows, 1u);

  // The well-behaved client is unaffected.
  BlockingClient client = Connect();
  StatusOr<Response> response = client.Call(MakeRequest("ping"));
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, WireStatus::kOk);
}

// --max-conns admission control: connections beyond the cap are refused
// with an explicit OVERLOADED frame, and capacity frees up on disconnect.
TEST_F(ServerTest, MaxConnsRefusesExcessConnections) {
  ServerOptions options;
  options.threads = 2;
  options.max_conns = 2;
  StartServer(options);

  BlockingClient a = Connect();
  BlockingClient b = Connect();
  ASSERT_TRUE(a.Call(MakeRequest("ping")).ok());
  ASSERT_TRUE(b.Call(MakeRequest("ping")).ok());

  RawSocket refused;
  ASSERT_TRUE(refused.Connect(server_->port()));
  std::string frames = refused.ReadAll();  // Server closes after refusing.
  EXPECT_NE(frames.find("ZO1 OVERLOADED"), std::string::npos) << frames;
  EXPECT_NE(frames.find("connection limit"), std::string::npos) << frames;
  EXPECT_GE(server_->stats().connections_refused, 1u);

  a.Close();
  // Retired connections free capacity; retry until the sweep runs.
  bool admitted = false;
  for (int i = 0; i < 100 && !admitted; ++i) {
    BlockingClient c;
    if (c.Connect("127.0.0.1", server_->port()).ok()) {
      StatusOr<Response> response = c.Call(MakeRequest("ping"));
      admitted = response.ok() && response->status == WireStatus::kOk;
    }
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(admitted);
}

// Regression for the drain wakeup bugfix: threads parked in epoll_wait
// need the self-pipe to notice BeginShutdown — with 100 idle connections
// (no traffic, so no I/O events either), drain must complete promptly
// rather than hang until some unrelated event arrives.
TEST_F(ServerTest, DrainWithHundredIdleConnectionsIsFast) {
  ServerOptions options;
  options.threads = 2;
  options.event_threads = 2;
  StartServer(options);

  std::vector<RawSocket> idle(100);
  for (RawSocket& connection : idle) {
    ASSERT_TRUE(connection.Connect(server_->port()));
  }
  // Let the accept/registration pipeline settle so all 100 are parked in
  // the event loops when the drain starts.
  for (int i = 0; i < 100 && server_->stats().connections_accepted < 100;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(server_->stats().connections_accepted, 100u);

  auto begin = std::chrono::steady_clock::now();
  server_->BeginShutdown();
  server_->Wait();
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
  EXPECT_LT(elapsed_ms, 1000) << "drain with idle connections took "
                              << elapsed_ms << "ms";
  // Every idle connection was half-closed: clients see clean EOF.
  for (RawSocket& connection : idle) {
    EXPECT_EQ(connection.ReadAll(), "");
  }
}

// The legacy reader model stays wire-compatible (the differential test
// proves equivalence in depth; this is the cheap always-on smoke).
TEST_F(ServerTest, LegacyReadersStillServe) {
  ServerOptions options;
  options.threads = 2;
  options.legacy_readers = true;
  StartServer(options);
  EXPECT_EQ(server_->event_threads(), 0u);
  BlockingClient client = Connect();
  Preamble(client, kFastDb);
  StatusOr<Response> response = client.Call(MakeRequest("certain"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOk);
}

}  // namespace
}  // namespace svc
}  // namespace zeroone
