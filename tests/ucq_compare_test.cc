#include "core/ucq_compare.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/comparison.h"
#include "data/io.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(UcqCompareTest, Section51Example) {
  // R = {(1,⊥),(⊥',2)}, Q returns R: Sep((1,2),(1,1)) holds — the paper's
  // witness is v(⊥) = 2, v(⊥') = 1, where (1,2) ∈ v(R) but (1,1) ∉ v(R).
  Database db = Db("R(2) = { (1, _u51), (_u51b, 2) }");
  Query q = Q("Q(x, y) := R(x, y)");
  Tuple a{Value::Constant("1"), Value::Constant("2")};
  Tuple b{Value::Constant("1"), Value::Constant("1")};
  StatusOr<bool> sep = UcqSeparates(q, db, a, b);
  ASSERT_TRUE(sep.ok()) << sep.status().message();
  EXPECT_TRUE(*sep);
  // And the generic exponential algorithm agrees.
  EXPECT_TRUE(Separates(q, db, a, b));
}

TEST(UcqCompareTest, RejectsNonUcq) {
  Database db = Db("R(2) = { (1, 2) }");
  Query q = Q("Q(x, y) := R(x, y) & !R(y, x)");
  EXPECT_FALSE(UcqSeparates(q, db, Tuple{Value::Int(1), Value::Int(2)},
                            Tuple{Value::Int(2), Value::Int(1)})
                   .ok());
}

TEST(UcqCompareTest, CertainTupleNeverSeparatedFrom) {
  Database db = Db("R(2) = { (a, b), (a, _uc1) }");
  Query q = Q("Q(x, y) := R(x, y)");
  Tuple certain{Value::Constant("a"), Value::Constant("b")};
  // (a,⊥uc1) is a certain answer with nulls too (v((a,⊥)) ∈ v(R) for all
  // v), so neither separates from the other.
  Tuple partial{Value::Constant("a"), Value::Null("uc1")};
  StatusOr<bool> sep = UcqSeparates(q, db, partial, certain);
  ASSERT_TRUE(sep.ok());
  EXPECT_FALSE(*sep);
  StatusOr<bool> sep_back = UcqSeparates(q, db, certain, partial);
  ASSERT_TRUE(sep_back.ok());
  EXPECT_FALSE(*sep_back);
  // A tuple outside the relation is separated from by the certain answer:
  // v(⊥uc1) ≠ q witnesses (a,b) but not (a,q).
  Tuple outside{Value::Constant("a"), Value::Constant("q")};
  StatusOr<bool> sep2 = UcqSeparates(q, db, certain, outside);
  ASSERT_TRUE(sep2.ok());
  EXPECT_TRUE(*sep2);
  // And never the other way.
  StatusOr<bool> sep3 = UcqSeparates(q, db, outside, certain);
  ASSERT_TRUE(sep3.ok());
  EXPECT_FALSE(*sep3);
}

TEST(UcqCompareTest, BestAnswersOnSimpleInstance) {
  Database db = Db("R(2) = { (a, b), (a, _ub1) }");
  Query q = Q("Q(x, y) := R(x, y)");
  StatusOr<std::vector<Tuple>> best = UcqBestAnswers(q, db);
  ASSERT_TRUE(best.ok());
  std::vector<Tuple> generic = BestAnswers(q, db);
  std::vector<Tuple> fast = *best;
  std::sort(fast.begin(), fast.end());
  std::sort(generic.begin(), generic.end());
  EXPECT_EQ(fast, generic);
}

// The core property sweep: the polynomial-time Theorem 8 algorithm agrees
// with the generic bounded-range search on random UCQ instances, across all
// pairs of candidate tuples.
class UcqSepAgreement : public ::testing::TestWithParam<int> {};

TEST_P(UcqSepAgreement, MatchesGenericSeparates) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 4}, {"S", 1, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 2;
  db_options.null_probability = 0.45;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 4000;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 1;
  q_options.existential_variables = 1;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.constant_pool = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 4100;
  Query ucq = GenerateRandomUcq(q_options);

  std::vector<Value> adom = db.ActiveDomain();
  for (Value va : adom) {
    for (Value vb : adom) {
      Tuple a{va};
      Tuple b{vb};
      StatusOr<bool> fast = UcqSeparates(ucq, db, a, b);
      ASSERT_TRUE(fast.ok()) << fast.status().message();
      bool generic = Separates(ucq, db, a, b);
      EXPECT_EQ(*fast, generic)
          << "Sep(" << a.ToString() << ", " << b.ToString() << ") for "
          << ucq.ToString() << "\n"
          << db.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UcqSepAgreement, ::testing::Range(0, 25));

// Best answers agree between the two algorithms.
class UcqBestAgreement : public ::testing::TestWithParam<int> {};

TEST_P(UcqBestAgreement, MatchesGenericBest) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 3}, {"S", 1, 2}};
  db_options.constant_pool = 2;
  db_options.null_pool = 2;
  db_options.null_probability = 0.5;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 4200;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 1;
  q_options.existential_variables = 1;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 4300;
  Query ucq = GenerateRandomUcq(q_options);

  StatusOr<std::vector<Tuple>> fast = UcqBestAnswers(ucq, db);
  ASSERT_TRUE(fast.ok());
  std::vector<Tuple> generic = BestAnswers(ucq, db);
  std::vector<Tuple> fast_sorted = *fast;
  std::sort(fast_sorted.begin(), fast_sorted.end());
  std::sort(generic.begin(), generic.end());
  EXPECT_EQ(fast_sorted, generic)
      << ucq.ToString() << "\n" << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UcqBestAgreement, ::testing::Range(0, 20));

TEST(UcqCompareTest, BestMuSubsetOfBest) {
  Database db = Db("R(2) = { (1, _m1), (2, _m2) } S(2) = { (1, _m2) }");
  Query q = Q("Q(x, y) := R(x, y) | S(x, y)");
  StatusOr<std::vector<Tuple>> best = UcqBestAnswers(q, db);
  StatusOr<std::vector<Tuple>> best_mu = UcqBestMuAnswers(q, db);
  ASSERT_TRUE(best.ok());
  ASSERT_TRUE(best_mu.ok());
  std::vector<Tuple> best_sorted = *best;
  std::sort(best_sorted.begin(), best_sorted.end());
  for (const Tuple& t : *best_mu) {
    EXPECT_TRUE(
        std::binary_search(best_sorted.begin(), best_sorted.end(), t));
  }
}

}  // namespace
}  // namespace zeroone
