// Compile/link smoke test for the ZEROONE_OBS=OFF configuration. This
// translation unit is compiled with ZEROONE_OBS_ENABLED=0 and is
// deliberately NOT linked against zeroone_obs: it can only link if the
// instrumentation macros expand to nothing, which is exactly the guarantee
// the OFF configuration makes for instrumented library code.
#include "obs/metrics.h"
#include "obs/trace.h"

#include <cstdio>

#if ZEROONE_OBS_ENABLED
#error "obs_off_smoke must be compiled with ZEROONE_OBS_ENABLED=0"
#endif

int main() {
  for (int i = 0; i < 10; ++i) {
    ZO_TRACE_SPAN("smoke.loop");
    ZO_COUNTER_INC("smoke.iterations");
    ZO_COUNTER_ADD("smoke.bulk", 3);
  }
  std::puts("obs-off smoke ok");
  return 0;
}
