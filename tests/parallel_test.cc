#include "core/generic_instance.h"

#include <gtest/gtest.h>

#include "core/support.h"
#include "gen/random_db.h"
#include "gen/random_query.h"

namespace zeroone {
namespace {

// The parallel counter must be bit-identical to the sequential one: the
// valuation space is partitioned, never approximated.
class ParallelCountAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ParallelCountAgreement, MatchesSequential) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 4}, {"S", 1, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 3;
  db_options.null_probability = 0.5;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 140000;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 140100;
  Query fo = GenerateRandomFo(q_options, 0.35);

  GenericInstance instance =
      ToGenericInstance(MakeSupportInstance(fo, db, Tuple{}));
  for (std::size_t k : {5u, 8u}) {
    GenericSupportCount sequential = CountGenericSupport(instance, db, k);
    for (std::size_t threads : {2u, 4u, 16u}) {
      GenericSupportCount parallel =
          CountGenericSupportParallel(instance, db, k, threads);
      EXPECT_EQ(parallel.support, sequential.support)
          << "k=" << k << " threads=" << threads;
      EXPECT_EQ(parallel.total, sequential.total)
          << "k=" << k << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelCountAgreement,
                         ::testing::Range(0, 10));

TEST(ParallelCountTest, MuKParallelWrapper) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, 4}};
  options.constant_pool = 2;
  options.null_pool = 3;
  options.null_probability = 0.5;
  options.seed = 12345;
  Database db = GenerateRandomDatabase(options);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = 12346;
  Query q = GenerateRandomFo(q_options, 0.3);
  EXPECT_EQ(MuKParallel(q, db, Tuple{}, 7, 4), MuK(q, db, 7));
}

TEST(ParallelCountTest, DegenerateCases) {
  // No nulls: single valuation, sequential fallback.
  RandomDatabaseOptions options;
  options.relations = {{"R", 1, 3}};
  options.null_probability = 0.0;
  options.seed = 3;
  Database db = GenerateRandomDatabase(options);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 1}};
  q_options.free_variables = 0;
  q_options.existential_variables = 1;
  q_options.clauses = 1;
  q_options.atoms_per_clause = 1;
  q_options.seed = 4;
  Query q = GenerateRandomUcq(q_options);
  GenericInstance instance =
      ToGenericInstance(MakeSupportInstance(q, db, Tuple{}));
  GenericSupportCount count =
      CountGenericSupportParallel(instance, db, 4, 8);
  EXPECT_EQ(count.total, BigInt(1));
}

}  // namespace
}  // namespace zeroone
