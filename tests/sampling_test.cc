#include "core/sampling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/measure.h"
#include "core/support.h"
#include "data/io.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(SamplingTest, DegenerateCasesAreExact) {
  Database db = Db("R(2) = { (a, _sm1) }");
  // Always-true and always-false queries estimate exactly.
  MuEstimate certain = EstimateMuK(Q(":= exists x . R(a, x)"), db, Tuple{},
                                   8, 200, 1);
  EXPECT_DOUBLE_EQ(certain.estimate, 1.0);
  MuEstimate impossible = EstimateMuK(Q(":= R(b, b)"), db, Tuple{}, 8, 200,
                                      1);
  EXPECT_DOUBLE_EQ(impossible.estimate, 0.0);
}

TEST(SamplingTest, ConfidenceShrinksWithSamples) {
  Database db = Db("R(2) = { (a, _sm2) }");
  Query q = Q(":= exists x . R(a, x) & x != b");
  MuEstimate small = EstimateMuK(q, db, Tuple{}, 8, 100, 2);
  MuEstimate large = EstimateMuK(q, db, Tuple{}, 8, 10000, 2);
  EXPECT_LT(large.confidence95, small.confidence95);
  EXPECT_LT(large.confidence95, 0.02);
}

// The estimate lands within the Hoeffding interval of the exact µ^k on
// randomized instances (with seeds fixed, this is deterministic; the 95%
// interval at 4000 samples is ±0.0215, and we allow 2× slack so the test
// is robust rather than flaky-by-construction).
class SamplingAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(SamplingAccuracy, WithinConfidence) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 3}};
  db_options.constant_pool = 2;
  db_options.null_pool = 2;
  db_options.null_probability = 0.5;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 100000;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 100100;
  Query query = GenerateRandomFo(q_options, 0.3);

  const std::size_t k = 7;
  double exact = MuK(query, db, k).ToDouble();
  MuEstimate estimate = EstimateMuK(query, db, Tuple{}, k, 4000,
                                    static_cast<std::uint64_t>(GetParam()));
  EXPECT_LE(std::abs(estimate.estimate - exact),
            2 * estimate.confidence95)
      << "exact " << exact << " vs estimate " << estimate.estimate;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingAccuracy, ::testing::Range(0, 15));

TEST(SamplingTest, TracksConvergenceToNaive) {
  // At large k the estimate reflects the 0–1 law: close to 1 for a naive
  // answer.

  Database db = Db(
      "R1(2) = { (c1, _1), (c2, _1), (c2, _2) }"
      "R2(2) = { (c1, _2), (c2, _1), (_3, _1) }");
  Query q = Q("Q(x, y) := R1(x, y) & !R2(x, y)");
  Tuple t{Value::Constant("c1"), Value::Null("1")};
  ASSERT_EQ(MuLimit(q, db, t), 1);
  MuEstimate at_large_k = EstimateMuK(q, db, t, 200, 2000, 7);
  EXPECT_GT(at_large_k.estimate, 0.95);
}

}  // namespace
}  // namespace zeroone
