#include "query/safety.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace zeroone {
namespace {

bool Safe(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return IsSafeRange(*q);
}

TEST(SafetyTest, PositiveQueriesAreSafe) {
  EXPECT_TRUE(Safe("Q(x) := exists y . R(x, y)"));
  EXPECT_TRUE(Safe("Q(x, y) := R(x, y) | S(x, y)"));
  EXPECT_TRUE(Safe("Q(x) := R(x, x) & S(x)"));
  EXPECT_TRUE(Safe(":= exists x, y . R(x, y)"));
}

TEST(SafetyTest, GuardedNegationIsSafe) {
  // The intro query: difference guarded by a positive atom.
  EXPECT_TRUE(Safe("Q(x, y) := R1(x, y) & !R2(x, y)"));
  // Inequality guarded by atoms.
  EXPECT_TRUE(Safe("Q(x, y) := R(x, y) & x != y"));
}

TEST(SafetyTest, UnguardedNegationIsUnsafe) {
  // "Everything not in R" is domain dependent.
  EXPECT_FALSE(Safe("Q(x) := !R(x)"));
  // Disjunction restricts only the common variables.
  EXPECT_FALSE(Safe("Q(x, y) := R(x, x) | S(y)"));
}

TEST(SafetyTest, EqualityPropagation) {
  // y is grounded through the equality chain to a grounded x.
  EXPECT_TRUE(Safe("Q(x, y) := R(x) & x = y"));
  EXPECT_TRUE(Safe("Q(y) := exists x . R(x) & x = y"));
  // x = y alone grounds nothing.
  EXPECT_FALSE(Safe("Q(x, y) := x = y"));
  // Constant equality grounds.
  EXPECT_TRUE(Safe("Q(x) := x = 3"));
}

TEST(SafetyTest, QuantifierCases) {
  // ∃x (x = x) is the textbook domain-dependent sentence.
  EXPECT_FALSE(Safe(":= exists x . x = x"));
  // Guarded universals are safe: ∀x (U(x) → R(x)) ≡ ¬∃x (U(x) ∧ ¬R(x)).
  EXPECT_TRUE(Safe(":= forall x . U(x) -> R(x)"));
  // Unguarded universal is not: ∀x R(x) quantifies over the whole domain.
  EXPECT_FALSE(Safe(":= forall x . R(x)"));
}

TEST(SafetyTest, PaperExamplesClassified) {
  // The Section 4.3 query is a guarded universal — safe.
  EXPECT_TRUE(Safe(":= forall x . U(x) -> (R(x) & !S(x))"));
  // Proposition 7's query is safe (each disjunct grounds x positively).
  EXPECT_TRUE(Safe(
      "Q(x) := (B(x) & (exists y . R(y, y))) | "
      "(A(x) & !(exists y . R(y, y)))"));
}

TEST(SafetyTest, DoubleNegationNormalizes) {
  EXPECT_TRUE(Safe("Q(x) := !(!(R(x)))"));
  // ¬(¬R(x) ∨ ¬S(x)) ≡ R(x) ∧ S(x): safe after push-down.
  EXPECT_TRUE(Safe("Q(x) := !(!(R(x)) | !(S(x)))"));
}

}  // namespace
}  // namespace zeroone
