// Wire-protocol tests (svc/protocol.h): request/response round-trips plus
// a malformed-input table — truncated frames, oversized payloads, invalid
// UTF-8, unknown commands, bad options — that must produce error Statuses,
// never crashes (this suite is part of the ASan/UBSan and TSan CI jobs).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "svc/protocol.h"

namespace zeroone {
namespace svc {
namespace {

TEST(WireStatusTest, NamesRoundTrip) {
  for (WireStatus status :
       {WireStatus::kOk, WireStatus::kErr, WireStatus::kBadRequest,
        WireStatus::kOverloaded, WireStatus::kDeadlineExceeded,
        WireStatus::kShuttingDown, WireStatus::kUnavailable}) {
    StatusOr<WireStatus> parsed = ParseWireStatus(WireStatusName(status));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, status);
  }
  EXPECT_FALSE(ParseWireStatus("NOPE").ok());
  EXPECT_FALSE(ParseWireStatus("").ok());
}

TEST(RequestLineTest, MinimalCommand) {
  StatusOr<Request> request = ParseRequestLine("ping");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->command, "ping");
  EXPECT_EQ(request->id, "0");
  EXPECT_EQ(request->session, "default");
  EXPECT_EQ(request->deadline_ms, 0u);
  EXPECT_FALSE(request->no_cache);
  EXPECT_TRUE(request->args.empty());
}

TEST(RequestLineTest, AllOptionsAndArgs) {
  StatusOr<Request> request = ParseRequestLine(
      "@id=42 @session=alpha @deadline_ms=250 @nocache mu (a, b)");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->id, "42");
  EXPECT_EQ(request->session, "alpha");
  EXPECT_EQ(request->deadline_ms, 250u);
  EXPECT_TRUE(request->no_cache);
  EXPECT_EQ(request->command, "mu");
  EXPECT_EQ(request->args, "(a, b)");
}

TEST(RequestLineTest, FormatParsesBackToTheSameRequest) {
  Request request;
  request.id = "7";
  request.session = "s-1.x";
  request.deadline_ms = 1500;
  request.no_cache = true;
  request.command = "certain";
  StatusOr<Request> reparsed = ParseRequestLine(FormatRequestLine(request));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->id, request.id);
  EXPECT_EQ(reparsed->session, request.session);
  EXPECT_EQ(reparsed->deadline_ms, request.deadline_ms);
  EXPECT_EQ(reparsed->no_cache, request.no_cache);
  EXPECT_EQ(reparsed->command, request.command);

  // Defaults are omitted from the canonical form.
  Request plain;
  plain.command = "ping";
  EXPECT_EQ(FormatRequestLine(plain), "ping");
}

TEST(RequestLineTest, ArgsWithUnicodeSurvive) {
  StatusOr<Request> request = ParseRequestLine("db R(1) = { (⊥1) }");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->args, "R(1) = { (⊥1) }");
}

// The malformed-input table: every entry must yield !ok(), never a crash.
TEST(RequestLineTest, MalformedInputsAreRejectedNotCrashed) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"", "empty line"},
      {"   ", "only whitespace"},
      {"frobnicate", "unknown command"},
      {"PING", "case-sensitive command"},
      {"@id=1", "options but no command"},
      {"@id= ping", "empty option value"},
      {"@id=a!b ping", "bad token character"},
      {"@id=" + std::string(65, 'x') + " ping", "token over 64 bytes"},
      {"@session=bad/name ping", "slash in session token"},
      {"@deadline_ms=abc ping", "non-numeric deadline"},
      {"@deadline_ms=-5 ping", "negative deadline"},
      {"@deadline_ms=99999999999999999999 ping", "deadline overflow"},
      {"@unknown=1 ping", "unknown option"},
      {"@nocache=1 ping", "value on a flag option"},
      {std::string("ping \x01", 6), "control byte in args"},
      {std::string("pi\0ng", 5), "embedded NUL"},
      {"ping \xff\xfe", "invalid UTF-8 bytes"},
      {"ping \xc0\xaf", "overlong UTF-8 encoding"},
      {"ping \xed\xa0\x80", "UTF-16 surrogate in UTF-8"},
      {"ping \xf4\x90\x80\x80", "code point past U+10FFFF"},
      {"ping \xe2\x8a", "truncated UTF-8 sequence"},
      {"certain " + std::string(kMaxRequestBytes, 'a'), "oversized line"},
  };
  for (const auto& [line, label] : cases) {
    StatusOr<Request> request = ParseRequestLine(line);
    EXPECT_FALSE(request.ok()) << "accepted: " << label;
    if (!request.ok()) {
      EXPECT_FALSE(request.status().message().empty()) << label;
    }
  }
}

TEST(RequestLineTest, CommandClassesAreConsistent) {
  // Every mutation and cacheable command must be known; no command is both.
  const char* commands[] = {"ping",  "stats", "db",    "load",  "reset",
                            "show",  "query", "naive", "certain", "possible",
                            "best",  "bestmu", "mu",   "muk",   "poly",
                            "compare", "cond", "fd",   "ind", "constraints",
                            "clear", "chase", "ra",    "dlog"};
  for (const char* command : commands) {
    EXPECT_TRUE(IsKnownCommand(command)) << command;
    EXPECT_FALSE(IsMutationCommand(command) && IsCacheableCommand(command))
        << command << " is both a mutation and cacheable";
  }
  EXPECT_FALSE(IsKnownCommand("nope"));
  EXPECT_TRUE(IsMutationCommand("db"));
  EXPECT_TRUE(IsMutationCommand("query"));
  EXPECT_TRUE(IsCacheableCommand("certain"));
  EXPECT_FALSE(IsCacheableCommand("show"));
  // `save` persists a snapshot of the current state: not a mutation (the
  // version must not change) and never cacheable.
  EXPECT_TRUE(IsKnownCommand("save"));
  EXPECT_FALSE(IsMutationCommand("save"));
  EXPECT_FALSE(IsCacheableCommand("save"));
}

TEST(ResponseFrameTest, RoundTrips) {
  Response response;
  response.status = WireStatus::kOk;
  response.id = "17";
  response.payload = "line one\nline two\n";
  std::string frame = FormatResponse(response);
  Response parsed;
  StatusOr<std::size_t> consumed = ParseResponseFrame(frame, &parsed);
  ASSERT_TRUE(consumed.ok()) << consumed.status().message();
  EXPECT_EQ(*consumed, frame.size());
  EXPECT_EQ(parsed.status, response.status);
  EXPECT_EQ(parsed.id, response.id);
  EXPECT_EQ(parsed.payload, response.payload);
}

TEST(ResponseFrameTest, EmptyPayloadRoundTrips) {
  Response response;
  response.status = WireStatus::kOverloaded;
  std::string frame = FormatResponse(response);
  Response parsed;
  StatusOr<std::size_t> consumed = ParseResponseFrame(frame, &parsed);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, frame.size());
  EXPECT_TRUE(parsed.payload.empty());
}

TEST(ResponseFrameTest, IncompleteFramesAskForMoreBytes) {
  Response response;
  response.payload = "some payload";
  std::string frame = FormatResponse(response);
  // Every strict prefix is "incomplete", consumed == 0, never an error.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Response parsed;
    StatusOr<std::size_t> consumed =
        ParseResponseFrame(std::string_view(frame).substr(0, cut), &parsed);
    ASSERT_TRUE(consumed.ok()) << "prefix length " << cut << ": "
                               << consumed.status().message();
    EXPECT_EQ(*consumed, 0u) << "prefix length " << cut;
  }
}

TEST(ResponseFrameTest, BackToBackFramesParseOneAtATime) {
  Response first;
  first.id = "1";
  first.payload = "a";
  Response second;
  second.id = "2";
  second.status = WireStatus::kErr;
  second.payload = "b";
  std::string buffer = FormatResponse(first) + FormatResponse(second);
  Response parsed;
  StatusOr<std::size_t> consumed = ParseResponseFrame(buffer, &parsed);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(parsed.id, "1");
  buffer.erase(0, *consumed);
  consumed = ParseResponseFrame(buffer, &parsed);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(parsed.id, "2");
  EXPECT_EQ(parsed.status, WireStatus::kErr);
  EXPECT_EQ(buffer.size(), *consumed);
}

TEST(ResponseFrameTest, MalformedFramesAreRejectedNotCrashed) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"XX1 OK 1 0\n\n", "bad magic"},
      {"ZO1 WHAT 1 0\n\n", "unknown status"},
      {"ZO1 OK 1 abc\npayload\n", "non-numeric length"},
      {"ZO1 OK 1 -1\n\n", "negative length"},
      {"ZO1 OK 1\n", "missing length field"},
      {"ZO1 OK 1 99999999999999999999\n", "length overflow"},
      {"ZO1 OK 1 9999999999\n", "length past the payload cap"},
      {"ZO1 OK 1 1\nab", "missing frame terminator"},
      {std::string("ZO1 OK \x01 1\na\n", 13), "control byte in header"},
  };
  for (const auto& [buffer, label] : cases) {
    Response parsed;
    StatusOr<std::size_t> consumed = ParseResponseFrame(buffer, &parsed);
    EXPECT_FALSE(consumed.ok()) << "accepted: " << label;
  }
}

TEST(ResponseFrameTest, OversizedPayloadsAreTruncatedWithMarker) {
  Response response;
  response.payload = std::string(kMaxPayloadBytes + 100, 'x');
  std::string frame = FormatResponse(response);
  Response parsed;
  StatusOr<std::size_t> consumed = ParseResponseFrame(frame, &parsed);
  ASSERT_TRUE(consumed.ok()) << consumed.status().message();
  EXPECT_LE(parsed.payload.size(), kMaxPayloadBytes);
  EXPECT_NE(parsed.payload.find("[truncated]"), std::string::npos);
}

TEST(Utf8Test, AcceptsAndRejectsCorrectly) {
  EXPECT_TRUE(IsValidUtf8(""));
  EXPECT_TRUE(IsValidUtf8("plain ascii"));
  EXPECT_TRUE(IsValidUtf8("⊥1 ≈ µ"));          // Multi-byte BMP.
  EXPECT_TRUE(IsValidUtf8("\xf0\x9f\x98\x80"));  // U+1F600, 4 bytes.
  EXPECT_FALSE(IsValidUtf8("\x80"));             // Lone continuation.
  EXPECT_FALSE(IsValidUtf8("\xc0\xaf"));         // Overlong '/'.
  EXPECT_FALSE(IsValidUtf8("\xe0\x80\x80"));     // Overlong 3-byte.
  EXPECT_FALSE(IsValidUtf8("\xed\xa0\x80"));     // Surrogate D800.
  EXPECT_FALSE(IsValidUtf8("\xf4\x90\x80\x80")); // Past U+10FFFF.
  EXPECT_FALSE(IsValidUtf8("\xc2"));             // Truncated tail.
}

}  // namespace
}  // namespace svc
}  // namespace zeroone
