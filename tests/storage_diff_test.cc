// Differential conformance test for the indexed storage core: every
// evaluator retargeted onto Relation's scan/probe API must compute exactly
// what the historical full-scan algorithms computed. For each seed, the
// same randomly generated databases, queries, programs, and constraint sets
// are evaluated once under StorageMode::kScan (the reference path replaying
// the pre-index algorithms) and once under StorageMode::kIndexed (the
// production path with hash probes), and the results are compared:
//
//  - FO naive evaluation: identical answer vectors (order included).
//  - Certain / possible answers: identical verdicts per candidate tuple.
//  - Homomorphism: identical existence verdicts. The mapping itself may
//    legitimately differ (any homomorphism witnesses), so cores are
//    compared by size and isomorphism rather than literal equality.
//  - Datalog: identical materialized databases (operator== on Database).
//  - FD chase: identical outcome — success flag, failure reason, chased
//    database, and null mapping (the chase resolves violations in a
//    deterministic order that the probe path reproduces exactly).
//
// Three distinct seeds run in CI.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <vector>

#include "constraints/fd.h"
#include "core/measure.h"
#include "data/database.h"
#include "data/homomorphism.h"
#include "data/isomorphism.h"
#include "data/relation.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/eval.h"

namespace zeroone {
namespace {

// Runs `body` under the given storage mode, restoring the previous mode.
template <typename Fn>
auto WithMode(StorageMode mode, Fn&& body) {
  StorageMode previous = storage_mode();
  SetStorageMode(mode);
  auto result = body();
  SetStorageMode(previous);
  return result;
}

Database SmallDb(std::uint64_t seed) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, 6}, {"S", 1, 3}};
  options.constant_pool = 4;
  options.null_pool = 2;
  options.null_probability = 0.3;
  options.seed = seed;
  return GenerateRandomDatabase(options);
}

class StorageDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageDiffTest, NaiveEvaluationIsIdentical) {
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.seed = seed;
  for (int variant = 0; variant < 4; ++variant) {
    q_options.seed = seed * 97 + static_cast<std::uint64_t>(variant);
    Query fo = GenerateRandomFo(q_options, /*negation_probability=*/0.3);
    auto scan = WithMode(StorageMode::kScan,
                         [&] { return NaiveEvaluate(fo, db); });
    auto indexed = WithMode(StorageMode::kIndexed,
                            [&] { return NaiveEvaluate(fo, db); });
    EXPECT_EQ(scan, indexed) << "seed " << seed << " variant " << variant
                             << ": " << fo.ToString();
  }
}

TEST_P(StorageDiffTest, CertainAndPossibleVerdictsAreIdentical) {
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.seed = seed + 17;
  Query ucq = GenerateRandomUcq(q_options);
  auto certain_scan =
      WithMode(StorageMode::kScan, [&] { return CertainAnswers(ucq, db); });
  auto certain_indexed =
      WithMode(StorageMode::kIndexed, [&] { return CertainAnswers(ucq, db); });
  EXPECT_EQ(certain_scan, certain_indexed) << ucq.ToString();
  // Possibility on the naive candidates (a superset of the certain ones).
  for (const Tuple& candidate : NaiveEvaluate(ucq, db)) {
    bool scan = WithMode(StorageMode::kScan, [&] {
      return IsPossibleAnswer(ucq, db, candidate);
    });
    bool indexed = WithMode(StorageMode::kIndexed, [&] {
      return IsPossibleAnswer(ucq, db, candidate);
    });
    EXPECT_EQ(scan, indexed) << candidate.ToString();
  }
}

TEST_P(StorageDiffTest, HomomorphismAndCoreAgree) {
  const std::uint64_t seed = GetParam();
  Database a = SmallDb(seed);
  Database b = SmallDb(seed + 1000);
  auto exists = [&](const Database& from, const Database& to) {
    return std::pair<bool, bool>(
        WithMode(StorageMode::kScan,
                 [&] { return FindHomomorphism(from, to).has_value(); }),
        WithMode(StorageMode::kIndexed,
                 [&] { return FindHomomorphism(from, to).has_value(); }));
  };
  auto [ab_scan, ab_indexed] = exists(a, b);
  EXPECT_EQ(ab_scan, ab_indexed);
  auto [ba_scan, ba_indexed] = exists(b, a);
  EXPECT_EQ(ba_scan, ba_indexed);
  auto [aa_scan, aa_indexed] = exists(a, a);
  EXPECT_TRUE(aa_scan);
  EXPECT_TRUE(aa_indexed);
  // Cores are unique up to isomorphism, not literally: the indexed search
  // may find a different (equally valid) folding.
  Database core_scan =
      WithMode(StorageMode::kScan, [&] { return ComputeCore(a); });
  Database core_indexed =
      WithMode(StorageMode::kIndexed, [&] { return ComputeCore(a); });
  ASSERT_EQ(core_scan.relations().size(), core_indexed.relations().size());
  for (const auto& [name, rel] : core_scan.relations()) {
    EXPECT_EQ(rel.size(), core_indexed.relation(name).size()) << name;
  }
  EXPECT_TRUE(AreIsomorphic(core_scan, core_indexed));
}

TEST_P(StorageDiffTest, DatalogFixpointsAreIdentical) {
  const std::uint64_t seed = GetParam();
  RandomDatabaseOptions options;
  options.relations = {{"E", 2, 8}};
  options.constant_pool = 5;
  options.null_pool = 2;
  options.null_probability = 0.25;
  options.seed = seed + 31;
  Database db = GenerateRandomDatabase(options);
  StatusOr<DatalogProgram> program = ParseDatalogProgram(R"(
    T(X, Y) :- E(X, Y).
    T(X, Z) :- E(X, Y), T(Y, Z).
    ?- T
  )");
  ASSERT_TRUE(program.ok()) << program.status().message();
  Database scan = WithMode(StorageMode::kScan, [&] {
    return MaterializeDatalog(*program, db);
  });
  Database indexed = WithMode(StorageMode::kIndexed, [&] {
    return MaterializeDatalog(*program, db);
  });
  EXPECT_EQ(scan, indexed);
  EXPECT_EQ(WithMode(StorageMode::kScan,
                     [&] { return EvaluateDatalog(*program, db); }),
            WithMode(StorageMode::kIndexed,
                     [&] { return EvaluateDatalog(*program, db); }));
}

TEST_P(StorageDiffTest, ChaseOutcomesAreIdentical) {
  const std::uint64_t seed = GetParam();
  // Wider null pool: chases that actually merge and fail are the
  // interesting ones, and both outcomes occur across the three seeds.
  RandomDatabaseOptions options;
  options.relations = {{"R", 3, 8}};
  options.constant_pool = 3;
  options.null_pool = 3;
  options.null_probability = 0.4;
  options.seed = seed + 59;
  Database db = GenerateRandomDatabase(options);
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R", 3, {0}, 1),
      FunctionalDependency("R", 3, {1, 2}, 0),
  };
  ChaseResult scan =
      WithMode(StorageMode::kScan, [&] { return ChaseFds(fds, db); });
  ChaseResult indexed =
      WithMode(StorageMode::kIndexed, [&] { return ChaseFds(fds, db); });
  EXPECT_EQ(scan.success, indexed.success);
  EXPECT_EQ(scan.failure_reason, indexed.failure_reason);
  EXPECT_EQ(scan.null_mapping, indexed.null_mapping);
  if (scan.success && indexed.success) {
    EXPECT_EQ(scan.database, indexed.database);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageDiffTest,
                         ::testing::Values(7u, 1234u, 98765u));

}  // namespace
}  // namespace zeroone
