#include "constraints/dependencies.h"

#include <gtest/gtest.h>

#include "core/conditional.h"
#include "core/measure.h"
#include "data/io.h"
#include "query/eval.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

// R(x, y) ∧ R(x, z) → y = z (the FD R: 0 → 1 as an EGD).
EqualityGeneratingDependency KeyEgd() {
  std::vector<DependencyAtom> body = {
      {"R", {Term::Variable(0), Term::Variable(1)}},
      {"R", {Term::Variable(0), Term::Variable(2)}}};
  return EqualityGeneratingDependency(std::move(body), 1, 2);
}

TEST(EgdTest, FormulaSemanticsMatchesFd) {
  Query sigma = ConstraintSetQuery({std::make_shared<
      EqualityGeneratingDependency>(KeyEgd())});
  EXPECT_TRUE(EvaluateMembership(sigma, Db("R(2) = { (a, b), (c, b) }"),
                                 Tuple{}));
  EXPECT_FALSE(EvaluateMembership(sigma, Db("R(2) = { (a, b), (a, c) }"),
                                  Tuple{}));
}

TEST(EgdTest, ChaseMergesLikeFdChase) {
  DependencySet dependencies;
  dependencies.egds.push_back(KeyEgd());
  GeneralChaseResult result =
      ChaseDependencies(dependencies, Db("R(2) = { (a, _ge1), (a, b) }"));
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.database.relation("R").size(), 1u);
  EXPECT_TRUE(result.database.relation("R").Contains(
      Tuple{Value::Constant("a"), Value::Constant("b")}));
}

TEST(EgdTest, ChaseFailsOnConstants) {
  DependencySet dependencies;
  dependencies.egds.push_back(KeyEgd());
  GeneralChaseResult result =
      ChaseDependencies(dependencies, Db("R(2) = { (a, b), (a, c) }"));
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.failure_reason.empty());
}

// R(x, y) → ∃z S(y, z) — an existential TGD (a foreign key with invention).
TupleGeneratingDependency ReferenceTgd() {
  std::vector<DependencyAtom> body = {
      {"R", {Term::Variable(0), Term::Variable(1)}}};
  std::vector<DependencyAtom> head = {
      {"S", {Term::Variable(1), Term::Variable(2)}}};
  return TupleGeneratingDependency(std::move(body), std::move(head));
}

TEST(TgdTest, FormulaSemantics) {
  Query sigma = ConstraintSetQuery(
      {std::make_shared<TupleGeneratingDependency>(ReferenceTgd())});
  EXPECT_TRUE(EvaluateMembership(
      sigma, Db("R(2) = { (a, b) }  S(2) = { (b, q) }"), Tuple{}));
  EXPECT_FALSE(EvaluateMembership(
      sigma, Db("R(2) = { (a, b) }  S(2) = { (c, q) }"), Tuple{}));
}

TEST(TgdTest, ChaseInventsNulls) {
  DependencySet dependencies;
  dependencies.tgds.push_back(ReferenceTgd());
  Database db = Db("R(2) = { (a, b) }");
  GeneralChaseResult result = ChaseDependencies(dependencies, db);
  ASSERT_TRUE(result.success);
  ASSERT_TRUE(result.database.HasRelation("S"));
  ASSERT_EQ(result.database.relation("S").size(), 1u);
  Tuple invented = result.database.relation("S").row(0).ToTuple();
  EXPECT_EQ(invented[0], Value::Constant("b"));
  EXPECT_TRUE(invented[1].is_null());  // Fresh labeled null.
  // The result satisfies the dependency (chase fixpoint).
  Query sigma = ConstraintSetQuery(dependencies.ToConstraintSet());
  EXPECT_TRUE(EvaluateMembership(sigma, result.database, Tuple{}));
}

TEST(TgdTest, StandardChaseDoesNotRefire) {
  // If S already satisfies the head, the TGD must not invent anything.
  DependencySet dependencies;
  dependencies.tgds.push_back(ReferenceTgd());
  Database db = Db("R(2) = { (a, b) }  S(2) = { (b, c) }");
  GeneralChaseResult result = ChaseDependencies(dependencies, db);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.database, db);
}

TEST(TgdTest, CascadeAcrossDependencies) {
  // R → S → T: two invention steps.
  DependencySet dependencies;
  dependencies.tgds.push_back(ReferenceTgd());  // R(x,y) → ∃z S(y,z).
  dependencies.tgds.push_back(TupleGeneratingDependency(
      {{"S", {Term::Variable(0), Term::Variable(1)}}},
      {{"T", {Term::Variable(1)}}}));  // Full TGD: S(x,y) → T(y).
  GeneralChaseResult result =
      ChaseDependencies(dependencies, Db("R(2) = { (a, b) }"));
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.database.relation("S").size(), 1u);
  EXPECT_EQ(result.database.relation("T").size(), 1u);
}

TEST(WeakAcyclicityTest, DetectsCycles) {
  // Self-feeding invention: S(x, y) → ∃z S(y, z) is NOT weakly acyclic.
  TupleGeneratingDependency looping(
      {{"S", {Term::Variable(0), Term::Variable(1)}}},
      {{"S", {Term::Variable(1), Term::Variable(2)}}});
  EXPECT_FALSE(CheckWeakAcyclicity({looping}));
  // The single reference TGD R → S is weakly acyclic.
  EXPECT_TRUE(CheckWeakAcyclicity({ReferenceTgd()}));
  // Full TGDs (no existentials) are always weakly acyclic.
  TupleGeneratingDependency full(
      {{"R", {Term::Variable(0), Term::Variable(1)}}},
      {{"T", {Term::Variable(1), Term::Variable(0)}}});
  EXPECT_TRUE(CheckWeakAcyclicity({full}));
}

TEST(WeakAcyclicityTest, NonTerminatingChaseHitsBudget) {
  DependencySet dependencies;
  dependencies.tgds.push_back(TupleGeneratingDependency(
      {{"S", {Term::Variable(0), Term::Variable(1)}}},
      {{"S", {Term::Variable(1), Term::Variable(2)}}}));
  ASSERT_FALSE(CheckWeakAcyclicity(dependencies.tgds));
  GeneralChaseResult result =
      ChaseDependencies(dependencies, Db("S(2) = { (a, b) }"),
                        /*max_steps=*/50);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.failure_reason, "chase step budget exhausted");
}

TEST(DependenciesTest, ConditionalMeasureWithEgds) {
  // EGDs as Σ in the conditional measure: behave exactly like their FD
  // counterparts (a 0–1 law via Theorem 5's reasoning).
  Database db = Db("R(2) = { (a, _gm1), (a, b) }");
  ConstraintSet egd_sigma = {
      std::make_shared<EqualityGeneratingDependency>(KeyEgd())};
  // Under Σ, ⊥gm1 must be b: the query R(a, c) is conditionally impossible,
  // R(a, b) conditionally certain.
  EXPECT_EQ(ConditionalMu(Q(":= R(a, b)"), egd_sigma, db), Rational(1));
  EXPECT_EQ(ConditionalMu(Q(":= R(a, c)"), egd_sigma, db), Rational(0));
}

TEST(DependenciesTest, DataExchangeScenario) {
  // A miniature data-exchange setting: source facts are copied into the
  // target with invented join keys, then queried under certain-answer
  // semantics — the pipeline the paper's intro points at.
  Database source = Db("Emp(2) = { (alice, sales), (bob, hr) }");
  DependencySet mapping;
  // Emp(n, d) → ∃i Works(n, i), DeptOf(i, d).
  mapping.tgds.push_back(TupleGeneratingDependency(
      {{"Emp", {Term::Variable(0), Term::Variable(1)}}},
      {{"Works", {Term::Variable(0), Term::Variable(2)}},
       {"DeptOf", {Term::Variable(2), Term::Variable(1)}}}));
  ASSERT_TRUE(CheckWeakAcyclicity(mapping.tgds));
  GeneralChaseResult result = ChaseDependencies(mapping, source);
  ASSERT_TRUE(result.success);
  // The canonical universal solution has one invented id per employee.
  EXPECT_EQ(result.database.relation("Works").size(), 2u);
  EXPECT_EQ(result.database.relation("DeptOf").size(), 2u);
  EXPECT_EQ(result.database.Nulls().size(), 2u);
  // Certain answer over the exchanged data: alice works in sales.
  Query q = Q(":= exists i . Works(alice, i) & DeptOf(i, sales)");
  EXPECT_TRUE(IsCertainAnswer(q, result.database, Tuple{}));
  // And naive evaluation agrees (Theorem 1: almost certainly true).
  EXPECT_EQ(MuLimit(q, result.database), 1);
}

TEST(DependenciesTest, ConditionalMeasureWithTgds) {
  // TGDs compile to FO sentences, so they work as Σ in the conditional
  // measure directly: R(x,y) → ∃z S(y,z) forces v(⊥) to a value with an
  // S-successor, i.e. v(⊥) ∈ {b, d}; the query picks out one of the two.
  Database db = Db("R(2) = { (a, _tc1) }  S(2) = { (b, c), (d, e) }");
  ConstraintSet sigma = {std::make_shared<TupleGeneratingDependency>(
      std::vector<DependencyAtom>{
          {"R", {Term::Variable(0), Term::Variable(1)}}},
      std::vector<DependencyAtom>{
          {"S", {Term::Variable(1), Term::Variable(2)}}})};
  Query q = Q(":= exists x . R(a, x) & S(x, c)");
  EXPECT_EQ(ConditionalMu(q, sigma, db), Rational(1, 2));
  // And unconditionally the query is almost surely false.
  EXPECT_EQ(MuLimit(q, db), 0);
}

}  // namespace
}  // namespace zeroone
