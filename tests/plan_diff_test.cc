// Differential conformance test for the compiled evaluation path: the
// cost-based planner + bytecode VM (src/plan/, ZEROONE_PLAN unset or
// `compiled`) must compute byte-for-byte what the PR-5 interpreter
// (`ZEROONE_PLAN=interpret`) computes. For each seed, the same randomly
// generated databases, queries, and programs run once per PlanMode and the
// results are compared:
//
//  - FO naive evaluation (EvaluateQuery): identical answer vectors, order
//    included — the compiled output loops sweep candidates in domain
//    order precisely so emission order survives compilation.
//  - Membership (EvaluateMembership): identical verdicts per tuple.
//  - Certain / possible answers: identical answer sets and verdicts.
//  - UCQ matcher: identical answer sets and membership verdicts (the
//    planner permutes the backtracking join order; the match set is
//    join-order independent).
//  - Homomorphism / cores: identical existence verdicts, isomorphic cores.
//  - Datalog: identical materialized databases (the body orderer changes
//    instantiation order only; the derived set is accumulated into a set).
//
// Three distinct seeds run in CI; CI runs the whole binary under both
// ZEROONE_PLAN-unset and ZEROONE_PLAN=interpret environments so the reference
// path itself stays exercised under sanitizers.

#include <gtest/gtest.h>

#include <vector>

#include "core/measure.h"
#include "data/database.h"
#include "data/homomorphism.h"
#include "data/isomorphism.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "plan/mode.h"
#include "query/eval.h"
#include "query/matcher.h"

namespace zeroone {
namespace {

// Runs `body` under the given plan mode, restoring the previous mode.
template <typename Fn>
auto WithPlanMode(plan::PlanMode mode, Fn&& body) {
  plan::PlanMode previous = plan::plan_mode();
  plan::SetPlanMode(mode);
  auto result = body();
  plan::SetPlanMode(previous);
  return result;
}

template <typename Fn>
auto Compiled(Fn&& body) {
  return WithPlanMode(plan::PlanMode::kCompiled, std::forward<Fn>(body));
}

template <typename Fn>
auto Interpreted(Fn&& body) {
  return WithPlanMode(plan::PlanMode::kInterpret, std::forward<Fn>(body));
}

Database SmallDb(std::uint64_t seed) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, 6}, {"S", 1, 3}};
  options.constant_pool = 4;
  options.null_pool = 2;
  options.null_probability = 0.3;
  options.seed = seed;
  return GenerateRandomDatabase(options);
}

class PlanDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanDiffTest, NaiveEvaluationIsIdentical) {
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  for (int variant = 0; variant < 8; ++variant) {
    q_options.seed = seed * 97 + static_cast<std::uint64_t>(variant);
    Query fo = GenerateRandomFo(q_options, /*negation_probability=*/0.3);
    auto interpreted = Interpreted([&] { return NaiveEvaluate(fo, db); });
    auto compiled = Compiled([&] { return NaiveEvaluate(fo, db); });
    EXPECT_EQ(interpreted, compiled)
        << "seed " << seed << " variant " << variant << ": " << fo.ToString();
  }
}

TEST_P(PlanDiffTest, MembershipVerdictsAreIdentical) {
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  std::vector<Value> domain = db.ActiveDomain();
  for (int variant = 0; variant < 4; ++variant) {
    q_options.seed = seed * 131 + static_cast<std::uint64_t>(variant);
    Query fo = GenerateRandomFo(q_options, /*negation_probability=*/0.3);
    if (fo.is_boolean()) continue;
    // Probe every adom tuple of the query's arity (arity ≤ 2 by
    // construction, so this stays small).
    std::vector<Tuple> probes;
    if (fo.arity() == 1) {
      for (Value v : domain) probes.push_back(Tuple({v}));
    } else {
      for (Value a : domain) {
        for (Value b : domain) probes.push_back(Tuple({a, b}));
      }
    }
    for (const Tuple& t : probes) {
      bool interpreted =
          Interpreted([&] { return EvaluateMembership(fo, db, t, domain); });
      bool compiled =
          Compiled([&] { return EvaluateMembership(fo, db, t, domain); });
      EXPECT_EQ(interpreted, compiled)
          << fo.ToString() << " at " << t.ToString();
    }
  }
}

TEST_P(PlanDiffTest, CertainAndPossibleVerdictsAreIdentical) {
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.seed = seed + 17;
  Query ucq = GenerateRandomUcq(q_options);
  auto certain_interp =
      Interpreted([&] { return CertainAnswers(ucq, db); });
  auto certain_compiled = Compiled([&] { return CertainAnswers(ucq, db); });
  EXPECT_EQ(certain_interp, certain_compiled) << ucq.ToString();
  for (const Tuple& candidate : NaiveEvaluate(ucq, db)) {
    bool interpreted =
        Interpreted([&] { return IsPossibleAnswer(ucq, db, candidate); });
    bool compiled =
        Compiled([&] { return IsPossibleAnswer(ucq, db, candidate); });
    EXPECT_EQ(interpreted, compiled) << candidate.ToString();
  }
}

TEST_P(PlanDiffTest, UcqMatcherAgreesAcrossModes) {
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  for (int variant = 0; variant < 4; ++variant) {
    q_options.seed = seed * 211 + static_cast<std::uint64_t>(variant);
    Query ucq = GenerateRandomUcq(q_options);
    auto interpreted = Interpreted([&] { return UcqEvaluate(ucq, db); });
    auto compiled = Compiled([&] { return UcqEvaluate(ucq, db); });
    ASSERT_TRUE(interpreted.ok()) << interpreted.status().message();
    ASSERT_TRUE(compiled.ok()) << compiled.status().message();
    EXPECT_EQ(interpreted.value(), compiled.value()) << ucq.ToString();
    for (const Tuple& t : interpreted.value()) {
      auto member_i = Interpreted([&] { return UcqMembership(ucq, db, t); });
      auto member_c = Compiled([&] { return UcqMembership(ucq, db, t); });
      ASSERT_TRUE(member_i.ok() && member_c.ok());
      EXPECT_TRUE(member_i.value());
      EXPECT_TRUE(member_c.value());
    }
  }
}

TEST_P(PlanDiffTest, HomomorphismAndCoreAgree) {
  const std::uint64_t seed = GetParam();
  Database a = SmallDb(seed);
  Database b = SmallDb(seed + 1000);
  auto exists = [&](const Database& from, const Database& to) {
    return std::pair<bool, bool>(
        Interpreted([&] { return FindHomomorphism(from, to).has_value(); }),
        Compiled([&] { return FindHomomorphism(from, to).has_value(); }));
  };
  auto [ab_interp, ab_compiled] = exists(a, b);
  EXPECT_EQ(ab_interp, ab_compiled);
  auto [ba_interp, ba_compiled] = exists(b, a);
  EXPECT_EQ(ba_interp, ba_compiled);
  Database core_interp = Interpreted([&] { return ComputeCore(a); });
  Database core_compiled = Compiled([&] { return ComputeCore(a); });
  ASSERT_EQ(core_interp.relations().size(),
            core_compiled.relations().size());
  for (const auto& [name, rel] : core_interp.relations()) {
    EXPECT_EQ(rel.size(), core_compiled.relation(name).size()) << name;
  }
  EXPECT_TRUE(AreIsomorphic(core_interp, core_compiled));
}

TEST_P(PlanDiffTest, DatalogFixpointsAreIdentical) {
  const std::uint64_t seed = GetParam();
  RandomDatabaseOptions options;
  options.relations = {{"E", 2, 8}, {"Blocked", 1, 2}};
  options.constant_pool = 5;
  options.null_pool = 2;
  options.null_probability = 0.25;
  options.seed = seed + 31;
  Database db = GenerateRandomDatabase(options);
  // Recursion plus stratified negation: exercises the delta designation
  // under reordering and the ground-only placement of negated literals.
  StatusOr<DatalogProgram> program = ParseDatalogProgram(R"(
    T(X, Y) :- E(X, Y).
    T(X, Z) :- E(X, Y), T(Y, Z).
    Free(X, Y) :- T(X, Y), !Blocked(Y).
    ?- Free
  )");
  ASSERT_TRUE(program.ok()) << program.status().message();
  Database interpreted =
      Interpreted([&] { return MaterializeDatalog(*program, db); });
  Database compiled =
      Compiled([&] { return MaterializeDatalog(*program, db); });
  EXPECT_EQ(interpreted, compiled);
  EXPECT_EQ(Interpreted([&] { return EvaluateDatalog(*program, db); }),
            Compiled([&] { return EvaluateDatalog(*program, db); }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanDiffTest,
                         ::testing::Values(7u, 1234u, 98765u));

}  // namespace
}  // namespace zeroone
