// Differential serving test for the compiled evaluation path: the same
// deterministic script of commands is replayed against a server running
// with PlanMode::kInterpret (the PR-5 tree-walking evaluators) and one
// with PlanMode::kCompiled (cost-based plans + bytecode VM, plan cache
// hot), and the two wire transcripts must be byte-identical. The script
// mixes reads, mutations (which bump the session version and so invalidate
// cached plans), repeated queries (which hit the plan cache), and
// @explain=1 requests (whose output is mode-independent: explain always
// compiles against the live state). No timing-sensitive phases — the modes
// differ in speed by design.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/mode.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace zeroone {
namespace svc {
namespace {

constexpr const char* kDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, c1), (c4, c2) }";
constexpr const char* kQuery = "Q(x) := exists y . R(x, y)";
constexpr const char* kJoinQuery = "Q(x) := exists y . R(x, y) & R(y, x)";

// Raw frames, uninterpreted (see svc_epoll_diff_test for rationale).
class RawClient {
 public:
  ~RawClient() { Close(); }

  void Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void SendLine(const Request& request) {
    std::string bytes = FormatRequestLine(request) + "\n";
    std::string_view view = bytes;
    while (!view.empty()) {
      ssize_t n = ::send(fd_, view.data(), view.size(), MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      view.remove_prefix(static_cast<std::size_t>(n));
    }
  }

  void ReadFrames(std::size_t count, std::vector<std::string>* out) {
    while (count > 0) {
      Response parsed;
      StatusOr<std::size_t> consumed = ParseResponseFrame(buffer_, &parsed);
      if (!consumed.ok()) {
        out->push_back("<<frame error: " + consumed.status().message() +
                       ">>");
        return;
      }
      if (*consumed > 0) {
        out->push_back(buffer_.substr(0, *consumed));
        buffer_.erase(0, *consumed);
        --count;
        continue;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        out->push_back("<<eof>>");
        return;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

Request Req(const std::string& command, const std::string& args = "",
            const std::string& session = "default") {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

void Roundtrip(RawClient& client, std::vector<std::string>& transcript,
               const Request& request) {
  client.SendLine(request);
  client.ReadFrames(1, &transcript);
}

std::vector<std::string> RunTranscript(plan::PlanMode mode,
                                       std::uint32_t seed) {
  plan::PlanMode previous = plan::plan_mode();
  plan::SetPlanMode(mode);

  ServerOptions options;
  options.threads = 2;
  Server server(options);
  Status started = server.Start();
  EXPECT_TRUE(started.ok()) << started.message();

  std::vector<std::string> transcript;
  {
    RawClient client;
    client.Connect(server.port());
    Roundtrip(client, transcript, Req("db", kDb));
    Roundtrip(client, transcript, Req("query", kQuery));

    // Seeded random read/mutate script, one request outstanding at a time.
    std::mt19937 rng(seed);
    int insert_counter = 0;
    for (int i = 0; i < 40; ++i) {
      std::uint32_t choice = static_cast<std::uint32_t>(rng()) % 10;
      Request request;
      switch (choice) {
        case 0:
        case 1:
          request = Req("certain");
          break;
        case 2:
          request = Req("possible");
          break;
        case 3:
        case 4:
          request = Req("naive");
          break;
        case 5:
          ++insert_counter;
          request = Req("db", StrCat("R(2) = { (k", insert_counter, ", v",
                                     insert_counter, ") }"));
          break;
        case 6:
          request = Req("query",
                        static_cast<std::uint32_t>(rng()) % 2 == 0
                            ? kQuery
                            : kJoinQuery);
          break;
        case 7:
          request = Req("naive");
          request.explain = true;
          break;
        default:
          request = Req("mu", "(c1)");
          break;
      }
      request.id = StrCat("id", i);
      if (static_cast<std::uint32_t>(rng()) % 3 == 0) {
        request.no_cache = true;
      }
      Roundtrip(client, transcript, request);
    }
  }

  server.Shutdown();
  plan::SetPlanMode(previous);
  return transcript;
}

class SvcPlanDiffTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SvcPlanDiffTest, InterpretedAndCompiledTranscriptsAreByteIdentical) {
  const std::uint32_t seed = GetParam();
  std::vector<std::string> interpreted =
      RunTranscript(plan::PlanMode::kInterpret, seed);
  std::vector<std::string> compiled =
      RunTranscript(plan::PlanMode::kCompiled, seed);
  ASSERT_EQ(interpreted.size(), compiled.size());
  for (std::size_t i = 0; i < interpreted.size(); ++i) {
    EXPECT_EQ(interpreted[i], compiled[i])
        << "transcript diverges at frame " << i;
  }
  auto contains = [&](const char* needle) {
    for (const std::string& frame : compiled) {
      if (frame.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("ZO1 OK"));
  EXPECT_TRUE(contains("plan [enumerate]"));  // @explain=1 frames answered.
  EXPECT_FALSE(contains("<<frame error"));
  EXPECT_FALSE(contains("<<eof"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvcPlanDiffTest,
                         ::testing::Values(21u, 404u, 6006u));

}  // namespace
}  // namespace svc
}  // namespace zeroone
