#include "core/ranking.h"

#include <gtest/gtest.h>

#include "constraints/ind.h"
#include "core/comparison.h"
#include "core/support.h"
#include "data/io.h"
#include "gen/scenarios.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(RankingTest, IntroExampleOrder) {
  // µ^k((c2,⊥2)) = 1 − 1/k > µ^k((c1,⊥1)) = (1 − 1/k)²: the better-supported
  // answer ranks first at every k.
  IntroExample example = PaperIntroExample();
  std::vector<RankedAnswer> ranked =
      RankAnswers(example.query, example.db, 8);
  ASSERT_GE(ranked.size(), 2u);
  Tuple better{Value::Constant("c2"), Value::Null("2")};
  Tuple worse{Value::Constant("c1"), Value::Null("1")};
  EXPECT_EQ(ranked[0].tuple, better);
  EXPECT_EQ(ranked[0].mu_k, Rational(7, 8));
  EXPECT_EQ(ranked[1].tuple, worse);
  EXPECT_EQ(ranked[1].mu_k, Rational(49, 64));
  EXPECT_TRUE(ranked[0].almost_certain);
  EXPECT_FALSE(ranked[0].certain);
}

TEST(RankingTest, CertainAnswersScoreOne) {
  Database db = Db("R(2) = { (a, b), (a, _rk1) }");
  Query q = Q("Q(x, y) := R(x, y)");
  std::vector<RankedAnswer> ranked = RankAnswers(q, db, 6);
  ASSERT_FALSE(ranked.empty());
  // Both relation tuples are certain (with nulls) and rank at the top with
  // µ^k = 1.
  EXPECT_EQ(ranked[0].mu_k, Rational(1));
  EXPECT_TRUE(ranked[0].certain);
  EXPECT_TRUE(ranked[1].certain);
}

TEST(RankingTest, ImpossibleAnswersExcluded) {
  Database db = Db("R(1) = { (a) }  S(1) = { (a), (b) }");
  Query q = Q("Q(x) := R(x)");
  std::vector<RankedAnswer> ranked = RankAnswers(q, db, 5);
  ASSERT_EQ(ranked.size(), 1u);  // Only (a); (b) has empty support.
  EXPECT_EQ(ranked[0].tuple, Tuple{Value::Constant("a")});
}

TEST(RankingTest, RefinesSupportOrder) {
  // Supp(a) ⊆ Supp(b) must imply rank(b) ≤ rank(a) — check on the Section 5
  // example across several k.
  BestAnswerExample example = PaperBestAnswerExample();
  for (std::size_t k : {5u, 9u}) {
    std::vector<RankedAnswer> ranked =
        RankAnswersAmong(example.query, example.db, k,
                         {example.tuple_a, example.tuple_b});
    ASSERT_EQ(ranked.size(), 2u);
    EXPECT_EQ(ranked[0].tuple, example.tuple_b) << k;
    EXPECT_LT(ranked[1].mu_k, ranked[0].mu_k) << k;
  }
}

TEST(AlternativeNuTest, TypeMeasureStabilizesUnlikeMu) {
  // The remark after Theorem 1: here (unlike in logical 0–1 laws) the
  // number of isomorphism types stabilizes with k. On this instance the
  // four A-fixing types of v(D) — {(1,1)}, {(1,x)}, {(1,1),(1,x)},
  // {(1,x),(1,y)} — are all realized from k = 3 on, two of them witnessed,
  // so ν^k ≡ 1/2 while µ^k = 1/k → 0.
  Database db = Db("R(2) = { (1, _nu1), (1, _nu2) }");
  Query q = Q(":= exists x, y . R(x, y) & (forall z, u . R(z, u) -> u = y)");
  EXPECT_EQ(NuK(q, db, 2), Rational(2, 3));  // The fourth type needs k ≥ 3.
  for (std::size_t k : {3u, 4u, 6u}) {
    EXPECT_EQ(NuK(q, db, k), Rational(1, 2)) << k;
    EXPECT_GE(NuK(q, db, k), MuK(q, db, k)) << k;
  }
}

TEST(AlternativeNuTest, ExactTypeCountsOnTinyInstance) {
  // D: U = {⊥}. Outcomes over k=3: v(⊥) ∈ {1, c2, c3} where 1 ∈ A (the
  // database constant... here A = Const(D) ∪ C = {} ∪ query constants).
  Database db = Db("U(1) = { (_nt1) }");
  Query q = Q(":= U(a)");  // A = {a}.
  // Valuations: v(⊥) = a (witness) or one of k−1 others (no witness, all
  // one type). So ν^k = 1/2 for every k ≥ 2 while µ^k = 1/k.
  for (std::size_t k : {2u, 4u, 7u}) {
    EXPECT_EQ(NuK(q, db, k), Rational(1, 2)) << k;
    EXPECT_EQ(MuK(q, db, k),
              Rational(1, static_cast<std::int64_t>(k)))
        << k;
  }
}

TEST(ConditionalRankingTest, Section4ExampleOrder) {
  // Under the IND, (2,⊥) ranks above (1,⊥) by 2/3 vs 1/3 — exactly the
  // paper's conditional probabilities.
  ConditionalExample example = PaperConditionalExample();
  std::vector<ConditionalRankedAnswer> ranked = RankAnswersUnderConstraints(
      example.query, example.constraints, example.db,
      {example.tuple_a, example.tuple_b});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].tuple, example.tuple_b);
  EXPECT_EQ(ranked[0].mu, Rational(2, 3));
  EXPECT_EQ(ranked[1].tuple, example.tuple_a);
  EXPECT_EQ(ranked[1].mu, Rational(1, 3));
}

TEST(ConditionalRankingTest, UnsatisfiableSigmaRanksAllZero) {
  Database db = Db("R(1) = { (_cz1) }  V(1) = {}");
  ConstraintSet sigma = {std::make_shared<InclusionDependency>(
      "R", 1, std::vector<std::size_t>{0}, "V", 1,
      std::vector<std::size_t>{0})};
  Query q = Q("Q(x) := R(x)");
  std::vector<ConditionalRankedAnswer> ranked = RankAnswersUnderConstraints(
      q, sigma, db, {Tuple{Value::Null("cz1")}});
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].mu, Rational(0));
}

}  // namespace
}  // namespace zeroone
