// Warm-standby replication tests (src/svc/replication.h):
//  - the ship/shiplist wire surface on the Dispatcher: record batches past
//    a cursor, the caught-up answer, the snapshot fallback after
//    compaction, and argument validation;
//  - the follower's apply primitives: ApplyReplicatedRecord is ordered and
//    idempotent (and lands in the follower's own WAL), stale snapshot
//    images are rejected, read-only mode answers mutations UNAVAILABLE;
//  - the Replicator pull loop against a live primary Server: catch-up,
//    idempotent re-pull, cursor initialization from local state, the
//    snapshot install path, a ship-stream cut (injected fault) healing on
//    the next pull, and promotion after the primary dies.

#include "svc/replication.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "gtest/gtest.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/snapshot.h"
#include "svc/wal.h"

namespace zeroone {
namespace svc {
namespace {

Request MakeRequest(const std::string& command, const std::string& args,
                    const std::string& session = "s") {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::Global().Clear(); }
  void TearDown() override {
    fault::Registry::Global().Clear();
    RemoveDirs();
  }

  std::string MakeDir() {
    char templ[] = "/tmp/zo1repl_XXXXXX";
    char* dir = ::mkdtemp(templ);
    EXPECT_NE(dir, nullptr);
    dirs_.push_back(dir);
    return dir;
  }

  void RemoveDirs() {
    for (const std::string& dir : dirs_) {
      if (DIR* d = ::opendir(dir.c_str())) {
        while (dirent* entry = ::readdir(d)) {
          std::string name = entry->d_name;
          if (name != "." && name != "..") {
            ::unlink((dir + "/" + name).c_str());
          }
        }
        ::closedir(d);
      }
      ::rmdir(dir.c_str());
    }
    dirs_.clear();
  }

  std::vector<std::string> dirs_;
};

void Mutate(Dispatcher* dispatcher, const std::string& tuple,
            const std::string& session = "s") {
  Response response = dispatcher->Execute(
      MakeRequest("db", "M(1) = { (" + tuple + ") }", session));
  ASSERT_EQ(response.status, WireStatus::kOk) << response.payload;
}

// ---------------------------------------------------------------------------
// The ship / shiplist wire surface

TEST_F(ReplicationTest, ShipListEnumeratesSessionVersions) {
  Dispatcher dispatcher(Dispatcher::Options{1 << 20, MakeDir()});
  Mutate(&dispatcher, "a1", "alpha");
  Mutate(&dispatcher, "b1", "beta");
  Mutate(&dispatcher, "b2", "beta");
  Response response = dispatcher.Execute(MakeRequest("shiplist", "", "x"));
  ASSERT_EQ(response.status, WireStatus::kOk) << response.payload;
  EXPECT_EQ(response.payload, "alpha 1\nbeta 2\n");
}

TEST_F(ReplicationTest, ShipIsDisabledWithoutPersistence) {
  Dispatcher dispatcher(Dispatcher::Options{});  // No snapshot dir, no WAL.
  EXPECT_EQ(dispatcher.Execute(MakeRequest("shiplist", "", "x")).status,
            WireStatus::kErr);
  EXPECT_EQ(dispatcher.Execute(MakeRequest("ship", "s 0", "x")).status,
            WireStatus::kErr);
}

TEST_F(ReplicationTest, ShipReturnsRecordBatchesPastTheCursor) {
  Dispatcher dispatcher(Dispatcher::Options{1 << 20, MakeDir()});
  for (int i = 1; i <= 3; ++i) {
    Mutate(&dispatcher, "m" + std::to_string(i));
  }
  Response response = dispatcher.Execute(MakeRequest("ship", "s 0", "x"));
  ASSERT_EQ(response.status, WireStatus::kOk) << response.payload;
  ASSERT_EQ(response.payload.substr(0, 9), "RECS 3 0\n");
  // The batch body is a run of decodable record frames, versions 1..3.
  std::string_view frames =
      std::string_view(response.payload).substr(9);
  for (std::uint64_t v = 1; v <= 3; ++v) {
    WalRecord record;
    StatusOr<std::size_t> consumed = DecodeWalRecord(frames, &record);
    ASSERT_TRUE(consumed.ok()) << consumed.status().message();
    ASSERT_GT(*consumed, 0u);
    EXPECT_EQ(record.version, v);
    EXPECT_EQ(record.command, "db");
    frames.remove_prefix(*consumed);
  }
  EXPECT_TRUE(frames.empty());

  // A cursor mid-log ships only the suffix; a current cursor ships nothing.
  response = dispatcher.Execute(MakeRequest("ship", "s 2", "x"));
  ASSERT_EQ(response.status, WireStatus::kOk);
  EXPECT_EQ(response.payload.substr(0, 9), "RECS 1 0\n");
  response = dispatcher.Execute(MakeRequest("ship", "s 3", "x"));
  ASSERT_EQ(response.status, WireStatus::kOk);
  EXPECT_EQ(response.payload, "RECS 0 0\n");
}

TEST_F(ReplicationTest, ShipFallsBackToASnapshotAfterCompaction) {
  // compact_every=1: every mutation folds the log, so a cursor of 0 is
  // behind the log's base and only a full image can catch the follower up.
  Dispatcher dispatcher(Dispatcher::Options{
      1 << 20, MakeDir(), /*wal=*/true, AckMode::kAsync,
      /*wal_compact_every=*/1});
  Mutate(&dispatcher, "m1");
  Mutate(&dispatcher, "m2");
  Response response = dispatcher.Execute(MakeRequest("ship", "s 0", "x"));
  ASSERT_EQ(response.status, WireStatus::kOk) << response.payload;
  ASSERT_EQ(response.payload.substr(0, 5), "SNAP\n");
  std::string session;
  SessionState decoded;
  Status status =
      DecodeSnapshot(response.payload.substr(5), &session, &decoded);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(session, "s");
  EXPECT_EQ(decoded.version, 2u);
}

TEST_F(ReplicationTest, ShipFallsBackToASnapshotOnAnOversizedLegacyRecord) {
  // Append refuses oversized records today, but a log written before the
  // cap (or by a version-skewed tool) can still hold one. Shipping such a
  // frame would overflow the wire payload and truncate mid-frame, wedging
  // the follower on an undecodable stream — the ship path must fall back
  // to the snapshot form instead, which covers the record.
  Dispatcher dispatcher(Dispatcher::Options{1 << 20, MakeDir()});
  Mutate(&dispatcher, "m1");
  Mutate(&dispatcher, "m2");
  {
    WalRecord huge;
    huge.version = 3;
    huge.command = "loaddata";
    huge.args = std::string(kMaxWalRecordBytes, 'x');
    std::ofstream out(dispatcher.wal()->PathFor("s"),
                      std::ios::binary | std::ios::app);
    out << EncodeWalRecord(huge);
    ASSERT_TRUE(out.good());
  }
  Response response = dispatcher.Execute(MakeRequest("ship", "s 0", "x"));
  ASSERT_EQ(response.status, WireStatus::kOk) << response.payload;
  ASSERT_EQ(response.payload.substr(0, 5), "SNAP\n");
  std::string session;
  SessionState decoded;
  Status status =
      DecodeSnapshot(response.payload.substr(5), &session, &decoded);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(session, "s");
  EXPECT_EQ(decoded.version, 2u);  // The applied state, sans the stray frame.
}

TEST_F(ReplicationTest, ShipValidatesItsArguments) {
  Dispatcher dispatcher(Dispatcher::Options{1 << 20, MakeDir()});
  const char* bad[] = {"", "s", "s x", "s 1 2extra", "bad name 1"};
  for (const char* args : bad) {
    SCOPED_TRACE(args);
    EXPECT_EQ(dispatcher.Execute(MakeRequest("ship", args, "x")).status,
              WireStatus::kErr);
  }
}

// ---------------------------------------------------------------------------
// Follower apply primitives

WalRecord ShippedRecord(std::uint64_t version, const std::string& tuple) {
  WalRecord record;
  record.version = version;
  record.command = "db";
  record.args = "M(1) = { (" + tuple + ") }";
  return record;
}

TEST_F(ReplicationTest, ApplyReplicatedRecordIsOrderedAndIdempotent) {
  Dispatcher follower(Dispatcher::Options{1 << 20, MakeDir()});
  ASSERT_TRUE(follower.ApplyReplicatedRecord("s", ShippedRecord(1, "a")).ok());
  ASSERT_TRUE(follower.ApplyReplicatedRecord("s", ShippedRecord(2, "b")).ok());
  // A re-shipped prefix (the follower pulled twice) is skipped, not
  // reapplied — versions never move backwards.
  ASSERT_TRUE(follower.ApplyReplicatedRecord("s", ShippedRecord(1, "a")).ok());
  EXPECT_EQ(follower.SessionVersions(),
            (std::vector<std::pair<std::string, std::uint64_t>>{{"s", 2}}));
  Response shown = follower.Execute(MakeRequest("show", ""));
  EXPECT_NE(shown.payload.find("(a)"), std::string::npos);
  EXPECT_NE(shown.payload.find("(b)"), std::string::npos);
  // The shipped records landed in the follower's own WAL with the
  // primary's version numbers: a follower crash recovers to its cursor.
  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> logged =
      follower.wal()->ReadAll("s", &report);
  ASSERT_TRUE(logged.ok());
  ASSERT_EQ(logged->size(), 2u);
  EXPECT_EQ((*logged)[0].version, 1u);
  EXPECT_EQ((*logged)[1].version, 2u);
}

TEST_F(ReplicationTest, ApplyReplicatedRecordWorksWhileReadOnly) {
  Dispatcher follower(Dispatcher::Options{1 << 20, MakeDir()});
  follower.SetReadOnly(true);
  // Clients cannot write...
  Response rejected = follower.Execute(MakeRequest("db", "M(1) = { (x) }"));
  EXPECT_EQ(rejected.status, WireStatus::kUnavailable);
  EXPECT_NE(rejected.payload.find("read-only"), std::string::npos);
  // ...but replication can, and reads serve the replicated state.
  ASSERT_TRUE(follower.ApplyReplicatedRecord("s", ShippedRecord(1, "a")).ok());
  Response shown = follower.Execute(MakeRequest("show", ""));
  ASSERT_EQ(shown.status, WireStatus::kOk);
  EXPECT_NE(shown.payload.find("(a)"), std::string::npos);
  // Promotion flips the gate off.
  follower.SetReadOnly(false);
  EXPECT_EQ(follower.Execute(MakeRequest("db", "M(1) = { (x) }")).status,
            WireStatus::kOk);
}

TEST_F(ReplicationTest, InstallSnapshotImageReplacesStateAndRejectsStale) {
  Dispatcher primary(Dispatcher::Options{1 << 20, MakeDir()});
  Mutate(&primary, "p1");
  Mutate(&primary, "p2");
  Response shipped = primary.Execute(MakeRequest("ship", "s 0", "x"));
  // Force the snapshot form regardless of compaction state.
  StatusOr<std::string> image = [&]() -> StatusOr<std::string> {
    if (shipped.payload.substr(0, 5) == "SNAP\n") {
      return shipped.payload.substr(5);
    }
    std::shared_ptr<SessionState> state = primary.sessions().GetOrCreate("s");
    return EncodeSnapshot("s", *state);
  }();
  ASSERT_TRUE(image.ok());

  Dispatcher follower(Dispatcher::Options{1 << 20, MakeDir()});
  ASSERT_TRUE(follower.InstallSnapshotImage(*image).ok());
  Response shown = follower.Execute(MakeRequest("show", ""));
  EXPECT_NE(shown.payload.find("(p1)"), std::string::npos);
  EXPECT_NE(shown.payload.find("(p2)"), std::string::npos);
  EXPECT_EQ(follower.SessionVersions(),
            (std::vector<std::pair<std::string, std::uint64_t>>{{"s", 2}}));
  // An image older than the follower's state must not roll it back.
  Mutate(&follower, "newer");  // Version 3 locally.
  EXPECT_FALSE(follower.InstallSnapshotImage(*image).ok());
  shown = follower.Execute(MakeRequest("show", ""));
  EXPECT_NE(shown.payload.find("(newer)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The Replicator pull loop against a live primary

class ReplicatorTest : public ReplicationTest {
 protected:
  void StartPrimary(std::uint64_t compact_every = 256) {
    ServerOptions options;
    options.snapshot_dir = MakeDir();
    options.wal_compact_every = compact_every;
    options.threads = 2;
    primary_ = std::make_unique<Server>(options);
    Status started = primary_->Start();
    ASSERT_TRUE(started.ok()) << started.message();
  }

  ReplicatorOptions FollowOptions() {
    ReplicatorOptions options;
    options.host = "127.0.0.1";
    options.port = primary_ == nullptr ? 1 : primary_->port();
    options.pull_interval_ms = 10;
    options.promote_after_ms = 0;  // Tests drive PullOnce explicitly.
    options.io_timeout_ms = 2000;
    return options;
  }

  void PrimaryMutate(const std::string& tuple) {
    BlockingClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", primary_->port()).ok());
    StatusOr<Response> response =
        client.Call(MakeRequest("db", "M(1) = { (" + tuple + ") }"));
    ASSERT_TRUE(response.ok()) << response.status().message();
    ASSERT_EQ(response->status, WireStatus::kOk) << response->payload;
  }

  std::unique_ptr<Server> primary_;
};

TEST_F(ReplicatorTest, PullOnceCatchesUpAndReShipIsIdempotent) {
  StartPrimary();
  for (int i = 1; i <= 3; ++i) PrimaryMutate("m" + std::to_string(i));

  Dispatcher follower(Dispatcher::Options{1 << 20, MakeDir()});
  Replicator replicator(&follower, FollowOptions());
  ASSERT_TRUE(replicator.PullOnce().ok());
  EXPECT_EQ(replicator.stats().records_applied, 3u);
  Response shown = follower.Execute(MakeRequest("show", ""));
  for (int i = 1; i <= 3; ++i) {
    EXPECT_NE(shown.payload.find("(m" + std::to_string(i) + ")"),
              std::string::npos);
  }
  // Caught up: another pull ships nothing.
  ASSERT_TRUE(replicator.PullOnce().ok());
  EXPECT_EQ(replicator.stats().records_applied, 3u);
  // New writes ship incrementally from the cursor.
  PrimaryMutate("m4");
  ASSERT_TRUE(replicator.PullOnce().ok());
  EXPECT_EQ(replicator.stats().records_applied, 4u);

  primary_->Shutdown();
}

TEST_F(ReplicatorTest, FreshReplicatorResumesFromLocalVersion) {
  StartPrimary();
  PrimaryMutate("m1");
  PrimaryMutate("m2");
  const std::string follower_dir = MakeDir();
  {
    Dispatcher follower(Dispatcher::Options{1 << 20, follower_dir});
    Replicator replicator(&follower, FollowOptions());
    ASSERT_TRUE(replicator.PullOnce().ok());
    EXPECT_EQ(replicator.stats().records_applied, 2u);
    // Follower "crashes" here: its WAL holds both shipped records.
  }
  // The restarted follower recovers locally, then resumes shipping from
  // its recovered version — the primary re-ships nothing.
  Dispatcher follower(Dispatcher::Options{1 << 20, follower_dir});
  Dispatcher::RecoveryReport report = follower.LoadSnapshots();
  EXPECT_EQ(report.wal_records_applied, 2u);
  Replicator replicator(&follower, FollowOptions());
  ASSERT_TRUE(replicator.PullOnce().ok());
  EXPECT_EQ(replicator.stats().records_applied, 0u);
  PrimaryMutate("m3");
  ASSERT_TRUE(replicator.PullOnce().ok());
  EXPECT_EQ(replicator.stats().records_applied, 1u);

  primary_->Shutdown();
}

TEST_F(ReplicatorTest, CompactedPrimaryShipsASnapshot) {
  StartPrimary(/*compact_every=*/1);
  PrimaryMutate("m1");
  PrimaryMutate("m2");
  Dispatcher follower(Dispatcher::Options{1 << 20, MakeDir()});
  Replicator replicator(&follower, FollowOptions());
  ASSERT_TRUE(replicator.PullOnce().ok());
  EXPECT_GE(replicator.stats().snapshots_installed, 1u);
  Response shown = follower.Execute(MakeRequest("show", ""));
  EXPECT_NE(shown.payload.find("(m1)"), std::string::npos);
  EXPECT_NE(shown.payload.find("(m2)"), std::string::npos);

  primary_->Shutdown();
}

#if ZEROONE_FAULT_ENABLED

TEST_F(ReplicatorTest, ShipStreamCutHealsOnTheNextPull) {
  StartPrimary();
  PrimaryMutate("m1");
  PrimaryMutate("m2");
  Dispatcher follower(Dispatcher::Options{1 << 20, MakeDir()});
  Replicator replicator(&follower, FollowOptions());
  // The primary's ship path fails once mid-stream; the pull reports
  // failure and the cursor does not advance past what was applied.
  ASSERT_TRUE(
      fault::Registry::Global().Configure("ship.send.fail=#1").ok());
  EXPECT_FALSE(replicator.PullOnce().ok());
  fault::Registry::Global().Clear();
  // The next pull resumes from the same cursor and catches up fully.
  ASSERT_TRUE(replicator.PullOnce().ok());
  EXPECT_EQ(replicator.stats().records_applied, 2u);
  Response shown = follower.Execute(MakeRequest("show", ""));
  EXPECT_NE(shown.payload.find("(m1)"), std::string::npos);
  EXPECT_NE(shown.payload.find("(m2)"), std::string::npos);

  primary_->Shutdown();
}

TEST_F(ReplicatorTest, PullFailuresAreClassifiedByWhoIsAtFault) {
  StartPrimary();
  PrimaryMutate("m1");
  Dispatcher follower(Dispatcher::Options{1 << 20, MakeDir()});
  ReplicatorOptions options = FollowOptions();
  options.io_timeout_ms = 500;
  Replicator replicator(&follower, options);

  // The primary answers the ship with an injected UNAVAILABLE: it is
  // provably alive, so the failure is replication-level, not transport.
  ASSERT_TRUE(
      fault::Registry::Global().Configure("ship.send.fail=1.0").ok());
  PullFailureKind kind = PullFailureKind::kNone;
  EXPECT_FALSE(replicator.PullOnce(&kind).ok());
  EXPECT_EQ(kind, PullFailureKind::kReplication);

  fault::Registry::Global().Clear();
  ASSERT_TRUE(replicator.PullOnce(&kind).ok());
  EXPECT_EQ(kind, PullFailureKind::kNone);
  EXPECT_EQ(replicator.stats().records_applied, 1u);

  // A dead primary answers nothing: transport.
  primary_->Shutdown();
  primary_.reset();
  EXPECT_FALSE(replicator.PullOnce(&kind).ok());
  EXPECT_EQ(kind, PullFailureKind::kTransport);
}

TEST_F(ReplicatorTest, BrokenStreamAlarmsButNeverPromotes) {
  // The split-brain guard: the primary is alive and serving writes, but
  // every ship answer is unusable. The promotion clock must not run — a
  // standby that promotes here would accept writes in parallel with the
  // primary.
  StartPrimary();
  PrimaryMutate("m1");
  Dispatcher follower(Dispatcher::Options{1 << 20, MakeDir()});
  ReplicatorOptions options = FollowOptions();
  options.pull_interval_ms = 10;
  options.promote_after_ms = 150;
  options.io_timeout_ms = 500;
  Replicator replicator(&follower, options);
  replicator.Start();

  // Wait for the stream to establish, then break it persistently while
  // the follower is behind (so every pull actually issues a ship).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (replicator.stats().records_applied < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(replicator.stats().records_applied, 1u);
  ASSERT_TRUE(
      fault::Registry::Global().Configure("ship.send.fail=1.0").ok());
  PrimaryMutate("m2");

  // Four promotion windows of continuously broken pulls: still a standby.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_FALSE(replicator.promoted())
      << "standby promoted against a live primary";
  EXPECT_TRUE(follower.read_only());
  EXPECT_GE(replicator.stats().broken_pulls, 1u);
  EXPECT_EQ(replicator.stats().transport_failures, 0u);

  // The stream heals and the follower catches up, still a standby.
  fault::Registry::Global().Clear();
  while (replicator.stats().records_applied < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(replicator.stats().records_applied, 2u);
  EXPECT_FALSE(replicator.promoted());
  replicator.Stop();
  primary_->Shutdown();
}

#endif  // ZEROONE_FAULT_ENABLED

TEST_F(ReplicatorTest, PromotesAfterPrimarySilence) {
  StartPrimary();
  PrimaryMutate("m1");
  Dispatcher follower(Dispatcher::Options{1 << 20, MakeDir()});
  ReplicatorOptions options = FollowOptions();
  options.pull_interval_ms = 10;
  options.promote_after_ms = 200;
  options.io_timeout_ms = 200;
  Replicator replicator(&follower, options);
  replicator.Start();
  EXPECT_TRUE(follower.read_only());

  // Wait for the first successful pull, then kill the primary.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (replicator.stats().records_applied < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(replicator.stats().records_applied, 1u);
  primary_->Shutdown();
  primary_.reset();

  while (!replicator.promoted() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(replicator.promoted()) << "standby never promoted itself";
  EXPECT_FALSE(follower.read_only());
  // The promoted standby serves the replicated write and accepts new ones.
  Response shown = follower.Execute(MakeRequest("show", ""));
  EXPECT_NE(shown.payload.find("(m1)"), std::string::npos);
  EXPECT_EQ(follower.Execute(MakeRequest("db", "M(1) = { (m2) }")).status,
            WireStatus::kOk);
  replicator.Stop();
}

// ---------------------------------------------------------------------------
// Server-level wiring: a follower Server built from ServerOptions

TEST_F(ReplicatorTest, FollowerServerReplicatesRejectsWritesAndPromotes) {
  StartPrimary();
  PrimaryMutate("m1");

  ServerOptions follower_options;
  follower_options.snapshot_dir = MakeDir();
  follower_options.follow_host = "127.0.0.1";
  follower_options.follow_port = primary_->port();
  follower_options.pull_interval_ms = 10;
  follower_options.promote_after_ms = 300;
  follower_options.threads = 2;
  Server follower(follower_options);
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_NE(follower.replicator(), nullptr);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", follower.port()).ok());
  // The replicated write becomes visible...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool visible = false;
  while (!visible && std::chrono::steady_clock::now() < deadline) {
    StatusOr<Response> shown = client.Call(MakeRequest("show", ""));
    ASSERT_TRUE(shown.ok());
    visible = shown->payload.find("(m1)") != std::string::npos;
    if (!visible) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(visible) << "follower never caught up";
  // ...while client writes are rejected with the retry contract.
  StatusOr<Response> rejected =
      client.Call(MakeRequest("db", "M(1) = { (nope) }"));
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, WireStatus::kUnavailable);

  // Primary dies; the follower promotes and starts taking writes.
  primary_->Shutdown();
  primary_.reset();
  bool writable = false;
  while (!writable && std::chrono::steady_clock::now() < deadline) {
    StatusOr<Response> written =
        client.Call(MakeRequest("db", "M(1) = { (m2) }"));
    ASSERT_TRUE(written.ok());
    writable = written->status == WireStatus::kOk;
    if (!writable) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(writable) << "follower never promoted";
  EXPECT_TRUE(follower.replicator()->promoted());
  StatusOr<Response> shown = client.Call(MakeRequest("show", ""));
  ASSERT_TRUE(shown.ok());
  EXPECT_NE(shown->payload.find("(m1)"), std::string::npos);
  EXPECT_NE(shown->payload.find("(m2)"), std::string::npos);
  client.Close();
  follower.Shutdown();
}

}  // namespace
}  // namespace svc
}  // namespace zeroone
