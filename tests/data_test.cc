#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "data/database.h"
#include "data/io.h"
#include "data/valuation.h"
#include "data/relation.h"
#include "data/tuple.h"
#include "data/value.h"

namespace zeroone {
namespace {

TEST(ValueTest, ConstantsInternByName) {
  Value a1 = Value::Constant("alpha");
  Value a2 = Value::Constant("alpha");
  Value b = Value::Constant("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_TRUE(a1.is_constant());
  EXPECT_EQ(a1.ToString(), "alpha");
}

TEST(ValueTest, IntConstantsShareNamespaceWithDecimalNames) {
  EXPECT_EQ(Value::Int(42), Value::Constant("42"));
}

TEST(ValueTest, NullsAreMarked) {
  Value n1 = Value::Null("1");
  Value n1_again = Value::Null("1");
  Value n2 = Value::Null("2");
  EXPECT_EQ(n1, n1_again);  // The same marked null.
  EXPECT_NE(n1, n2);
  EXPECT_TRUE(n1.is_null());
  EXPECT_EQ(n1.ToString(), "⊥1");
}

TEST(ValueTest, ConstantAndNullWithSameNameDiffer) {
  EXPECT_NE(Value::Constant("x"), Value::Null("x"));
}

TEST(ValueTest, FreshValuesAreDistinct) {
  std::set<Value> values;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(values.insert(Value::FreshNull()).second);
    EXPECT_TRUE(values.insert(Value::FreshConstant()).second);
  }
}

TEST(ValueTest, ConstantEnumerationPrefixAndLength) {
  Value a = Value::Constant("ea");
  Value b = Value::Constant("eb");
  std::vector<Value> enumeration = MakeConstantEnumeration({a, b, a}, 5);
  ASSERT_EQ(enumeration.size(), 5u);
  EXPECT_EQ(enumeration[0], a);
  EXPECT_EQ(enumeration[1], b);  // Duplicate `a` removed.
  std::set<Value> distinct(enumeration.begin(), enumeration.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(TupleTest, BasicsAndNulls) {
  Tuple t{Value::Constant("a"), Value::Null("t1"), Value::Null("t1"),
          Value::Null("t2")};
  EXPECT_EQ(t.arity(), 4u);
  EXPECT_FALSE(t.IsComplete());
  std::vector<Value> nulls = t.Nulls();
  ASSERT_EQ(nulls.size(), 2u);  // Deduplicated.
  EXPECT_EQ(nulls[0], Value::Null("t1"));
  EXPECT_EQ(nulls[1], Value::Null("t2"));
  EXPECT_EQ(t.ToString(), "(a, ⊥t1, ⊥t1, ⊥t2)");
  EXPECT_EQ(Tuple{}.ToString(), "()");
  EXPECT_TRUE(Tuple{}.IsComplete());
}

TEST(RelationTest, InsertIsSetSemantics) {
  Relation r("R", 2);
  r.Insert({Value::Int(1), Value::Int(2)});
  r.Insert({Value::Int(1), Value::Int(2)});
  r.Insert({Value::Int(0), Value::Int(9)});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Tuple{Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(r.Contains(Tuple{Value::Int(2), Value::Int(1)}));
  // Sorted deterministic order (by the values' total order).
  EXPECT_TRUE(r.row(0) < r.row(1));
}

TEST(TupleTest, NullsAreInFirstOccurrenceOrder) {
  // Occurrence order deliberately disagrees with the values' total order:
  // Nulls() must report first occurrences, not a sorted set.
  Value late = Value::Null("z9");
  Value early = Value::Null("a1");
  Tuple t{late, Value::Constant("c"), early, late};
  std::vector<Value> nulls = t.Nulls();
  ASSERT_EQ(nulls.size(), 2u);
  EXPECT_EQ(nulls[0], late);
  EXPECT_EQ(nulls[1], early);
}

TEST(RelationTest, BulkInsertDedupesAndSorts) {
  std::vector<Tuple> batch;
  for (int i = 9; i >= 0; --i) {
    batch.push_back(Tuple{Value::Int(i % 4), Value::Int(i)});
    batch.push_back(Tuple{Value::Int(i % 4), Value::Int(i)});  // Duplicate.
  }
  Relation bulk("R", 2);
  bulk.InsertBatch(batch);
  Relation reference("R", 2);
  for (const Tuple& t : batch) reference.Insert(t);
  EXPECT_EQ(bulk, reference);
  EXPECT_EQ(bulk.size(), 10u);
  // Iteration is in strictly ascending content order.
  for (std::size_t i = 0; i + 1 < bulk.size(); ++i) {
    EXPECT_TRUE(bulk.row(i) < bulk.row(i + 1));
  }
  // Builder produces the same relation as incremental inserts.
  Relation::Builder builder("R", 2);
  for (const Tuple& t : batch) builder.Add(t);
  EXPECT_EQ(std::move(builder).Build(), reference);
}

TEST(RelationTest, MixedInsertAndBatchInterleavings) {
  Relation mixed("R", 1);
  mixed.Insert({Value::Int(5)});
  mixed.InsertBatch({Tuple{Value::Int(2)}, Tuple{Value::Int(8)},
                     Tuple{Value::Int(5)}});
  mixed.Insert({Value::Int(1)});
  Relation other("R", 1);
  other.InsertBatch({Tuple{Value::Int(3)}, Tuple{Value::Int(1)}});
  mixed.InsertBatch(other);
  Relation reference("R", 1);
  for (int v : {1, 2, 3, 5, 8}) reference.Insert({Value::Int(v)});
  EXPECT_EQ(mixed, reference);
  EXPECT_EQ(mixed.ToString(), reference.ToString());
}

TEST(RelationTest, ProbeFindsExactlyTheMatchingRows) {
  Relation r("R", 2);
  r.Insert({Value::Int(1), Value::Int(10)});
  r.Insert({Value::Int(1), Value::Int(11)});
  r.Insert({Value::Int(2), Value::Int(10)});
  // Column 0 bound: two rows with key 1, in ascending iteration order.
  Relation::RowIdSpan span = r.Probe(0b01, {Value::Int(1)});
  ASSERT_EQ(span.size(), 2u);
  const std::uint32_t* it = span.begin();
  EXPECT_TRUE(r.row(it[0]) < r.row(it[1]));
  EXPECT_EQ(r.row(it[0])[1], Value::Int(10));
  EXPECT_EQ(r.row(it[1])[1], Value::Int(11));
  // Both columns bound: singleton; missing key: empty.
  EXPECT_EQ(r.Probe(0b11, {Value::Int(2), Value::Int(10)}).size(), 1u);
  EXPECT_TRUE(r.Probe(0b10, {Value::Int(99)}).empty());
}

TEST(RelationTest, MutationInvalidatesIndexes) {
  Relation r("R", 2);
  r.Insert({Value::Int(1), Value::Int(10)});
  EXPECT_EQ(r.Probe(0b01, {Value::Int(1)}).size(), 1u);
  // A mutation after an index was built must be visible to later probes.
  r.Insert({Value::Int(1), Value::Int(11)});
  EXPECT_EQ(r.Probe(0b01, {Value::Int(1)}).size(), 2u);
  r.InsertBatch({Tuple{Value::Int(1), Value::Int(12)}});
  EXPECT_EQ(r.Probe(0b01, {Value::Int(1)}).size(), 3u);
  // Copies answer probes independently of the original's cached indexes.
  Relation copy = r;
  copy.Insert({Value::Int(1), Value::Int(13)});
  EXPECT_EQ(copy.Probe(0b01, {Value::Int(1)}).size(), 4u);
  EXPECT_EQ(r.Probe(0b01, {Value::Int(1)}).size(), 3u);
}

TEST(DatabaseTest, ActiveDomainSplitsKinds) {
  Database db;
  Relation& r = db.AddRelation("R", 2);
  r.Insert({Value::Constant("k"), Value::Null("d1")});
  r.Insert({Value::Null("d1"), Value::Null("d2")});
  db.AddRelation("S", 1).Insert({Value::Constant("m")});
  EXPECT_EQ(db.Constants().size(), 2u);
  EXPECT_EQ(db.Nulls().size(), 2u);
  EXPECT_EQ(db.ActiveDomain().size(), 4u);
  EXPECT_FALSE(db.IsComplete());
  EXPECT_EQ(db.TupleCount(), 3u);
}

TEST(DatabaseTest, EmptyRelationsCountAsComplete) {
  Database db;
  db.AddRelation("R", 3);
  EXPECT_TRUE(db.IsComplete());
  EXPECT_TRUE(db.ActiveDomain().empty());
}

TEST(DatabaseTest, EqualityAndOrdering) {
  Database d1;
  d1.AddRelation("R", 1).Insert({Value::Int(1)});
  Database d2;
  d2.AddRelation("R", 1).Insert({Value::Int(1)});
  EXPECT_EQ(d1, d2);
  d2.mutable_relation("R").Insert({Value::Int(2)});
  EXPECT_NE(d1, d2);
  EXPECT_TRUE(d1 < d2 || d2 < d1);
}

TEST(IoTest, ParseDatabaseRoundTrips) {
  const char* text = R"(
    # The intro example, R1 only.
    R1(2) = { (c1, _1), (c2, _1), (c2, _2) }
    U(1) = { (1), (2) }
    Empty(3) = {}
  )";
  StatusOr<Database> db = ParseDatabase(text);
  ASSERT_TRUE(db.ok()) << db.status().message();
  EXPECT_EQ(db->relation("R1").size(), 3u);
  EXPECT_EQ(db->relation("U").size(), 2u);
  EXPECT_EQ(db->relation("Empty").size(), 0u);
  EXPECT_TRUE(db->relation("R1").Contains(
      Tuple{Value::Constant("c2"), Value::Null("2")}));
  // Round trip through the formatter.
  StatusOr<Database> again = ParseDatabase(FormatDatabase(*db));
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_EQ(*again, *db);
}

TEST(IoTest, ParseTupleSyntax) {
  StatusOr<Tuple> t = ParseTuple("(c1, _7, 'hello world', 42)");
  ASSERT_TRUE(t.ok()) << t.status().message();
  ASSERT_EQ(t->arity(), 4u);
  EXPECT_EQ((*t)[0], Value::Constant("c1"));
  EXPECT_EQ((*t)[1], Value::Null("7"));
  EXPECT_EQ((*t)[2], Value::Constant("hello world"));
  EXPECT_EQ((*t)[3], Value::Int(42));
  StatusOr<Tuple> empty = ParseTuple("()");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->arity(), 0u);
}

TEST(IoTest, ParseUnicodeNullSigil) {
  StatusOr<Tuple> t = ParseTuple("(⊥1, ⊥abc)");
  ASSERT_TRUE(t.ok()) << t.status().message();
  EXPECT_EQ((*t)[0], Value::Null("1"));
  EXPECT_EQ((*t)[1], Value::Null("abc"));
}

TEST(IoTest, ParseErrors) {
  EXPECT_FALSE(ParseDatabase("R(2) = { (1) }").ok());     // Arity mismatch.
  EXPECT_FALSE(ParseDatabase("R(2) = { (1, 2 }").ok());   // Bad bracket.
  EXPECT_FALSE(ParseDatabase("R2 = { }").ok());           // Missing arity.
  EXPECT_FALSE(ParseTuple("(1,2) x").ok());               // Trailing junk.
}

TEST(ValuationBasicsTest, ApplyAndRange) {
  Valuation v;
  v.Bind(Value::Null("v1"), Value::Constant("a"));
  v.Bind(Value::Null("v2"), Value::Constant("a"));
  EXPECT_EQ(v.Apply(Value::Null("v1")), Value::Constant("a"));
  EXPECT_EQ(v.Apply(Value::Null("other")), Value::Null("other"));
  EXPECT_EQ(v.Apply(Value::Constant("c")), Value::Constant("c"));
  EXPECT_EQ(v.Range().size(), 1u);
  EXPECT_FALSE(v.IsBijectiveAvoiding({}));  // Not injective.
  Valuation w;
  w.Bind(Value::Null("v1"), Value::Constant("a"));
  w.Bind(Value::Null("v2"), Value::Constant("b"));
  EXPECT_TRUE(w.IsBijectiveAvoiding({Value::Constant("c")}));
  EXPECT_FALSE(w.IsBijectiveAvoiding({Value::Constant("a")}));
}

TEST(ValuationBasicsTest, ApplyToDatabase) {
  Database db;
  Relation& r = db.AddRelation("R", 2);
  r.Insert({Value::Int(1), Value::Null("ad1")});
  r.Insert({Value::Int(1), Value::Null("ad2")});
  Valuation v;
  v.Bind(Value::Null("ad1"), Value::Int(7));
  v.Bind(Value::Null("ad2"), Value::Int(7));
  Database image = v.Apply(db);
  // The two tuples collapse to one.
  EXPECT_EQ(image.relation("R").size(), 1u);
  EXPECT_TRUE(image.IsComplete());
}

TEST(ValuationEnumerationTest, CountsArePowers) {
  std::vector<Value> nulls = {Value::Null("e1"), Value::Null("e2"),
                              Value::Null("e3")};
  std::vector<Value> domain = MakeConstantEnumeration({}, 4);
  std::size_t count = 0;
  std::set<Valuation> distinct;
  ForEachValuation(nulls, domain, [&](const Valuation& v) {
    ++count;
    distinct.insert(v);
  });
  EXPECT_EQ(count, 64u);  // 4^3.
  EXPECT_EQ(distinct.size(), 64u);
}

TEST(ValuationEnumerationTest, EmptyNullsYieldOneValuation) {
  std::size_t count = 0;
  ForEachValuation({}, MakeConstantEnumeration({}, 2),
                   [&](const Valuation&) { ++count; });
  EXPECT_EQ(count, 1u);
}

TEST(ValuationEnumerationTest, EarlyStop) {
  std::vector<Value> nulls = {Value::Null("s1")};
  std::vector<Value> domain = MakeConstantEnumeration({}, 10);
  std::size_t count = 0;
  bool completed = ForEachValuationUntil(nulls, domain,
                                         [&](const Valuation&) {
                                           ++count;
                                           return count < 3;
                                         });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace zeroone
