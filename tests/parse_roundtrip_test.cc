// Parser/printer round-trip property tests: for both query languages the
// canonical printed form is a fixpoint of parse ∘ ToString. Over seeded
// random FO formulas, UCQs, and datalog programs:
//
//   s1 = generated.ToString()
//   s2 = Parse(s1).ToString()   — must equal s1 (printing is canonical)
//   s3 = Parse(s2).ToString()   — must equal s2 (fixpoint)
//
// This pins down the property the plan cache relies on: cache keys embed
// query.ToString(), so two requests for the same query must print — and
// re-parse — identically.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "datalog/program.h"
#include "gen/random_query.h"
#include "query/parser.h"
#include "query/query.h"

namespace zeroone {
namespace {

class ParseRoundtripTest : public ::testing::TestWithParam<std::uint64_t> {};

void ExpectQueryFixpoint(const Query& generated) {
  const std::string s1 = generated.ToString();
  StatusOr<Query> reparsed = ParseQuery(s1);
  ASSERT_TRUE(reparsed.ok()) << s1 << "\n" << reparsed.status().message();
  const std::string s2 = reparsed->ToString();
  EXPECT_EQ(s1, s2);
  StatusOr<Query> again = ParseQuery(s2);
  ASSERT_TRUE(again.ok()) << s2 << "\n" << again.status().message();
  EXPECT_EQ(s2, again->ToString()) << "not a fixpoint: " << s2;
}

TEST_P(ParseRoundtripTest, FoFormulasRoundTrip) {
  const std::uint64_t seed = GetParam();
  RandomQueryOptions options;
  options.relations = {{"R", 2}, {"S", 1}, {"T", 3}};
  for (int variant = 0; variant < 16; ++variant) {
    options.seed = seed * 7919 + static_cast<std::uint64_t>(variant);
    options.free_variables = 1 + variant % 3;
    options.clauses = 1 + variant % 2;
    ExpectQueryFixpoint(
        GenerateRandomFo(options, /*negation_probability=*/0.4));
  }
}

TEST_P(ParseRoundtripTest, UcqsRoundTrip) {
  const std::uint64_t seed = GetParam();
  RandomQueryOptions options;
  options.relations = {{"R", 2}, {"S", 1}};
  for (int variant = 0; variant < 16; ++variant) {
    options.seed = seed * 6131 + static_cast<std::uint64_t>(variant);
    options.atoms_per_clause = 1 + variant % 3;
    ExpectQueryFixpoint(GenerateRandomUcq(options));
  }
}

// Random safe, stratified datalog program *text*: IDB predicates p (arity
// 2) and q (arity 1) defined over EDB predicates e (arity 2) and b (arity
// 1). Safety holds by construction — the first body literal is a positive
// EDB atom containing every head variable, and only EDB predicates are
// negated (so stratification is trivial). Positive IDB atoms allow
// recursion.
std::string RandomDatalogProgram(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&rng](std::uint64_t bound) {
    return static_cast<std::size_t>(rng() % bound);
  };
  const char* vars[] = {"X", "Y", "Z"};
  std::string text;
  const std::size_t rules = 2 + pick(3);
  bool q_defined = false;
  for (std::size_t r = 0; r < rules; ++r) {
    // Rule 0 always defines p so the `?- p` fallback goal occurs in the
    // program (Create rejects goals that never appear).
    const bool binary_head = r == 0 || pick(2) == 0;
    std::string head_vars[2] = {vars[0], vars[1]};
    std::string rule;
    if (binary_head) {
      rule = "p(X, Y) :- e(X, Y)";
    } else {
      q_defined = true;
      rule = "q(X) :- e(X, X)";
    }
    // Optional positive extension: chain through a fresh variable, via
    // either the EDB edge or the (possibly recursive) IDB predicate.
    if (pick(2) == 0) {
      const char* chain = pick(2) == 0 ? "e" : "p";
      rule += ", ";
      rule += chain;
      rule += "(";
      rule += binary_head ? head_vars[1] : head_vars[0];
      rule += ", Z)";
    }
    // Optional constant-anchored atom (constants are lowercase).
    if (pick(3) == 0) {
      rule += ", b(a0)";
    }
    // Optional negated EDB literal over an already-bound variable.
    if (pick(2) == 0) {
      rule += ", !b(";
      rule += head_vars[pick(binary_head ? 2 : 1)];
      rule += ")";
    }
    rule += ".\n";
    text += rule;
  }
  text += q_defined && (rng() % 2 == 0) ? "?- q\n" : "?- p\n";
  return text;
}

TEST_P(ParseRoundtripTest, DatalogProgramsRoundTrip) {
  const std::uint64_t seed = GetParam();
  for (int variant = 0; variant < 24; ++variant) {
    const std::string source =
        RandomDatalogProgram(seed * 104729 + static_cast<std::uint64_t>(variant));
    StatusOr<DatalogProgram> parsed = ParseDatalogProgram(source);
    ASSERT_TRUE(parsed.ok()) << source << "\n" << parsed.status().message();
    const std::string s1 = parsed->ToString();
    StatusOr<DatalogProgram> reparsed = ParseDatalogProgram(s1);
    ASSERT_TRUE(reparsed.ok()) << s1 << "\n" << reparsed.status().message();
    const std::string s2 = reparsed->ToString();
    EXPECT_EQ(s1, s2) << "source:\n" << source;
    StatusOr<DatalogProgram> again = ParseDatalogProgram(s2);
    ASSERT_TRUE(again.ok()) << s2;
    EXPECT_EQ(s2, again->ToString()) << "not a fixpoint:\n" << s2;
    // The canonical form preserves structure, not just text: same rule
    // count, same goal, same strata shape.
    EXPECT_EQ(parsed->rules().size(), reparsed->rules().size());
    EXPECT_EQ(parsed->goal_predicate(), reparsed->goal_predicate());
    EXPECT_EQ(parsed->strata(), reparsed->strata());
  }
}

// The negation sigil prints the way the parser reads it.
TEST(ParseRoundtripFormatTest, NegationPrintsAsBang) {
  StatusOr<DatalogProgram> program = ParseDatalogProgram(
      "p(X) :- e(X, X), !b(X).\n?- p\n");
  ASSERT_TRUE(program.ok()) << program.status().message();
  EXPECT_EQ(program->ToString(), "p(X) :- e(X, X), !b(X).\n?- p\n");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseRoundtripTest,
                         ::testing::Values(11u, 2024u, 777777u));

}  // namespace
}  // namespace zeroone
