#include "common/polynomial.h"

#include <gtest/gtest.h>

namespace zeroone {
namespace {

TEST(PolynomialTest, ZeroAndDegree) {
  Polynomial zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.degree(), -1);
  EXPECT_EQ(zero.ToString(), "0");
  Polynomial constant = Polynomial::Constant(Rational(5));
  EXPECT_EQ(constant.degree(), 0);
  EXPECT_EQ(constant.ToString(), "5");
}

TEST(PolynomialTest, TrimsLeadingZeros) {
  Polynomial p({Rational(1), Rational(0), Rational(0)});
  EXPECT_EQ(p.degree(), 0);
  Polynomial q = Polynomial::Monomial(Rational(1), 2) -
                 Polynomial::Monomial(Rational(1), 2);
  EXPECT_TRUE(q.is_zero());
}

TEST(PolynomialTest, ArithmeticAndEvaluation) {
  // p = k^2 + 2k + 1 = (k+1)^2.
  Polynomial p({Rational(1), Rational(2), Rational(1)});
  Polynomial k_plus_1({Rational(1), Rational(1)});
  EXPECT_EQ(p, k_plus_1 * k_plus_1);
  EXPECT_EQ(p.Evaluate(BigInt(9)), Rational(100));
  EXPECT_EQ((p - p).degree(), -1);
  EXPECT_EQ((p * Rational(1, 2)).Evaluate(BigInt(9)), Rational(50));
}

TEST(PolynomialTest, FallingFactorialExpansion) {
  // (k-2)(k-3)(k-4) at k = 10: 8*7*6 = 336.
  Polynomial f = Polynomial::FallingFactorial(2, 3);
  EXPECT_EQ(f.degree(), 3);
  EXPECT_EQ(f.Evaluate(BigInt(10)), Rational(336));
  EXPECT_EQ(f.Evaluate(BigInt(4)), Rational(0));
  // Count 0 is the constant 1.
  EXPECT_EQ(Polynomial::FallingFactorial(5, 0), Polynomial::Constant(Rational(1)));
}

TEST(PolynomialTest, FallingFactorialPartitionIdentity) {
  // Σ over kernel structure: for m = 2 nulls and a = 2 prefix constants,
  //   k^2 = Σ_ρ Σ_σ (k−a)_f
  // where ρ ranges over the 2 partitions of a 2-set and σ over injective
  // partial maps into A. Spot-check the identity numerically at several k.
  // ρ = {{0},{1}} (t=2): σ options: both free (k−2)(k−3); one of 2 blocks →
  // one of 2 constants, other free: 4·(k−2); both assigned injectively:
  // 2 permutations. ρ = {{0,1}} (t=1): free (k−2) or assigned: 2.
  for (std::int64_t k : {2, 3, 5, 10}) {
    Polynomial total =
        Polynomial::FallingFactorial(2, 2) +
        Polynomial::FallingFactorial(2, 1) * Rational(4) +
        Polynomial::Constant(Rational(2)) +
        Polynomial::FallingFactorial(2, 1) + Polynomial::Constant(Rational(2));
    EXPECT_EQ(total.Evaluate(BigInt(k)), Rational(k * k)) << k;
  }
}

TEST(PolynomialTest, ToStringFormatting) {
  Polynomial p({Rational(7), Rational(-1, 2), Rational(0), Rational(2)});
  EXPECT_EQ(p.ToString(), "2*k^3 - 1/2*k + 7");
  Polynomial q({Rational(0), Rational(1)});
  EXPECT_EQ(q.ToString(), "k");
  EXPECT_EQ(q.ToString("n"), "n");
  Polynomial negative({Rational(0), Rational(0), Rational(-1)});
  EXPECT_EQ(negative.ToString(), "-k^2");
}

TEST(PolynomialTest, LimitOfRatio) {
  Polynomial p({Rational(5), Rational(3)});       // 3k + 5
  Polynomial q({Rational(0), Rational(0), Rational(2)});  // 2k^2
  EXPECT_EQ(LimitOfRatio(p, q), Rational(0));     // Lower degree → 0.
  EXPECT_EQ(LimitOfRatio(q, q), Rational(1));
  Polynomial r({Rational(1), Rational(0), Rational(1, 3)});  // k^2/3 + 1
  EXPECT_EQ(LimitOfRatio(r, q), Rational(1, 6));
  EXPECT_EQ(LimitOfRatio(Polynomial(), q), Rational(0));
}

}  // namespace
}  // namespace zeroone
