#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/fragments.h"

namespace zeroone {
namespace {

TEST(ParserTest, ParsesIntroQuery) {
  StatusOr<Query> q = ParseQuery("Q(x, y) := R1(x, y) & !R2(x, y)");
  ASSERT_TRUE(q.ok()) << q.status().message();
  EXPECT_EQ(q->name(), "Q");
  EXPECT_EQ(q->arity(), 2u);
  EXPECT_EQ(q->formula()->kind(), Formula::Kind::kAnd);
  EXPECT_EQ(q->ToString(), "Q(x, y) := (R1(x, y) & !(R2(x, y)))");
}

TEST(ParserTest, BooleanQueryWithoutHead) {
  StatusOr<Query> q = ParseQuery(":= exists x . U(x)");
  ASSERT_TRUE(q.ok()) << q.status().message();
  EXPECT_TRUE(q->is_boolean());
  StatusOr<Query> bare = ParseQuery("exists x . U(x)");
  ASSERT_TRUE(bare.ok()) << bare.status().message();
  EXPECT_TRUE(bare->is_boolean());
}

TEST(ParserTest, UndeclaredIdentifiersAreConstants) {
  StatusOr<Query> q = ParseQuery("phi(x) := exists y . E(c, y) & E(y, x)");
  ASSERT_TRUE(q.ok()) << q.status().message();
  std::vector<Value> constants = q->GenericityConstants();
  ASSERT_EQ(constants.size(), 1u);
  EXPECT_EQ(constants[0], Value::Constant("c"));
}

TEST(ParserTest, NumbersAndStringsAreConstants) {
  StatusOr<Query> q = ParseQuery("Q(x) := R(x, 42) | R(x, 'forty two')");
  ASSERT_TRUE(q.ok()) << q.status().message();
  EXPECT_EQ(q->GenericityConstants().size(), 2u);
}

TEST(ParserTest, MultiVariableQuantifier) {
  StatusOr<Query> q = ParseQuery(":= exists x, y, z . R(x, y) & R(y, z)");
  ASSERT_TRUE(q.ok()) << q.status().message();
  // Three nested Exists.
  const Formula* f = q->formula().get();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(f->kind(), Formula::Kind::kExists) << i;
    f = f->children()[0].get();
  }
  EXPECT_EQ(f->kind(), Formula::Kind::kAnd);
}

TEST(ParserTest, ImplicationAndForall) {
  StatusOr<Query> q = ParseQuery(":= forall x . U(x) -> (R(x) & !S(x))");
  ASSERT_TRUE(q.ok()) << q.status().message();
  ASSERT_EQ(q->formula()->kind(), Formula::Kind::kForall);
  EXPECT_EQ(q->formula()->children()[0]->kind(), Formula::Kind::kImplies);
}

TEST(ParserTest, EqualityAndInequality) {
  StatusOr<Query> q = ParseQuery("Q(x, y) := R(x, y) & x != y & y = 3");
  ASSERT_TRUE(q.ok()) << q.status().message();
  EXPECT_EQ(q->formula()->children().size(), 3u);
  EXPECT_EQ(q->formula()->children()[1]->kind(), Formula::Kind::kNot);
  EXPECT_EQ(q->formula()->children()[2]->kind(), Formula::Kind::kEquals);
}

TEST(ParserTest, PrecedenceAndOverOr) {
  StatusOr<Query> q = ParseQuery(":= A() & B() | C()");
  ASSERT_TRUE(q.ok()) << q.status().message();
  // (A & B) | C.
  ASSERT_EQ(q->formula()->kind(), Formula::Kind::kOr);
  EXPECT_EQ(q->formula()->children()[0]->kind(), Formula::Kind::kAnd);
}

TEST(ParserTest, QuantifierBodyExtendsRight) {
  StatusOr<Query> q = ParseQuery(":= A() & exists x . B(x) & C(x)");
  ASSERT_TRUE(q.ok()) << q.status().message();
  // A & (exists x . (B & C)).
  ASSERT_EQ(q->formula()->kind(), Formula::Kind::kAnd);
  ASSERT_EQ(q->formula()->children()[1]->kind(), Formula::Kind::kExists);
  EXPECT_EQ(q->formula()->children()[1]->children()[0]->kind(),
            Formula::Kind::kAnd);
}

TEST(ParserTest, TrueFalseLiterals) {
  EXPECT_TRUE(ParseQuery(":= true").ok());
  EXPECT_TRUE(ParseQuery(":= false | R()").ok());
}

TEST(ParserTest, ZeroAryAtom) {
  StatusOr<Query> q = ParseQuery(":= P()");
  ASSERT_TRUE(q.ok()) << q.status().message();
  EXPECT_EQ(q->formula()->kind(), Formula::Kind::kAtom);
  EXPECT_TRUE(q->formula()->terms().empty());
}

TEST(ParserTest, RepeatedHeadVariable) {
  StatusOr<Query> q = ParseQuery("Q(x, x) := R(x)");
  ASSERT_TRUE(q.ok()) << q.status().message();
  EXPECT_EQ(q->arity(), 2u);
  EXPECT_EQ(q->free_variables()[0], q->free_variables()[1]);
}

TEST(ParserTest, ErrorCases) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("Q(x) := R(x").ok());          // Unclosed atom.
  EXPECT_FALSE(ParseQuery("Q(x) :=").ok());              // Missing body.
  EXPECT_FALSE(ParseQuery(":= exists . R(x)").ok());     // Missing variable.
  EXPECT_FALSE(ParseQuery(":= R(x) &").ok());            // Dangling operator.
  EXPECT_FALSE(ParseQuery(":= R(x) R(y)").ok());         // Trailing input.
  EXPECT_FALSE(ParseQuery(":= 'unterminated").ok());
  // Note: "Q() := R(x)" is *not* an error — undeclared x is a constant.
}

TEST(ParserTest, FreeVariableInBodyMustBeInHead) {
  // y is free in the body but not declared: it becomes a *constant* by the
  // undeclared-identifier rule, so this parses — with y a constant.
  StatusOr<Query> q = ParseQuery("Q(x) := R(x, y)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GenericityConstants().size(), 1u);
}

TEST(ParserTest, SubstituteProducesBooleanQuery) {
  StatusOr<Query> q = ParseQuery("Q(x, y) := R(x, y) & !S(x, y)");
  ASSERT_TRUE(q.ok());
  Tuple t{Value::Constant("a"), Value::Null("p1")};
  Query boolean = q->Substitute(t);
  EXPECT_TRUE(boolean.is_boolean());
  EXPECT_EQ(boolean.formula()->MentionedNulls().size(), 1u);
  EXPECT_EQ(boolean.formula()->MentionedConstants().size(), 1u);
}

}  // namespace
}  // namespace zeroone
