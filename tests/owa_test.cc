#include "core/owa.h"

#include <gtest/gtest.h>

#include "core/measure.h"
#include "data/io.h"
#include "gen/scenarios.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(OwaTest, Proposition2ExactSeries) {
  // D: empty unary U. owa-m^k(¬∃x U(x), D) = 2^{-k} — naive evaluation is
  // true, yet the measure goes to 0. Dually for ∃x U(x).
  OwaExample example = Proposition2Example();
  for (std::size_t k = 1; k <= 6; ++k) {
    StatusOr<Rational> q1 = OwaMK(example.q1, example.db, k);
    ASSERT_TRUE(q1.ok()) << q1.status().message();
    EXPECT_EQ(*q1, Rational(BigInt(1),
                            BigInt::Pow(BigInt(2), static_cast<unsigned>(k))))
        << k;
    StatusOr<Rational> q2 = OwaMK(example.q2, example.db, k);
    ASSERT_TRUE(q2.ok());
    EXPECT_EQ(*q2, Rational(1) - *q1) << k;
  }
  // The naive evaluations point the other way (Proposition 2).
  EXPECT_EQ(MuLimit(example.q1, example.db), 1);
  EXPECT_EQ(MuLimit(example.q2, example.db), 0);
}

TEST(OwaTest, DatabaseTuplesAlwaysPresent) {
  // With D = {U(a)}, every OWA world contains a: ∃x U(x) has owa-m^k = 1.
  StatusOr<Database> db = ParseDatabase("U(1) = { (a) }");
  ASSERT_TRUE(db.ok());
  StatusOr<Rational> present = OwaMK(Q(":= exists x . U(x)"), *db, 3);
  ASSERT_TRUE(present.ok());
  EXPECT_EQ(*present, Rational(1));
  // U(a) itself is certain under OWA.
  StatusOr<Rational> specific = OwaMK(Q(":= U(a)"), *db, 3);
  ASSERT_TRUE(specific.ok());
  EXPECT_EQ(*specific, Rational(1));
}

TEST(OwaTest, NullConstrainedWorlds) {
  // D = {U(⊥)}: every world contains some element, so ∃x U(x) is certain;
  // U(a) holds in the worlds where either v(⊥) = a or a was added freely.
  StatusOr<Database> db = ParseDatabase("U(1) = { (_ow1) }");
  ASSERT_TRUE(db.ok());
  StatusOr<Rational> any = OwaMK(Q(":= exists x . U(x)"), *db, 3);
  ASSERT_TRUE(any.ok());
  EXPECT_EQ(*any, Rational(1));
  StatusOr<Rational> specific = OwaMK(Q(":= U(a)"), *db, 3);
  ASSERT_TRUE(specific.ok());
  EXPECT_GT(*specific, Rational(1, 2));
  EXPECT_LT(*specific, Rational(1));
}

TEST(OwaTest, GuardRejectsLargeInstances) {
  StatusOr<Database> db = ParseDatabase("R(3) = { (a, b, c) }");
  ASSERT_TRUE(db.ok());
  // k = 4 gives 4^3 = 64 cells > default guard.
  EXPECT_FALSE(OwaMK(Q(":= exists x . R(x, x, x)"), *db, 4).ok());
}

TEST(OwaTest, RejectsNonBoolean) {
  StatusOr<Database> db = ParseDatabase("U(1) = { (a) }");
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(OwaMK(Q("Q(x) := U(x)"), *db, 2).ok());
}

}  // namespace
}  // namespace zeroone
