// Tests for common/net.h: the one endpoint grammar shared by every flag
// that accepts "host:port" (--follow, --backends, --endpoints). The accept
// and reject tables here are the contract those flags inherit — in
// particular the rejection of port 0 (a peer endpoint must be concrete)
// and of overflowed ports, and the order-preservation of endpoint lists
// (consistent-hash rings are built over the list order).

#include <gtest/gtest.h>

#include <string>

#include "common/net.h"

namespace zeroone {
namespace {

TEST(ParseHostPortTest, AcceptsNumericHostAndPort) {
  StatusOr<HostPort> parsed = ParseHostPort("127.0.0.1:9000");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->host, "127.0.0.1");
  EXPECT_EQ(parsed->port, 9000);
}

TEST(ParseHostPortTest, AcceptsHostnames) {
  StatusOr<HostPort> parsed = ParseHostPort("shard-03.internal:65535");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->host, "shard-03.internal");
  EXPECT_EQ(parsed->port, 65535);
}

TEST(ParseHostPortTest, AcceptsPortOne) {
  StatusOr<HostPort> parsed = ParseHostPort("h:1");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->port, 1);
}

TEST(ParseHostPortTest, RejectsMissingColon) {
  StatusOr<HostPort> parsed = ParseHostPort("localhost");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("want HOST:PORT"),
            std::string::npos)
      << parsed.status().message();
}

TEST(ParseHostPortTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseHostPort("").ok());
}

TEST(ParseHostPortTest, RejectsEmptyHost) {
  StatusOr<HostPort> parsed = ParseHostPort(":8080");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("empty host"), std::string::npos)
      << parsed.status().message();
}

TEST(ParseHostPortTest, RejectsEmptyPort) {
  EXPECT_FALSE(ParseHostPort("localhost:").ok());
}

TEST(ParseHostPortTest, RejectsColonInHost) {
  // rfind(':') splits at the last colon, so an IPv6-ish host leaves a ':'
  // in the host part — rejected explicitly rather than misparsed.
  StatusOr<HostPort> parsed = ParseHostPort("::1:8080");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("IPv6"), std::string::npos)
      << parsed.status().message();
}

TEST(ParseHostPortTest, RejectsPortZero) {
  StatusOr<HostPort> parsed = ParseHostPort("localhost:0");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("out of range"), std::string::npos)
      << parsed.status().message();
}

TEST(ParseHostPortTest, RejectsPortAbove65535) {
  EXPECT_FALSE(ParseHostPort("localhost:65536").ok());
}

TEST(ParseHostPortTest, RejectsOverflowedPort) {
  // Larger than uint64: ParseUint64's overflow check must fire, not wrap.
  EXPECT_FALSE(ParseHostPort("localhost:99999999999999999999999").ok());
  // Wraps a 32-bit int if parsed carelessly; still must be rejected.
  EXPECT_FALSE(ParseHostPort("localhost:4294967297").ok());
}

TEST(ParseHostPortTest, RejectsNonNumericPort) {
  EXPECT_FALSE(ParseHostPort("localhost:http").ok());
  EXPECT_FALSE(ParseHostPort("localhost:80a").ok());
  EXPECT_FALSE(ParseHostPort("localhost:-80").ok());
  EXPECT_FALSE(ParseHostPort("localhost: 80").ok());
}

TEST(ParseHostPortTest, RoundTripsThroughFormat) {
  HostPort endpoint;
  endpoint.host = "10.1.2.3";
  endpoint.port = 4242;
  StatusOr<HostPort> parsed = ParseHostPort(FormatHostPort(endpoint));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(*parsed, endpoint);
}

TEST(ParseEndpointListTest, SingleEndpoint) {
  StatusOr<std::vector<HostPort>> parsed = ParseEndpointList("a:1");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].host, "a");
}

TEST(ParseEndpointListTest, PreservesOrder) {
  StatusOr<std::vector<HostPort>> parsed =
      ParseEndpointList("c:3,a:1,b:2");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed->size(), 3u);
  // Order is the ring contract: no sorting, no dedup.
  EXPECT_EQ((*parsed)[0].host, "c");
  EXPECT_EQ((*parsed)[1].host, "a");
  EXPECT_EQ((*parsed)[2].host, "b");
  EXPECT_EQ((*parsed)[2].port, 2);
}

TEST(ParseEndpointListTest, RejectsEmptyList) {
  EXPECT_FALSE(ParseEndpointList("").ok());
}

TEST(ParseEndpointListTest, RejectsEmptySegments) {
  EXPECT_FALSE(ParseEndpointList("a:1,,b:2").ok());
  EXPECT_FALSE(ParseEndpointList("a:1,").ok());
  EXPECT_FALSE(ParseEndpointList(",a:1").ok());
}

TEST(ParseEndpointListTest, RejectsAnyBadSegment) {
  EXPECT_FALSE(ParseEndpointList("a:1,b:0,c:3").ok());
  EXPECT_FALSE(ParseEndpointList("a:1,b,c:3").ok());
}

}  // namespace
}  // namespace zeroone
