#include "core/threevalued.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/measure.h"
#include "data/io.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(ThreeValuedTest, AtomTruthValues) {
  Database db = Db("R(2) = { (a, b), (a, _tv1) }");
  // Syntactic membership → true.
  EXPECT_EQ(ThreeValuedMembership(Q(":= R(a, b)"), db, Tuple{}),
            TruthValue::kTrue);
  // Unifies with (a, ⊥) → unknown.
  EXPECT_EQ(ThreeValuedMembership(Q(":= R(a, c)"), db, Tuple{}),
            TruthValue::kUnknown);
  // Constant mismatch with every tuple → false.
  EXPECT_EQ(ThreeValuedMembership(Q(":= R(z, b)"), db, Tuple{}),
            TruthValue::kFalse);
}

TEST(ThreeValuedTest, EqualityOnNulls) {
  Database db = Db("R(2) = { (_eq1, _eq2) }");
  // The same marked null is equal to itself — sharper than SQL.
  EXPECT_EQ(ThreeValuedMembership(
                Q(":= exists x, y . R(x, y) & x = x"), db, Tuple{}),
            TruthValue::kTrue);
  // Two distinct nulls: unknown.
  EXPECT_EQ(ThreeValuedMembership(
                Q(":= exists x, y . R(x, y) & x = y"), db, Tuple{}),
            TruthValue::kUnknown);
}

TEST(ThreeValuedTest, KleeneConnectives) {
  Database db = Db("R(1) = { (_kc1) }  S(1) = { (a) }");
  // unknown ∧ false = false; unknown ∨ true = true; ¬unknown = unknown.
  EXPECT_EQ(ThreeValuedMembership(Q(":= R(b) & S(b)"), db, Tuple{}),
            TruthValue::kFalse);
  EXPECT_EQ(ThreeValuedMembership(Q(":= R(b) | S(a)"), db, Tuple{}),
            TruthValue::kTrue);
  EXPECT_EQ(ThreeValuedMembership(Q(":= !R(b)"), db, Tuple{}),
            TruthValue::kUnknown);
}

TEST(ThreeValuedTest, IntroExampleAllUnknown) {
  // The Section 1 query on its database: both naive answers evaluate to
  // unknown (they are not certain), showing how much coarser 3-valued
  // evaluation is than the measure (which says µ = 1 for both).
  Database db = Db(
      "R1(2) = { (c1, _1), (c2, _1), (c2, _2) }"
      "R2(2) = { (c1, _2), (c2, _1), (_3, _1) }");
  Query q = Q("Q(x, y) := R1(x, y) & !R2(x, y)");
  EXPECT_EQ(ThreeValuedMembership(
                q, db, Tuple{Value::Constant("c1"), Value::Null("1")}),
            TruthValue::kUnknown);
  EXPECT_EQ(ThreeValuedMembership(
                q, db, Tuple{Value::Constant("c2"), Value::Null("2")}),
            TruthValue::kUnknown);
  EXPECT_TRUE(ThreeValuedCertainApproximation(q, db).empty());
}

// The soundness guarantee: true ⟹ certain, false ⟹ not possible.
class ThreeValuedSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ThreeValuedSoundness, TrueImpliesCertainFalseImpliesImpossible) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 4}, {"S", 1, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 2;
  db_options.null_probability = 0.4;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 80000;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 1;
  q_options.existential_variables = 1;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 80100;
  Query fo = GenerateRandomFo(q_options, 0.35);

  for (const Tuple& candidate : AllTuplesOverAdom(db, 1)) {
    TruthValue tv = ThreeValuedMembership(fo, db, candidate);
    if (tv == TruthValue::kTrue) {
      EXPECT_TRUE(IsCertainAnswer(fo, db, candidate))
          << candidate.ToString() << " 3V-true but not certain for "
          << fo.ToString() << "\n"
          << db.ToString();
    } else if (tv == TruthValue::kFalse) {
      EXPECT_FALSE(IsPossibleAnswer(fo, db, candidate))
          << candidate.ToString() << " 3V-false but possible for "
          << fo.ToString() << "\n"
          << db.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeValuedSoundness,
                         ::testing::Range(0, 30));

TEST(ThreeValuedTest, ApproximationIsIncomplete) {
  // A certain answer the 3-valued scheme misses: x = x under a null.
  Database db = Db("R(1) = { (_ic1) }");
  Query q = Q("Q(x) := R(x) & !S(x)");  // S absent: always false.
  Tuple t{Value::Null("ic1")};
  EXPECT_TRUE(IsCertainAnswer(q, db, t));
  // 3-valued: R(⊥) true but S(⊥)... S missing → false → !S true. This one
  // is found. A sharper miss: tautologies over nulls.
  Database db2 = Db("R(2) = { (_ic2, _ic3) }");
  Query q2 = Q(":= exists x, y . R(x, y) & (x = y | x != y)");
  EXPECT_TRUE(IsCertainAnswer(q2, db2, Tuple{}));
  EXPECT_EQ(ThreeValuedMembership(q2, db2, Tuple{}), TruthValue::kUnknown);
}

TEST(ThreeValuedTest, ApproximationsBracketTruth) {
  // certain ⊆ 3V-true-free... precisely: 3V-certain ⊆ certain ⊆ naive and
  // possible ⊆ 3V-possible.
  Database db = Db("R(2) = { (a, _br1), (b, c) }  S(2) = { (a, c) }");
  Query q = Q("Q(x, y) := R(x, y) & !S(x, y)");
  std::vector<Tuple> certain = CertainAnswers(q, db);
  std::vector<Tuple> approx = ThreeValuedCertainApproximation(q, db);
  std::sort(certain.begin(), certain.end());
  for (const Tuple& t : approx) {
    EXPECT_TRUE(std::binary_search(certain.begin(), certain.end(), t));
  }
  std::vector<Tuple> possible = PossibleAnswers(q, db);
  std::vector<Tuple> possible_approx = ThreeValuedPossibleApproximation(q, db);
  std::sort(possible_approx.begin(), possible_approx.end());
  for (const Tuple& t : possible) {
    EXPECT_TRUE(std::binary_search(possible_approx.begin(),
                                   possible_approx.end(), t));
  }
}

}  // namespace
}  // namespace zeroone
