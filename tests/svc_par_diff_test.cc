// Differential serving tests for intra-query parallelism: the same
// deterministic script of commands is replayed against a server running
// serial queries (ServerOptions::par_threads = 1, the ZEROONE_PAR=off
// reference behavior) and one running 8-wide morsel teams, and the two
// wire transcripts must be byte-identical — the pool may change latency,
// never bytes. The script leans on `muk` (the heaviest analytical command,
// dispatched through the sharded parallel counter) alongside the usual
// read/mutate mix.
//
// Two race-shaped tests ride along for the TSan CI job: a mutator hammering
// a session while a second connection runs heavy parallel reads against it,
// and a deadline expiring mid-parallel-query — which must surface as
// DEADLINE_EXCEEDED, discard the partial result, and leave the session
// fully usable. A fault-injection test drives `par.morsel.abort` through
// the wire path and checks the same discard contract.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "fault/fault.h"
#include "par/pool.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace zeroone {
namespace svc {
namespace {

// Session "default": mutated by the script. Session "mu": never mutated, so
// `muk 6 (c1)` stays within its k >= |C ∪ Const(D)| precondition (four
// constants) for the whole transcript.
constexpr const char* kDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, c1), (c4, c2) }";
constexpr const char* kQuery = "Q(x) := exists y . R(x, y)";
constexpr const char* kJoinQuery = "Q(x) := exists y . R(x, y) & R(y, x)";
// Five nulls over an 8-constant enumeration: tens of thousands of
// valuations, comfortably heavier than a millisecond — the deadline test
// relies on that.
constexpr const char* kHeavyDb =
    "R(2) = { (c1, _1), (_2, _3), (_4, _5), (c2, c1) }";

// Raw frames, uninterpreted (see svc_epoll_diff_test for rationale).
class RawClient {
 public:
  ~RawClient() { Close(); }

  void Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void SendLine(const Request& request) {
    std::string bytes = FormatRequestLine(request) + "\n";
    std::string_view view = bytes;
    while (!view.empty()) {
      ssize_t n = ::send(fd_, view.data(), view.size(), MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      view.remove_prefix(static_cast<std::size_t>(n));
    }
  }

  void ReadFrames(std::size_t count, std::vector<std::string>* out) {
    while (count > 0) {
      Response parsed;
      StatusOr<std::size_t> consumed = ParseResponseFrame(buffer_, &parsed);
      if (!consumed.ok()) {
        out->push_back("<<frame error: " + consumed.status().message() +
                       ">>");
        return;
      }
      if (*consumed > 0) {
        out->push_back(buffer_.substr(0, *consumed));
        buffer_.erase(0, *consumed);
        --count;
        continue;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        out->push_back("<<eof>>");
        return;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

Request Req(const std::string& command, const std::string& args = "",
            const std::string& session = "default") {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

void Roundtrip(RawClient& client, std::vector<std::string>& transcript,
               const Request& request) {
  client.SendLine(request);
  client.ReadFrames(1, &transcript);
}

// Starting a server installs its par_threads budget process-globally;
// restore the ambient budget so test order never matters.
class BudgetGuard {
 public:
  BudgetGuard() : previous_(par::par_threads()) {}
  ~BudgetGuard() { par::SetParThreads(previous_); }

 private:
  std::size_t previous_;
};

std::vector<std::string> RunTranscript(std::size_t par_threads,
                                       std::uint32_t seed) {
  BudgetGuard guard;
  ServerOptions options;
  options.threads = 2;
  options.par_threads = par_threads;
  Server server(options);
  Status started = server.Start();
  EXPECT_TRUE(started.ok()) << started.message();

  std::vector<std::string> transcript;
  {
    RawClient client;
    client.Connect(server.port());
    Roundtrip(client, transcript, Req("db", kDb));
    Roundtrip(client, transcript, Req("query", kQuery));
    Roundtrip(client, transcript, Req("db", kDb, "mu"));
    Roundtrip(client, transcript, Req("query", kQuery, "mu"));

    // Seeded random script, one request outstanding at a time; `muk` runs
    // against the immutable "mu" session, everything else against
    // "default" (whose inserts keep invalidating cached plans).
    std::mt19937 rng(seed);
    int insert_counter = 0;
    for (int i = 0; i < 30; ++i) {
      std::uint32_t choice = static_cast<std::uint32_t>(rng()) % 10;
      Request request;
      switch (choice) {
        case 0:
        case 1:
          request = Req("certain");
          break;
        case 2:
          request = Req("possible");
          break;
        case 3:
          request = Req("naive");
          break;
        case 4:
          ++insert_counter;
          request = Req("db", StrCat("R(2) = { (k", insert_counter, ", v",
                                     insert_counter, ") }"));
          break;
        case 5:
          request = Req("query",
                        static_cast<std::uint32_t>(rng()) % 2 == 0
                            ? kQuery
                            : kJoinQuery);
          break;
        case 6:
          request = Req("mu", "(c1)", "mu");
          break;
        default:
          request = Req("muk", "6 (c1)", "mu");  // The parallel hot path.
          break;
      }
      request.id = StrCat("id", i);
      if (static_cast<std::uint32_t>(rng()) % 3 == 0) {
        request.no_cache = true;
      }
      Roundtrip(client, transcript, request);
    }
  }

  server.Shutdown();
  return transcript;
}

class SvcParDiffTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SvcParDiffTest, SerialAndParallelTranscriptsAreByteIdentical) {
  const std::uint32_t seed = GetParam();
  std::vector<std::string> serial = RunTranscript(/*par_threads=*/1, seed);
  std::vector<std::string> parallel = RunTranscript(/*par_threads=*/8, seed);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "transcript diverges at frame " << i;
  }
  auto contains = [&](const char* needle) {
    for (const std::string& frame : parallel) {
      if (frame.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("ZO1 OK"));
  EXPECT_FALSE(contains("<<frame error"));
  EXPECT_FALSE(contains("<<eof"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvcParDiffTest,
                         ::testing::Values(21u, 404u, 6006u));

TEST(SvcParRaceTest, MutatorAndHeavyParallelReaderShareASession) {
  // TSan target: one connection mutates session "race" while another runs
  // parallel analytical reads against it. Interleaving is free to vary;
  // every request must still get exactly one well-formed response and the
  // server must drain cleanly. k=48 keeps `muk` within its precondition
  // however many insert-constants have landed when it runs.
  BudgetGuard guard;
  ServerOptions options;
  options.threads = 4;
  options.par_threads = 8;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  {
    RawClient setup;
    setup.Connect(server.port());
    std::vector<std::string> frames;
    Roundtrip(setup, frames, Req("db", kDb, "race"));
    Roundtrip(setup, frames, Req("query", kQuery, "race"));
    ASSERT_EQ(frames.size(), 2u);
  }

  std::vector<std::string> reader_frames;
  std::vector<std::string> mutator_frames;
  std::thread reader([&] {
    RawClient client;
    client.Connect(server.port());
    for (int i = 0; i < 12; ++i) {
      Request request = i % 3 == 0 ? Req("certain", "", "race")
                                   : Req("muk", "48 (c1)", "race");
      request.id = StrCat("r", i);
      client.SendLine(request);
      client.ReadFrames(1, &reader_frames);
    }
  });
  std::thread mutator([&] {
    RawClient client;
    client.Connect(server.port());
    for (int i = 0; i < 12; ++i) {
      Request request =
          Req("db", StrCat("R(2) = { (m", i, ", n", i, ") }"), "race");
      request.id = StrCat("m", i);
      client.SendLine(request);
      client.ReadFrames(1, &mutator_frames);
    }
  });
  reader.join();
  mutator.join();
  server.Shutdown();

  ASSERT_EQ(reader_frames.size(), 12u);
  ASSERT_EQ(mutator_frames.size(), 12u);
  for (const std::string& frame : reader_frames) {
    EXPECT_EQ(frame.find("<<"), std::string::npos) << frame;
    EXPECT_EQ(frame.compare(0, 4, "ZO1 "), 0) << frame;
  }
  for (const std::string& frame : mutator_frames) {
    EXPECT_EQ(frame.compare(0, 6, "ZO1 OK"), 0) << frame;
  }
}

TEST(SvcParRaceTest, DeadlineMidParallelQueryLeavesTheSessionIntact) {
  BudgetGuard guard;
  ServerOptions options;
  options.threads = 2;
  options.par_threads = 8;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  RawClient client;
  client.Connect(server.port());
  std::vector<std::string> frames;
  Roundtrip(client, frames, Req("db", kHeavyDb, "heavy"));
  Roundtrip(client, frames, Req("query", kQuery, "heavy"));

  // A reference answer before the deadline casualty...
  Roundtrip(client, frames, Req("certain", "", "heavy"));
  ASSERT_EQ(frames.size(), 3u);
  std::string certain_before = frames.back();

  // ...then the heavy parallel query with a 1 ms budget: 8^5 valuations do
  // not fit, so the team is cancelled mid-run and the partial discarded.
  Request doomed = Req("muk", "8 (c1)", "heavy");
  doomed.deadline_ms = 1;
  Roundtrip(client, frames, doomed);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_NE(frames.back().find("DEADLINE_EXCEEDED"), std::string::npos)
      << frames.back();

  // The session is untouched: the same read reproduces its answer and an
  // unhurried heavy query still completes.
  Roundtrip(client, frames, Req("certain", "", "heavy"));
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames.back(), certain_before);
  Roundtrip(client, frames, Req("muk", "8 (c1)", "heavy"));
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(frames.back().compare(0, 6, "ZO1 OK"), 0) << frames.back();
  client.Close();
  server.Shutdown();
}

TEST(SvcParRaceTest, MorselAbortFaultSurfacesAsDeadlineAndDiscardsPartials) {
  // The `par.morsel.abort` site cancels the request token mid-team; the
  // dispatcher must answer DEADLINE_EXCEEDED (same contract as
  // plan.vm.cancel) and the session must keep serving once the plan is
  // cleared — byte-identically to the pre-fault answer.
#if !ZEROONE_PAR_ENABLED
  GTEST_SKIP() << "par.morsel.abort compiles away with ZEROONE_PAR=OFF";
#endif
  BudgetGuard guard;
  fault::Registry::Global().Clear();
  ServerOptions options;
  options.threads = 2;
  options.par_threads = 8;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  RawClient client;
  client.Connect(server.port());
  std::vector<std::string> frames;
  Roundtrip(client, frames, Req("db", kDb, "mu"));
  Roundtrip(client, frames, Req("query", kQuery, "mu"));
  Request heavy = Req("muk", "6 (c1)", "mu");
  heavy.no_cache = true;
  Roundtrip(client, frames, heavy);
  ASSERT_EQ(frames.size(), 3u);
  std::string clean_answer = frames.back();
  EXPECT_EQ(clean_answer.compare(0, 6, "ZO1 OK"), 0) << clean_answer;

  ASSERT_TRUE(
      fault::Registry::Global().Configure("par.morsel.abort=#1").ok());
  Roundtrip(client, frames, heavy);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_NE(frames.back().find("DEADLINE_EXCEEDED"), std::string::npos)
      << frames.back();

  fault::Registry::Global().Clear();
  Roundtrip(client, frames, heavy);
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames.back(), clean_answer);
  client.Close();
  server.Shutdown();
}

}  // namespace
}  // namespace svc
}  // namespace zeroone
