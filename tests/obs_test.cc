#include "obs/metrics.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace zeroone {
namespace obs {
namespace {

// Minimal recursive-descent JSON validator — enough to assert that the
// dumpers emit syntactically well-formed documents without pulling in a
// JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() { return Value() && (Skip(), position_ == text_.size()); }

 private:
  void Skip() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  bool Consume(char c) {
    Skip();
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }

  char Peek() {
    Skip();
    return position_ < text_.size() ? text_[position_] : '\0';
  }

  bool Literal(std::string_view word) {
    if (text_.substr(position_, word.size()) != word) return false;
    position_ += word.size();
    return true;
  }

  bool String() {
    if (!Consume('"')) return false;
    while (position_ < text_.size() && text_[position_] != '"') {
      if (text_[position_] == '\\') {
        ++position_;
        if (position_ >= text_.size()) return false;
      }
      ++position_;
    }
    return Consume('"');
  }

  bool Number() {
    std::size_t start = position_;
    if (position_ < text_.size() && text_[position_] == '-') ++position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '.' || text_[position_] == 'e' ||
            text_[position_] == 'E' || text_[position_] == '+' ||
            text_[position_] == '-')) {
      ++position_;
    }
    return position_ > start;
  }

  bool Value() {
    char c = Peek();
    if (c == '{') {
      Consume('{');
      if (Peek() == '}') return Consume('}');
      do {
        Skip();
        if (!String() || !Consume(':') || !Value()) return false;
      } while (Consume(','));
      return Consume('}');
    }
    if (c == '[') {
      Consume('[');
      if (Peek() == ']') return Consume(']');
      do {
        if (!Value()) return false;
      } while (Consume(','));
      return Consume(']');
    }
    if (c == '"') return String();
    Skip();
    if (Literal("null") || Literal("true") || Literal("false")) return true;
    return Number();
  }

  std::string_view text_;
  std::size_t position_ = 0;
};

TEST(CounterTest, RegistryReturnsStableHandles) {
  Counter& a = Registry::Global().GetCounter("obs_test.stable");
  Counter& b = Registry::Global().GetCounter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "obs_test.stable");
}

TEST(CounterTest, IncrementAndAdd) {
  Counter& counter = Registry::Global().GetCounter("obs_test.basic");
  std::uint64_t before = counter.value();
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), before + 42);
}

TEST(CounterTest, ConcurrentIncrementsFromEightThreadsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  Counter& counter = Registry::Global().GetCounter("obs_test.concurrent");
  std::uint64_t before = counter.value();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), before + kThreads * kPerThread);
}

TEST(CounterTest, MacroIncrementsNamedCounter) {
  std::uint64_t before =
      Registry::Global().GetCounter("obs_test.macro").value();
  ZO_COUNTER_INC("obs_test.macro");
  ZO_COUNTER_ADD("obs_test.macro", 4);
#if ZEROONE_OBS_ENABLED
  EXPECT_EQ(Registry::Global().GetCounter("obs_test.macro").value(),
            before + 5);
#else
  // With ZEROONE_OBS=OFF the macros are no-ops.
  EXPECT_EQ(Registry::Global().GetCounter("obs_test.macro").value(), before);
#endif
}

TEST(ScopedSnapshotTest, DeltaAttributesGrowthSinceConstruction) {
  Counter& counter = Registry::Global().GetCounter("obs_test.snapshot");
  counter.Add(7);  // Pre-existing value must not leak into the delta.
  ScopedSnapshot snapshot;
  counter.Add(3);
  EXPECT_EQ(snapshot.Delta("obs_test.snapshot"), 3u);
  EXPECT_EQ(snapshot.Delta("obs_test.never_touched_by_anyone"), 0u);
}

TEST(ScopedSnapshotTest, DeltasListsOnlyCountersThatGrew) {
  Counter& grew = Registry::Global().GetCounter("obs_test.deltas.grew");
  Registry::Global().GetCounter("obs_test.deltas.idle").Add(5);
  ScopedSnapshot snapshot;
  grew.Add(2);
  auto deltas = snapshot.Deltas();
  EXPECT_EQ(deltas["obs_test.deltas.grew"], 2u);
  EXPECT_EQ(deltas.count("obs_test.deltas.idle"), 0u);
}

TEST(HistogramTest, BucketUpperBoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024u);
  EXPECT_EQ(Histogram::BucketUpperBound(18), std::uint64_t{1} << 18);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBucketCount - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(HistogramTest, RecordPlacesSamplesInCorrectBuckets) {
  Histogram& histogram =
      Registry::Global().GetHistogram("obs_test.histogram");
  histogram.Record(1);        // <= 2^0 -> bucket 0.
  histogram.Record(2);        // <= 2^1 -> bucket 1.
  histogram.Record(3);        // <= 2^2 -> bucket 2.
  histogram.Record(1000000);  // > 2^18 -> unbounded last bucket.
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum_micros(), 1000006u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(2), 1u);
  EXPECT_EQ(histogram.bucket(Histogram::kBucketCount - 1), 1u);
}

TEST(HistogramTest, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 18),
            std::size_t{18});
  EXPECT_EQ(Histogram::BucketIndex((std::uint64_t{1} << 18) + 1),
            Histogram::kBucketCount - 1);
}

TEST(TraceBufferTest, RingOverwritesOldestOnWraparound) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  buffer.Enable();
  const std::size_t capacity = buffer.capacity();
  for (std::size_t i = 0; i < capacity + 10; ++i) {
    TraceEvent event;
    event.name = "wrap";
    event.ts_micros = i;
    buffer.Append(event);
  }
  buffer.Disable();
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), capacity);
  EXPECT_EQ(buffer.total_appended(), capacity + 10);
  // The ten oldest events were overwritten; the survivors are in order.
  EXPECT_EQ(events.front().ts_micros, 10u);
  EXPECT_EQ(events.back().ts_micros, capacity + 9);
  buffer.Clear();
}

TEST(TraceBufferTest, SpanRecordsHistogramAlwaysAndEventWhenEnabled) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  Histogram& histogram =
      Registry::Global().GetHistogram("latency.obs_test_span");
  std::uint64_t recorded_before = histogram.count();

  // Tracing disabled: histogram still records, ring stays empty.
  {
    TraceSpan span("obs_test_span", &histogram);
  }
  EXPECT_EQ(histogram.count(), recorded_before + 1);
  EXPECT_EQ(buffer.Snapshot().size(), 0u);

  buffer.Enable();
  {
    TraceSpan span("obs_test_span", &histogram);
  }
  buffer.Disable();
  EXPECT_EQ(histogram.count(), recorded_before + 2);
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events.front().name, "obs_test_span");
  EXPECT_GT(events.front().tid, 0u);
  buffer.Clear();
}

TEST(TraceBufferTest, SpanMacroFollowsBuildConfiguration) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  Histogram& histogram =
      Registry::Global().GetHistogram("latency.obs_test_macro_span");
  std::uint64_t recorded_before = histogram.count();
  buffer.Enable();
  {
    ZO_TRACE_SPAN("obs_test_macro_span");
  }
  buffer.Disable();
#if ZEROONE_OBS_ENABLED
  EXPECT_EQ(histogram.count(), recorded_before + 1);
  EXPECT_EQ(buffer.Snapshot().size(), 1u);
#else
  // With ZEROONE_OBS=OFF the macro is a no-op even while tracing is on.
  EXPECT_EQ(histogram.count(), recorded_before);
  EXPECT_EQ(buffer.Snapshot().size(), 0u);
#endif
  buffer.Clear();
}

TEST(JsonOutputTest, MetricsDumpIsValidJson) {
  Registry::Global().GetCounter("obs_test.json \"quoted\\name\"").Increment();
  Registry::Global().GetHistogram("obs_test.json_histogram").Record(3);
  std::ostringstream stream;
  Registry::Global().DumpJson(stream);
  std::string dump = stream.str();
  EXPECT_TRUE(JsonChecker(dump).Valid()) << dump;
  EXPECT_NE(dump.find("\"counters\""), std::string::npos);
  EXPECT_NE(dump.find("\"histograms\""), std::string::npos);
  EXPECT_NE(dump.find("\"le_micros\": null"), std::string::npos);
}

TEST(JsonOutputTest, ChromeTraceIsValidJson) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  buffer.Enable();
  {
    Histogram& histogram =
        Registry::Global().GetHistogram("latency.obs_test_chrome");
    TraceSpan span("obs_test_chrome", &histogram);
  }
  buffer.Disable();
  std::ostringstream stream;
  buffer.WriteChromeTrace(stream);
  std::string trace = stream.str();
  EXPECT_TRUE(JsonChecker(trace).Valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  buffer.Clear();
}

TEST(JsonOutputTest, AppendJsonStringEscapes) {
  std::ostringstream stream;
  AppendJsonString(stream, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(stream.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

}  // namespace
}  // namespace obs
}  // namespace zeroone
