#include "query/fragments.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace zeroone {
namespace {

FormulaPtr F(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return q->formula();
}

TEST(FragmentsTest, ConjunctiveClassification) {
  EXPECT_TRUE(IsConjunctive(*F("Q(x) := exists y . R(x, y) & S(y)")));
  EXPECT_TRUE(IsConjunctive(*F("Q(x, y) := R(x, y) & x = y")));
  EXPECT_TRUE(IsConjunctive(*F(":= true")));
  EXPECT_FALSE(IsConjunctive(*F("Q(x) := R(x) | S(x)")));
  EXPECT_FALSE(IsConjunctive(*F("Q(x) := !R(x)")));
  EXPECT_FALSE(IsConjunctive(*F(":= forall x . R(x)")));
}

TEST(FragmentsTest, UcqClassification) {
  EXPECT_TRUE(IsUnionOfConjunctive(
      *F("Q(x) := (exists y . R(x, y)) | S(x)")));
  EXPECT_TRUE(IsUnionOfConjunctive(*F(":= false")));
  EXPECT_FALSE(IsUnionOfConjunctive(*F("Q(x) := R(x) & !S(x)")));
  EXPECT_FALSE(IsUnionOfConjunctive(*F(":= forall x . R(x)")));
  EXPECT_FALSE(IsUnionOfConjunctive(*F(":= R() -> S()")));
}

TEST(FragmentsTest, PosForallGuardedClassification) {
  // Positive formulas with ∃ and plain ∀ are in the fragment.
  EXPECT_TRUE(IsPosForallGuarded(*F(":= exists x . R(x) & S(x)")));
  EXPECT_TRUE(IsPosForallGuarded(*F(":= forall x . R(x) | S(x)")));
  // Guarded implication: ∀x (α(x) → φ).
  EXPECT_TRUE(IsPosForallGuarded(*F(":= forall x . U(x) -> R(x)")));
  EXPECT_TRUE(IsPosForallGuarded(
      *F(":= forall x, y . E(x, y) -> (exists z . E(y, z))")));
  // Negation breaks it.
  EXPECT_FALSE(IsPosForallGuarded(*F(":= forall x . U(x) -> !R(x)")));
  EXPECT_FALSE(IsPosForallGuarded(*F("Q(x) := R(x) & !S(x)")));
  // A bare implication (no ∀ guard) is not allowed.
  EXPECT_FALSE(IsPosForallGuarded(*F(":= R() -> S()")));
  // Guard must be an atom covering exactly the quantified variables.
  EXPECT_FALSE(IsPosForallGuarded(
      *F(":= forall x, y . U(x) -> R(x, y)")));  // y not in the guard.
  EXPECT_FALSE(IsPosForallGuarded(
      *F(":= forall x . E(x, x) -> R(x)")));  // Repeated variable in guard.
  // Guarded implication whose conclusion is itself guarded.
  EXPECT_TRUE(IsPosForallGuarded(
      *F(":= forall x . U(x) -> (forall y . E(x, y) -> R(y))")));
}

TEST(FragmentsTest, NormalizeSimpleCq) {
  StatusOr<UcqNormalForm> ucq =
      NormalizeUcq(*F("Q(x) := exists y . R(x, y) & S(y)"));
  ASSERT_TRUE(ucq.ok()) << ucq.status().message();
  ASSERT_EQ(ucq->disjuncts.size(), 1u);
  EXPECT_EQ(ucq->disjuncts[0].atoms.size(), 2u);
  EXPECT_TRUE(ucq->disjuncts[0].equalities.empty());
}

TEST(FragmentsTest, NormalizeDistributesAndOverOr) {
  // (A | B) & (C | D) → 4 disjuncts.
  StatusOr<UcqNormalForm> ucq =
      NormalizeUcq(*F(":= (A() | B()) & (C() | D())"));
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->disjuncts.size(), 4u);
  for (const ConjunctiveClause& clause : ucq->disjuncts) {
    EXPECT_EQ(clause.atoms.size(), 2u);
  }
}

TEST(FragmentsTest, NormalizeTrueFalse) {
  StatusOr<UcqNormalForm> top = NormalizeUcq(*F(":= true"));
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->disjuncts.size(), 1u);
  EXPECT_TRUE(top->disjuncts[0].atoms.empty());
  StatusOr<UcqNormalForm> bottom = NormalizeUcq(*F(":= false"));
  ASSERT_TRUE(bottom.ok());
  EXPECT_TRUE(bottom->disjuncts.empty());
  // false | R() keeps only the R clause.
  StatusOr<UcqNormalForm> mixed = NormalizeUcq(*F(":= false | R()"));
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->disjuncts.size(), 1u);
}

TEST(FragmentsTest, NormalizeKeepsEqualities) {
  StatusOr<UcqNormalForm> ucq =
      NormalizeUcq(*F("Q(x, y) := R(x, y) & x = y"));
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->disjuncts.size(), 1u);
  EXPECT_EQ(ucq->disjuncts[0].equalities.size(), 1u);
}

TEST(FragmentsTest, NormalizeRejectsNegation) {
  EXPECT_FALSE(NormalizeUcq(*F("Q(x) := R(x) & !S(x)")).ok());
  EXPECT_FALSE(NormalizeUcq(*F(":= forall x . R(x)")).ok());
}

}  // namespace
}  // namespace zeroone
