#include "data/isomorphism.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "constraints/fd.h"
#include "data/io.h"
#include "gen/random_db.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

TEST(IsomorphismTest, RenamedNullsAreIsomorphic) {
  Database a = Db("R(2) = { (x, _i1), (_i1, _i2) }");
  Database b = Db("R(2) = { (x, _j1), (_j1, _j2) }");
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, DifferentNullStructureIsNot) {
  // a correlates the two occurrences; b does not.
  Database a = Db("R(2) = { (x, _k1), (_k1, y) }");
  Database b = Db("R(2) = { (x, _k2), (_k3, y) }");
  EXPECT_FALSE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, ConstantsMustMatchExactly) {
  Database a = Db("R(1) = { (p) }");
  Database b = Db("R(1) = { (q) }");
  EXPECT_FALSE(AreIsomorphic(a, b));
  EXPECT_TRUE(AreIsomorphic(a, a));
}

TEST(IsomorphismTest, PermutedInterchangeableNulls) {
  // Two nulls with identical roles; any bijection works.
  Database a = Db("R(1) = { (_m1), (_m2) }");
  Database b = Db("R(1) = { (_m3), (_m4) }");
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, CrossRelationCorrelationChecked) {
  Database a = Db("R(1) = { (_c1) }  S(1) = { (_c1) }");
  Database b = Db("R(1) = { (_c2) }  S(1) = { (_c3) }");
  // a shares its null across relations; b does not (and has a different
  // null count, caught early).
  EXPECT_FALSE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, RandomRenamingsAlwaysIsomorphic) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RandomDatabaseOptions options;
    options.relations = {{"R", 2, 5}, {"S", 1, 3}};
    options.constant_pool = 3;
    options.null_pool = 3;
    options.null_probability = 0.5;
    options.seed = seed + 40000;
    Database db = GenerateRandomDatabase(options);
    // Rename every null freshly (bijectively); valuations target constants,
    // so build the null-to-null map directly.
    std::map<Value, Value> map;
    for (Value null : db.Nulls()) map[null] = Value::FreshNull();
    Database renamed(db.schema());
    for (const auto& [name, rel] : db.relations()) {
      for (Relation::Row t : rel) {
        std::vector<Value> values;
        for (Value v : t) {
          values.push_back(v.is_null() ? map[v] : v);
        }
        renamed.mutable_relation(name).Insert(Tuple(values));
      }
    }
    EXPECT_TRUE(AreIsomorphic(db, renamed)) << db.ToString();
  }
}

TEST(CoddTest, Detection) {
  EXPECT_TRUE(HasOnlyCoddNulls(Db("R(2) = { (a, _cd1), (b, _cd2) }")));
  EXPECT_FALSE(HasOnlyCoddNulls(Db("R(2) = { (a, _cd3), (b, _cd3) }")));
  EXPECT_TRUE(HasOnlyCoddNulls(Db("R(2) = { (a, b) }")));
}

TEST(CoddTest, WeakeningForgetsCorrelations) {
  Database marked = Db("R(2) = { (a, _cw1), (b, _cw1) }");
  Database codd = CoddWeakening(marked);
  EXPECT_TRUE(HasOnlyCoddNulls(codd));
  EXPECT_EQ(codd.relation("R").size(), 2u);
  EXPECT_EQ(codd.Nulls().size(), 2u);  // The shared null split in two.
  EXPECT_FALSE(AreIsomorphic(marked, codd));
}

// The chase is Church–Rosser up to null renaming: shuffling the FD order
// yields isomorphic results (Section 4.4).
class ChaseConfluence : public ::testing::TestWithParam<int> {};

TEST_P(ChaseConfluence, OrderInvariantUpToRenaming) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 3, 5}};
  options.constant_pool = 2;
  options.null_pool = 3;
  options.null_probability = 0.5;
  options.seed = static_cast<std::uint64_t>(GetParam()) + 41000;
  Database db = GenerateRandomDatabase(options);

  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R", 3, {0}, 1),
      FunctionalDependency("R", 3, {0}, 2),
      FunctionalDependency("R", 3, {1}, 2)};
  ChaseResult forward = ChaseFds(fds, db);
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 42000);
  std::shuffle(fds.begin(), fds.end(), rng);
  ChaseResult shuffled = ChaseFds(fds, db);

  EXPECT_EQ(forward.success, shuffled.success);
  if (forward.success) {
    EXPECT_TRUE(AreIsomorphic(forward.database, shuffled.database))
        << db.ToString() << "\n--- forward ---\n"
        << forward.database.ToString() << "\n--- shuffled ---\n"
        << shuffled.database.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseConfluence, ::testing::Range(0, 25));

}  // namespace
}  // namespace zeroone
