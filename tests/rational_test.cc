#include "common/rational.h"

#include <gtest/gtest.h>

namespace zeroone {
namespace {

TEST(RationalTest, ReducesToLowestTerms) {
  Rational r(6, 8);
  EXPECT_EQ(r.numerator().ToString(), "3");
  EXPECT_EQ(r.denominator().ToString(), "4");
  EXPECT_EQ(r.ToString(), "3/4");
}

TEST(RationalTest, SignNormalizedOntoNumerator) {
  Rational r(3, -6);
  EXPECT_EQ(r.ToString(), "-1/2");
  EXPECT_EQ(r.sign(), -1);
  Rational s(-3, -6);
  EXPECT_EQ(s.ToString(), "1/2");
}

TEST(RationalTest, ZeroNormalizes) {
  Rational r(0, 17);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.denominator().ToString(), "1");
  EXPECT_EQ(r.ToString(), "0");
}

TEST(RationalTest, IntegerPrintsWithoutDenominator) {
  EXPECT_EQ(Rational(14, 7).ToString(), "2");
  EXPECT_TRUE(Rational(7, 7).is_one());
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_NE(Rational(2, 4), Rational(3, 4));
  EXPECT_GT(Rational(0), Rational(-1, 100));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).ToDouble(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).ToDouble(), -1.5);
}

TEST(RationalTest, LargeValuesStayExact) {
  // (10^18 / (2 * 10^18)) reduces to 1/2 exactly.
  Rational r(BigInt(1000000000000000000LL), BigInt(2000000000000000000LL));
  EXPECT_EQ(r, Rational(1, 2));
  // Repeated squaring stays exact.
  Rational x(3, 7);
  Rational acc(1);
  for (int i = 0; i < 10; ++i) acc *= x;
  EXPECT_EQ(acc.numerator().ToString(), "59049");        // 3^10
  EXPECT_EQ(acc.denominator().ToString(), "282475249");  // 7^10
}

}  // namespace
}  // namespace zeroone
