// Write-ahead log tests (src/svc/wal.h):
//  - codec round-trips for headers and records, including binary payloads
//    with embedded newlines (the `loaddata` replay form);
//  - the torn-tail property: every proper prefix of a valid frame decodes
//    to "incomplete", never to a record and never to damage;
//  - a corruption table (CRC flips, mangled framing, header lies) where
//    every case is permanently undecodable;
//  - WalStore recovery posture: torn tails truncated in place, undecodable
//    spans moved to `<log>.corrupt`, damaged headers quarantined whole;
//  - crash-consistency under injected faults (ZEROONE_FAULT=ON builds):
//    failed appends leave no partial frame, failed compactions leave the
//    old log intact, and a fault-riddled run recovers to a database
//    byte-identical to an uninterrupted run — the recovery table the
//    durability contract in docs/robustness.md promises.

#include "svc/wal.h"

#include <unistd.h>

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/protocol.h"

namespace zeroone {
namespace svc {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void AppendRawBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
  ASSERT_TRUE(out.good()) << "cannot append to " << path;
}

// An RAII temp directory (removed recursively, one level deep).
class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/zo1wal_test_XXXXXX";
    path_ = ::mkdtemp(templ);
  }
  ~TempDir() {
    if (path_.empty()) return;
    if (DIR* dir = ::opendir(path_.c_str())) {
      while (dirent* entry = ::readdir(dir)) {
        std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

WalRecord MakeRecord(std::uint64_t version, const std::string& command,
                     const std::string& args) {
  WalRecord record;
  record.version = version;
  record.command = command;
  record.args = args;
  return record;
}

TEST(WalCodec, HeaderRoundTrip) {
  const std::string header = EncodeWalHeader("alpha-7", 42);
  std::string session;
  std::uint64_t base = 0;
  StatusOr<std::size_t> consumed = DecodeWalHeader(header, &session, &base);
  ASSERT_TRUE(consumed.ok()) << consumed.status().message();
  EXPECT_EQ(*consumed, header.size());
  EXPECT_EQ(session, "alpha-7");
  EXPECT_EQ(base, 42u);
  // Trailing bytes after the header line are not the header's business.
  consumed = DecodeWalHeader(header + "#1 2 aaaaaaaa\n", &session, &base);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, header.size());
}

TEST(WalCodec, HeaderRejectsDamage) {
  std::string session;
  std::uint64_t base = 0;
  const char* bad[] = {
      "ZO1WAL 2 s 0\n",     // Wrong version.
      "XO1WAL 1 s 0\n",     // Wrong magic.
      "ZO1WAL 1 s\n",       // Missing base version.
      "ZO1WAL 1 s zero\n",  // Non-numeric base.
      "ZO1WAL 1 b@d 0\n",   // Invalid session name.
      "ZO1WAL 1 s 0",       // No newline.
  };
  for (const char* line : bad) {
    SCOPED_TRACE(line);
    EXPECT_FALSE(DecodeWalHeader(line, &session, &base).ok());
  }
}

TEST(WalCodec, RecordRoundTrip) {
  const WalRecord cases[] = {
      MakeRecord(1, "db", "M(1) = { (a) }"),
      MakeRecord(7, "clear", ""),  // No args: payload is the bare command.
      MakeRecord(900, "loaddata", "R(1) = { (x) }\nS(1) = { (y) }\n"),
  };
  for (const WalRecord& record : cases) {
    SCOPED_TRACE(record.command);
    const std::string frame = EncodeWalRecord(record);
    WalRecord decoded;
    StatusOr<std::size_t> consumed = DecodeWalRecord(frame, &decoded);
    ASSERT_TRUE(consumed.ok()) << consumed.status().message();
    EXPECT_EQ(*consumed, frame.size());
    EXPECT_EQ(decoded.version, record.version);
    EXPECT_EQ(decoded.command, record.command);
    EXPECT_EQ(decoded.args, record.args);
    // With a second frame appended, exactly the first is consumed.
    consumed = DecodeWalRecord(frame + frame, &decoded);
    ASSERT_TRUE(consumed.ok());
    EXPECT_EQ(*consumed, frame.size());
  }
}

TEST(WalCodec, EveryProperPrefixIsATornTailNeverDamage) {
  // The crash model: a frame is cut anywhere. Each prefix must decode as
  // "incomplete" (consumed == 0) — never as a shorter valid record, and
  // never as permanent damage, because recovery truncates tails but
  // quarantines damage.
  const std::string frame =
      EncodeWalRecord(MakeRecord(12, "db", "M(1) = { (torn) }\nextra"));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    SCOPED_TRACE(cut);
    WalRecord decoded;
    StatusOr<std::size_t> consumed =
        DecodeWalRecord(frame.substr(0, cut), &decoded);
    ASSERT_TRUE(consumed.ok())
        << "prefix of " << cut << " bytes treated as damage: "
        << consumed.status().message();
    EXPECT_EQ(*consumed, 0u);
  }
}

TEST(WalCodec, CorruptRecordsAreNeverDecodable) {
  const std::string frame =
      EncodeWalRecord(MakeRecord(3, "db", "M(1) = { (v) }"));
  struct Case {
    const char* name;
    std::string bytes;
  };
  std::string crc_flip = frame;
  crc_flip[frame.find('\n') - 1] ^= 0x01;  // Last CRC hex digit.
  std::string body_flip = frame;
  body_flip[frame.size() - 2] ^= 0x01;  // Inside the payload.
  std::string version_flip = frame;
  version_flip[1] ^= 0x01;  // The version digit: '3' becomes '2'.
  std::string bad_terminator = frame;
  bad_terminator[frame.size() - 1] = 'x';  // Payload LF overwritten.
  const Case cases[] = {
      {"no-hash-prefix", "x" + frame.substr(1)},
      {"crc-field-flip", crc_flip},
      {"payload-bit-flip", body_flip},
      // The CRC covers the header fields too: a corrupted version digit
      // must not decode as a different — valid-looking — record.
      {"version-field-flip", version_flip},
      {"missing-terminator", bad_terminator},
      {"oversized-header", "#" + std::string(80, '1') + " 1 aaaaaaaa\nx\n"},
      {"empty-command", EncodeWalRecord(MakeRecord(1, "", "args"))},
  };
  for (const Case& test_case : cases) {
    SCOPED_TRACE(test_case.name);
    WalRecord decoded;
    EXPECT_FALSE(DecodeWalRecord(test_case.bytes, &decoded).ok());
  }
}

TEST(WalStoreTest, AppendThenReadAllRoundTrips) {
  TempDir tmp;
  ASSERT_FALSE(tmp.path().empty());
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  EXPECT_FALSE(store.Exists("s"));
  for (std::uint64_t v = 1; v <= 3; ++v) {
    StatusOr<std::uint64_t> appended = store.Append(
        "s", MakeRecord(v, "db", "M(1) = { (m" + std::to_string(v) + ") }"),
        /*sync=*/v == 2);  // Mix async and fsync'd appends.
    ASSERT_TRUE(appended.ok()) << appended.status().message();
  }
  EXPECT_TRUE(store.Exists("s"));

  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ(report.base_version, 0u);
  EXPECT_EQ(report.truncated_tails, 0u);
  EXPECT_EQ(report.quarantined, 0u);
  for (std::uint64_t v = 1; v <= 3; ++v) {
    EXPECT_EQ((*records)[v - 1].version, v);
    EXPECT_EQ((*records)[v - 1].args,
              "M(1) = { (m" + std::to_string(v) + ") }");
  }
  EXPECT_EQ(store.ListSessions(), std::vector<std::string>{"s"});
}

TEST(WalStoreTest, LogBasesAtTheVersionBeforeItsFirstRecord) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  // First record at version 9: the log covers (8, 9] — a snapshot at 8
  // plus this log reconstructs the session.
  ASSERT_TRUE(store.Append("s", MakeRecord(9, "clear", ""), false).ok());
  WalStore::ReadReport report;
  ASSERT_TRUE(store.ReadAll("s", &report).ok());
  EXPECT_EQ(report.base_version, 8u);
}

TEST(WalStoreTest, TruncateToRollsTheRecordBackOut) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  ASSERT_TRUE(store.Append("s", MakeRecord(1, "db", "M(1) = { (keep) }"),
                           false)
                  .ok());
  const std::string before = ReadWholeFile(store.PathFor("s"));
  StatusOr<std::uint64_t> appended =
      store.Append("s", MakeRecord(2, "db", "M(1) = { (rollback) }"), false);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(*appended, before.size());
  // The command this record logged "failed to apply": roll it back out.
  store.TruncateTo("s", *appended);
  EXPECT_EQ(ReadWholeFile(store.PathFor("s")), before);
  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].args, "M(1) = { (keep) }");
}

TEST(WalStoreTest, ResetRebasesAndAppendsContinue) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  for (std::uint64_t v = 1; v <= 4; ++v) {
    ASSERT_TRUE(store.Append("s", MakeRecord(v, "clear", ""), false).ok());
  }
  // A compaction folded versions 1..4 into a snapshot: rebase the log.
  ASSERT_TRUE(store.Reset("s", 4).ok());
  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 0u);
  EXPECT_EQ(report.base_version, 4u);
  // The cached append descriptor must follow the rename: the next record
  // lands in the fresh log, not the replaced inode.
  ASSERT_TRUE(store.Append("s", MakeRecord(5, "clear", ""), false).ok());
  records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].version, 5u);
  EXPECT_EQ(report.base_version, 4u);
}

TEST(WalStoreTest, OversizedRecordIsRefusedBeforeTouchingTheLog) {
  // A frame above kMaxWalRecordBytes could never be shipped to a follower
  // inside one wire payload: Append must refuse it without writing a byte.
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  ASSERT_TRUE(store.Append("s", MakeRecord(1, "clear", ""), false).ok());
  const std::string before = ReadWholeFile(store.PathFor("s"));

  StatusOr<std::uint64_t> refused = store.Append(
      "s", MakeRecord(2, "loaddata", std::string(kMaxWalRecordBytes, 'x')),
      false);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("record cap"),
            std::string::npos);
  EXPECT_EQ(ReadWholeFile(store.PathFor("s")), before);

  // The log is still healthy: the next in-cap record appends and the full
  // log replays.
  ASSERT_TRUE(store.Append("s", MakeRecord(2, "clear", ""), false).ok());
  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST(WalStoreTest, OversizedLoadIsRefusedWhenWalIsOn) {
  // The `load` command embeds the whole file in one loaddata record. A
  // file past the record cap must be answered with a definitive ERR up
  // front — not logged as a frame no follower could ever decode.
  TempDir tmp;
  const std::string data_path = tmp.path() + "/huge.db";
  {
    std::string data = "M(1) = { (r0)";
    std::size_t row = 1;
    while (data.size() <= kMaxWalRecordBytes) {
      data += ", (r" + std::to_string(row++) + ")";
    }
    data += " }";
    std::ofstream out(data_path, std::ios::binary);
    out << data;
    ASSERT_TRUE(out.good());
  }
  Request load;
  load.command = "load";
  load.args = data_path;
  load.session = "s";
  {
    Dispatcher dispatcher(Dispatcher::Options{1 << 20, tmp.path()});
    Response response = dispatcher.Execute(load);
    EXPECT_EQ(response.status, WireStatus::kErr);
    EXPECT_NE(response.payload.find("write-ahead log record cap"),
              std::string::npos);
    // Nothing was logged: the session is untouched and at version 0.
    EXPECT_FALSE(dispatcher.wal()->Exists("s"));
  }
  // With the WAL off the same load is accepted (the pre-WAL contract:
  // durability via explicit `save` only).
  Dispatcher no_wal(
      Dispatcher::Options{1 << 20, tmp.path() + "/nowal", /*wal=*/false});
  Response accepted = no_wal.Execute(load);
  EXPECT_EQ(accepted.status, WireStatus::kOk) << accepted.payload;
}

TEST(WalStoreTest, TornTailIsTruncatedInPlace) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  ASSERT_TRUE(store.Append("s", MakeRecord(1, "db", "M(1) = { (whole) }"),
                           false)
                  .ok());
  const std::string whole = ReadWholeFile(store.PathFor("s"));
  // A crash mid-append: half of the next frame is on disk.
  const std::string torn =
      EncodeWalRecord(MakeRecord(2, "db", "M(1) = { (torn) }"));
  AppendRawBytes(store.PathFor("s"), torn.substr(0, torn.size() / 2));

  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(report.truncated_tails, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  // The tail was cut off in place; a second recovery is clean.
  EXPECT_EQ(ReadWholeFile(store.PathFor("s")), whole);
  records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
  EXPECT_EQ(report.truncated_tails, 0u);
}

TEST(WalStoreTest, UndecodableSpanIsMovedAsideValidPrefixKept) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  ASSERT_TRUE(store.Append("s", MakeRecord(1, "db", "M(1) = { (good) }"),
                           false)
                  .ok());
  // Mid-log damage followed by more data: not a tail, permanent damage.
  const std::string garbage = "this is not a frame\n";
  AppendRawBytes(store.PathFor("s"), garbage);
  const std::string after =
      EncodeWalRecord(MakeRecord(2, "db", "M(1) = { (after) }"));
  AppendRawBytes(store.PathFor("s"), after);

  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);  // The valid prefix survives.
  EXPECT_EQ((*records)[0].args, "M(1) = { (good) }");
  EXPECT_EQ(report.quarantined, 1u);
  // The damaged span (garbage + everything after it) is preserved for
  // post-mortem in the .corrupt sidecar, never replayed.
  EXPECT_EQ(ReadWholeFile(store.PathFor("s") + ".corrupt"), garbage + after);
}

TEST(WalStoreTest, DamagedHeaderQuarantinesTheWholeLog) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  ASSERT_TRUE(store.Append("s", MakeRecord(1, "clear", ""), false).ok());
  std::string image = ReadWholeFile(store.PathFor("s"));
  image[0] = 'X';  // Kill the magic.
  {
    std::ofstream out(store.PathFor("s"), std::ios::binary | std::ios::trunc);
    out << image;
  }
  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 0u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_FALSE(store.Exists("s"));
  EXPECT_EQ(::access((store.PathFor("s") + ".corrupt").c_str(), F_OK), 0);
}

TEST(WalStoreTest, HeaderSessionMismatchIsQuarantined) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  ASSERT_TRUE(store.Append("alice", MakeRecord(1, "clear", ""), false).ok());
  // A hand-copied log must not replay into the wrong session.
  ASSERT_EQ(::rename(store.PathFor("alice").c_str(),
                     store.PathFor("bob").c_str()),
            0);
  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("bob", &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 0u);
  EXPECT_EQ(report.quarantined, 1u);
}

TEST(WalStoreTest, MissingLogIsEmptyNotAnError) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("ghost", &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 0u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_TRUE(store.ListSessions().empty());
}

TEST(WalStoreTest, ListSessionsIgnoresForeignFiles) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  ASSERT_TRUE(store.Append("beta", MakeRecord(1, "clear", ""), false).ok());
  ASSERT_TRUE(store.Append("alpha", MakeRecord(1, "clear", ""), false).ok());
  // Snapshots, quarantined logs, and stale temps share the directory.
  AppendRawBytes(tmp.path() + "/alpha.zo1snap", "snapshot bytes");
  AppendRawBytes(tmp.path() + "/dead.zo1wal.corrupt", "damage");
  AppendRawBytes(tmp.path() + "/gamma.zo1wal.tmp.123", "half a reset");
  EXPECT_EQ(store.ListSessions(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(SaveSkipTest, UnchangedSessionSavesAreSkippedByteIdentically) {
  char templ[] = "/tmp/zo1saveskip_XXXXXX";
  char* dir_c = ::mkdtemp(templ);
  ASSERT_NE(dir_c, nullptr);
  const std::string dir = dir_c;
  {
    Dispatcher dispatcher(Dispatcher::Options{1 << 20, dir});
    Request mutate;
    mutate.command = "db";
    mutate.args = "M(1) = { (a) }";
    mutate.session = "s";
    ASSERT_EQ(dispatcher.Execute(mutate).status, WireStatus::kOk);
    Request save;
    save.command = "save";
    save.session = "s";
    Response first = dispatcher.Execute(save);
    ASSERT_EQ(first.status, WireStatus::kOk) << first.payload;
    const std::string snapshot_before =
        ReadWholeFile(dispatcher.snapshots()->PathFor("s"));

    // Same version, second save: a fast no-op — the wire answer is
    // byte-identical (clients cannot tell) and the file is not rewritten.
    obs::ScopedSnapshot counters;
    Response second = dispatcher.Execute(save);
    ASSERT_EQ(second.status, WireStatus::kOk);
    EXPECT_EQ(second.payload, first.payload);
    EXPECT_EQ(ReadWholeFile(dispatcher.snapshots()->PathFor("s")),
              snapshot_before);
#if ZEROONE_OBS_ENABLED
    EXPECT_EQ(counters.Delta("svc.snapshot.save_skipped"), 1u);
    EXPECT_EQ(counters.Delta("svc.snapshot.saved"), 0u);
#endif

    // A mutation re-arms the real save path.
    mutate.args = "M(1) = { (b) }";
    ASSERT_EQ(dispatcher.Execute(mutate).status, WireStatus::kOk);
    obs::ScopedSnapshot after_mutation;
    Response third = dispatcher.Execute(save);
    ASSERT_EQ(third.status, WireStatus::kOk);
#if ZEROONE_OBS_ENABLED
    EXPECT_EQ(after_mutation.Delta("svc.snapshot.save_skipped"), 0u);
#endif
  }
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

#if ZEROONE_FAULT_ENABLED

class WalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::Global().Clear(); }
  void TearDown() override { fault::Registry::Global().Clear(); }
};

TEST_F(WalFaultTest, FailedAppendLeavesNoPartialFrame) {
  struct Case {
    const char* site;
    bool sync;
  };
  const Case cases[] = {{"wal.append.fail", false}, {"wal.fsync.fail", true}};
  for (const Case& test_case : cases) {
    SCOPED_TRACE(test_case.site);
    fault::Registry::Global().Clear();
    TempDir tmp;
    WalStore store(tmp.path());
    ASSERT_TRUE(store.Prepare().ok());
    ASSERT_TRUE(store.Append("s", MakeRecord(1, "db", "M(1) = { (ok) }"),
                             test_case.sync)
                    .ok());
    const std::string before = ReadWholeFile(store.PathFor("s"));

    ASSERT_TRUE(fault::Registry::Global()
                    .Configure(std::string(test_case.site) + "=#1")
                    .ok());
    StatusOr<std::uint64_t> failed = store.Append(
        "s", MakeRecord(2, "db", "M(1) = { (lost) }"), test_case.sync);
    EXPECT_FALSE(failed.ok()) << "injected " << test_case.site;
    // All-or-nothing: the torn frame was truncated back off, byte-exact.
    EXPECT_EQ(ReadWholeFile(store.PathFor("s")), before);

    fault::Registry::Global().Clear();
    // The same record retries cleanly after the fault clears.
    ASSERT_TRUE(store.Append("s", MakeRecord(2, "db", "M(1) = { (lost) }"),
                             test_case.sync)
                    .ok());
    WalStore::ReadReport report;
    StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
    ASSERT_TRUE(records.ok());
    EXPECT_EQ(records->size(), 2u);
    EXPECT_EQ(report.truncated_tails, 0u);
  }
}

TEST_F(WalFaultTest, FailedCompactionRenameLeavesOldLogIntact) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  for (std::uint64_t v = 1; v <= 3; ++v) {
    ASSERT_TRUE(store.Append("s", MakeRecord(v, "clear", ""), false).ok());
  }
  const std::string before = ReadWholeFile(store.PathFor("s"));
  ASSERT_TRUE(
      fault::Registry::Global().Configure("compact.rename.fail=#1").ok());
  EXPECT_FALSE(store.Reset("s", 3).ok());
  EXPECT_EQ(ReadWholeFile(store.PathFor("s")), before);

  fault::Registry::Global().Clear();
  ASSERT_TRUE(store.Reset("s", 3).ok());
  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 0u);
  EXPECT_EQ(report.base_version, 3u);
}

TEST_F(WalFaultTest, InjectedDecodeFailureQuarantinesTheSpan) {
  TempDir tmp;
  WalStore store(tmp.path());
  ASSERT_TRUE(store.Prepare().ok());
  ASSERT_TRUE(store.Append("s", MakeRecord(1, "clear", ""), false).ok());
  ASSERT_TRUE(store.Append("s", MakeRecord(2, "clear", ""), false).ok());
  // #2: the first record decodes, the second "fails" — its span (just that
  // record) moves aside and the prefix survives.
  ASSERT_TRUE(
      fault::Registry::Global().Configure("replay.decode.fail=#2").ok());
  WalStore::ReadReport report;
  StatusOr<std::vector<WalRecord>> records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].version, 1u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(::access((store.PathFor("s") + ".corrupt").c_str(), F_OK), 0);

  fault::Registry::Global().Clear();
  records = store.ReadAll("s", &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);  // The quarantine was persistent.
  EXPECT_EQ(report.quarantined, 0u);
}

// The recovery table the durability contract promises: for each fault
// schedule, run the same mutation sequence (retrying transient failures —
// UNAVAILABLE means "nothing applied, safe to retry"), SIGKILL-style drop
// the dispatcher, recover a fresh one over the directory, and require the
// recovered database byte-identical to an uninterrupted run's.
class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::Global().Clear(); }
  void TearDown() override {
    fault::Registry::Global().Clear();
    RemoveDirs();
  }

  std::string MakeDir() {
    char templ[] = "/tmp/zo1walrec_XXXXXX";
    char* dir = ::mkdtemp(templ);
    EXPECT_NE(dir, nullptr);
    dirs_.push_back(dir);
    return dir;
  }

  void RemoveDirs() {
    for (const std::string& dir : dirs_) {
      if (DIR* d = ::opendir(dir.c_str())) {
        while (dirent* entry = ::readdir(d)) {
          std::string name = entry->d_name;
          if (name != "." && name != "..") {
            ::unlink((dir + "/" + name).c_str());
          }
        }
        ::closedir(d);
      }
      ::rmdir(dir.c_str());
    }
    dirs_.clear();
  }

  std::vector<std::string> dirs_;
};

Request MakeRequest(const std::string& command, const std::string& args) {
  Request request;
  request.command = command;
  request.args = args;
  request.session = "s";
  return request;
}

struct Step {
  std::string command;
  std::string args;
  bool expect_ok = true;  // false: a deliberate ERR (the rollback path).
};

// Applies the step list, retrying any transient answer (the wire
// contract: UNAVAILABLE/OVERLOADED applied nothing). Returns false if a
// step never reached its expected outcome.
bool ApplyAll(Dispatcher* dispatcher, const std::vector<Step>& steps) {
  for (const Step& step : steps) {
    bool done = false;
    for (int round = 0; round < 8 && !done; ++round) {
      Response response =
          dispatcher->Execute(MakeRequest(step.command, step.args));
      if (response.status == WireStatus::kOk) {
        if (!step.expect_ok) {
          ADD_FAILURE() << step.command << " unexpectedly succeeded";
          return false;
        }
        done = true;
      } else if (!IsTransientWireStatus(response.status)) {
        if (step.expect_ok) {
          ADD_FAILURE() << step.command << ": " << response.payload;
          return false;
        }
        done = true;  // The expected definitive rejection.
      }
    }
    if (!done) return false;
  }
  return true;
}

// Reads the state a recovery must reproduce byte for byte.
std::string Fingerprint(Dispatcher* dispatcher) {
  Response shown = dispatcher->Execute(MakeRequest("show", ""));
  EXPECT_EQ(shown.status, WireStatus::kOk) << shown.payload;
  Response constraints = dispatcher->Execute(MakeRequest("constraints", ""));
  EXPECT_EQ(constraints.status, WireStatus::kOk) << constraints.payload;
  return shown.payload + "\x1f" + constraints.payload;
}

TEST_F(WalRecoveryTest, FaultScheduleTableRecoversByteIdentical) {
  // A mix of inserts, an explicit save mid-stream (so replay must skip the
  // snapshot-covered prefix), constraint mutations, and one deliberately
  // malformed mutation — it fails after its record is already logged,
  // exercising the append-then-rollback path in every schedule.
  const std::vector<Step> steps = {
      {"db", "M(1) = { (m1) }"},
      {"db", "M(1) = { (m2) }"},
      {"save", ""},
      {"db", "M(1) = { (m3) }"},
      {"fd", "N 2 0 1"},
      {"db", "((( not a database", /*expect_ok=*/false},
      {"db", "M(1) = { (m4), (m5) }"},
      {"clear", ""},
      {"ind", "M 1 0 M 1 0"},
      {"db", "M(1) = { (m6) }"},
  };

  // The uninterrupted reference: same steps, no faults, no crash.
  std::string reference;
  {
    const std::string dir = MakeDir();
    Dispatcher dispatcher(Dispatcher::Options{1 << 20, dir});
    ASSERT_TRUE(ApplyAll(&dispatcher, steps));
    reference = Fingerprint(&dispatcher);
  }

  struct Schedule {
    const char* name;
    const char* faults;  // Applied during the run, cleared before recovery.
    AckMode ack_mode;
    std::uint64_t compact_every;
  };
  const Schedule schedules[] = {
      {"clean", "", AckMode::kAsync, 0},
      {"append-fails-then-retries", "wal.append.fail=#2", AckMode::kAsync, 0},
      {"fsync-fails-then-retries", "wal.fsync.fail=#1", AckMode::kFsync, 0},
      {"mutation-rejected-before-append", "svc.session.mutate.fail=#3",
       AckMode::kAsync, 0},
      {"compaction-rename-crashes", "compact.rename.fail=#1", AckMode::kAsync,
       2},
      {"compacting-everything", "", AckMode::kAsync, 1},
  };
  for (const Schedule& schedule : schedules) {
    SCOPED_TRACE(schedule.name);
    fault::Registry::Global().Clear();
    const std::string dir = MakeDir();
    {
      Dispatcher dispatcher(Dispatcher::Options{
          1 << 20, dir, /*wal=*/true, schedule.ack_mode,
          schedule.compact_every});
      if (schedule.faults[0] != '\0') {
        ASSERT_TRUE(
            fault::Registry::Global().Configure(schedule.faults).ok());
      }
      ASSERT_TRUE(ApplyAll(&dispatcher, steps));
      // Dispatcher dropped without drain or save: the SIGKILL analogue.
    }
    fault::Registry::Global().Clear();

    Dispatcher recovered(Dispatcher::Options{
        1 << 20, dir, /*wal=*/true, schedule.ack_mode,
        schedule.compact_every});
    Dispatcher::RecoveryReport report = recovered.LoadSnapshots();
    EXPECT_EQ(report.wal_replay_failed, 0u);
    EXPECT_EQ(report.wal_quarantined, 0u);
    EXPECT_EQ(Fingerprint(&recovered), reference)
        << "recovered state differs from the uninterrupted run";
  }
}

TEST_F(WalRecoveryTest, ReplayFailureOnUnackedTailIsSkippedWithoutHarm) {
  // A crash can beat the rollback: the record landed, the command failed,
  // and the process died before TruncateTo. That record was never
  // acknowledged, so recovery must skip it — without a version bump and
  // without damaging the acked prefix.
  const std::string dir = MakeDir();
  std::string before;
  {
    Dispatcher dispatcher(Dispatcher::Options{1 << 20, dir});
    ASSERT_TRUE(ApplyAll(&dispatcher, {{"db", "M(1) = { (acked) }"}}));
    Response shown = dispatcher.Execute(MakeRequest("show", ""));
    before = shown.payload;
    // The stranded tail record: structurally valid, semantically broken.
    WalStore* wal = dispatcher.wal();
    ASSERT_NE(wal, nullptr);
    WalRecord stranded;
    stranded.version = 2;
    stranded.command = "db";
    stranded.args = "((( not a database";
    ASSERT_TRUE(wal->Append("s", stranded, false).ok());
  }
  {
    Dispatcher recovered(Dispatcher::Options{1 << 20, dir});
    Dispatcher::RecoveryReport report = recovered.LoadSnapshots();
    EXPECT_EQ(report.wal_records_applied, 1u);
    EXPECT_EQ(report.wal_replay_failed, 1u);
    EXPECT_EQ(report.wal_replay_diverged, 0u);
    Response shown = recovered.Execute(MakeRequest("show", ""));
    ASSERT_EQ(shown.status, WireStatus::kOk);
    EXPECT_EQ(shown.payload, before);
    // The skipped record never consumed its version: the next mutation
    // takes version 2 and the log stays contiguous.
    ASSERT_TRUE(ApplyAll(&recovered, {{"db", "M(1) = { (next) }"}}));
  }
  // The unacked record was truncated off during the first recovery, so
  // the log now holds exactly the acked mutations: a second recovery is
  // clean — no stranded record squatting on version 2, no duplicate
  // versions in the log.
  Dispatcher again(Dispatcher::Options{1 << 20, dir});
  Dispatcher::RecoveryReport second = again.LoadSnapshots();
  EXPECT_EQ(second.wal_replay_failed, 0u);
  EXPECT_EQ(second.wal_replay_diverged, 0u);
  EXPECT_EQ(second.wal_records_applied, 2u);  // (acked) then (next).
}

TEST_F(WalRecoveryTest, MidLogReplayFailureStopsAndQuarantinesTheRemainder) {
  // A record that fails to apply mid-log (not at the tail) means the state
  // diverged from the logged history: replaying the records after it onto
  // a base missing that mutation would silently fork the session. Replay
  // must stop at the failure and quarantine the rest.
  const std::string dir = MakeDir();
  std::string before;
  {
    Dispatcher dispatcher(Dispatcher::Options{1 << 20, dir});
    ASSERT_TRUE(ApplyAll(&dispatcher, {{"db", "M(1) = { (v1) }"},
                                       {"db", "M(1) = { (v2) }"}}));
    before = dispatcher.Execute(MakeRequest("show", "")).payload;
    // Hand-plant a structurally valid but unappliable record followed by
    // a good one — the shape a replay bug (or a version-skewed tool
    // writing the log) would leave behind.
    WalStore* wal = dispatcher.wal();
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(
        wal->Append("s", MakeRecord(3, "db", "((( not a database"), false)
            .ok());
    ASSERT_TRUE(
        wal->Append("s", MakeRecord(4, "db", "M(1) = { (v4) }"), false).ok());
  }
  {
    Dispatcher recovered(Dispatcher::Options{1 << 20, dir});
    Dispatcher::RecoveryReport report = recovered.LoadSnapshots();
    EXPECT_EQ(report.wal_records_applied, 2u);
    EXPECT_EQ(report.wal_replay_diverged, 1u);
    EXPECT_EQ(report.wal_replay_failed, 0u);
    // The session serves the consistent applied prefix; v4 never applied.
    Response shown = recovered.Execute(MakeRequest("show", ""));
    ASSERT_EQ(shown.status, WireStatus::kOk);
    EXPECT_EQ(shown.payload, before);
    EXPECT_EQ(shown.payload.find("(v4)"), std::string::npos);
    // The failed record AND everything after it moved to the sidecar for
    // post-mortem — v4 must not replay on a base missing v3.
    const std::string corrupt =
        ReadWholeFile(recovered.wal()->PathFor("s") + ".corrupt");
    EXPECT_NE(corrupt.find("((( not a database"), std::string::npos);
    EXPECT_NE(corrupt.find("(v4)"), std::string::npos);
    // Quarantined records were never acked: the next mutation takes
    // version 3 and the log stays contiguous.
    ASSERT_TRUE(ApplyAll(&recovered, {{"db", "M(1) = { (v3-new) }"}}));
  }
  // With the diverged tail cut off, a second recovery is clean.
  Dispatcher again(Dispatcher::Options{1 << 20, dir});
  Dispatcher::RecoveryReport second = again.LoadSnapshots();
  EXPECT_EQ(second.wal_replay_diverged, 0u);
  EXPECT_EQ(second.wal_replay_failed, 0u);
  EXPECT_EQ(second.wal_records_applied, 3u);
}

#endif  // ZEROONE_FAULT_ENABLED

}  // namespace
}  // namespace svc
}  // namespace zeroone
