#include "core/measure.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/support.h"
#include "core/support_polynomial.h"
#include "data/io.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "gen/scenarios.h"
#include "query/eval.h"
#include "query/fragments.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(MuKTest, IntroExampleConvergesToOne) {
  // (c1,⊥1) is a naive answer to Q = R1 − R2; µ^k must approach 1: the only
  // failing valuations have v(⊥1) = v(⊥2) (and a few ⊥3 coincidences).
  IntroExample example = PaperIntroExample();
  Tuple a{Value::Constant("c1"), Value::Null("1")};
  Rational mu5 = MuK(example.query, example.db, a, 5);
  Rational mu10 = MuK(example.query, example.db, a, 10);
  Rational mu20 = MuK(example.query, example.db, a, 20);
  EXPECT_LT(mu5, mu10);
  EXPECT_LT(mu10, mu20);
  EXPECT_LT(mu20, Rational(1));
  EXPECT_GT(mu20, Rational(9, 10));
  EXPECT_EQ(MuLimit(example.query, example.db, a), 1);
}

TEST(MuKTest, NonAnswerConvergesToZero) {
  IntroExample example = PaperIntroExample();
  // (c2,⊥1) is in R2 too, hence never a naive answer.
  Tuple bad{Value::Constant("c2"), Value::Null("1")};
  EXPECT_EQ(MuK(example.query, example.db, bad, 15), Rational(0));
  EXPECT_EQ(MuLimit(example.query, example.db, bad), 0);
}

TEST(MuKTest, ExactValueOnOneNull) {
  // D: R = {(a,⊥)}, Q = ∃x R(a,x) ∧ x ≠ b. Fails only when v(⊥) = b:
  // µ^k = (k−1)/k.
  Database db = Db("R(2) = { (a, _x1) }");
  Query q = Q(":= exists x . R(a, x) & x != b");
  for (std::size_t k : {3u, 5u, 9u}) {
    EXPECT_EQ(MuK(q, db, k),
              Rational(static_cast<std::int64_t>(k) - 1,
                       static_cast<std::int64_t>(k)))
        << k;
  }
  EXPECT_EQ(MuLimit(q, db), 1);
}

TEST(MuKTest, CompleteDatabaseIsDeterministic) {
  Database db = Db("R(1) = { (a) }");
  EXPECT_EQ(MuK(Q(":= R(a)"), db, 3), Rational(1));
  EXPECT_EQ(MuK(Q(":= R(b)"), db, 3), Rational(0));
  EXPECT_EQ(MuLimit(Q(":= R(a)"), db), 1);
}

// Theorem 1 property sweep: µ via the partition polynomial (straight from
// the definition of the measure) is 0/1 and agrees with naive evaluation.
class ZeroOneLaw : public ::testing::TestWithParam<int> {};

TEST_P(ZeroOneLaw, MuViaPolynomialMatchesNaive) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 4}, {"S", 1, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 3;
  db_options.null_probability = 0.45;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 100;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 1;
  q_options.existential_variables = 1;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 200;
  Query fo = GenerateRandomFo(q_options, 0.35);

  for (Value v : db.ActiveDomain()) {
    Tuple candidate{v};
    Rational mu = MuViaPolynomial(fo, db, candidate);
    EXPECT_TRUE(mu == Rational(0) || mu == Rational(1))
        << "0-1 law violated: " << mu.ToString();
    EXPECT_EQ(mu == Rational(1), AlmostCertainlyTrue(fo, db, candidate))
        << fo.ToString() << " on " << candidate.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZeroOneLaw, ::testing::Range(0, 15));

// Finite-k agreement: the closed-form support polynomial evaluates to the
// brute-force count for several k.
class PolynomialAgreement : public ::testing::TestWithParam<int> {};

TEST_P(PolynomialAgreement, PolynomialMatchesEnumeration) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 3}, {"S", 1, 2}};
  db_options.constant_pool = 2;
  db_options.null_pool = 3;
  db_options.null_probability = 0.5;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 400;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 500;
  Query fo = GenerateRandomFo(q_options, 0.4);

  SupportPolynomial poly = ComputeSupportPolynomial(fo, db, Tuple{});
  SupportInstance instance = MakeSupportInstance(fo, db, Tuple{});
  for (std::size_t k = poly.valid_from; k < poly.valid_from + 3; ++k) {
    if (k == 0) continue;
    SupportCount count = CountSupport(instance, db, k);
    EXPECT_EQ(poly.count.Evaluate(BigInt(static_cast<std::int64_t>(k))),
              Rational(count.support))
        << "k=" << k << " query " << fo.ToString() << "\n"
        << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolynomialAgreement, ::testing::Range(0, 15));

TEST(SupportPolynomialTest, ComplementsSumToTotal) {
  // P_Q + P_{¬Q} = k^m for any query: every valuation witnesses exactly one.
  Database db = Db("R(2) = { (a, _z1), (_z2, b), (_z3, _z1) }");
  Query q = Q(":= exists x . R(x, x)");
  Query not_q(":not", {}, Formula::Not(q.formula()), {});
  Polynomial sum = ComputeSupportPolynomial(q, db, Tuple{}).count +
                   ComputeSupportPolynomial(not_q, db, Tuple{}).count;
  EXPECT_EQ(sum, TotalCountPolynomial(db));
}

TEST(SupportPolynomialTest, CertainQueryHasFullSupport) {
  Database db = Db("R(1) = { (_c1) }");
  Query q = Q(":= exists x . R(x)");
  EXPECT_EQ(ComputeSupportPolynomial(q, db, Tuple{}).count,
            TotalCountPolynomial(db));
}

// Theorem 2: the alternative measure m^k has the same limit as µ^k, though
// the finite-k values differ on databases where valuations collapse.
TEST(AlternativeMeasureTest, CollapsibleNulls) {
  // D: R = {(1,⊥), (1,⊥')} — v(D) has 1 or 2 tuples; swapping the nulls
  // fixes v(D), so m^k ≠ µ^k at finite k for asymmetric queries.
  Database db = Db("R(2) = { (1, _t1), (1, _t2) }");
  Query q = Q(":= exists x, y . R(x, y) & y != 2");
  // Both tend to 1 (naive evaluation is true).
  EXPECT_EQ(MuLimit(q, db), 1);
  Rational mu = MuK(q, db, 8);
  Rational m = MK(q, db, 8);
  EXPECT_GT(mu, Rational(3, 4));
  EXPECT_GT(m, Rational(3, 4));
  EXPECT_LT(mu, Rational(1));
  EXPECT_LT(m, Rational(1));
}

TEST(AlternativeMeasureTest, MkDiffersFromMuKButConverges) {
  // Q true iff the two nulls are equal: µ^k = 1/k, while m^k counts
  // databases: the singleton v(D)s (k of them) among all v(D)s
  // (k + k(k-1)/2): m^k = k/(k + k(k-1)/2) = 2/(k+1). Both → 0.
  Database db = Db("R(2) = { (1, _w1), (1, _w2) }");
  Query q = Q(":= exists x, y . R(x, y) & (forall z, u . R(z, u) -> u = y)");
  for (std::size_t k : {2u, 4u, 8u}) {
    std::int64_t ki = static_cast<std::int64_t>(k);
    EXPECT_EQ(MuK(q, db, k), Rational(1, ki)) << k;
    EXPECT_EQ(MK(q, db, k), Rational(2, ki + 1)) << k;
  }
  EXPECT_EQ(MuLimit(q, db), 0);
}

// The proof device of Theorem 1: bijective valuations dominate.
TEST(BijectiveTest, ShareOfBijectiveValuationsApproachesOne) {
  Database db = Db("R(2) = { (a, _b1), (_b2, c) }");
  Query q = Q(":= exists x . R(a, x)");
  SupportInstance instance = MakeSupportInstance(q, db, Tuple{});
  Rational previous(0);
  for (std::size_t k : {4u, 8u, 32u}) {
    BijectiveSupportCount count = CountBijectiveSupport(instance, db, k);
    Rational share(count.bijective, count.total);
    EXPECT_GT(share, previous) << k;
    previous = share;
    // Bijective valuations all witness this query (it is naively true).
    EXPECT_EQ(count.support, count.bijective);
  }
  EXPECT_GT(previous, Rational(3, 4));
}

TEST(CertainAnswersTest, IntroExampleEmptyCertain) {
  IntroExample example = PaperIntroExample();
  EXPECT_TRUE(CertainAnswers(example.query, example.db).empty());
  std::vector<Tuple> naive = AlmostCertainAnswers(example.query, example.db);
  EXPECT_EQ(naive.size(), 2u);
}

TEST(CertainAnswersTest, CertainWithNullsReturnsRelation) {
  // The paper's motivation for certain answers with nulls: if Q returns R,
  // then (Q,D) = R including null tuples.
  Database db = Db("R(2) = { (a, _r1), (b, b) }");
  Query q = Q("Q(x, y) := R(x, y)");
  std::vector<Tuple> certain = CertainAnswers(q, db);
  EXPECT_EQ(certain.size(), 2u);
  EXPECT_TRUE(IsCertainAnswer(q, db, Tuple{Value::Constant("a"),
                                           Value::Null("r1")}));
}

// Corollary 1 as a property: certain ⊆ naive on random FO queries.
class CertainSubsetNaive : public ::testing::TestWithParam<int> {};

TEST_P(CertainSubsetNaive, Holds) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 4}, {"S", 1, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 2;
  db_options.null_probability = 0.4;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 700;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 1;
  q_options.existential_variables = 1;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 800;
  Query fo = GenerateRandomFo(q_options, 0.3);

  std::vector<Tuple> naive = NaiveEvaluate(fo, db);
  std::sort(naive.begin(), naive.end());
  for (const Tuple& certain : CertainAnswers(fo, db)) {
    EXPECT_TRUE(std::binary_search(naive.begin(), naive.end(), certain))
        << certain.ToString() << " certain but not naive for "
        << fo.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertainSubsetNaive, ::testing::Range(0, 15));

// Corollary 3: for Pos∀G queries certain answers equal naive answers.
class PosForallGEquality : public ::testing::TestWithParam<int> {};

TEST_P(PosForallGEquality, NaiveEqualsCertain) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 4}, {"S", 1, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 2;
  db_options.null_probability = 0.4;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 900;
  Database db = GenerateRandomDatabase(db_options);

  // Random positive UCQs are Pos∀G.
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.free_variables = 1;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 950;
  Query ucq = GenerateRandomUcq(q_options);
  ASSERT_TRUE(IsPosForallGuarded(*ucq.formula()));

  std::vector<Tuple> naive = NaiveEvaluate(ucq, db);
  std::vector<Tuple> certain = CertainAnswers(ucq, db);
  std::sort(naive.begin(), naive.end());
  std::sort(certain.begin(), certain.end());
  EXPECT_EQ(naive, certain) << ucq.ToString() << "\n" << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PosForallGEquality, ::testing::Range(0, 15));

TEST(PossibleAnswersTest, SupersetOfNaive) {
  IntroExample example = PaperIntroExample();
  std::vector<Tuple> possible =
      PossibleAnswers(example.query, example.db);
  std::vector<Tuple> naive = NaiveEvaluate(example.query, example.db);
  std::sort(possible.begin(), possible.end());
  for (const Tuple& t : naive) {
    EXPECT_TRUE(std::binary_search(possible.begin(), possible.end(), t));
  }
  // And possibility is non-trivial: some adom tuple is not possible.
  EXPECT_LT(possible.size(),
            AllTuplesOverAdom(example.db, 2).size());
}

}  // namespace
}  // namespace zeroone
