// Tests for the consistent-hash shard router (svc/router.h): the HashRing
// as a pure deterministic placement function, and the Router end to end
// against in-process backend Servers — session pinning (a session's state
// lands on exactly the backend the ring predicts), error parity with a
// direct server connection, failover when a backend dies, UNAVAILABLE when
// the candidate set is exhausted, and the per-backend forwarding tallies
// that scripts/shard_serving.sh compares against loadgen's predictions.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/net.h"
#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/router.h"
#include "svc/server.h"

namespace zeroone {
namespace svc {
namespace {

Request MakeRequest(const std::string& command, const std::string& args = "",
                    const std::string& session = "default") {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

// ---------------------------------------------------------------------------
// HashRing (pure)

TEST(HashRingTest, PlacementIsDeterministic) {
  HashRing a(3, 64);
  HashRing b(3, 64);
  for (int i = 0; i < 500; ++i) {
    std::string key = "session-" + std::to_string(i);
    EXPECT_EQ(a.Owner(key), b.Owner(key)) << key;
  }
}

TEST(HashRingTest, EveryBackendOwnsASliceOfTheKeySpace) {
  HashRing ring(3, 64);
  std::map<std::size_t, int> owned;
  for (int i = 0; i < 3000; ++i) {
    ++owned[ring.Owner("session-" + std::to_string(i))];
  }
  ASSERT_EQ(owned.size(), 3u) << "some backend owns nothing";
  for (const auto& [backend, count] : owned) {
    // With 64 vnodes each, no backend should be starved or hog the ring;
    // a generous 5x imbalance bound keeps the test deterministic-safe.
    EXPECT_GT(count, 3000 / 15) << "backend " << backend << " starved";
  }
}

TEST(HashRingTest, OwnerIsStableUnderMoreReplicasOfItself) {
  // Same ring parameters, different construction call sites — placement is
  // a pure function of (backends, replicas), nothing else.
  HashRing ring(5, 32);
  std::size_t owner = ring.Owner("pinned-session");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(HashRing(5, 32).Owner("pinned-session"), owner);
  }
}

TEST(HashRingTest, PreferenceStartsAtOwnerAndIsDistinct) {
  HashRing ring(4, 64);
  for (int i = 0; i < 200; ++i) {
    std::string key = "s" + std::to_string(i);
    std::vector<std::size_t> preference = ring.Preference(key, 3);
    ASSERT_EQ(preference.size(), 3u);
    EXPECT_EQ(preference[0], ring.Owner(key));
    std::set<std::size_t> distinct(preference.begin(), preference.end());
    EXPECT_EQ(distinct.size(), 3u) << "duplicate backend in preference list";
  }
}

TEST(HashRingTest, PreferenceIsCappedByBackendCount) {
  HashRing ring(2, 16);
  std::vector<std::size_t> preference = ring.Preference("k", 10);
  EXPECT_EQ(preference.size(), 2u);
}

TEST(HashRingTest, SingleBackendOwnsEverything) {
  HashRing ring(1, 64);
  EXPECT_EQ(ring.Owner("a"), 0u);
  EXPECT_EQ(ring.Owner("b"), 0u);
}

TEST(HashRingTest, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a test vectors; loadgen and the router must agree on
  // these forever, or placement predictions break.
  EXPECT_EQ(HashRing::Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(HashRing::Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(HashRing::Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(HashRingTest, PlacementHashMatchesReferenceVectors) {
  // Pinned forever for the same reason: these are the values any external
  // reimplementation of the placement function must reproduce.
  EXPECT_EQ(HashRing::PlacementHash(""), 0xefd01f60ba992926ull);
  EXPECT_EQ(HashRing::PlacementHash("0#0"), 0x730690093a0fe3e1ull);
  EXPECT_EQ(HashRing::PlacementHash("session-0"), 0x9a41b05c7e6cd6c3ull);
}

// ---------------------------------------------------------------------------
// Router end to end

class RouterTest : public ::testing::Test {
 protected:
  void StartBackends(int count) {
    for (int i = 0; i < count; ++i) {
      ServerOptions options;
      options.threads = 2;
      auto server = std::make_unique<Server>(options);
      Status started = server->Start();
      ASSERT_TRUE(started.ok()) << started.message();
      backends_.push_back(std::move(server));
    }
  }

  void StartRouter(RouterOptions options = RouterOptions{}) {
    for (const auto& backend : backends_) {
      HostPort endpoint;
      endpoint.host = "127.0.0.1";
      endpoint.port = backend->port();
      options.backends.push_back(endpoint);
    }
    router_ = std::make_unique<Router>(options);
    Status started = router_->Start();
    ASSERT_TRUE(started.ok()) << started.message();
  }

  BlockingClient ConnectRouter() {
    BlockingClient client;
    Status status = client.Connect("127.0.0.1", router_->port());
    EXPECT_TRUE(status.ok()) << status.message();
    return client;
  }

  Response Call(BlockingClient& client, const Request& request) {
    StatusOr<Response> response = client.Call(request);
    EXPECT_TRUE(response.ok()) << response.status().message();
    return response.ok() ? *response : Response{};
  }

  void TearDown() override {
    if (router_) router_->Shutdown();
    for (auto& backend : backends_) {
      if (backend) backend->Shutdown();
    }
  }

  std::vector<std::unique_ptr<Server>> backends_;
  std::unique_ptr<Router> router_;
};

TEST_F(RouterTest, ForwardsAndPinsSessionsToTheRingOwner) {
  StartBackends(3);
  StartRouter();

  // Write per-session state through the router, then bypass the router and
  // ask each backend directly: only the ring-predicted owner has it.
  const std::vector<std::string> sessions = {"alpha", "beta", "gamma",
                                             "delta", "epsilon"};
  BlockingClient client = ConnectRouter();
  for (const std::string& session : sessions) {
    Response response = Call(
        client, MakeRequest("db", "R(1) = { (c1) }", session));
    ASSERT_EQ(response.status, WireStatus::kOk) << response.payload;
  }

  for (const std::string& session : sessions) {
    std::size_t owner = router_->ring().Owner(session);
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      BlockingClient direct;
      ASSERT_TRUE(direct.Connect("127.0.0.1", backends_[b]->port()).ok());
      // `show` prints the session's database: the tuple written through
      // the router is on the owner and nowhere else.
      Response shown = Call(direct, MakeRequest("show", "", session));
      if (b == owner) {
        EXPECT_NE(shown.payload.find("c1"), std::string::npos)
            << "owner backend " << b << " is missing session " << session;
      } else {
        EXPECT_EQ(shown.payload.find("c1"), std::string::npos)
            << "backend " << b << " unexpectedly holds session " << session;
      }
    }
    // Reads for the session keep landing on the same backend: the state
    // written above is visible through the router.
    Response echo = Call(client, MakeRequest("naive", "", session));
    EXPECT_EQ(echo.status, WireStatus::kErr) << "no query set: expected ERR";
  }

  // Tallies: every request was forwarded, split across the ring owners.
  Router::Stats stats = router_->stats();
  EXPECT_EQ(stats.unavailable, 0u);
  EXPECT_EQ(stats.failovers, 0u);
  std::uint64_t tallied = 0;
  for (std::size_t b = 0; b < stats.per_backend_forwarded.size(); ++b) {
    tallied += stats.per_backend_forwarded[b];
  }
  EXPECT_EQ(tallied, stats.forwarded);
  // The per-backend split matches the ring's prediction for the mutation
  // requests (one db + one naive per session).
  std::map<std::size_t, std::uint64_t> predicted;
  for (const std::string& session : sessions) {
    predicted[router_->ring().Owner(session)] += 2;
  }
  for (std::size_t b = 0; b < stats.per_backend_forwarded.size(); ++b) {
    EXPECT_EQ(stats.per_backend_forwarded[b], predicted[b])
        << "backend " << b << " tally diverged from the ring prediction";
  }
}

TEST_F(RouterTest, BadRequestsAreRejectedAtTheRouterWithServerStrings) {
  StartBackends(2);
  StartRouter();
  BlockingClient client = ConnectRouter();

  // Direct reference answer from a backend.
  BlockingClient direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", backends_[0]->port()).ok());
  Response reference = Call(direct, MakeRequest("bogus"));
  ASSERT_EQ(reference.status, WireStatus::kBadRequest);

  Response routed = Call(client, MakeRequest("bogus"));
  EXPECT_EQ(routed.status, WireStatus::kBadRequest);
  EXPECT_EQ(routed.payload, reference.payload);
  // Rejected at the router: no backend saw it.
  EXPECT_EQ(router_->stats().forwarded + 1, router_->stats().requests_received);
  EXPECT_EQ(router_->stats().bad_requests, 1u);
}

TEST_F(RouterTest, DeadBackendFailsOverToNextRingCandidate) {
  StartBackends(3);
  RouterOptions options;
  options.retry_backends = 2;
  options.down_cooldown_ms = 200;
  options.connect_timeout_ms = 500;
  StartRouter(options);

  // Find a session owned by backend 0, then kill backend 0.
  std::string victim_session;
  for (int i = 0; i < 1000; ++i) {
    std::string candidate = "failover-" + std::to_string(i);
    if (router_->ring().Owner(candidate) == 0) {
      victim_session = candidate;
      break;
    }
  }
  ASSERT_FALSE(victim_session.empty());
  backends_[0]->Shutdown();

  BlockingClient client = ConnectRouter();
  Response response = Call(client, MakeRequest("ping", "", victim_session));
  EXPECT_EQ(response.status, WireStatus::kOk) << response.payload;
  EXPECT_EQ(response.payload, "pong");

  Router::Stats stats = router_->stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.backend_down_marks, 1u);
  EXPECT_EQ(stats.unavailable, 0u);
  // The fallback that answered is a ring candidate, not backend 0.
  std::vector<std::size_t> preference =
      router_->ring().Preference(victim_session, 3);
  EXPECT_EQ(stats.per_backend_forwarded[0], 0u);
  EXPECT_EQ(stats.per_backend_forwarded[preference[1]] +
                stats.per_backend_forwarded[preference[2]],
            1u);
}

TEST_F(RouterTest, ExhaustedCandidatesAnswerUnavailable) {
  StartBackends(2);
  RouterOptions options;
  options.retry_backends = 2;
  options.connect_timeout_ms = 300;
  StartRouter(options);
  backends_[0]->Shutdown();
  backends_[1]->Shutdown();

  BlockingClient client = ConnectRouter();
  Request request = MakeRequest("ping", "", "doomed");
  request.id = "r1";
  Response response = Call(client, request);
  EXPECT_EQ(response.status, WireStatus::kUnavailable);
  EXPECT_EQ(response.id, "r1");
  EXPECT_EQ(response.payload,
            "no backend reachable for session 'doomed' (2 tried); "
            "retry later");
  EXPECT_GE(router_->stats().unavailable, 1u);
}

TEST_F(RouterTest, RecoversAfterCooldownWhenBackendReturns) {
  StartBackends(1);
  RouterOptions options;
  options.retry_backends = 0;
  options.down_cooldown_ms = 50;
  options.connect_timeout_ms = 300;
  StartRouter(options);

  BlockingClient client = ConnectRouter();
  ASSERT_EQ(Call(client, MakeRequest("ping")).status, WireStatus::kOk);

  int old_port = backends_[0]->port();
  backends_[0]->Shutdown();
  EXPECT_EQ(Call(client, MakeRequest("ping")).status,
            WireStatus::kUnavailable);

  // Restart a backend on the same port (bind retries cover TIME_WAIT) and
  // keep asking: once the cooldown lapses the router reconnects.
  ServerOptions backend_options;
  backend_options.port = old_port;
  backends_[0] = std::make_unique<Server>(backend_options);
  Status restarted = backends_[0]->Start();
  ASSERT_TRUE(restarted.ok()) << restarted.message();

  Response recovered;
  for (int attempt = 0; attempt < 50; ++attempt) {
    recovered = Call(client, MakeRequest("ping"));
    if (recovered.status == WireStatus::kOk) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(recovered.status, WireStatus::kOk)
      << "router never recovered: " << recovered.payload;
  EXPECT_GE(router_->stats().reconnects + router_->stats().forwarded, 2u);
}

TEST_F(RouterTest, DrainRejectsNewRequestsWithShuttingDown) {
  StartBackends(1);
  StartRouter();
  BlockingClient client = ConnectRouter();
  ASSERT_EQ(Call(client, MakeRequest("ping")).status, WireStatus::kOk);
  router_->BeginShutdown();
  // Drain latches asynchronously: a request that raced in before the event
  // loop processed the shutdown is still answered OK (the drain contract —
  // everything accepted is answered), but within a bounded window the open
  // connection must see either the SHUTTING_DOWN frame or a clean EOF.
  // Never a hang, never OK forever.
  bool latched = false;
  for (int attempt = 0; attempt < 100 && !latched; ++attempt) {
    StatusOr<Response> response = client.Call(MakeRequest("ping"));
    if (!response.ok() ||
        response->status == WireStatus::kShuttingDown) {
      latched = true;
      break;
    }
    EXPECT_EQ(response->status, WireStatus::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(latched) << "drain never latched on the open connection";
  router_->Wait();
}

}  // namespace
}  // namespace svc
}  // namespace zeroone
