#include "algebra/algebra.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "data/io.h"
#include "gen/random_db.h"
#include "query/eval.h"
#include "query/fragments.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

TEST(AlgebraTest, ScanSelectsBaseRelation) {
  Database db = Db("R(2) = { (a, b), (c, d) }");
  RaExprPtr scan = RaExpr::Relation("R", 2);
  EXPECT_EQ(scan->Evaluate(db).size(), 2u);
  EXPECT_EQ(scan->ToString(), "R");
}

TEST(AlgebraTest, SelectColumnEqualsValue) {
  Database db = Db("R(2) = { (a, b), (c, d), (a, d) }");
  RaCondition c{RaCondition::Kind::kColumnEqualsValue, 0, 0,
                Value::Constant("a")};
  RaExprPtr select = RaExpr::Select(RaExpr::Relation("R", 2), {c});
  std::vector<Tuple> result = select->Evaluate(db);
  EXPECT_EQ(result.size(), 2u);
}

TEST(AlgebraTest, SelectColumnNotEqualsColumn) {
  Database db = Db("R(2) = { (a, a), (a, b) }");
  RaCondition c{RaCondition::Kind::kColumnNotEqualsColumn, 0, 1, Value()};
  RaExprPtr select = RaExpr::Select(RaExpr::Relation("R", 2), {c});
  std::vector<Tuple> result = select->Evaluate(db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (Tuple{Value::Constant("a"), Value::Constant("b")}));
}

TEST(AlgebraTest, ProjectReordersAndRepeats) {
  Database db = Db("R(2) = { (a, b) }");
  RaExprPtr project = RaExpr::Project(RaExpr::Relation("R", 2), {1, 0, 1});
  std::vector<Tuple> result = project->Evaluate(db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (Tuple{Value::Constant("b"), Value::Constant("a"),
                              Value::Constant("b")}));
}

TEST(AlgebraTest, JoinComposesSelectOverProduct) {
  Database db = Db("E(2) = { (a, b), (b, c) }");
  RaExprPtr two_hops =
      RaExpr::Project(RaExpr::Join(RaExpr::Relation("E", 2),
                                   RaExpr::Relation("E", 2), {{1, 0}}),
                      {0, 3});
  std::vector<Tuple> result = two_hops->Evaluate(db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (Tuple{Value::Constant("a"), Value::Constant("c")}));
}

TEST(AlgebraTest, UnionAndDifference) {
  Database db = Db("R(1) = { (a), (b) }  S(1) = { (b), (c) }");
  RaExprPtr r = RaExpr::Relation("R", 1);
  RaExprPtr s = RaExpr::Relation("S", 1);
  EXPECT_EQ(RaExpr::Union(r, s)->Evaluate(db).size(), 3u);
  std::vector<Tuple> diff = RaExpr::Difference(r, s)->Evaluate(db);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], Tuple{Value::Constant("a")});
}

TEST(AlgebraTest, NaiveSemanticsOnNulls) {
  // The intro example as algebra: R1 − R2.
  Database db = Db(
      "R1(2) = { (c1, _1), (c2, _1), (c2, _2) }"
      "R2(2) = { (c1, _2), (c2, _1), (_3, _1) }");
  RaExprPtr diff = RaExpr::Difference(RaExpr::Relation("R1", 2),
                                      RaExpr::Relation("R2", 2));
  std::vector<Tuple> result = diff->Evaluate(db);
  EXPECT_EQ(result.size(), 2u);  // (c1,⊥1) and (c2,⊥2), naively.
}

TEST(AlgebraTest, CompiledQueryIsUcqForPositivePlans) {
  RaExprPtr plan = RaExpr::Project(
      RaExpr::Union(
          RaExpr::Join(RaExpr::Relation("R", 2), RaExpr::Relation("S", 2),
                       {{1, 0}}),
          RaExpr::Product(RaExpr::Relation("R", 2),
                          RaExpr::Relation("T", 2))),
      {0, 2});
  Query q = plan->ToQuery();
  EXPECT_TRUE(IsUnionOfConjunctive(*q.formula()));
  EXPECT_EQ(q.arity(), 2u);
}

TEST(AlgebraTest, DifferenceCompilesWithNegation) {
  RaExprPtr plan = RaExpr::Difference(RaExpr::Relation("R", 1),
                                      RaExpr::Relation("S", 1));
  Query q = plan->ToQuery();
  EXPECT_FALSE(IsUnionOfConjunctive(*q.formula()));
  Database db = Db("R(1) = { (a), (b) }  S(1) = { (b) }");
  std::vector<Tuple> via_query = EvaluateQuery(q, db);
  ASSERT_EQ(via_query.size(), 1u);
  EXPECT_EQ(via_query[0], Tuple{Value::Constant("a")});
}

// Random plan generator for the equivalence property test.
RaExprPtr RandomPlan(std::mt19937_64* rng, std::size_t depth) {
  std::uniform_int_distribution<int> pick(0, 5);
  std::uniform_int_distribution<int> coin(0, 1);
  if (depth == 0) {
    return coin(*rng) ? RaExpr::Relation("R", 2) : RaExpr::Relation("S", 2);
  }
  switch (pick(*rng)) {
    case 0: {
      RaExprPtr child = RandomPlan(rng, depth - 1);
      std::uniform_int_distribution<std::size_t> column(0,
                                                        child->arity() - 1);
      RaCondition c;
      c.left_column = column(*rng);
      if (coin(*rng)) {
        c.kind = coin(*rng) ? RaCondition::Kind::kColumnEqualsColumn
                            : RaCondition::Kind::kColumnNotEqualsColumn;
        c.right_column = column(*rng);
      } else {
        c.kind = coin(*rng) ? RaCondition::Kind::kColumnEqualsValue
                            : RaCondition::Kind::kColumnNotEqualsValue;
        c.value = Value::Constant("c" + std::to_string(coin(*rng)));
      }
      return RaExpr::Select(child, {c});
    }
    case 1: {
      RaExprPtr child = RandomPlan(rng, depth - 1);
      std::uniform_int_distribution<std::size_t> column(0,
                                                        child->arity() - 1);
      std::size_t width = 1 + static_cast<std::size_t>(coin(*rng));
      std::vector<std::size_t> columns;
      for (std::size_t i = 0; i < width; ++i) columns.push_back(column(*rng));
      return RaExpr::Project(child, columns);
    }
    case 2: {
      RaExprPtr left = RandomPlan(rng, depth - 1);
      RaExprPtr right = RandomPlan(rng, depth - 1);
      if (left->arity() + right->arity() > 4) {
        return left;  // Keep arities small for the exhaustive evaluator.
      }
      return RaExpr::Product(left, right);
    }
    case 3:
    case 4: {
      RaExprPtr left = RandomPlan(rng, depth - 1);
      RaExprPtr right = RandomPlan(rng, depth - 1);
      if (left->arity() != right->arity()) return left;
      return pick(*rng) % 2 == 0 ? RaExpr::Union(left, right)
                                 : RaExpr::Difference(left, right);
    }
    default:
      return RandomPlan(rng, depth - 1);
  }
}

// The certified bridge: Evaluate(db) == EvaluateQuery(ToQuery(), db) on
// random plans over random incomplete databases.
class AlgebraFoEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraFoEquivalence, DirectMatchesCompiled) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 4}, {"S", 2, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 2;
  db_options.null_probability = 0.35;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 20000;
  Database db = GenerateRandomDatabase(db_options);

  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 21000);
  RaExprPtr plan = RandomPlan(&rng, 3);
  Query q = plan->ToQuery();

  std::vector<Tuple> direct = plan->Evaluate(db);
  std::vector<Tuple> compiled = EvaluateQuery(q, db);
  std::sort(compiled.begin(), compiled.end());
  compiled.erase(std::unique(compiled.begin(), compiled.end()),
                 compiled.end());
  EXPECT_EQ(direct, compiled)
      << plan->ToString() << "\nas FO: " << q.ToString() << "\n"
      << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraFoEquivalence, ::testing::Range(0, 30));

}  // namespace
}  // namespace zeroone
