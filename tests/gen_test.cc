#include <gtest/gtest.h>

#include "gen/random_db.h"
#include "gen/random_query.h"
#include "gen/scenarios.h"
#include "query/eval.h"
#include "query/fragments.h"

namespace zeroone {
namespace {

TEST(RandomDbTest, DeterministicInSeed) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, 5}, {"S", 1, 3}};
  options.seed = 99;
  Database a = GenerateRandomDatabase(options);
  Database b = GenerateRandomDatabase(options);
  EXPECT_EQ(a, b);
  options.seed = 100;
  EXPECT_NE(GenerateRandomDatabase(options), a);
}

TEST(RandomDbTest, RespectsShape) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 3, 6}};
  options.constant_pool = 2;
  options.null_pool = 2;
  options.null_probability = 0.5;
  options.seed = 4;
  Database db = GenerateRandomDatabase(options);
  EXPECT_EQ(db.relation("R").arity(), 3u);
  // Set semantics may deduplicate below the requested count, never above.
  EXPECT_LE(db.relation("R").size(), 6u);
  EXPECT_LE(db.Constants().size(), 2u);
  EXPECT_LE(db.Nulls().size(), 2u);
}

TEST(RandomDbTest, ZeroNullProbabilityYieldsComplete) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, 8}};
  options.null_probability = 0.0;
  options.seed = 5;
  EXPECT_TRUE(GenerateRandomDatabase(options).IsComplete());
}

TEST(RandomDbTest, DistinctSeedsUseDistinctNulls) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 1, 4}};
  options.constant_pool = 0;
  options.null_pool = 2;
  options.null_probability = 1.0;
  options.seed = 6;
  Database a = GenerateRandomDatabase(options);
  options.seed = 7;
  Database b = GenerateRandomDatabase(options);
  for (Value null_a : a.Nulls()) {
    for (Value null_b : b.Nulls()) {
      EXPECT_NE(null_a, null_b);
    }
  }
}

TEST(RandomQueryTest, DeterministicAndWellFormed) {
  RandomQueryOptions options;
  options.relations = {{"R", 2}, {"S", 1}};
  options.free_variables = 2;
  options.seed = 11;
  Query a = GenerateRandomUcq(options);
  Query b = GenerateRandomUcq(options);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.arity(), 2u);
  EXPECT_TRUE(IsUnionOfConjunctive(*a.formula()));
  // Range restriction: every free variable occurs free in the body.
  std::vector<std::size_t> free = a.formula()->FreeVariables();
  for (std::size_t v : a.free_variables()) {
    EXPECT_TRUE(std::find(free.begin(), free.end(), v) != free.end());
  }
}

TEST(RandomQueryTest, FoGeneratorUsesNegation) {
  RandomQueryOptions options;
  options.relations = {{"R", 2}};
  options.clauses = 3;
  options.atoms_per_clause = 3;
  options.seed = 12;
  Query fo = GenerateRandomFo(options, 1.0);  // Negate whenever possible.
  EXPECT_FALSE(IsUnionOfConjunctive(*fo.formula()));
}

TEST(ScenariosTest, ScaledIntroShape) {
  IntroExample example = ScaledIntroExample(10, 3, 0.5, 21);
  EXPECT_EQ(example.db.relation("R1").size(), 30u);
  EXPECT_FALSE(example.db.Nulls().empty());
  EXPECT_EQ(example.query.arity(), 2u);
  // Determinism.
  IntroExample again = ScaledIntroExample(10, 3, 0.5, 21);
  EXPECT_EQ(example.db, again.db);
}

TEST(ScenariosTest, PaperExamplesAreWellFormed) {
  EXPECT_EQ(PaperIntroExample().db.Nulls().size(), 3u);
  EXPECT_EQ(PaperConditionalExample().db.Nulls().size(), 1u);
  EXPECT_EQ(PaperBestAnswerExample().db.Nulls().size(), 3u);
  EXPECT_EQ(Proposition4Example(2, 5).db.relation("U").size(), 5u);
  EXPECT_TRUE(Proposition2Example().db.relation("U").empty());
}

}  // namespace
}  // namespace zeroone
