// Unit tests for the work-stealing morsel pool (src/par/pool.h) and
// fault-schedule table tests for the parallelism fault sites. The pool's
// contract is exactness — every index of [0, n) executes exactly once, on
// some worker, regardless of stealing, adversarial steal-fail schedules, or
// team width — plus clean abort semantics: cancellation, a body returning
// false, or the `par.morsel.abort` fault all stop the run, cancel nothing
// they shouldn't, and leave no worker behind (ParallelFor joins its team
// before returning, so a subsequent run on the same thread is the
// quiescence probe; ASan/TSan CI jobs catch anything leaked).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "data/homomorphism.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "fault/fault.h"
#include "gen/random_db.h"
#include "obs/metrics.h"
#include "par/pool.h"

namespace zeroone {
namespace {

// Saves and restores the global thread budget and fault plan around every
// test so the battery composes with any ZEROONE_PAR / ZEROONE_FAULTS
// environment the CI job sets.
class ParPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = par::par_threads();
    fault::Registry::Global().Clear();
  }
  void TearDown() override {
    fault::Registry::Global().Clear();
    par::SetParThreads(previous_threads_);
  }

 private:
  std::size_t previous_threads_ = 1;
};

TEST_F(ParPoolTest, EmptyRangeHasNoMorselsAndSucceeds) {
  par::ForPlan plan = par::PlanMorsels(0, par::ForOptions{});
  EXPECT_EQ(plan.morsels, 0u);
  std::atomic<int> calls{0};
  EXPECT_TRUE(par::ParallelFor(plan, [&](const par::Morsel&, std::size_t) {
    calls.fetch_add(1);
    return true;
  }));
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParPoolTest, SingleRowIsOneMorsel) {
  par::ForPlan plan = par::PlanMorsels(1, par::ForOptions{});
  ASSERT_EQ(plan.morsels, 1u);
  EXPECT_EQ(plan.workers, 1u);
  std::atomic<int> calls{0};
  EXPECT_TRUE(par::ParallelFor(plan, [&](const par::Morsel& m, std::size_t) {
    EXPECT_EQ(m.index, 0u);
    EXPECT_EQ(m.begin, 0u);
    EXPECT_EQ(m.end, 1u);
    calls.fetch_add(1);
    return true;
  }));
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(ParPoolTest, OddRemainderLandsInTheLastMorsel) {
  par::SetParThreads(1);
  par::ForOptions options;
  options.grain = 3;
  par::ForPlan plan = par::PlanMorsels(10, options);
  ASSERT_EQ(plan.morsels, 4u);
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  EXPECT_TRUE(par::ParallelFor(plan, [&](const par::Morsel& m, std::size_t) {
    ranges.emplace_back(m.begin, m.end);
    return true;
  }));
  std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 3}, {3, 6}, {6, 9}, {9, 10}};
  EXPECT_EQ(ranges, expected);
}

TEST_F(ParPoolTest, PartitionTilesTheRangeForManyShapes) {
  par::SetParThreads(1);
  for (std::size_t n : {1u, 2u, 3u, 5u, 16u, 97u, 1000u}) {
    for (std::size_t grain : {0u, 1u, 3u, 7u}) {
      par::ForOptions options;
      options.grain = grain;
      par::ForPlan plan = par::PlanMorsels(n, options);
      std::size_t covered = 0;
      std::size_t next = 0;
      EXPECT_TRUE(
          par::ParallelFor(plan, [&](const par::Morsel& m, std::size_t) {
            EXPECT_EQ(m.begin, next);  // Contiguous, ascending, gap-free.
            EXPECT_LT(m.begin, m.end);
            covered += m.end - m.begin;
            next = m.end;
            return true;
          }));
      EXPECT_EQ(covered, n) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST_F(ParPoolTest, EveryIndexRunsExactlyOnceAcrossTheTeam) {
  par::SetParThreads(8);
  constexpr std::size_t kN = 257;
  par::ForOptions options;
  options.grain = 1;
  par::ForPlan plan = par::PlanMorsels(kN, options);
  std::vector<std::atomic<int>> counts(kN);
  EXPECT_TRUE(par::ParallelFor(plan, [&](const par::Morsel& m, std::size_t w) {
    EXPECT_LT(w, plan.workers);
    for (std::size_t i = m.begin; i < m.end; ++i) counts[i].fetch_add(1);
    return true;
  }));
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParPoolTest, StealsStayExactUnderAdversarialSchedules) {
  // Seeded steal-fail schedules perturb victim selection; the exactness
  // invariant (every index exactly once) must hold under all of them.
  par::SetParThreads(8);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ASSERT_TRUE(fault::Registry::Global()
                    .Configure("seed=" + std::to_string(seed) +
                               ",par.steal.fail=0.5")
                    .ok());
    constexpr std::size_t kN = 97;
    par::ForOptions options;
    options.grain = 1;
    std::vector<std::atomic<int>> counts(kN);
    EXPECT_TRUE(par::ParallelFor(kN, options,
                                 [&](const par::Morsel& m, std::size_t) {
                                   for (std::size_t i = m.begin; i < m.end;
                                        ++i) {
                                     counts[i].fetch_add(1);
                                   }
                                   return true;
                                 }));
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "seed " << seed << " index " << i;
    }
  }
}

TEST_F(ParPoolTest, StealFailEverywhereStillRunsEveryMorsel) {
  // With every steal refused, owners drain their own deques: slower, never
  // wrong, and the run still reports success.
  ASSERT_TRUE(
      fault::Registry::Global().Configure("par.steal.fail=1.0").ok());
  par::SetParThreads(8);
  constexpr std::size_t kN = 64;
  par::ForOptions options;
  options.grain = 1;
  std::vector<std::atomic<int>> counts(kN);
  obs::ScopedSnapshot snapshot;
  EXPECT_TRUE(par::ParallelFor(kN, options,
                               [&](const par::Morsel& m, std::size_t) {
                                 for (std::size_t i = m.begin; i < m.end; ++i)
                                   counts[i].fetch_add(1);
                                 return true;
                               }));
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
  EXPECT_EQ(snapshot.Delta("par.steals"), 0u);
}

TEST_F(ParPoolTest, SerialModeRunsMorselsInOrderOnTheCallingThread) {
  par::SetParThreads(1);
  par::ForOptions options;
  options.grain = 1;
  obs::ScopedSnapshot snapshot;
  std::vector<std::size_t> order;
  EXPECT_TRUE(par::ParallelFor(20, options,
                               [&](const par::Morsel& m, std::size_t w) {
                                 EXPECT_EQ(w, 0u);
                                 order.push_back(m.index);
                                 return true;
                               }));
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
#if ZEROONE_OBS_ENABLED && ZEROONE_PAR_ENABLED
  EXPECT_EQ(snapshot.Delta("par.morsels"), 20u);
  EXPECT_EQ(snapshot.Delta("par.steals"), 0u);
#else
  (void)snapshot;  // Counters compile away with ZEROONE_OBS/PAR=OFF.
#endif
}

TEST_F(ParPoolTest, CancelTokenAbortsSerialRunAtTheNextMorsel) {
  par::SetParThreads(1);
  CancelToken token;
  ScopedCancelToken scope(&token);
  par::ForOptions options;
  options.grain = 1;
  int calls = 0;
  EXPECT_FALSE(par::ParallelFor(5, options,
                                [&](const par::Morsel&, std::size_t) {
                                  ++calls;
                                  token.Cancel();  // Mid-run cancellation.
                                  return true;
                                }));
  // The cancelling morsel finishes; the next poll aborts the run.
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(token.cancelled());
}

TEST_F(ParPoolTest, CancelTokenAbortsParallelRun) {
  par::SetParThreads(8);
  CancelToken token;
  ScopedCancelToken scope(&token);
  par::ForOptions options;
  options.grain = 1;
  // Every morsel cancels: whichever body completes first leaves ~500
  // unclaimed morsels behind, so some worker's next pre-morsel poll must
  // observe the cancellation and abort the run. (Cancelling from one fixed
  // morsel would be flaky — under adversarial stealing that morsel can be
  // the last one, and a fully completed run correctly reports success.)
  std::atomic<int> calls{0};
  EXPECT_FALSE(par::ParallelFor(512, options,
                                [&](const par::Morsel&, std::size_t) {
                                  calls.fetch_add(1);
                                  token.Cancel();
                                  return true;
                                }));
  EXPECT_TRUE(token.cancelled());
  // Nothing executes after a poll observes the cancel, so at most the
  // in-flight morsel of each worker ever ran.
  EXPECT_LE(calls.load(), 8);
}

TEST_F(ParPoolTest, BodyReturningFalseAbortsTheRun) {
  par::SetParThreads(8);
  par::ForOptions options;
  options.grain = 1;
  EXPECT_FALSE(par::ParallelFor(
      64, options,
      [&](const par::Morsel& m, std::size_t) { return m.index != 3; }));
}

TEST_F(ParPoolTest, MorselAbortFaultCancelsTokenAndStopsSerialRun) {
#if !ZEROONE_PAR_ENABLED
  GTEST_SKIP() << "par.morsel.abort compiles away with ZEROONE_PAR=OFF";
#endif
  ASSERT_TRUE(
      fault::Registry::Global().Configure("par.morsel.abort=#3").ok());
  par::SetParThreads(1);
  CancelToken token;
  ScopedCancelToken scope(&token);
  par::ForOptions options;
  options.grain = 1;
  int calls = 0;
  EXPECT_FALSE(par::ParallelFor(10, options,
                                [&](const par::Morsel&, std::size_t) {
                                  ++calls;
                                  return true;
                                }));
  // Hits 1 and 2 execute their morsels; hit 3 fires before the body runs.
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(fault::Registry::Global().Stats("par.morsel.abort").fired, 1u);
}

TEST_F(ParPoolTest, MorselAbortFaultStopsParallelRunAndTeamQuiesces) {
#if !ZEROONE_PAR_ENABLED
  GTEST_SKIP() << "par.morsel.abort compiles away with ZEROONE_PAR=OFF";
#endif
  ASSERT_TRUE(
      fault::Registry::Global().Configure("par.morsel.abort=#2").ok());
  par::SetParThreads(8);
  CancelToken token;
  {
    ScopedCancelToken scope(&token);
    par::ForOptions options;
    options.grain = 1;
    EXPECT_FALSE(par::ParallelFor(
        64, options, [&](const par::Morsel&, std::size_t) { return true; }));
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_GE(fault::Registry::Global().Stats("par.morsel.abort").fired, 1u);
  // Quiescence: ParallelFor joined its team before returning, so a clean
  // follow-up run on the same thread completes exactly (and the sanitizer
  // jobs would flag any thread the aborted run leaked).
  fault::Registry::Global().Clear();
  constexpr std::size_t kN = 64;
  par::ForOptions options;
  options.grain = 1;
  std::vector<std::atomic<int>> counts(kN);
  EXPECT_TRUE(par::ParallelFor(kN, options,
                               [&](const par::Morsel& m, std::size_t) {
                                 for (std::size_t i = m.begin; i < m.end; ++i)
                                   counts[i].fetch_add(1);
                                 return true;
                               }));
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST_F(ParPoolTest, NestedParallelForRunsInlineOnTheWorker) {
  par::SetParThreads(8);
  par::ForOptions outer_options;
  outer_options.grain = 1;
  std::atomic<int> inner_total{0};
  std::atomic<bool> saw_worker_flag{true};
  std::atomic<bool> nested_serial{true};
  EXPECT_TRUE(par::ParallelFor(
      8, outer_options, [&](const par::Morsel&, std::size_t) {
        if (!par::InParallelWorker()) saw_worker_flag.store(false);
        par::ForPlan inner = par::PlanMorsels(25, par::ForOptions{});
        if (inner.workers != 1) nested_serial.store(false);
        par::ParallelFor(inner, [&](const par::Morsel& m, std::size_t) {
          inner_total.fetch_add(static_cast<int>(m.end - m.begin));
          return true;
        });
        return true;
      }));
#if ZEROONE_PAR_ENABLED
  EXPECT_TRUE(saw_worker_flag.load());  // Always false in the inline build.
#else
  (void)saw_worker_flag;
#endif
  EXPECT_TRUE(nested_serial.load());
  EXPECT_EQ(inner_total.load(), 8 * 25);
  EXPECT_FALSE(par::InParallelWorker());  // Cleared once the run returns.
}

TEST_F(ParPoolTest, DefaultBudgetRespectsTheEnvironment) {
  par::SetParThreads(0);  // Reset to the ZEROONE_PAR / hardware default.
  EXPECT_GE(par::par_threads(), 1u);
  const char* env = std::getenv("ZEROONE_PAR");
  if (env != nullptr &&
      (std::string(env) == "off" || std::string(env) == "0")) {
    // The par_env_off_smoke ctest instance re-runs this binary with
    // ZEROONE_PAR=off and lands here.
    EXPECT_EQ(par::par_threads(), 1u);
  }
}

TEST_F(ParPoolTest, TeamWidthIsCappedByMorselsAndOptions) {
  par::SetParThreads(8);
  par::ForOptions one_grain;
  one_grain.grain = 1;
  EXPECT_LE(par::PlanMorsels(3, one_grain).workers, 3u);
  par::ForOptions capped = one_grain;
  capped.max_workers = 2;
  EXPECT_LE(par::PlanMorsels(100, capped).workers, 2u);
#if ZEROONE_PAR_ENABLED
  EXPECT_EQ(par::PlanMorsels(100, one_grain).workers, 8u);
#else
  EXPECT_EQ(par::PlanMorsels(100, one_grain).workers, 1u);
#endif
}

TEST_F(ParPoolTest, CountersAttributeMorselsAndRuns) {
#if !ZEROONE_OBS_ENABLED || !ZEROONE_PAR_ENABLED
  GTEST_SKIP() << "par.* counters compile away with ZEROONE_OBS/PAR=OFF";
#endif
  par::SetParThreads(8);
  par::ForOptions options;
  options.grain = 1;
  obs::ScopedSnapshot snapshot;
  EXPECT_TRUE(par::ParallelFor(
      40, options, [&](const par::Morsel&, std::size_t) { return true; }));
  EXPECT_EQ(snapshot.Delta("par.morsels"), 40u);
  EXPECT_EQ(snapshot.Delta("par.runs"), 1u);
}

// ---------------------------------------------------------------------------
// Fault-schedule table tests for the in-query sites: an injected fault
// inside a datalog join or a homomorphism search must cancel the installed
// token (the caller's signal to discard partial results) and leave the
// process quiet — no leaked workers, no crash, subsequent clean runs exact.

Database SmallGraph(std::uint64_t seed) {
  RandomDatabaseOptions options;
  options.relations = {{"E", 2, 8}};
  options.constant_pool = 5;
  options.null_pool = 2;
  options.null_probability = 0.25;
  options.seed = seed;
  return GenerateRandomDatabase(options);
}

TEST_F(ParPoolTest, DatalogJoinCancelFaultAbandonsTheFixpoint) {
  par::SetParThreads(1);  // Deterministic hit ordering for the #N schedule.
  Database db = SmallGraph(11);
  StatusOr<DatalogProgram> program = ParseDatalogProgram(R"(
    T(X, Y) :- E(X, Y).
    T(X, Z) :- E(X, Y), T(Y, Z).
    ?- T
  )");
  ASSERT_TRUE(program.ok()) << program.status().message();
  Database clean = MaterializeDatalog(*program, db);

  ASSERT_TRUE(
      fault::Registry::Global().Configure("datalog.join.cancel=#2").ok());
  CancelToken token;
  {
    ScopedCancelToken scope(&token);
    MaterializeDatalog(*program, db);  // Result discarded: token cancelled.
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(fault::Registry::Global().Stats("datalog.join.cancel").fired, 1u);

  // The fault left no residue: a clean re-run reproduces the fixpoint.
  fault::Registry::Global().Clear();
  EXPECT_EQ(MaterializeDatalog(*program, db), clean);
}

TEST_F(ParPoolTest, HomSearchCancelFaultStopsTheSearch) {
  par::SetParThreads(1);
  Database a = SmallGraph(21);
  auto clean = FindHomomorphism(a, a);  // Identity exists: nonempty search.
  ASSERT_TRUE(clean.has_value());

  ASSERT_TRUE(
      fault::Registry::Global().Configure("hom.search.cancel=#1").ok());
  CancelToken token;
  {
    ScopedCancelToken scope(&token);
    FindHomomorphism(a, a);  // Result garbage by contract: token cancelled.
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(fault::Registry::Global().Stats("hom.search.cancel").fired, 1u);

  fault::Registry::Global().Clear();
  EXPECT_EQ(FindHomomorphism(a, a), clean);
}

TEST_F(ParPoolTest, FaultSitesFireUnderParallelTeamsWithoutLeaks) {
  // The same two sites under an 8-wide team and probability schedules:
  // exactness of the clean reference re-run is the no-partial-results and
  // quiescence check (TSan/ASan CI jobs run this very test).
  Database a = SmallGraph(33);
  StatusOr<DatalogProgram> program = ParseDatalogProgram(R"(
    T(X, Y) :- E(X, Y).
    T(X, Z) :- E(X, Y), T(Y, Z).
    ?- T
  )");
  ASSERT_TRUE(program.ok());
  par::SetParThreads(1);
  Database clean = MaterializeDatalog(*program, a);

  par::SetParThreads(8);
  ASSERT_TRUE(fault::Registry::Global()
                  .Configure("seed=7,datalog.join.cancel=0.05,"
                             "hom.search.cancel=0.02,par.steal.fail=0.2")
                  .ok());
  for (int round = 0; round < 3; ++round) {
    CancelToken token;
    ScopedCancelToken scope(&token);
    MaterializeDatalog(*program, a);
    FindHomomorphism(a, a);
  }
  fault::Registry::Global().Clear();
  EXPECT_EQ(MaterializeDatalog(*program, a), clean);
}

}  // namespace
}  // namespace zeroone
