// Compiled with ZEROONE_PAR_ENABLED=0 and intentionally not linked against
// zeroone_par: it only links if the compiled-away pool header is fully
// self-contained — the inline serial ParallelFor against zeroone_common
// alone, no <thread>, no pool symbols. The CI par-off job builds the whole
// tree with -DZEROONE_PAR=OFF and additionally nm-checks the core archives
// for thread-creation symbols; this smoke test catches a header regression
// in every configuration.

#include <cstdio>
#include <cstdlib>

#include "common/cancel.h"
#include "par/pool.h"

int main() {
  using namespace zeroone;
  if (par::par_threads() != 1) return EXIT_FAILURE;
  par::SetParThreads(8);  // A no-op in the compiled-away build.
  if (par::par_threads() != 1) return EXIT_FAILURE;
  if (par::InParallelWorker()) return EXIT_FAILURE;

  par::ForOptions options;
  options.grain = 3;
  par::ForPlan plan = par::PlanMorsels(10, options);
  if (plan.morsels != 4) return EXIT_FAILURE;
  std::size_t covered = 0;
  std::size_t next_index = 0;
  bool ok = par::ParallelFor(plan, [&](const par::Morsel& m, std::size_t w) {
    if (w != 0 || m.index != next_index || m.begin != m.index * 3) {
      return false;
    }
    ++next_index;
    covered += m.end - m.begin;
    return true;
  });
  if (!ok || covered != 10 || next_index != 4) return EXIT_FAILURE;

  if (!par::ParallelFor(0, par::ForOptions{},
                        [](const par::Morsel&, std::size_t) { return false; })) {
    return EXIT_FAILURE;  // Empty range: body never runs, must succeed.
  }

  // Cancellation still aborts at morsel granularity.
  CancelToken token;
  ScopedCancelToken scope(&token);
  int calls = 0;
  bool aborted = !par::ParallelFor(5, [] {
    par::ForOptions o;
    o.grain = 1;
    return o;
  }(), [&](const par::Morsel&, std::size_t) {
    ++calls;
    token.Cancel();
    return true;
  });
  if (!aborted || calls != 1) return EXIT_FAILURE;

  std::puts("par-off smoke OK");
  return EXIT_SUCCESS;
}
