// End-to-end test reproducing every claim the paper makes about its running
// examples, exercising the whole stack: parser → evaluation → measures →
// constraints → comparisons.

#include <gtest/gtest.h>

#include <algorithm>

#include "constraints/fd.h"
#include "core/comparison.h"
#include "core/conditional.h"
#include "core/measure.h"
#include "core/support.h"
#include "core/support_polynomial.h"
#include "core/ucq_compare.h"
#include "gen/scenarios.h"
#include "query/eval.h"
#include "query/parser.h"

namespace zeroone {
namespace {

TEST(IntegrationTest, IntroExampleFullStory) {
  IntroExample example = PaperIntroExample();
  Tuple a{Value::Constant("c1"), Value::Null("1")};
  Tuple b{Value::Constant("c2"), Value::Null("2")};

  // 1. Certain answers are empty.
  EXPECT_TRUE(CertainAnswers(example.query, example.db).empty());

  // 2. Naive evaluation returns exactly (c1,⊥1) and (c2,⊥2).
  std::vector<Tuple> naive = NaiveEvaluate(example.query, example.db);
  std::sort(naive.begin(), naive.end());
  std::vector<Tuple> expected = {a, b};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(naive, expected);

  // 3. Both are almost certainly true (µ = 1) but not certain.
  EXPECT_EQ(MuLimit(example.query, example.db, a), 1);
  EXPECT_EQ(MuLimit(example.query, example.db, b), 1);
  EXPECT_FALSE(IsCertainAnswer(example.query, example.db, a));
  EXPECT_FALSE(IsCertainAnswer(example.query, example.db, b));

  // 4. The measure computed from its very definition agrees (0–1 law).
  EXPECT_EQ(MuViaPolynomial(example.query, example.db, a), Rational(1));
  EXPECT_EQ(MuViaPolynomial(example.query, example.db, b), Rational(1));

  // 5. Every valuation supporting (c1,⊥1) supports (c2,⊥2), not conversely
  //    (because v(⊥3) could be c1): a ◁ b.
  EXPECT_TRUE(WeaklyDominated(example.query, example.db, a, b));
  EXPECT_TRUE(StrictlyDominated(example.query, example.db, a, b));

  // 6. No other tuple has more support: b ∈ Best(Q,D).
  std::vector<Tuple> best = BestAnswers(example.query, example.db);
  EXPECT_TRUE(std::count(best.begin(), best.end(), b));
  EXPECT_FALSE(std::count(best.begin(), best.end(), a));

  // 7. Under the FD customer → product, both answers become almost
  //    certainly false: all Q(v(D)) are empty for admissible v.
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R1", 2, {0}, 1),
      FunctionalDependency("R2", 2, {0}, 1)};
  EXPECT_EQ(ConditionalMuViaChase(example.query, fds, example.db, a), 0);
  EXPECT_EQ(ConditionalMuViaChase(example.query, fds, example.db, b), 0);
  // Cross-check with the exact partition-polynomial computation.
  ConstraintSet constraints;
  for (const FunctionalDependency& fd : fds) {
    constraints.push_back(std::make_shared<FunctionalDependency>(fd));
  }
  EXPECT_EQ(ConditionalMu(example.query, constraints, example.db, a),
            Rational(0));
  EXPECT_EQ(ConditionalMu(example.query, constraints, example.db, b),
            Rational(0));
}

TEST(IntegrationTest, MuKConvergenceIsMonotoneTowardOne) {
  // The intro example's likely answers: µ^k increases in k toward 1.
  IntroExample example = PaperIntroExample();
  Tuple a{Value::Constant("c1"), Value::Null("1")};
  Rational previous(0);
  for (std::size_t k = 4; k <= 16; k += 4) {
    Rational current = MuK(example.query, example.db, a, k);
    EXPECT_GT(current, previous) << k;
    previous = current;
  }
  EXPECT_GT(previous, Rational(4, 5));
}

TEST(IntegrationTest, ScaledIntroNaiveAnswersAreAlmostCertain) {
  IntroExample example = ScaledIntroExample(20, 5, 0.3, 7);
  std::vector<Tuple> naive = NaiveEvaluate(example.query, example.db);
  for (const Tuple& t : naive) {
    EXPECT_EQ(MuLimit(example.query, example.db, t), 1);
  }
}

TEST(IntegrationTest, BestAnswersViaBothAlgorithmsOnUcq) {
  // A UCQ over the intro database: the generic and the polynomial
  // algorithms agree end to end.
  IntroExample example = PaperIntroExample();
  StatusOr<Query> q = [] {
    return ParseQuery("Q(x) := (exists y . R1(x, y)) | (exists y . R2(x, y))");
  }();
  ASSERT_TRUE(q.ok());
  std::vector<Tuple> generic = BestAnswers(*q, example.db);
  StatusOr<std::vector<Tuple>> fast = UcqBestAnswers(*q, example.db);
  ASSERT_TRUE(fast.ok());
  std::vector<Tuple> fast_sorted = *fast;
  std::sort(generic.begin(), generic.end());
  std::sort(fast_sorted.begin(), fast_sorted.end());
  EXPECT_EQ(generic, fast_sorted);
}

}  // namespace
}  // namespace zeroone
