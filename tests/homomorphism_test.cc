#include "data/homomorphism.h"

#include <gtest/gtest.h>

#include "constraints/dependencies.h"
#include "data/io.h"
#include "data/isomorphism.h"
#include "gen/random_db.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

TEST(HomomorphismTest, NullsFoldOntoConstants) {
  Database from = Db("R(2) = { (a, _hm1) }");
  Database to = Db("R(2) = { (a, b) }");
  auto h = FindHomomorphism(from, to);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(Value::Null("hm1")), Value::Constant("b"));
  // No homomorphism the other way: constants are fixed.
  EXPECT_FALSE(FindHomomorphism(to, from).has_value());
}

TEST(HomomorphismTest, ConstantsMustMatch) {
  Database from = Db("R(1) = { (a) }");
  Database to = Db("R(1) = { (b) }");
  EXPECT_FALSE(FindHomomorphism(from, to).has_value());
}

TEST(HomomorphismTest, SharedNullForcesConsistency) {
  // (⊥, ⊥) can only map to a "diagonal" tuple.
  Database from = Db("R(2) = { (_hc1, _hc1) }");
  EXPECT_TRUE(FindHomomorphism(from, Db("R(2) = { (a, a) }")).has_value());
  EXPECT_FALSE(FindHomomorphism(from, Db("R(2) = { (a, b) }")).has_value());
}

TEST(HomomorphismTest, EquivalenceViaDifferentShapes) {
  // Both instances fold onto R(a, a)-style diagonals.
  Database a = Db("R(2) = { (a, _he1), (_he1, a) }");
  Database b = Db("R(2) = { (a, _he2), (_he2, a), (a, _he3), (_he3, a) }");
  EXPECT_TRUE(AreHomomorphicallyEquivalent(a, b));
}

TEST(CoreTest, CompleteDatabaseIsItsOwnCore) {
  Database db = Db("R(2) = { (a, b), (b, c) }");
  EXPECT_EQ(ComputeCore(db), db);
}

TEST(CoreTest, RedundantNullTupleFolds) {
  // (a, ⊥) is subsumed by (a, b): the core drops it.
  Database db = Db("R(2) = { (a, b), (a, _cr1) }");
  Database core = ComputeCore(db);
  EXPECT_EQ(core.relation("R").size(), 1u);
  EXPECT_TRUE(core.relation("R").Contains(
      Tuple{Value::Constant("a"), Value::Constant("b")}));
}

TEST(CoreTest, NonRedundantNullSurvives) {
  // (c, ⊥) is not subsumed — c appears nowhere else.
  Database db = Db("R(2) = { (a, b), (c, _cs1) }");
  Database core = ComputeCore(db);
  EXPECT_EQ(core.relation("R").size(), 2u);
}

TEST(CoreTest, CoreIsHomEquivalentAndMinimal) {
  Database db = Db(
      "R(2) = { (a, _cm1), (a, _cm2), (_cm2, b), (a, b) }");
  Database core = ComputeCore(db);
  EXPECT_TRUE(AreHomomorphicallyEquivalent(db, core));
  // Minimality: the core of the core is itself.
  EXPECT_EQ(ComputeCore(core), core);
  EXPECT_LT(core.TupleCount(), db.TupleCount());
}

TEST(CoreTest, CoreUniqueUpToIsomorphismOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RandomDatabaseOptions options;
    options.relations = {{"R", 2, 5}};
    options.constant_pool = 2;
    options.null_pool = 3;
    options.null_probability = 0.5;
    options.seed = seed + 110000;
    Database db = GenerateRandomDatabase(options);
    Database core = ComputeCore(db);
    EXPECT_TRUE(AreHomomorphicallyEquivalent(db, core)) << db.ToString();
    EXPECT_EQ(ComputeCore(core), core) << db.ToString();
  }
}

TEST(CoreTest, DataExchangeCanonicalSolutionCore) {
  // Chase a source through a mapping with invention, then core the result:
  // the invented null for alice folds away if a concrete fact already
  // covers it.
  Database source = Db("Emp(2) = { (alice, sales) }  Works(2) = { (alice, w1) }  DeptOf(2) = { (w1, sales) }");
  DependencySet mapping;
  mapping.tgds.push_back(TupleGeneratingDependency(
      {{"Emp", {Term::Variable(0), Term::Variable(1)}}},
      {{"Works", {Term::Variable(0), Term::Variable(2)}},
       {"DeptOf", {Term::Variable(2), Term::Variable(1)}}}));
  GeneralChaseResult result = ChaseDependencies(mapping, source);
  ASSERT_TRUE(result.success);
  // The standard chase does not fire (the head is already satisfied via
  // w1), so the canonical solution is already core-like; force invention
  // by removing the witness.
  Database bare = Db("Emp(2) = { (alice, sales) }");
  GeneralChaseResult invented = ChaseDependencies(mapping, bare);
  ASSERT_TRUE(invented.success);
  EXPECT_EQ(invented.database.Nulls().size(), 1u);
  Database merged = invented.database;
  // Add the concrete fact afterwards: the invented null becomes redundant.
  merged.mutable_relation("Works").Insert(
      {Value::Constant("alice"), Value::Constant("w1")});
  merged.mutable_relation("DeptOf").Insert(
      {Value::Constant("w1"), Value::Constant("sales")});
  Database core = ComputeCore(merged);
  EXPECT_TRUE(core.Nulls().empty()) << core.ToString();
}

}  // namespace
}  // namespace zeroone
