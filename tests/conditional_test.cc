#include "core/conditional.h"

#include <gtest/gtest.h>

#include "core/measure.h"
#include "data/io.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "gen/scenarios.h"
#include "query/eval.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(ConditionalTest, PaperSection4Example) {
  // µ(Q|Σ,D,(1,⊥)) = 1/3 and µ(Q|Σ,D,(2,⊥)) = 2/3.
  ConditionalExample example = PaperConditionalExample();
  EXPECT_EQ(ConditionalMu(example.query, example.constraints, example.db,
                          example.tuple_a),
            Rational(1, 3));
  EXPECT_EQ(ConditionalMu(example.query, example.constraints, example.db,
                          example.tuple_b),
            Rational(2, 3));
}

TEST(ConditionalTest, Section4ExampleFiniteKStabilizes) {
  // With the IND pinning ⊥ to {1,2,3}, µ^k(Q|Σ) is already exact at every
  // k ≥ |A|.
  ConditionalExample example = PaperConditionalExample();
  Query sigma = ConstraintSetQuery(example.constraints);
  Query qa = example.query.Substitute(example.tuple_a);
  for (std::size_t k : {4u, 6u, 9u}) {
    EXPECT_EQ(ConditionalMuK(qa, sigma, example.db, Tuple{}, k),
              Rational(1, 3))
        << k;
  }
}

// Proposition 4: every rational p/r in (0,1] is realizable.
class RationalRealizability
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RationalRealizability, ExactValue) {
  auto [p, r] = GetParam();
  RationalValueExample example =
      Proposition4Example(static_cast<std::size_t>(p),
                          static_cast<std::size_t>(r));
  EXPECT_EQ(ConditionalMu(example.query, example.constraints, example.db),
            Rational(p, r))
      << "p=" << p << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RationalRealizability,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 2}, std::pair{1, 3},
                      std::pair{2, 3}, std::pair{3, 4}, std::pair{2, 5},
                      std::pair{5, 7}, std::pair{4, 9}, std::pair{7, 8}));

TEST(ConditionalTest, UnsatisfiableSigmaGivesZero) {
  // Σ forces the null to be in an empty relation: unsatisfiable.
  Database db = Db("R(1) = { (_u1) }  V(1) = {}");
  ConstraintSet sigma = {std::make_shared<InclusionDependency>(
      "R", 1, std::vector<std::size_t>{0}, "V", 1,
      std::vector<std::size_t>{0})};
  ConditionalMeasure result =
      ComputeConditionalMu(Q(":= exists x . R(x)"), sigma, db, Tuple{});
  EXPECT_FALSE(result.sigma_satisfiable);
  EXPECT_EQ(result.value, Rational(0));
}

TEST(ConditionalTest, NaiveBreaksUnderConstraints) {
  // Section 4.3: Q^naive and (Σ→Q)^naive true, yet µ(Q|Σ,D) = 0.
  NaiveBreaksExample example = PaperNaiveBreaksExample();
  EXPECT_EQ(MuLimit(example.query, example.db), 1);
  Query sigma = ConstraintSetQuery(example.constraints);
  EXPECT_EQ(ImplicationMuLimit(example.query, sigma, example.db, Tuple{}), 1);
  EXPECT_EQ(
      ConditionalMu(example.query, example.constraints, example.db),
      Rational(0));
}

// Proposition 3: µ(Σ→Q) is 1 when µ(Σ) = 0, else equals µ(Q).
class ImplicationDegeneracy : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationDegeneracy, Holds) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 3}, {"U", 1, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 2;
  db_options.null_probability = 0.4;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 1500;
  Database db = GenerateRandomDatabase(db_options);
  ConstraintSet constraints = {std::make_shared<InclusionDependency>(
      "R", 2, std::vector<std::size_t>{0}, "U", 1,
      std::vector<std::size_t>{0})};
  Query sigma = ConstraintSetQuery(constraints);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"U", 1}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 1600;
  Query query = GenerateRandomFo(q_options, 0.3);

  int mu_sigma = MuLimit(sigma, db);
  int mu_q = MuLimit(query, db);
  int mu_implication = ImplicationMuLimit(query, sigma, db, Tuple{});
  if (mu_sigma == 0) {
    EXPECT_EQ(mu_implication, 1);
  } else {
    EXPECT_EQ(mu_implication, mu_q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationDegeneracy,
                         ::testing::Range(0, 20));

// Theorem 4: if Σ^naive(D) = true then µ(Q|Σ,D,ā) = µ(Q,D,ā).
class AlmostSurelyTrueConstraints : public ::testing::TestWithParam<int> {};

TEST_P(AlmostSurelyTrueConstraints, ConstraintsDoNotMatter) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 3}, {"U", 1, 4}};
  db_options.constant_pool = 4;
  db_options.null_pool = 2;
  db_options.null_probability = 0.35;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 1700;
  Database db = GenerateRandomDatabase(db_options);
  // Make Σ naively true by closing U over R's first column (nulls
  // included: naive evaluation treats them as values).
  for (Relation::Row t : db.relation("R")) {
    db.mutable_relation("U").Insert({t[0]});
  }
  ConstraintSet constraints = {std::make_shared<InclusionDependency>(
      "R", 2, std::vector<std::size_t>{0}, "U", 1,
      std::vector<std::size_t>{0})};
  Query sigma = ConstraintSetQuery(constraints);
  ASSERT_EQ(MuLimit(sigma, db), 1);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"U", 1}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 1800;
  Query query = GenerateRandomFo(q_options, 0.3);

  Rational conditional = ConditionalMu(query, constraints, db);
  EXPECT_EQ(conditional, Rational(MuLimit(query, db)))
      << query.ToString() << "\n" << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlmostSurelyTrueConstraints,
                         ::testing::Range(0, 20));

// The closed-form conditional measure agrees with brute-force µ^k ratios at
// finite k (for k past the prefix, values match exactly once the polynomial
// regime is reached — compare at several k).
class ConditionalFiniteKAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ConditionalFiniteKAgreement, PolynomialMatchesEnumeration) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 3}, {"U", 1, 2}};
  db_options.constant_pool = 2;
  db_options.null_pool = 2;
  db_options.null_probability = 0.5;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 1900;
  Database db = GenerateRandomDatabase(db_options);
  ConstraintSet constraints = {std::make_shared<InclusionDependency>(
      "R", 2, std::vector<std::size_t>{0}, "U", 1,
      std::vector<std::size_t>{0})};
  Query sigma = ConstraintSetQuery(constraints);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"U", 1}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 1;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 2000;
  Query query = GenerateRandomUcq(q_options);

  ConditionalMeasure exact = ComputeConditionalMu(query, sigma, db, Tuple{});
  for (std::size_t k = 6; k <= 8; ++k) {
    Rational at_k = ConditionalMuK(query, sigma, db, Tuple{}, k);
    // In the polynomial regime the finite-k ratio equals
    // numerator(k)/denominator(k).
    Rational denominator =
        exact.denominator.Evaluate(BigInt(static_cast<std::int64_t>(k)));
    if (denominator.is_zero()) {
      EXPECT_EQ(at_k, Rational(0));
      continue;
    }
    Rational expected =
        exact.numerator.Evaluate(BigInt(static_cast<std::int64_t>(k))) /
        denominator;
    EXPECT_EQ(at_k, expected) << "k=" << k << " " << query.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionalFiniteKAgreement,
                         ::testing::Range(0, 15));

// Theorem 5: FD chase shortcut equals the exact conditional measure.
class ChaseShortcut : public ::testing::TestWithParam<int> {};

TEST_P(ChaseShortcut, MatchesExactConditionalMu) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 4}};
  db_options.constant_pool = 3;
  db_options.null_pool = 3;
  db_options.null_probability = 0.5;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 2100;
  Database db = GenerateRandomDatabase(db_options);
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R", 2, {0}, 1)};
  ConstraintSet constraints = {
      std::make_shared<FunctionalDependency>(fds[0])};

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 2200;
  Query query = GenerateRandomFo(q_options, 0.3);

  int via_chase = ConditionalMuViaChase(query, fds, db, Tuple{});
  Rational exact = ConditionalMu(query, constraints, db);
  EXPECT_EQ(Rational(via_chase), exact)
      << query.ToString() << "\n" << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseShortcut, ::testing::Range(0, 25));

TEST(ChaseShortcutTest, FailedChaseMeansZero) {
  Database db = Db("R(2) = { (a, b), (a, c), (x, _cs1) }");
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R", 2, {0}, 1)};
  EXPECT_EQ(ConditionalMuViaChase(Q(":= exists x, y . R(x, y)"), fds, db,
                                  Tuple{}),
            0);
  // And the exact measure agrees: Σ unsatisfiable → 0 by convention.
  ConstraintSet constraints = {std::make_shared<FunctionalDependency>(
      "R", 2, std::vector<std::size_t>{0}, 1)};
  ConditionalMeasure exact = ComputeConditionalMu(
      Q(":= exists x, y . R(x, y)"), constraints, db, Tuple{});
  EXPECT_FALSE(exact.sigma_satisfiable);
  EXPECT_EQ(exact.value, Rational(0));
}

TEST(ChaseShortcutTest, TupleNullsMappedThroughChase) {
  // ⊥t1 is merged with the constant b by the chase; asking about (a,⊥t1)
  // under Σ is asking about (a,b) in the chased database.
  Database db = Db("R(2) = { (a, _t1), (a, b) }");
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R", 2, {0}, 1)};
  Query q = Q("Q(x, y) := R(x, y)");
  Tuple t{Value::Constant("a"), Value::Null("t1")};
  EXPECT_EQ(ConditionalMuViaChase(q, fds, db, t), 1);
  ConstraintSet constraints = {std::make_shared<FunctionalDependency>(
      "R", 2, std::vector<std::size_t>{0}, 1)};
  EXPECT_EQ(ConditionalMu(q, constraints, db, t), Rational(1));
}

}  // namespace
}  // namespace zeroone
