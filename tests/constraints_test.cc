#include <gtest/gtest.h>

#include "common/cancel.h"
#include "constraints/constraint.h"
#include "constraints/fd.h"
#include "constraints/ind.h"
#include "constraints/keys.h"
#include "data/io.h"
#include "data/valuation.h"
#include "gen/random_db.h"
#include "query/eval.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

TEST(FdTest, FormulaHoldsExactlyWhenFdHolds) {
  FunctionalDependency fd("R", 2, {0}, 1);
  Query sigma = ConstraintSetQuery({std::make_shared<FunctionalDependency>(fd)});
  EXPECT_TRUE(EvaluateMembership(sigma, Db("R(2) = { (a, b), (c, b) }"),
                                 Tuple{}));
  EXPECT_FALSE(EvaluateMembership(sigma, Db("R(2) = { (a, b), (a, c) }"),
                                  Tuple{}));
  // Vacuously true on empty and singleton relations.
  EXPECT_TRUE(EvaluateMembership(sigma, Db("R(2) = {}"), Tuple{}));
  EXPECT_TRUE(EvaluateMembership(sigma, Db("R(2) = { (a, b) }"), Tuple{}));
}

TEST(FdTest, CompositeLhsFormula)  {
  FunctionalDependency fd("T", 3, {0, 1}, 2);
  Query sigma = ConstraintSetQuery({std::make_shared<FunctionalDependency>(fd)});
  EXPECT_TRUE(EvaluateMembership(
      sigma, Db("T(3) = { (a, b, c), (a, x, d) }"), Tuple{}));
  EXPECT_FALSE(EvaluateMembership(
      sigma, Db("T(3) = { (a, b, c), (a, b, d) }"), Tuple{}));
}

TEST(ChaseTest, NullReplacedByConstant) {
  Database db = Db("R(2) = { (a, _h1), (a, b) }");
  ChaseResult result = ChaseFds({FunctionalDependency("R", 2, {0}, 1)}, db);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.database.relation("R").size(), 1u);
  EXPECT_TRUE(result.database.relation("R").Contains(
      Tuple{Value::Constant("a"), Value::Constant("b")}));
  EXPECT_EQ(result.null_mapping.at(Value::Null("h1")), Value::Constant("b"));
}

TEST(ChaseTest, NullsMerged) {
  Database db = Db("R(2) = { (a, _h2), (a, _h3) }");
  ChaseResult result = ChaseFds({FunctionalDependency("R", 2, {0}, 1)}, db);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.database.relation("R").size(), 1u);
  // Both nulls map to the same representative.
  EXPECT_EQ(result.null_mapping.at(Value::Null("h2")),
            result.null_mapping.at(Value::Null("h3")));
}

TEST(ChaseTest, FailureOnDistinctConstants) {
  Database db = Db("R(2) = { (a, b), (a, c) }");
  ChaseResult result = ChaseFds({FunctionalDependency("R", 2, {0}, 1)}, db);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(ChaseTest, ReplacementPropagatesAcrossRelations) {
  // ⊥p occurs in R and S; the chase on R must rewrite S too.
  Database db = Db("R(2) = { (a, _p), (a, b) }  S(1) = { (_p) }");
  ChaseResult result = ChaseFds({FunctionalDependency("R", 2, {0}, 1)}, db);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(result.database.relation("S").Contains(
      Tuple{Value::Constant("b")}));
}

TEST(ChaseTest, CascadingMerges) {
  // FD fires transitively: merging ⊥a with b makes a new violation.
  Database db = Db(
      "R(2) = { (x, _ca), (x, _cb) }"
      "S(2) = { (_ca, u), (_cb, v) }");
  ChaseResult result =
      ChaseFds({FunctionalDependency("R", 2, {0}, 1),
                FunctionalDependency("S", 2, {0}, 1)},
               db);
  // ⊥ca and ⊥cb merge, then S forces u = v → failure.
  EXPECT_FALSE(result.success);
}

TEST(ChaseTest, IntroExampleUnderCustomerDeterminesProduct) {
  // Section 1's closing point: with the FD customer → product, ⊥1 = ⊥2 for
  // c2's tuples, and chasing makes the two R1-tuples for c2 collapse.
  Database db = Db(
      "R1(2) = { (c1, _i1), (c2, _i1), (c2, _i2) }"
      "R2(2) = { (c1, _i2), (c2, _i1), (_i3, _i1) }");
  ChaseResult result =
      ChaseFds({FunctionalDependency("R1", 2, {0}, 1),
                FunctionalDependency("R2", 2, {0}, 1)},
               db);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.null_mapping.at(Value::Null("i1")),
            result.null_mapping.at(Value::Null("i2")));
  EXPECT_EQ(result.database.relation("R1").size(), 2u);
}

TEST(ChaseTest, CancellationReportsCancelledNotSuccess) {
  // A cancelled chase is abandoned mid-fixpoint, so its database may be
  // only partially repaired; it must come back as cancelled (and not as a
  // success) so callers never commit it.
  Database db = Db("R(2) = { (a, _h1), (a, b) }");
  CancelToken token;
  token.Cancel();
  ScopedCancelToken scoped(&token);
  ChaseResult result = ChaseFds({FunctionalDependency("R", 2, {0}, 1)}, db);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(ChaseTest, SatisfiedFdIsNoOp) {
  Database db = Db("R(2) = { (a, _n1), (b, _n2) }");
  ChaseResult result = ChaseFds({FunctionalDependency("R", 2, {0}, 1)}, db);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.database, db);
}

TEST(IndTest, FormulaSemantics) {
  InclusionDependency ind("R", 2, {0}, "U", 1, {0});
  Query sigma = ConstraintSetQuery({std::make_shared<InclusionDependency>(ind)});
  EXPECT_TRUE(EvaluateMembership(
      sigma, Db("R(2) = { (a, x) } U(1) = { (a), (b) }"), Tuple{}));
  EXPECT_FALSE(EvaluateMembership(
      sigma, Db("R(2) = { (c, x) } U(1) = { (a), (b) }"), Tuple{}));
  EXPECT_TRUE(EvaluateMembership(sigma, Db("R(2) = {} U(1) = {}"), Tuple{}));
}

TEST(IndTest, MultiPositionFormula) {
  InclusionDependency ind("R", 3, {2, 0}, "S", 2, {0, 1});
  Query sigma = ConstraintSetQuery({std::make_shared<InclusionDependency>(ind)});
  // π_{2,0}(R) ⊆ π_{0,1}(S): R has (a,b,c) → (c,a) must be in S.
  EXPECT_TRUE(EvaluateMembership(
      sigma, Db("R(3) = { (a, b, c) } S(2) = { (c, a) }"), Tuple{}));
  EXPECT_FALSE(EvaluateMembership(
      sigma, Db("R(3) = { (a, b, c) } S(2) = { (a, c) }"), Tuple{}));
}

TEST(KeysTest, NullInKeyColumnUnsatisfiable) {
  Database db = Db("R(2) = { (_k1, a) }");
  StatusOr<KeySatisfiability> result =
      CheckKeySatisfiability({{"R", 2, 0}}, {}, db);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfiable);
}

TEST(KeysTest, DuplicateKeyMergeableViaNulls) {
  // Two tuples share the key value a but can be merged by equating nulls.
  Database db = Db("R(2) = { (a, _k2), (a, _k3) }");
  StatusOr<KeySatisfiability> result =
      CheckKeySatisfiability({{"R", 2, 0}}, {}, db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfiable);
}

TEST(KeysTest, DuplicateKeyWithConflictingConstantsUnsatisfiable) {
  Database db = Db("R(2) = { (a, b), (a, c) }");
  StatusOr<KeySatisfiability> result =
      CheckKeySatisfiability({{"R", 2, 0}}, {}, db);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfiable);
}

TEST(KeysTest, ForeignKeyMustTargetKey) {
  Database db = Db("R(2) = { (a, b) } S(2) = { (b, c) }");
  EXPECT_FALSE(
      CheckKeySatisfiability({}, {{"R", 1, "S", 0}}, db).ok());
}

TEST(KeysTest, ForeignKeyNullIntersection) {
  // ⊥f must be in S[0] ∩ T[0] = {b}: satisfiable.
  Database db = Db(
      "R(2) = { (a, _f) }"
      "S(2) = { (b, x), (c, y) }"
      "T(2) = { (b, z) }");
  std::vector<UnaryKey> keys = {{"S", 2, 0}, {"T", 2, 0}};
  std::vector<UnaryForeignKey> fks = {{"R", 1, "S", 0}, {"R", 1, "T", 0}};
  StatusOr<KeySatisfiability> result = CheckKeySatisfiability(keys, fks, db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfiable);
  // Empty intersection: unsatisfiable.
  Database db2 = Db(
      "R(2) = { (a, _f2) }"
      "S(2) = { (b, x) }"
      "T(2) = { (c, z) }");
  StatusOr<KeySatisfiability> result2 = CheckKeySatisfiability(keys, fks, db2);
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(result2->satisfiable);
}

TEST(KeysTest, ForeignKeyConstantMissingUnsatisfiable) {
  Database db = Db("R(2) = { (a, q) } S(2) = { (b, x) }");
  StatusOr<KeySatisfiability> result = CheckKeySatisfiability(
      {{"S", 2, 0}}, {{"R", 1, "S", 0}}, db);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfiable);
}

// Property sweep: the polynomial satisfiability test agrees with explicit
// search over valuations into Const(D) ∪ {fresh per null}.
class KeySatisfiabilityAgreement : public ::testing::TestWithParam<int> {};

TEST_P(KeySatisfiabilityAgreement, MatchesBruteForce) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, 3}, {"S", 2, 3}};
  options.constant_pool = 3;
  options.null_pool = 2;
  options.null_probability = 0.4;
  options.seed = static_cast<std::uint64_t>(GetParam()) + 3000;
  Database db = GenerateRandomDatabase(options);
  std::vector<UnaryKey> keys = {{"S", 2, 0}};
  std::vector<UnaryForeignKey> fks = {{"R", 1, "S", 0}};

  StatusOr<KeySatisfiability> fast = CheckKeySatisfiability(keys, fks, db);
  ASSERT_TRUE(fast.ok());

  // Brute force over the bounded valuation space. The RDBMS reading bans
  // nulls in key columns of D itself, so that is checked first.
  bool null_in_key_column = false;
  for (const UnaryKey& key : keys) {
    for (Relation::Row t : db.relation(key.relation)) {
      null_in_key_column = null_in_key_column || t[key.position].is_null();
    }
  }
  std::vector<Value> nulls = db.Nulls();
  std::vector<Value> domain = MakeConstantEnumeration(
      db.Constants(), db.Constants().size() + nulls.size());
  bool brute = !null_in_key_column &&
               !ForEachValuationUntil(
                   nulls, domain, [&](const Valuation& v) {
                     return !KeysHold(keys, fks, v.Apply(db));
                   });
  EXPECT_EQ(fast->satisfiable, brute)
      << db.ToString() << "\nreason: " << fast->reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeySatisfiabilityAgreement,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace zeroone
