#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "data/io.h"
#include "datalog/eval.h"
#include "datalog/measure.h"
#include "datalog/parser.h"
#include "gen/random_db.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

DatalogProgram Prog(const char* text) {
  StatusOr<DatalogProgram> program = ParseDatalogProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().message();
  return std::move(program).value();
}

constexpr const char* kTransitiveClosure = R"(
  T(X, Y) :- E(X, Y).
  T(X, Z) :- E(X, Y), T(Y, Z).
  ?- T
)";

TEST(DatalogParserTest, ParsesAndPrints) {
  DatalogProgram program = Prog(kTransitiveClosure);
  EXPECT_EQ(program.rules().size(), 2u);
  EXPECT_EQ(program.goal_predicate(), "T");
  EXPECT_EQ(program.goal_arity(), 2u);
  EXPECT_TRUE(program.IsIntensional("T"));
  EXPECT_FALSE(program.IsIntensional("E"));
}

TEST(DatalogParserTest, CaseConvention) {
  DatalogProgram program = Prog("P(X, a) :- E(X, a), E(X, 'b c').\n?- P");
  const DatalogRule& rule = program.rules()[0];
  EXPECT_TRUE(rule.head.terms[0].is_variable());
  EXPECT_TRUE(rule.head.terms[1].is_value());
  EXPECT_EQ(program.MentionedConstants().size(), 2u);  // a and 'b c'.
}

TEST(DatalogParserTest, Errors) {
  EXPECT_FALSE(ParseDatalogProgram("T(X) :- E(X)").ok());       // No '.'.
  EXPECT_FALSE(ParseDatalogProgram("T(X) :- E(X).").ok());      // No goal.
  EXPECT_FALSE(ParseDatalogProgram("?- T").ok());               // Unknown goal.
  EXPECT_FALSE(
      ParseDatalogProgram("T(X) :- E(X). T(X, Y) :- E(X). ?- T").ok());
  // Unsafe: head variable not positively bound.
  EXPECT_FALSE(ParseDatalogProgram("T(X, Y) :- E(X). ?- T").ok());
  // Unsafe negated variable.
  EXPECT_FALSE(ParseDatalogProgram("T(X) :- E(X), !F(Y). ?- T").ok());
  // Not stratifiable.
  EXPECT_FALSE(
      ParseDatalogProgram("P(X) :- E(X), !Q(X). Q(X) :- E(X), !P(X). ?- P")
          .ok());
}

TEST(DatalogEvalTest, TransitiveClosureOfAPath) {
  Database db = Db("E(2) = { (a, b), (b, c), (c, d) }");
  DatalogProgram program = Prog(kTransitiveClosure);
  std::vector<Tuple> closure = EvaluateDatalog(program, db);
  EXPECT_EQ(closure.size(), 6u);  // All ordered pairs along the path.
  EXPECT_TRUE(DatalogMembership(program, db,
                                Tuple{Value::Constant("a"),
                                      Value::Constant("d")}));
  EXPECT_FALSE(DatalogMembership(program, db,
                                 Tuple{Value::Constant("d"),
                                       Value::Constant("a")}));
}

TEST(DatalogEvalTest, CycleClosesCompletely) {
  Database db = Db("E(2) = { (a, b), (b, c), (c, a) }");
  std::vector<Tuple> closure =
      EvaluateDatalog(Prog(kTransitiveClosure), db);
  EXPECT_EQ(closure.size(), 9u);  // Every pair, including self-loops.
}

TEST(DatalogEvalTest, MatchesWarshallOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    RandomDatabaseOptions options;
    options.relations = {{"E", 2, 10}};
    options.constant_pool = 6;
    options.null_pool = 0;
    options.null_probability = 0.0;
    options.seed = seed + 60000;
    Database db = GenerateRandomDatabase(options);
    std::vector<Tuple> datalog =
        EvaluateDatalog(Prog(kTransitiveClosure), db);
    // Reference: iterate pair composition to fixpoint.
    std::set<Tuple> reference;
    for (Relation::Row t : db.relation("E")) reference.insert(t.ToTuple());
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<Tuple> snapshot(reference.begin(), reference.end());
      for (const Tuple& p : snapshot) {
        for (const Tuple& q : snapshot) {
          if (p[1] == q[0] &&
              reference.insert(Tuple{p[0], q[1]}).second) {
            changed = true;
          }
        }
      }
    }
    EXPECT_EQ(datalog,
              std::vector<Tuple>(reference.begin(), reference.end()))
        << db.ToString();
  }
}

TEST(DatalogEvalTest, StratifiedNegation) {
  // Unreachable(X) — nodes with no path from a.
  Database db = Db("E(2) = { (a, b), (b, c), (d, a) }  V(1) = { (a), (b), (c), (d) }");
  DatalogProgram program = Prog(R"(
    Reach(X) :- E(a, X).
    Reach(Y) :- Reach(X), E(X, Y).
    Unreachable(X) :- V(X), !Reach(X).
    ?- Unreachable
  )");
  std::vector<Tuple> result = EvaluateDatalog(program, db);
  ASSERT_EQ(result.size(), 2u);  // a itself and d.
  EXPECT_TRUE(std::count(result.begin(), result.end(),
                         Tuple{Value::Constant("a")}));
  EXPECT_TRUE(std::count(result.begin(), result.end(),
                         Tuple{Value::Constant("d")}));
}

TEST(DatalogEvalTest, MultipleStrataChain) {
  Database db = Db("E(2) = { (a, b) }  V(1) = { (a), (b), (c) }");
  DatalogProgram program = Prog(R"(
    Src(X)  :- E(X, Y).
    Dst(Y)  :- E(X, Y).
    Iso(X)  :- V(X), !Src(X), !Dst(X).
    Pair(X, Y) :- Iso(X), Iso(Y).
    ?- Pair
  )");
  std::vector<Tuple> result = EvaluateDatalog(program, db);
  ASSERT_EQ(result.size(), 1u);  // Only c is isolated.
  EXPECT_EQ(result[0], (Tuple{Value::Constant("c"), Value::Constant("c")}));
}

TEST(DatalogEvalTest, NaiveSemanticsOnNulls) {
  // Nulls are fresh constants: the closure threads through a shared null
  // but two distinct nulls do not meet.
  Database db = Db("E(2) = { (a, _dl1), (_dl1, b), (_dl2, c) }");
  DatalogProgram program = Prog(kTransitiveClosure);
  EXPECT_TRUE(DatalogMembership(
      program, db, Tuple{Value::Constant("a"), Value::Constant("b")}));
  EXPECT_FALSE(DatalogMembership(
      program, db, Tuple{Value::Constant("a"), Value::Constant("c")}));
}

TEST(DatalogMeasureTest, ZeroOneLawBeyondFo) {
  // Reachability is not FO-expressible; the 0–1 law still holds: µ computed
  // from the definition is 0/1 and matches naive datalog evaluation.
  Database db = Db("E(2) = { (a, _dm1), (_dm2, b), (_dm1, _dm3) }");
  DatalogProgram program = Prog(kTransitiveClosure);
  for (Value x : db.ActiveDomain()) {
    for (Value y : db.ActiveDomain()) {
      Tuple t{x, y};
      Rational mu = DatalogMuViaPolynomial(program, db, t);
      EXPECT_TRUE(mu == Rational(0) || mu == Rational(1))
          << t.ToString() << " got " << mu.ToString();
      EXPECT_EQ(mu == Rational(1), DatalogMuLimit(program, db, t) == 1)
          << t.ToString();
    }
  }
}

TEST(DatalogMeasureTest, MuKConvergesForLikelyPath) {
  // (a → ⊥1), (⊥2 → b): a reaches b iff v(⊥1) = v(⊥2) — probability 1/k —
  // or v hits other coincidences; the exact µ^k must match the closed form
  // for this two-null instance: the pair is connected iff v(⊥1) = v(⊥2),
  // or v(⊥1) = b, or v(⊥2) = a (overlaps included).
  Database db = Db("E(2) = { (a, _dk1), (_dk2, b) }");
  DatalogProgram program = Prog(kTransitiveClosure);
  Tuple ab{Value::Constant("a"), Value::Constant("b")};
  for (std::size_t k : {3u, 5u, 8u}) {
    std::int64_t ki = static_cast<std::int64_t>(k);
    // |Supp| by inclusion-exclusion: |{v1=v2}| + |{v1=b}| + |{v2=a}| −
    // pairwise overlaps (1 each) + triple (empty, since a ≠ b)
    // = 3k − 3.
    EXPECT_EQ(DatalogMuK(program, db, ab, k),
              Rational(3 * ki - 3, ki * ki))
        << k;
  }
  EXPECT_EQ(DatalogMuLimit(program, db, ab), 0);
  EXPECT_EQ(DatalogMuViaPolynomial(program, db, ab), Rational(0));
}

TEST(DatalogMeasureTest, AlmostCertainReachability) {
  // a → ⊥ → b is a real path for every valuation: µ = 1 and in fact
  // certain; with a detour through two distinct nulls it is still almost
  // certain but fails when the nulls collide with constants.
  Database db = Db("E(2) = { (a, _dc1), (_dc1, b) }");
  DatalogProgram program = Prog(kTransitiveClosure);
  Tuple ab{Value::Constant("a"), Value::Constant("b")};
  EXPECT_EQ(DatalogMuViaPolynomial(program, db, ab), Rational(1));
  EXPECT_EQ(DatalogMuK(program, db, ab, 7), Rational(1));
}

TEST(DatalogEvalTest, SameGeneration) {
  // Same-generation: the textbook recursive query that joins two recursive
  // calls per rule — exercises multi-delta semi-naive rounds.
  Database db = Db(
      "Par(2) = { (a, c1), (b, c1), (a2, c2), (b2, c2), (c1, d), (c2, d) }");
  DatalogProgram program = Prog(R"(
    Sg(X, X) :- Par(X, Y).
    Sg(X, X) :- Par(Y, X).
    Sg(X, Y) :- Par(X, Xp), Sg(Xp, Yp), Par(Y, Yp).
    ?- Sg
  )");
  std::vector<Tuple> result = EvaluateDatalog(program, db);
  // a and b share parent c1 → same generation; a and a2 are cousins via
  // grandparent d → same generation too.
  EXPECT_TRUE(DatalogMembership(program, db,
                                Tuple{Value::Constant("a"),
                                      Value::Constant("b")}));
  EXPECT_TRUE(DatalogMembership(program, db,
                                Tuple{Value::Constant("a"),
                                      Value::Constant("a2")}));
  EXPECT_FALSE(DatalogMembership(program, db,
                                 Tuple{Value::Constant("a"),
                                       Value::Constant("c1")}));
  EXPECT_FALSE(result.empty());
}

TEST(DatalogEvalTest, ZeroAryPredicates) {
  Database db = Db("E(2) = { (a, b) }");
  DatalogProgram program = Prog(R"(
    Nonempty() :- E(X, Y).
    Flag(X) :- E(X, Y), Nonempty().
    ?- Flag
  )");
  std::vector<Tuple> result = EvaluateDatalog(program, db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], Tuple{Value::Constant("a")});
}

TEST(DatalogEvalTest, ConstantsInRules) {
  Database db = Db("E(2) = { (a, b), (b, c), (x, a) }");
  DatalogProgram program = Prog(R"(
    FromA(Y) :- E(a, Y).
    FromA(Z) :- FromA(Y), E(Y, Z).
    ?- FromA
  )");
  std::vector<Tuple> result = EvaluateDatalog(program, db);
  EXPECT_EQ(result.size(), 2u);  // b and c; not a itself.
}

}  // namespace
}  // namespace zeroone
