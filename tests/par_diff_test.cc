// Differential conformance battery for morsel-driven parallelism: every
// computation retargeted onto the work-stealing pool must return
// byte-identical results at every team width. For each seed, the same
// randomly generated databases, queries, and programs are evaluated at
// 1 (the ZEROONE_PAR=off reference behavior), 2, and 8 threads and the
// results compared:
//
//  - FO evaluation (EvaluateQuery): identical answer vectors, order
//    included — per-morsel answer slots concatenate in morsel-index order,
//    which is domain order.
//  - µ^k measures: MuKParallel at every width equals serial MuK exactly
//    (the sharded counter sums per-morsel partials in morsel order).
//  - Certain / possible answers: identical verdicts.
//  - Homomorphism and cores: literally identical results, not just
//    equivalent ones — the minimal-stop-index protocol makes the parallel
//    root sweep reproduce the serial first match.
//  - Datalog fixpoints: identical materialized databases (per-morsel
//    derived sets union into one set; unions are order-free).
//  - FD chase: identical outcomes.
//
// Each comparison is additionally cross-checked against the other two
// execution-mode axes (ZEROONE_STORAGE, ZEROONE_PLAN): parallel+indexed+
// compiled must equal serial+scan+interpret, so the three mode switches
// compose without drift. Three seeds run in CI; the TSan job re-runs this
// whole binary to hunt data races in the pool integrations.

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "constraints/fd.h"
#include "core/measure.h"
#include "core/support.h"
#include "data/database.h"
#include "data/homomorphism.h"
#include "data/relation.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "par/pool.h"
#include "plan/mode.h"
#include "query/eval.h"

namespace zeroone {
namespace {

// Runs `body` under the given team width, restoring the previous budget.
template <typename Fn>
auto WithThreads(std::size_t threads, Fn&& body) {
  std::size_t previous = par::par_threads();
  par::SetParThreads(threads);
  auto result = body();
  par::SetParThreads(previous);
  return result;
}

template <typename Fn>
auto WithPlanMode(plan::PlanMode mode, Fn&& body) {
  plan::PlanMode previous = plan::plan_mode();
  plan::SetPlanMode(mode);
  auto result = body();
  plan::SetPlanMode(previous);
  return result;
}

template <typename Fn>
auto WithStorageMode(StorageMode mode, Fn&& body) {
  StorageMode previous = storage_mode();
  SetStorageMode(mode);
  auto result = body();
  SetStorageMode(previous);
  return result;
}

constexpr std::size_t kWidths[] = {2, 8};

Database SmallDb(std::uint64_t seed) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, 6}, {"S", 1, 3}};
  options.constant_pool = 4;
  options.null_pool = 2;
  options.null_probability = 0.3;
  options.seed = seed;
  return GenerateRandomDatabase(options);
}

class ParDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParDiffTest, QueryEvaluationIsIdenticalAtEveryWidth) {
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  for (int variant = 0; variant < 4; ++variant) {
    q_options.seed = seed * 97 + static_cast<std::uint64_t>(variant);
    Query fo = GenerateRandomFo(q_options, /*negation_probability=*/0.3);
    auto serial = WithThreads(1, [&] { return EvaluateQuery(fo, db); });
    for (std::size_t width : kWidths) {
      auto parallel =
          WithThreads(width, [&] { return EvaluateQuery(fo, db); });
      EXPECT_EQ(serial, parallel) << "seed " << seed << " variant " << variant
                                  << " width " << width << ": "
                                  << fo.ToString();
    }
    // Both plan modes must agree under parallelism: the interpreter's
    // outer valuation loop and the VM's sliced kLoopDomain/kLoopCand are
    // independently morselized.
    auto interpreted = WithThreads(8, [&] {
      return WithPlanMode(plan::PlanMode::kInterpret,
                          [&] { return EvaluateQuery(fo, db); });
    });
    auto compiled = WithThreads(8, [&] {
      return WithPlanMode(plan::PlanMode::kCompiled,
                          [&] { return EvaluateQuery(fo, db); });
    });
    EXPECT_EQ(serial, interpreted) << fo.ToString();
    EXPECT_EQ(serial, compiled) << fo.ToString();
  }
}

TEST_P(ParDiffTest, MuMeasuresAreIdenticalAtEveryWidth) {
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  int measured = 0;
  for (int variant = 0; variant < 4; ++variant) {
    q_options.seed = seed * 131 + static_cast<std::uint64_t>(variant);
    Query fo = GenerateRandomFo(q_options, /*negation_probability=*/0.2);
    std::vector<Tuple> answers = NaiveEvaluate(fo, db);
    std::size_t limit = answers.size() < 3 ? answers.size() : 3;
    for (std::size_t i = 0; i < limit; ++i) {
      Rational serial = MuK(fo, db, answers[i], /*k=*/8);
      for (std::size_t width : kWidths) {
        EXPECT_EQ(serial, MuKParallel(fo, db, answers[i], /*k=*/8, width))
            << fo.ToString() << " @ " << answers[i].ToString() << " width "
            << width;
      }
      ++measured;
    }
  }
  EXPECT_GT(measured, 0) << "seed " << seed
                         << ": no query variant produced answers";
}

TEST_P(ParDiffTest, CertainAndPossibleVerdictsAreIdenticalAtEveryWidth) {
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.seed = seed + 17;
  Query ucq = GenerateRandomUcq(q_options);
  auto certain_serial = WithThreads(1, [&] { return CertainAnswers(ucq, db); });
  for (std::size_t width : kWidths) {
    EXPECT_EQ(certain_serial,
              WithThreads(width, [&] { return CertainAnswers(ucq, db); }))
        << ucq.ToString() << " width " << width;
  }
  for (const Tuple& candidate : NaiveEvaluate(ucq, db)) {
    bool serial =
        WithThreads(1, [&] { return IsPossibleAnswer(ucq, db, candidate); });
    for (std::size_t width : kWidths) {
      EXPECT_EQ(serial, WithThreads(width, [&] {
                  return IsPossibleAnswer(ucq, db, candidate);
                }))
          << candidate.ToString() << " width " << width;
    }
  }
}

TEST_P(ParDiffTest, HomomorphismAndCoreAreLiterallyIdenticalAtEveryWidth) {
  const std::uint64_t seed = GetParam();
  Database a = SmallDb(seed);
  Database b = SmallDb(seed + 1000);
  // The minimal-stop-index protocol promises the parallel sweep returns the
  // serial first match itself — compare mappings, not just existence.
  auto serial_ab = WithThreads(1, [&] { return FindHomomorphism(a, b); });
  auto serial_ba = WithThreads(1, [&] { return FindHomomorphism(b, a); });
  Database serial_core = WithThreads(1, [&] { return ComputeCore(a); });
  for (std::size_t width : kWidths) {
    EXPECT_EQ(serial_ab,
              WithThreads(width, [&] { return FindHomomorphism(a, b); }))
        << "width " << width;
    EXPECT_EQ(serial_ba,
              WithThreads(width, [&] { return FindHomomorphism(b, a); }))
        << "width " << width;
    EXPECT_EQ(serial_core, WithThreads(width, [&] { return ComputeCore(a); }))
        << "width " << width;
  }
}

TEST_P(ParDiffTest, DatalogFixpointsAreIdenticalAtEveryWidth) {
  const std::uint64_t seed = GetParam();
  RandomDatabaseOptions options;
  options.relations = {{"E", 2, 8}};
  options.constant_pool = 5;
  options.null_pool = 2;
  options.null_probability = 0.25;
  options.seed = seed + 31;
  Database db = GenerateRandomDatabase(options);
  StatusOr<DatalogProgram> program = ParseDatalogProgram(R"(
    T(X, Y) :- E(X, Y).
    T(X, Z) :- E(X, Y), T(Y, Z).
    ?- T
  )");
  ASSERT_TRUE(program.ok()) << program.status().message();
  Database serial =
      WithThreads(1, [&] { return MaterializeDatalog(*program, db); });
  for (std::size_t width : kWidths) {
    EXPECT_EQ(serial, WithThreads(width, [&] {
                return MaterializeDatalog(*program, db);
              }))
        << "width " << width;
    EXPECT_EQ(
        WithThreads(1, [&] { return EvaluateDatalog(*program, db); }),
        WithThreads(width, [&] { return EvaluateDatalog(*program, db); }))
        << "width " << width;
  }
}

TEST_P(ParDiffTest, ChaseOutcomesAreIdenticalAtEveryWidth) {
  const std::uint64_t seed = GetParam();
  RandomDatabaseOptions options;
  options.relations = {{"R", 3, 8}};
  options.constant_pool = 3;
  options.null_pool = 3;
  options.null_probability = 0.4;
  options.seed = seed + 59;
  Database db = GenerateRandomDatabase(options);
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R", 3, {0}, 1),
      FunctionalDependency("R", 3, {1, 2}, 0),
  };
  ChaseResult serial = WithThreads(1, [&] { return ChaseFds(fds, db); });
  for (std::size_t width : kWidths) {
    ChaseResult parallel = WithThreads(width, [&] { return ChaseFds(fds, db); });
    EXPECT_EQ(serial.success, parallel.success) << "width " << width;
    EXPECT_EQ(serial.failure_reason, parallel.failure_reason);
    EXPECT_EQ(serial.null_mapping, parallel.null_mapping);
    if (serial.success && parallel.success) {
      EXPECT_EQ(serial.database, parallel.database);
    }
  }
}

TEST_P(ParDiffTest, AllThreeModeAxesComposeWithoutDrift) {
  // Reference corner: serial + scan storage + interpreted plans. Production
  // corner: 8-wide teams + indexed storage + compiled plans. Every pair of
  // corners along the cube must agree; comparing the two extremes covers
  // the composition the other diff batteries check axis-by-axis.
  const std::uint64_t seed = GetParam();
  Database db = SmallDb(seed);
  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}, {"S", 1}};
  q_options.seed = seed + 71;
  Query ucq = GenerateRandomUcq(q_options);
  auto reference = WithThreads(1, [&] {
    return WithStorageMode(StorageMode::kScan, [&] {
      return WithPlanMode(plan::PlanMode::kInterpret, [&] {
        return std::make_pair(EvaluateQuery(ucq, db), CertainAnswers(ucq, db));
      });
    });
  });
  auto production = WithThreads(8, [&] {
    return WithStorageMode(StorageMode::kIndexed, [&] {
      return WithPlanMode(plan::PlanMode::kCompiled, [&] {
        return std::make_pair(EvaluateQuery(ucq, db), CertainAnswers(ucq, db));
      });
    });
  });
  EXPECT_EQ(reference.first, production.first) << ucq.ToString();
  EXPECT_EQ(reference.second, production.second) << ucq.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParDiffTest,
                         ::testing::Values(7u, 1234u, 98765u));

}  // namespace
}  // namespace zeroone
