#include "core/preference.h"

#include <gtest/gtest.h>

#include "core/measure.h"
#include "core/support.h"
#include "data/io.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/parser.h"

namespace zeroone {
namespace {

Database Db(const char* text) {
  StatusOr<Database> db = ParseDatabase(text);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return std::move(db).value();
}

Query Q(const char* text) {
  StatusOr<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return std::move(q).value();
}

TEST(PreferenceTest, EmptyTablesDegenerateToZeroOneLaw) {
  Database db = Db("R(2) = { (a, _pf1), (_pf2, b) }");
  Query q = Q(":= exists x . R(a, x)");
  StatusOr<Rational> mu = PreferenceMuLimit(q, db, Tuple{}, {});
  ASSERT_TRUE(mu.ok());
  EXPECT_EQ(*mu, Rational(MuLimit(q, db)));
}

TEST(PreferenceTest, SingleNullPointMass) {
  // ⊥ is b with probability 1: the query R(a,b) holds with probability 1,
  // R(a,c) with probability 0.
  Database db = Db("R(2) = { (a, _pm1) }");
  std::vector<NullPreference> prefs = {
      {Value::Null("pm1"), {{Value::Constant("b"), Rational(1)}}}};
  StatusOr<Rational> is_b = PreferenceMuLimit(Q(":= R(a, b)"), db, Tuple{},
                                              prefs);
  ASSERT_TRUE(is_b.ok());
  EXPECT_EQ(*is_b, Rational(1));
  StatusOr<Rational> is_c = PreferenceMuLimit(Q(":= R(a, c)"), db, Tuple{},
                                              prefs);
  ASSERT_TRUE(is_c.ok());
  EXPECT_EQ(*is_c, Rational(0));
}

TEST(PreferenceTest, PartialMassSplitsBetweenBranches) {
  // ⊥ = b with probability 1/3; otherwise generic (almost surely ≠ b).
  Database db = Db("R(2) = { (a, _ps1) }");
  std::vector<NullPreference> prefs = {
      {Value::Null("ps1"), {{Value::Constant("b"), Rational(1, 3)}}}};
  StatusOr<Rational> is_b =
      PreferenceMuLimit(Q(":= R(a, b)"), db, Tuple{}, prefs);
  ASSERT_TRUE(is_b.ok());
  EXPECT_EQ(*is_b, Rational(1, 3));
  StatusOr<Rational> not_b = PreferenceMuLimit(
      Q(":= exists x . R(a, x) & x != b"), db, Tuple{}, prefs);
  ASSERT_TRUE(not_b.ok());
  EXPECT_EQ(*not_b, Rational(2, 3));
}

TEST(PreferenceTest, SoftInclusionConstraintMirrorsSection4Example) {
  // The Section 4 example's hard IND pinned ⊥ to {1,2,3} and gave
  // conditional measures 1/3 and 2/3. A uniform preference table over
  // {1,2,3} reproduces them as *weighted* measures — preferences are the
  // soft version of the constraint.
  Database db = Db("R(2) = { (2, 1), (_sp1, _sp1) }  U(1) = { (1), (2), (3) }");
  Query q = Q("Q(x, y) := R(x, y)");
  std::vector<NullPreference> prefs = {
      {Value::Null("sp1"),
       {{Value::Constant("1"), Rational(1, 3)},
        {Value::Constant("2"), Rational(1, 3)},
        {Value::Constant("3"), Rational(1, 3)}}}};
  StatusOr<Rational> mu_a = PreferenceMuLimit(
      q, db, Tuple{Value::Constant("1"), Value::Null("sp1")}, prefs);
  ASSERT_TRUE(mu_a.ok());
  EXPECT_EQ(*mu_a, Rational(1, 3));
  StatusOr<Rational> mu_b = PreferenceMuLimit(
      q, db, Tuple{Value::Constant("2"), Value::Null("sp1")}, prefs);
  ASSERT_TRUE(mu_b.ok());
  EXPECT_EQ(*mu_b, Rational(2, 3));
}

TEST(PreferenceTest, CorrelatedNullsMultiplyWeights) {
  // Two independent nulls each b with probability 1/2: R(b,b) has
  // probability 1/4.
  Database db = Db("R(2) = { (_cw1, _cw2) }");
  std::vector<NullPreference> prefs = {
      {Value::Null("cw1"), {{Value::Constant("b"), Rational(1, 2)}}},
      {Value::Null("cw2"), {{Value::Constant("b"), Rational(1, 2)}}}};
  StatusOr<Rational> mu =
      PreferenceMuLimit(Q(":= R(b, b)"), db, Tuple{}, prefs);
  ASSERT_TRUE(mu.ok());
  EXPECT_EQ(*mu, Rational(1, 4));
  // The same null twice is perfectly correlated: S(⊥,⊥) always matches
  // S(x,x); asking for S(b,b) costs only one factor of 1/2.
  Database db2 = Db("S(2) = { (_cw3, _cw3) }");
  std::vector<NullPreference> prefs2 = {
      {Value::Null("cw3"), {{Value::Constant("b"), Rational(1, 2)}}}};
  StatusOr<Rational> mu2 =
      PreferenceMuLimit(Q(":= S(b, b)"), db2, Tuple{}, prefs2);
  ASSERT_TRUE(mu2.ok());
  EXPECT_EQ(*mu2, Rational(1, 2));
}

TEST(PreferenceTest, ValidationErrors) {
  Database db = Db("R(1) = { (_ve1) }");
  Query q = Q(":= exists x . R(x)");
  // Mass over 1.
  EXPECT_FALSE(PreferenceMuLimit(
                   q, db, Tuple{},
                   {{Value::Null("ve1"),
                     {{Value::Constant("a"), Rational(2, 3)},
                      {Value::Constant("b"), Rational(1, 2)}}}})
                   .ok());
  // Duplicate constant.
  EXPECT_FALSE(PreferenceMuLimit(
                   q, db, Tuple{},
                   {{Value::Null("ve1"),
                     {{Value::Constant("a"), Rational(1, 4)},
                      {Value::Constant("a"), Rational(1, 4)}}}})
                   .ok());
  // Non-null key.
  EXPECT_FALSE(PreferenceMuLimit(q, db, Tuple{},
                                 {{Value::Constant("a"), {}}})
                   .ok());
  // Duplicate table.
  EXPECT_FALSE(PreferenceMuLimit(q, db, Tuple{},
                                 {{Value::Null("ve1"), {}},
                                  {Value::Null("ve1"), {}}})
                   .ok());
}

// The finite-k weighted measure converges to the closed-form limit.
class PreferenceConvergence : public ::testing::TestWithParam<int> {};

TEST_P(PreferenceConvergence, FiniteKApproachesLimit) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 3}};
  db_options.constant_pool = 3;
  db_options.null_pool = 2;
  db_options.null_probability = 0.5;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 30000;
  Database db = GenerateRandomDatabase(db_options);
  if (db.Nulls().empty()) GTEST_SKIP();

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 2;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 30100;
  Query query = GenerateRandomFo(q_options, 0.3);

  std::vector<NullPreference> prefs = {
      {db.Nulls()[0],
       {{Value::Constant("c0"), Rational(1, 2)},
        {Value::Constant("c1"), Rational(1, 4)}}}};

  StatusOr<Rational> limit = PreferenceMuLimit(query, db, Tuple{}, prefs);
  ASSERT_TRUE(limit.ok());
  // |pref-µ^k − limit| shrinks with k (collision terms are O(1/k)).
  StatusOr<Rational> at8 = PreferenceMuK(query, db, Tuple{}, prefs, 8);
  StatusOr<Rational> at16 = PreferenceMuK(query, db, Tuple{}, prefs, 16);
  ASSERT_TRUE(at8.ok() && at16.ok());
  auto gap = [&](const Rational& x) {
    Rational d = x - *limit;
    return d.sign() < 0 ? -d : d;
  };
  EXPECT_LE(gap(*at16), gap(*at8))
      << query.ToString() << "\n" << db.ToString();
  // And the gap at k=16 is already small.
  EXPECT_LT(gap(*at16), Rational(1, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreferenceConvergence, ::testing::Range(0, 20));

// With empty preferences, the finite-k weighted measure *equals* µ^k.
class PreferenceUniformAgreement : public ::testing::TestWithParam<int> {};

TEST_P(PreferenceUniformAgreement, MatchesMuK) {
  RandomDatabaseOptions db_options;
  db_options.relations = {{"R", 2, 3}};
  db_options.constant_pool = 2;
  db_options.null_pool = 2;
  db_options.null_probability = 0.5;
  db_options.seed = static_cast<std::uint64_t>(GetParam()) + 31000;
  Database db = GenerateRandomDatabase(db_options);

  RandomQueryOptions q_options;
  q_options.relations = {{"R", 2}};
  q_options.free_variables = 0;
  q_options.existential_variables = 2;
  q_options.clauses = 1;
  q_options.atoms_per_clause = 2;
  q_options.seed = static_cast<std::uint64_t>(GetParam()) + 31100;
  Query query = GenerateRandomFo(q_options, 0.3);

  for (std::size_t k = 5; k <= 7; ++k) {
    StatusOr<Rational> weighted =
        PreferenceMuK(query, db, Tuple{}, {}, k);
    ASSERT_TRUE(weighted.ok());
    EXPECT_EQ(*weighted, MuK(query, db, k)) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreferenceUniformAgreement,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace zeroone
