// Experiment E10 (Theorems 6 and 7, hardness shape).
//
// Paper claims: for FO queries, ⊴-Comparison is coNP-complete,
// ◁-Comparison DP-complete, and BestAnswer P^NP[log n]-complete. One cannot
// run a completeness proof, but its observable consequence is measurable:
// the generic algorithms search a valuation space of size (a+m)^m — the
// cost explodes with the number of nulls m, the hardness parameter.
//
// Measured: wall-clock of Sep and Best on a fixed FO query as the number
// of nulls grows, with the database size otherwise constant.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/comparison.h"
#include "data/io.h"
#include "query/parser.h"

using namespace zeroone;

namespace {

// R(2) with `nulls` distinct nulls spread over rows plus constant rows; the
// difference query forces the search to consider null interactions.
Database MakeDb(std::size_t nulls) {
  Database db;
  Relation& r = db.AddRelation("R", 2);
  Relation& s = db.AddRelation("S", 2);
  for (std::size_t i = 0; i < nulls; ++i) {
    Value null = Value::Null("fo" + std::to_string(i));
    r.Insert({Value::Int(static_cast<std::int64_t>(i)), null});
    if (i % 2 == 0) {
      s.Insert({null, Value::Int(static_cast<std::int64_t>(i))});
    }
  }
  r.Insert({Value::Constant("a"), Value::Constant("b")});
  return db;
}

void BM_SeparatesFo(benchmark::State& state) {
  std::size_t nulls = static_cast<std::size_t>(state.range(0));
  Database db = MakeDb(nulls);
  Query q = ParseQuery("Q(x, y) := R(x, y) & !S(y, x)").value();
  Tuple a{Value::Int(0), Value::Null("fo0")};
  Tuple b{Value::Constant("a"), Value::Constant("b")};
  for (auto _ : state) {
    bool sep = Separates(q, db, a, b);
    benchmark::DoNotOptimize(sep);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(nulls));
}
BENCHMARK(BM_SeparatesFo)->DenseRange(1, 5)->Complexity();

void BM_BestAnswersFo(benchmark::State& state) {
  std::size_t nulls = static_cast<std::size_t>(state.range(0));
  Database db = MakeDb(nulls);
  Query q = ParseQuery("Q(x, y) := R(x, y) & !S(y, x)").value();
  // Candidate set restricted to the relation's tuples to isolate the
  // valuation-space explosion from the candidate-space growth.
  std::vector<Tuple> candidates = db.relation("R").Tuples();
  for (auto _ : state) {
    std::vector<Tuple> best = BestAnswersAmong(q, db, candidates);
    benchmark::DoNotOptimize(best.size());
  }
}
BENCHMARK(BM_BestAnswersFo)->DenseRange(1, 5);

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("comparison_fo");
  std::printf("E10: FO comparison hardness shape (Thms 6, 7)\n");
  std::printf("----------------------------------------------\n");
  std::printf("(claim shape: time grows exponentially in the number of "
              "nulls m — the bounded valuation space has (a+m)^m points; "
              "watch the per-null blowup below)\n\n");
  // Sanity anchor for the timing curves: the comparison primitives answer
  // consistently on the smallest instance.
  {
    Database db = MakeDb(2);
    Query q = ParseQuery("Q(x, y) := R(x, y) & !S(y, x)").value();
    Tuple a{Value::Int(0), Value::Null("fo0")};
    Tuple b{Value::Constant("a"), Value::Constant("b")};
    bool sep = Separates(q, db, a, b);
    bool dominated = WeaklyDominated(q, db, a, b);
    experiment.Claim(sep == !dominated,
                     "Sep(a,b) holds exactly when a is not weakly dominated");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return experiment.Finish();
}
