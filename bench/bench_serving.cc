// Experiment: the zeroone::svc serving subsystem.
//
// Claims checked (ISSUE acceptance criteria for the serving layer):
//   1. A cache hit answers a repeated query ≥10x faster than the cold
//      evaluation.
//   2. Under a burst that exceeds the bounded queue, the server answers
//      every request and rejects the overflow with explicit OVERLOADED —
//      no hang, no silent drop.
//   3. A request with an expired deadline returns DEADLINE_EXCEEDED well
//      before the full evaluation time.
//   4. Degraded mode (ZEROONE_FAULT=ON builds): with 1% injected socket
//      faults on both sides of the wire, a RetryingClient still completes
//      100% of requests and p99 latency stays within 5x of fault-free.
//   5. Durability (write-ahead log): --ack-mode=fsync costs at most 20x
//      the async p50 per acknowledged mutation, and recovery from a
//      compacted log (snapshot + short tail) is >=10x faster than a full
//      log replay of the same history.
//   6. µ-heavy analytics: a 4-worker morsel team serves the byte-identical
//      mu^k payload of a serial server, and a deadline cancels a parallel
//      µ^k evaluation mid-run with the session intact.
//   7. Scale-out (consistent-hash router): forwarding a read-hot workload
//      through zeroone::svc::Router costs at most 1.5x the direct-backend
//      p50, and on a CPU-bound µ-heavy mix three backends deliver >=1.8x
//      the aggregate throughput of one (gated on >=4 hardware threads —
//      below that the backends share cores and scaling is noise).
//
// The server runs in-process on a loopback socket, so the measured
// latencies include the full wire round-trip (what a client observes).
// Micro-benchmarks for the protocol parser and LRU cache ride along.

#include <benchmark/benchmark.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/net.h"
#include "fault/fault.h"
#include "svc/cache.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/protocol.h"
#include "svc/router.h"
#include "svc/server.h"

using namespace zeroone;
using namespace zeroone::svc;

namespace {

// ~20ms of certain-answer evaluation (4 nulls) — big enough that a cache
// hit (microseconds) is unambiguously faster, small enough for CI.
constexpr const char* kColdDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4) }";
// ~0.5s of evaluation (5 nulls) for the overload and deadline scenarios.
constexpr const char* kSlowDb =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4), (c5, _5) }";
constexpr const char* kQuery = "Q(x) := exists y . R(x, y)";

Request MakeRequest(const std::string& command, const std::string& args = "",
                    const std::string& session = "default") {
  Request request;
  request.command = command;
  request.args = args;
  request.session = session;
  return request;
}

double CallMs(BlockingClient& client, const Request& request,
              WireStatus* status = nullptr) {
  auto start = std::chrono::steady_clock::now();
  StatusOr<Response> response = client.Call(request);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  if (status != nullptr) {
    *status = response.ok() ? response->status : WireStatus::kErr;
  }
  return ms;
}

void ReportCacheSpeedup(bench::Experiment* experiment, Server* server) {
  BlockingClient client;
  client.Connect("127.0.0.1", server->port());
  client.Call(MakeRequest("db", kColdDb, "cachebench"));
  client.Call(MakeRequest("query", kQuery, "cachebench"));

  double cold_ms = CallMs(client, MakeRequest("certain", "", "cachebench"));
  // Median of repeated warm calls, to be robust against scheduler noise.
  std::vector<double> warm;
  for (int i = 0; i < 9; ++i) {
    warm.push_back(CallMs(client, MakeRequest("certain", "", "cachebench")));
  }
  std::sort(warm.begin(), warm.end());
  double warm_ms = warm[warm.size() / 2];
  double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  std::printf("cache: cold %.2fms, warm (median of %zu) %.3fms — %.0fx\n",
              cold_ms, warm.size(), warm_ms, speedup);
  experiment->Claim(speedup >= 10.0,
                    "cache hit is >=10x faster than cold evaluation");
}

void ReportOverload(bench::Experiment* experiment, Server* server) {
  BlockingClient setup;
  setup.Connect("127.0.0.1", server->port());
  setup.Call(MakeRequest("db", kSlowDb, "loadbench"));
  setup.Call(MakeRequest("query", kQuery, "loadbench"));

  // Pipeline a burst of slow uncacheable requests; with one worker and a
  // one-slot queue most of the burst must be rejected, and every request
  // must still get an answer.
  constexpr int kBurst = 6;
  BlockingClient client;
  client.Connect("127.0.0.1", server->port());
  for (int i = 0; i < kBurst; ++i) {
    Request request = MakeRequest("certain", "", "loadbench");
    request.id = std::to_string(i + 1);
    request.no_cache = true;
    client.Send(request);
  }
  int ok = 0, overloaded = 0, answered = 0;
  for (int i = 0; i < kBurst; ++i) {
    StatusOr<Response> response = client.Receive();
    if (!response.ok()) break;
    ++answered;
    ok += response->status == WireStatus::kOk;
    overloaded += response->status == WireStatus::kOverloaded;
  }
  std::printf("overload: burst %d -> %d answered (%d OK, %d OVERLOADED)\n",
              kBurst, answered, ok, overloaded);
  experiment->Claim(answered == kBurst,
                    "every burst request is answered (no hang/silent drop)");
  experiment->Claim(overloaded >= 1 && ok >= 1,
                    "overflow beyond the bounded queue is rejected with "
                    "OVERLOADED while admitted work completes");
}

void ReportDeadline(bench::Experiment* experiment, Server* server) {
  BlockingClient client;
  client.Connect("127.0.0.1", server->port());
  client.Call(MakeRequest("db", kSlowDb, "deadlinebench"));
  client.Call(MakeRequest("query", kQuery, "deadlinebench"));

  Request unbounded = MakeRequest("certain", "", "deadlinebench");
  unbounded.no_cache = true;
  double full_ms = CallMs(client, unbounded);

  Request bounded = MakeRequest("certain", "", "deadlinebench");
  bounded.no_cache = true;
  bounded.deadline_ms = 25;
  WireStatus status = WireStatus::kOk;
  double bounded_ms = CallMs(client, bounded, &status);
  std::printf("deadline: full evaluation %.0fms; @deadline_ms=25 answered "
              "%s in %.0fms\n",
              full_ms, std::string(WireStatusName(status)).c_str(),
              bounded_ms);
  experiment->Claim(status == WireStatus::kDeadlineExceeded,
                    "expired deadline yields DEADLINE_EXCEEDED");
  experiment->Claim(bounded_ms < full_ms / 2,
                    "cancellation abandons the evaluation well before "
                    "completion");
}

// Epoll scaling: 256 idle connections must cost nothing but memory. The
// event-thread pool is fixed at Start() — it must not grow with the
// connection count — and the serving latency of 16 active clients with 256
// idle connections parked on the same loops must stay within 1.5x of the
// 16-client baseline (the whole point of replacing thread-per-connection
// readers).
void ReportEpollScaling(bench::Experiment* experiment) {
  ServerOptions options;
  options.threads = 4;
  options.queue_capacity = 256;
  Server server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "epoll-scaling server start failed: %s\n",
                 started.message().c_str());
    experiment->Claim(false, "epoll-scaling server starts");
    return;
  }
  const std::size_t threads_at_start = server.event_threads();

  // Median ping latency across 16 concurrent clients — the pure serving
  // path (event loop + executor + wire), no evaluation cost.
  auto active_median_ms = [&]() {
    constexpr int kClients = 16;
    constexpr int kRounds = 50;
    std::vector<double> latencies;
    std::mutex mutex;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        BlockingClient client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) return;
        std::vector<double> mine;
        for (int i = 0; i < kRounds; ++i) {
          mine.push_back(CallMs(client, MakeRequest("ping")));
        }
        std::lock_guard<std::mutex> lock(mutex);
        latencies.insert(latencies.end(), mine.begin(), mine.end());
      });
    }
    for (std::thread& t : clients) t.join();
    std::sort(latencies.begin(), latencies.end());
    return latencies.empty() ? 1e9 : latencies[latencies.size() / 2];
  };

  double base_ms = active_median_ms();

  // Park 256 idle connections on the same event loops, then measure again.
  std::vector<BlockingClient> idle(256);
  std::size_t connected = 0;
  for (BlockingClient& client : idle) {
    connected += client.Connect("127.0.0.1", server.port()).ok();
  }
  double idle_ms = active_median_ms();
  const std::size_t threads_with_idle = server.event_threads();

  std::printf("epoll scaling: 16-client ping median %.3fms; with 256 idle "
              "connections %.3fms; event threads %zu -> %zu\n",
              base_ms, idle_ms, threads_at_start, threads_with_idle);
  experiment->Claim(connected == idle.size() &&
                        threads_with_idle == threads_at_start,
                    "server holds 256 concurrent connections with a "
                    "constant event-thread count");
  // The +0.3ms absolute floor keeps a sub-millisecond baseline from
  // turning scheduler jitter into a flaky ratio.
  experiment->Claim(idle_ms <= 1.5 * base_ms + 0.3,
                    "16 active clients serve within 1.5x of baseline with "
                    "256 idle connections parked");
  server.Shutdown();
}

// The µ-heavy analytical path — until PR 9 the serving battery only ever
// measured cheap reads (certain/possible on 4-5 nulls), so the heaviest
// command the wire carries was never exercised here. `muk` evaluates µ^k
// by sharded enumeration on the server's morsel pool; the claims check
// that a 4-worker team returns the byte-identical payload of a serial
// server, and that a deadline cancels the evaluation mid-parallel-run.
void ReportMuHeavy(bench::Experiment* experiment) {
  auto timed_muk = [](std::size_t par_threads, std::string* payload) {
    ServerOptions options;
    options.threads = 1;
    options.queue_capacity = 8;
    options.par_threads = par_threads;
    Server server(options);
    if (!server.Start().ok()) return -1.0;
    BlockingClient client;
    client.Connect("127.0.0.1", server.port());
    client.Call(MakeRequest("db", kColdDb, "mubench"));
    client.Call(MakeRequest("query", kQuery, "mubench"));
    Request heavy = MakeRequest("muk", "6 (c1)", "mubench");
    heavy.no_cache = true;
    auto start = std::chrono::steady_clock::now();
    StatusOr<Response> response = client.Call(heavy);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!response.ok() || response->status != WireStatus::kOk) {
      ms = -1.0;
    } else {
      *payload = response->payload;
    }
    server.Shutdown();
    return ms;
  };
  std::string serial_payload;
  std::string parallel_payload;
  double serial_ms = timed_muk(1, &serial_payload);
  double parallel_ms = timed_muk(4, &parallel_payload);
  std::printf("mu-heavy: muk 6 on 4 nulls — serial %.1fms, 4-worker morsel "
              "team %.1fms; payloads %s\n",
              serial_ms, parallel_ms,
              serial_payload == parallel_payload ? "identical" : "DIFFER");
  experiment->Claim(serial_ms > 0 && parallel_ms > 0 &&
                        serial_payload == parallel_payload,
                    "a 4-worker morsel team serves the byte-identical mu^k "
                    "payload of a serial server");

  // Deadline mid-parallel-evaluation: five nulls at k=8 is ~0.5s of
  // enumeration; the 25ms deadline must surface as DEADLINE_EXCEEDED long
  // before that, with the morsel team quiesced (the follow-up unhurried
  // request on the same session still answers).
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 8;
  options.par_threads = 4;
  Server server(options);
  if (!server.Start().ok()) {
    experiment->Claim(false, "mu-heavy deadline server starts");
    return;
  }
  BlockingClient client;
  client.Connect("127.0.0.1", server.port());
  client.Call(MakeRequest("db", kSlowDb, "mudeadline"));
  client.Call(MakeRequest("query", kQuery, "mudeadline"));
  Request bounded = MakeRequest("muk", "8 (c1)", "mudeadline");
  bounded.no_cache = true;
  bounded.deadline_ms = 25;
  WireStatus status = WireStatus::kOk;
  double bounded_ms = CallMs(client, bounded, &status);
  Request follow_up = MakeRequest("muk", "6 (c1)", "mudeadline");
  follow_up.no_cache = true;
  WireStatus follow_status = WireStatus::kOk;
  CallMs(client, follow_up, &follow_status);
  std::printf("mu-heavy deadline: muk 8 on 5 nulls @deadline_ms=25 answered "
              "%s in %.0fms; follow-up %s\n",
              std::string(WireStatusName(status)).c_str(), bounded_ms,
              std::string(WireStatusName(follow_status)).c_str());
  experiment->Claim(status == WireStatus::kDeadlineExceeded &&
                        bounded_ms < 250.0 &&
                        follow_status == WireStatus::kOk,
                    "a deadline cancels the parallel mu^k evaluation early "
                    "and the session keeps serving");
  server.Shutdown();
}

// Scratch directories for the durability scenarios (snapshot dirs are
// flat, so one level of cleanup suffices).
std::string MakeScratchDir() {
  char templ[] = "/tmp/zo1durabench_XXXXXX";
  char* dir = ::mkdtemp(templ);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveTree(const std::string& dir) {
  if (dir.empty()) return;
  if (DIR* handle = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(handle)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(handle);
  }
  ::rmdir(dir.c_str());
}

// Durability: what the write-ahead log costs and what compaction buys.
//
// Ack-mode cost is the client-observed p50 of acknowledged single-tuple
// mutations — in fsync mode the ack waits for the record to be fsync'd, in
// async mode only for the write. Recovery compares a fresh Dispatcher's
// LoadSnapshots() over the same mutation history persisted two ways: as a
// raw log that must be replayed end to end (compaction disabled) and as a
// compacted snapshot plus a short tail.
void ReportDurability(bench::Experiment* experiment) {
  auto mutate_p50 = [](AckMode mode) {
    std::string dir = MakeScratchDir();
    double p50 = 1e9;
    ServerOptions options;
    options.threads = 2;
    options.queue_capacity = 64;
    options.snapshot_dir = dir;
    options.ack_mode = mode;
    options.wal_compact_every = 0;  // Isolate append+ack from compaction.
    Server server(options);
    if (server.Start().ok()) {
      BlockingClient client;
      client.Connect("127.0.0.1", server.port());
      std::vector<double> latencies;
      for (int i = 0; i < 300; ++i) {
        latencies.push_back(CallMs(
            client, MakeRequest("db", "M(1) = { (w" + std::to_string(i) + ") }",
                                "durabench")));
      }
      std::sort(latencies.begin(), latencies.end());
      p50 = latencies[latencies.size() / 2];
      server.Shutdown();
    }
    RemoveTree(dir);
    return p50;
  };
  double async_p50 = mutate_p50(AckMode::kAsync);
  double fsync_p50 = mutate_p50(AckMode::kFsync);
  std::printf("wal ack: async p50 %.3fms, fsync p50 %.3fms (%.1fx)\n",
              async_p50, fsync_p50,
              async_p50 > 0 ? fsync_p50 / async_p50 : 0.0);
  // The +0.5ms absolute floor keeps a tmpfs-fast async baseline from
  // turning scheduler jitter into a flaky ratio.
  experiment->Claim(fsync_p50 <= 20.0 * async_p50 + 0.5,
                    "fsync-mode mutation p50 stays within 20x of async");

  constexpr int kMutations = 4000;
  auto recover_ms = [](std::uint64_t compact_every, std::size_t* replayed) {
    std::string dir = MakeScratchDir();
    Dispatcher::Options options;
    options.snapshot_dir = dir;
    options.wal_compact_every = compact_every;
    {
      Dispatcher writer(options);
      writer.LoadSnapshots();
      for (int i = 0; i < kMutations; ++i) {
        const std::string w = "w" + std::to_string(i);
        writer.Execute(MakeRequest(
            "db", "M(1) = { (" + w + "a), (" + w + "b) }", "recoverybench"));
      }
    }  // Dropped without a drain: recovery rebuilds from disk alone.
    Dispatcher reader(options);
    auto start = std::chrono::steady_clock::now();
    Dispatcher::RecoveryReport report = reader.LoadSnapshots();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    *replayed = report.wal_records_applied;
    RemoveTree(dir);
    return ms;
  };
  std::size_t full_replayed = 0, tail_replayed = 0;
  double full_ms = recover_ms(0, &full_replayed);
  double tail_ms = recover_ms(16, &tail_replayed);
  std::printf("wal recovery: full replay of %zu records %.1fms; compacted "
              "snapshot + %zu-record tail %.1fms (%.1fx)\n",
              full_replayed, full_ms, tail_replayed, tail_ms,
              tail_ms > 0 ? full_ms / tail_ms : 0.0);
  experiment->Claim(full_replayed == kMutations && tail_replayed < 16,
                    "compaction bounds the replay tail (full history "
                    "replays only with compaction off)");
  experiment->Claim(tail_ms * 10.0 <= full_ms,
                    "compacted recovery is >=10x faster than full-log "
                    "replay");
}

// Scale-out: what the consistent-hash router costs and what it buys
// (docs/serving.md, "Scaling out").
//
// Overhead: p50 of a read-hot workload (cached `certain` — the pure
// serving path once the answer is cached) direct against one backend vs
// forwarded through a router over that same backend. The router adds one
// full extra loopback round-trip plus a queue handoff, so the claim is a
// ratio with the same kind of absolute floor the epoll claim uses: a
// sub-100µs direct baseline must not turn scheduler jitter into flake.
//
// Scaling: aggregate throughput of a CPU-bound µ-heavy mix (uncached
// `muk`, serial per backend) through a router over three backends vs one.
// Sessions are picked via the same HashRing the router uses so each
// backend owns exactly two of the six workers. Gated on >=4 hardware
// threads: with fewer cores the three backends time-share the same CPU
// and the ratio measures the scheduler, not the architecture.
void ReportRouter(bench::Experiment* experiment) {
  auto start_backend = [](std::size_t par_threads) {
    ServerOptions options;
    options.threads = 2;
    options.queue_capacity = 64;
    options.par_threads = par_threads;
    auto server = std::make_unique<Server>(options);
    if (!server->Start().ok()) server = nullptr;
    return server;
  };
  auto start_router = [](const std::vector<const Server*>& backends) {
    RouterOptions options;
    for (const Server* backend : backends) {
      options.backends.push_back(HostPort{"127.0.0.1", backend->port()});
    }
    options.threads = 4;
    options.queue_capacity = 64;
    auto router = std::make_unique<Router>(options);
    if (!router->Start().ok()) router = nullptr;
    return router;
  };

  // --- Claim 7a: forwarding overhead on a read-hot workload. ---
  std::unique_ptr<Server> backend = start_backend(1);
  std::unique_ptr<Router> router;
  if (backend != nullptr) router = start_router({backend.get()});
  if (backend == nullptr || router == nullptr) {
    experiment->Claim(false, "router bench cluster starts");
    return;
  }
  auto read_hot_p50 = [](int port) {
    BlockingClient client;
    if (!client.Connect("127.0.0.1", port).ok()) return 1e9;
    client.Call(MakeRequest("db", kColdDb, "routerbench"));
    client.Call(MakeRequest("query", kQuery, "routerbench"));
    client.Call(MakeRequest("certain", "", "routerbench"));  // Warm cache.
    std::vector<double> latencies;
    for (int i = 0; i < 200; ++i) {
      latencies.push_back(
          CallMs(client, MakeRequest("certain", "", "routerbench")));
    }
    std::sort(latencies.begin(), latencies.end());
    return latencies[latencies.size() / 2];
  };
  double direct_ms = read_hot_p50(backend->port());
  double routed_ms = read_hot_p50(router->port());
  std::printf("router overhead: read-hot p50 direct %.3fms, via router "
              "%.3fms (%.2fx)\n",
              direct_ms, routed_ms,
              direct_ms > 0 ? routed_ms / direct_ms : 0.0);
  experiment->Claim(routed_ms <= 1.5 * direct_ms + 0.5,
                    "router forwarding keeps read-hot p50 within 1.5x of "
                    "direct backend");
  router->Shutdown();
  router = nullptr;
  backend->Shutdown();
  backend = nullptr;

  // --- Claim 7b: 3-backend aggregate throughput on a µ-heavy mix. ---
  const unsigned hw_threads = std::thread::hardware_concurrency();
  if (hw_threads < 4) {
    std::printf("router scaling claim skipped (%u hardware threads; the "
                "3-backend ratio needs >=4)\n",
                hw_threads);
    return;
  }
  // Six sessions, two owned by each of the three backends — found by
  // walking candidate names through the identical ring the router builds.
  HashRing ring(3, 64);
  std::vector<std::string> sessions;
  std::vector<int> owned(3, 0);
  for (int candidate = 0; sessions.size() < 6 && candidate < 1000;
       ++candidate) {
    std::string name = "scale" + std::to_string(candidate);
    std::size_t owner = ring.Owner(name);
    if (owned[owner] < 2) {
      ++owned[owner];
      sessions.push_back(std::move(name));
    }
  }
  auto aggregate_qps = [&](std::size_t backend_count) {
    std::vector<std::unique_ptr<Server>> backends;
    std::vector<const Server*> raw;
    for (std::size_t i = 0; i < backend_count; ++i) {
      backends.push_back(start_backend(1));
      if (backends.back() == nullptr) return -1.0;
      raw.push_back(backends.back().get());
    }
    std::unique_ptr<Router> front = start_router(raw);
    if (front == nullptr) return -1.0;
    constexpr int kPerClient = 6;
    std::vector<std::thread> clients;
    auto start = std::chrono::steady_clock::now();
    for (const std::string& session : sessions) {
      clients.emplace_back([&, session] {
        BlockingClient client;
        if (!client.Connect("127.0.0.1", front->port()).ok()) return;
        client.Call(MakeRequest("db", kColdDb, session));
        client.Call(MakeRequest("query", kQuery, session));
        for (int i = 0; i < kPerClient; ++i) {
          Request heavy = MakeRequest("muk", "6 (c1)", session);
          heavy.no_cache = true;
          client.Call(heavy);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    front->Shutdown();
    for (auto& b : backends) b->Shutdown();
    return wall_s > 0
               ? static_cast<double>(sessions.size() * kPerClient) / wall_s
               : -1.0;
  };
  double one_qps = aggregate_qps(1);
  double three_qps = aggregate_qps(3);
  std::printf("router scaling: mu-heavy aggregate %.1f req/s on 1 backend, "
              "%.1f req/s on 3 (%.2fx)\n",
              one_qps, three_qps, one_qps > 0 ? three_qps / one_qps : 0.0);
  experiment->Claim(one_qps > 0 && three_qps >= 1.8 * one_qps,
                    "three backends deliver >=1.8x the aggregate mu-heavy "
                    "throughput of one");
}

#if ZEROONE_FAULT_ENABLED
// Degraded mode: every request is forced through a fresh evaluation
// (~20ms), so a retried request costs roughly one extra evaluation plus a
// few ms of backoff — well inside the 5x p99 budget.
void ReportDegradedMode(bench::Experiment* experiment, Server* server) {
  constexpr int kRequests = 60;
  auto run = [&](const char* label, int* ok_out) {
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.initial_backoff_ms = 1;
    policy.max_backoff_ms = 20;
    RetryingClient client("127.0.0.1", server->port(), policy,
                          ClientOptions());
    client.CallWithRetry(MakeRequest("db", kColdDb, "degradedbench"));
    client.CallWithRetry(MakeRequest("query", kQuery, "degradedbench"));
    std::vector<double> latencies;
    int ok = 0;
    for (int i = 0; i < kRequests; ++i) {
      Request request = MakeRequest("certain", "", "degradedbench");
      request.no_cache = true;
      auto start = std::chrono::steady_clock::now();
      StatusOr<Response> response = client.CallWithRetry(request);
      latencies.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
      ok += response.ok() && response->status == WireStatus::kOk;
    }
    std::sort(latencies.begin(), latencies.end());
    double p99 = latencies[static_cast<std::size_t>(
        0.99 * static_cast<double>(latencies.size() - 1))];
    const RetryingClient::Stats stats = client.stats();
    std::printf("degraded (%s): %d/%d OK, p99 %.1fms, %llu retries, "
                "%llu reconnects\n",
                label, ok, kRequests, p99,
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.reconnects));
    *ok_out = ok;
    return p99;
  };

  int clean_ok = 0;
  double clean_p99 = run("fault-free", &clean_ok);
  fault::Registry::Global().Configure(
      "seed=42,svc.send.partial=0.01,svc.client.send.fail=0.01");
  int faulty_ok = 0;
  double faulty_p99 = run("1% socket faults", &faulty_ok);
  fault::Registry::Global().Clear();

  experiment->Claim(clean_ok == kRequests && faulty_ok == kRequests,
                    "with 1% socket faults every request still eventually "
                    "succeeds");
  experiment->Claim(faulty_p99 <= 5.0 * clean_p99,
                    "degraded-mode p99 stays within 5x of fault-free p99");
}
#endif  // ZEROONE_FAULT_ENABLED

void BM_ParseRequestLine(benchmark::State& state) {
  const std::string line =
      "@id=42 @session=alpha @deadline_ms=250 @nocache mu (a, b)";
  for (auto _ : state) {
    StatusOr<Request> request = ParseRequestLine(line);
    benchmark::DoNotOptimize(request);
  }
}
BENCHMARK(BM_ParseRequestLine);

void BM_FormatResponse(benchmark::State& state) {
  Response response;
  response.id = "42";
  response.payload = std::string(256, 'x');
  for (auto _ : state) {
    std::string frame = FormatResponse(response);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_FormatResponse);

void BM_CacheGetHit(benchmark::State& state) {
  LruCache cache(1 << 20);
  for (int i = 0; i < 64; ++i) {
    cache.Put("key" + std::to_string(i), std::string(128, 'v'));
  }
  std::string value;
  int i = 0;
  for (auto _ : state) {
    bool hit = cache.Get("key" + std::to_string(i++ % 64), &value);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_CacheGetHit);

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("serving");
  std::printf("Serving: cache speedup, overload rejection, deadlines\n");
  std::printf("-----------------------------------------------------\n");
  {
    // One worker and a one-slot queue make overload deterministic; the
    // cache and deadline scenarios are unaffected by the pool size.
    ServerOptions options;
    options.threads = 1;
    options.queue_capacity = 1;
    Server server(options);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.message().c_str());
      return 1;
    }
    ReportCacheSpeedup(&experiment, &server);
    ReportOverload(&experiment, &server);
    ReportDeadline(&experiment, &server);
#if ZEROONE_FAULT_ENABLED
    ReportDegradedMode(&experiment, &server);
#else
    std::printf("degraded-mode claims skipped (ZEROONE_FAULT=OFF build)\n");
#endif
    server.Shutdown();
  }
  ReportEpollScaling(&experiment);
  ReportMuHeavy(&experiment);
  ReportDurability(&experiment);
  ReportRouter(&experiment);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return experiment.Finish();
}
