// Shared experiment harness for the bench_* binaries.
//
// Each bench wraps its run in a zeroone::bench::Experiment. The harness
// records wall time and the observability counter deltas attributable to the
// run, collects paper-claim checks (`Claim`), and on `Finish` writes a
// machine-readable BENCH_<name>.json next to the human-readable stdout
// report. Finish returns a nonzero exit code when any claim failed, so CI
// catches regressions of the paper's claims instead of scrolling past them.
//
// The JSON lands in $ZEROONE_BENCH_DIR (if set) or the working directory:
//
//   {
//     "experiment": "zero_one_law",
//     "schema_version": 1,
//     "obs_enabled": true,
//     "wall_time_ms": 123.4,
//     "claims": [{"description": "...", "ok": true}, ...],
//     "claims_failed": 0,
//     "metrics": {"support.valuations_enumerated": 123, ...}
//   }

#ifndef ZEROONE_BENCH_BENCH_COMMON_H_
#define ZEROONE_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace zeroone {
namespace bench {

class Experiment {
 public:
  explicit Experiment(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  // Records one paper-claim check; failures are echoed immediately.
  void Claim(bool ok, const std::string& description) {
    claims_.emplace_back(description, ok);
    if (!ok) {
      std::fprintf(stderr, "CLAIM FAILED [%s]: %s\n", name_.c_str(),
                   description.c_str());
    }
  }

  std::size_t failed_claims() const {
    std::size_t failed = 0;
    for (const auto& [description, ok] : claims_) {
      failed += static_cast<std::size_t>(!ok);
    }
    return failed;
  }

  // Writes BENCH_<name>.json and returns the process exit code: 0 when every
  // claim held and the result file was written, 1 otherwise. Call as
  // `return experiment.Finish();`.
  int Finish() {
    bool wrote = false;
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    std::size_t failed = failed_claims();

    std::string path = "BENCH_" + name_ + ".json";
    if (const char* dir = std::getenv("ZEROONE_BENCH_DIR")) {
      if (dir[0] != '\0') path = std::string(dir) + "/" + path;
    }
    std::ofstream out(path);
    if (out) {
      out << "{\"experiment\": ";
      obs::AppendJsonString(out, name_);
      out << ", \"schema_version\": 1";
      out << ", \"obs_enabled\": "
          << (ZEROONE_OBS_ENABLED ? "true" : "false");
      out << ", \"wall_time_ms\": " << wall_ms;
      out << ", \"claims\": [";
      bool first = true;
      for (const auto& [description, ok] : claims_) {
        if (!first) out << ", ";
        first = false;
        out << "{\"description\": ";
        obs::AppendJsonString(out, description);
        out << ", \"ok\": " << (ok ? "true" : "false") << "}";
      }
      out << "], \"claims_failed\": " << failed;
      out << ", \"metrics\": {";
      first = true;
      for (const auto& [counter, delta] : snapshot_.Deltas()) {
        if (!first) out << ", ";
        first = false;
        obs::AppendJsonString(out, counter);
        out << ": " << delta;
      }
      out << "}}\n";
      wrote = static_cast<bool>(out.flush());
      std::printf("\n[%s] wrote %s (%zu/%zu claims ok)\n", name_.c_str(),
                  path.c_str(), claims_.size() - failed, claims_.size());
    }
    if (!wrote) {
      std::fprintf(stderr, "[%s] cannot write %s\n", name_.c_str(),
                   path.c_str());
    }
    if (failed != 0) {
      std::fprintf(stderr, "[%s] %zu claim(s) FAILED\n", name_.c_str(),
                   failed);
    }
    return (failed != 0 || !wrote) ? 1 : 0;
  }

 private:
  std::string name_;
  obs::ScopedSnapshot snapshot_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, bool>> claims_;
};

}  // namespace bench
}  // namespace zeroone

#endif  // ZEROONE_BENCH_BENCH_COMMON_H_
