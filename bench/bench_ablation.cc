// Ablation studies for the design choices called out in DESIGN.md, plus the
// "quality of approximation" question from Section 6 of the paper.
//
// A. Partition-polynomial vs. brute-force enumeration. The measure µ^k can
//    be computed by enumerating all k^m valuations (the definition) or via
//    the closed-form support polynomial (one Bell(m)·(a+1)^m computation,
//    k-independent). Where is the crossover?
//
// B. Marked vs. Codd nulls (Section 6 "SQL nulls"). Forgetting repeated-
//    null correlations (the Codd weakening) changes naive answers, best
//    answers, and measures; how often, as null sharing grows?
//
// C. Approximation quality (Section 6). Naive evaluation approximates
//    certain answers from above; how large is the gap |naive \ certain|
//    as the null density grows — i.e. how many "almost certainly true but
//    not certain" answers are there to re-classify with the measure?

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/measure.h"
#include "core/support.h"
#include "core/support_polynomial.h"
#include "data/isomorphism.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "gen/scenarios.h"
#include "query/eval.h"
#include "query/parser.h"

using namespace zeroone;

namespace {

Database MakeDb(std::size_t nulls) {
  Database db;
  Relation& r = db.AddRelation("R", 2);
  for (std::size_t i = 0; i < nulls; ++i) {
    r.Insert({Value::Int(static_cast<std::int64_t>(i % 2)),
              Value::Null("ab" + std::to_string(i))});
  }
  return db;
}

// --- A: enumeration vs polynomial ---

void BM_MuKByEnumeration(benchmark::State& state) {
  Database db = MakeDb(3);
  Query q = ParseQuery(":= exists x, y . R(x, y) & R(y, x)").value();
  std::size_t k = static_cast<std::size_t>(state.range(0));
  SupportInstance instance = MakeSupportInstance(q, db, Tuple{});
  for (auto _ : state) {
    SupportCount count = CountSupport(instance, db, k);
    benchmark::DoNotOptimize(count.support);
  }
}
BENCHMARK(BM_MuKByEnumeration)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_MuKByPolynomial(benchmark::State& state) {
  // One closed-form computation serves every k: evaluate P at the point.
  Database db = MakeDb(3);
  Query q = ParseQuery(":= exists x, y . R(x, y) & R(y, x)").value();
  std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    SupportPolynomial poly = ComputeSupportPolynomial(q, db, Tuple{});
    Rational at_k = poly.count.Evaluate(BigInt(static_cast<std::int64_t>(k)));
    benchmark::DoNotOptimize(at_k);
  }
}
BENCHMARK(BM_MuKByPolynomial)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// --- B and C: printed studies ---

void CoddAblation() {
  std::printf("B. Marked vs Codd nulls (Section 6 'SQL nulls')\n");
  std::printf("   null-sharing sweep on the intro-style scenario: how often "
              "does the Codd weakening change the naive answer set?\n");
  std::printf("   %10s %12s %12s\n", "sharing", "changed", "instances");
  for (double share : {0.0, 0.25, 0.5, 0.75}) {
    std::size_t changed = 0;
    std::size_t total = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      RandomDatabaseOptions options;
      options.relations = {{"R1", 2, 5}, {"R2", 2, 5}};
      options.constant_pool = 4;
      // Fewer distinct nulls = more sharing between occurrences.
      options.null_pool =
          std::max<std::size_t>(1, static_cast<std::size_t>(6 * (1 - share)));
      options.null_probability = 0.5;
      options.seed = seed + 50000;
      Database db = GenerateRandomDatabase(options);
      Query q = ParseQuery("Q(x, y) := R1(x, y) & !R2(x, y)").value();
      std::vector<Tuple> marked = NaiveEvaluate(q, db);
      std::vector<Tuple> codd = NaiveEvaluate(q, CoddWeakening(db));
      ++total;
      // Compare cardinalities (tuples contain different nulls after the
      // weakening, so sets are compared by size and constant projections).
      changed += static_cast<std::size_t>(marked.size() != codd.size());
    }
    std::printf("   %10.2f %12zu %12zu\n", share, changed, total);
  }
  std::printf("   (claim shape: with no sharing (Codd already) nothing "
              "changes; more sharing = more answers whose status depends on "
              "null correlations)\n\n");
}

void ApproximationQuality(bench::Experiment* experiment) {
  std::printf("C. Approximation quality (Section 6): naive vs certain\n");
  std::printf("   %12s %10s %10s %10s\n", "null-prob", "naive", "certain",
              "gap");
  bool over_approximates = true;
  for (double p : {0.1, 0.3, 0.5, 0.7}) {
    std::size_t naive_total = 0;
    std::size_t certain_total = 0;
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      RandomDatabaseOptions options;
      options.relations = {{"R", 2, 4}, {"S", 1, 3}};
      options.constant_pool = 3;
      options.null_pool = 3;
      options.null_probability = p;
      options.seed = seed + 51000;
      Database db = GenerateRandomDatabase(options);
      RandomQueryOptions q_options;
      q_options.relations = {{"R", 2}, {"S", 1}};
      q_options.free_variables = 1;
      q_options.existential_variables = 1;
      q_options.clauses = 2;
      q_options.atoms_per_clause = 2;
      q_options.seed = seed + 51100;
      Query fo = GenerateRandomFo(q_options, 0.35);
      naive_total += NaiveEvaluate(fo, db).size();
      certain_total += CertainAnswers(fo, db).size();
    }
    over_approximates = over_approximates && naive_total >= certain_total;
    std::printf("   %12.1f %10zu %10zu %10zu\n", p, naive_total,
                certain_total, naive_total - certain_total);
  }
  std::printf("   (claim shape: the gap — answers that are almost certainly "
              "true yet not certain, exactly what the measure framework "
              "classifies — widens with null density)\n\n");
  experiment->Claim(over_approximates,
                    "naive evaluation over-approximates certain answers at "
                    "every null density");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("ablation");
  std::printf("Ablations (DESIGN.md) and Section 6 studies\n");
  std::printf("===========================================\n\n");
  CoddAblation();
  ApproximationQuality(&experiment);
  std::printf("A. mu^k: enumeration (k^m valuations) vs closed-form "
              "polynomial (k-independent):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("(claim shape: enumeration cost grows like k^m; the "
              "polynomial method is flat in k and wins beyond small k)\n");
  return experiment.Finish();
}
