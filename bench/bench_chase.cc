// Experiment E9 (Theorem 5 / Corollary 4).
//
// Paper claims: for FD-only Σ, µ(Q|Σ,D,ā) = µ(Q, chase_Σ(D), ā) — the 0–1
// law is restored and the conditional measure is computable in polynomial
// time (chase + naive evaluation), versus the #P-flavoured
// partition-polynomial computation needed for general constraints.
//
// Measured: (a) agreement of the chase shortcut with the exact conditional
// measure on random FD instances; (b) chase wall-clock scaling with
// database size (polynomial); (c) shortcut vs exact-computation timing.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/conditional.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/parser.h"

using namespace zeroone;

namespace {

Database MakeDb(std::size_t tuples, std::uint64_t seed) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, tuples}};
  options.constant_pool = std::max<std::size_t>(2, tuples / 2);
  options.null_pool = std::max<std::size_t>(1, tuples / 3);
  options.null_probability = 0.4;
  options.seed = seed;
  return GenerateRandomDatabase(options);
}

void ReportAgreement(bench::Experiment* experiment) {
  std::printf("E9: FD chase computes the conditional measure (Thm 5)\n");
  std::printf("-----------------------------------------------------\n");
  std::size_t agreements = 0;
  std::size_t chase_failures = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Database db = MakeDb(4, seed + 9000);
    std::vector<FunctionalDependency> fds = {
        FunctionalDependency("R", 2, {0}, 1)};
    ConstraintSet constraints = {
        std::make_shared<FunctionalDependency>(fds[0])};
    RandomQueryOptions q_options;
    q_options.relations = {{"R", 2}};
    q_options.free_variables = 0;
    q_options.existential_variables = 2;
    q_options.clauses = 2;
    q_options.atoms_per_clause = 2;
    q_options.seed = seed + 9100;
    Query query = GenerateRandomFo(q_options, 0.3);
    int shortcut = ConditionalMuViaChase(query, fds, db, Tuple{});
    Rational exact = ConditionalMu(query, constraints, db);
    ++total;
    agreements += static_cast<std::size_t>(Rational(shortcut) == exact);
    chase_failures += static_cast<std::size_t>(
        !ChaseFds(fds, db).success);
  }
  std::printf("shortcut == exact on %zu/%zu random FD instances "
              "(%zu chase failures among them; claim: all agree)\n\n",
              agreements, total, chase_failures);
  experiment->Claim(total > 0 && agreements == total,
                    "Theorem 5: chase shortcut equals the exact conditional "
                    "measure on every instance");
}

void BM_ChaseScaling(benchmark::State& state) {
  std::size_t tuples = static_cast<std::size_t>(state.range(0));
  Database db = MakeDb(tuples, 424242);
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R", 2, {0}, 1)};
  for (auto _ : state) {
    ChaseResult result = ChaseFds(fds, db);
    benchmark::DoNotOptimize(result.success);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(tuples));
}
BENCHMARK(BM_ChaseScaling)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_ConditionalViaChase(benchmark::State& state) {
  Database db = MakeDb(static_cast<std::size_t>(state.range(0)), 4243);
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R", 2, {0}, 1)};
  Query query = ParseQuery(":= exists x, y . R(x, y) & R(y, x)").value();
  for (auto _ : state) {
    int mu = ConditionalMuViaChase(query, fds, db, Tuple{});
    benchmark::DoNotOptimize(mu);
  }
}
BENCHMARK(BM_ConditionalViaChase)->Arg(4)->Arg(8)->Arg(16);

void BM_ConditionalExact(benchmark::State& state) {
  // The general-purpose algorithm pays Bell(#nulls): keep instances small.
  Database db = MakeDb(static_cast<std::size_t>(state.range(0)), 4243);
  ConstraintSet constraints = {std::make_shared<FunctionalDependency>(
      "R", 2, std::vector<std::size_t>{0}, 1)};
  Query query = ParseQuery(":= exists x, y . R(x, y) & R(y, x)").value();
  for (auto _ : state) {
    Rational mu = ConditionalMu(query, constraints, db);
    benchmark::DoNotOptimize(mu);
  }
}
BENCHMARK(BM_ConditionalExact)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("chase");
  ReportAgreement(&experiment);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("(claim shape: chase scales polynomially; the chase shortcut "
              "beats the exact partition-polynomial computation by orders "
              "of magnitude as nulls grow)\n");
  return experiment.Finish();
}
