// Experiment E7 (Proposition 4).
//
// Paper claim: for every rational s = p/r in (0,1] there is a database, a
// single inclusion dependency, and a Boolean conjunctive query with
// µ(Q|Σ,D) = s, via an explicit construction.
//
// Measured: the construction is built for a grid of p/r values and the
// exact conditional measure is computed with the partition-polynomial
// algorithm; every row must match.

#include <cstdio>

#include "bench_common.h"
#include "core/conditional.h"
#include "gen/scenarios.h"

using namespace zeroone;

int main() {
  bench::Experiment experiment("rational_values");
  std::printf("E7: every rational is a conditional measure (Prop 4)\n");
  std::printf("----------------------------------------------------\n");
  std::printf("%8s %12s %8s\n", "p/r", "measured", "match");
  std::size_t matches = 0;
  std::size_t total = 0;
  for (std::size_t r = 1; r <= 9; ++r) {
    for (std::size_t p = 1; p <= r; ++p) {
      RationalValueExample example = Proposition4Example(p, r);
      Rational mu =
          ConditionalMu(example.query, example.constraints, example.db);
      bool match = mu == Rational(static_cast<std::int64_t>(p),
                                  static_cast<std::int64_t>(r));
      ++total;
      matches += static_cast<std::size_t>(match);
      if (r <= 5 || p == 1 || p == r) {
        std::printf("%5zu/%-2zu %12s %8s\n", p, r, mu.ToString().c_str(),
                    match ? "yes" : "NO");
      }
    }
  }
  std::printf("... (%zu/%zu grid points match; claim: all)\n", matches,
              total);
  experiment.Claim(total > 0 && matches == total,
                   "Proposition 4 construction realizes every p/r exactly");
  return experiment.Finish();
}
