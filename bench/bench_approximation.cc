// Experiment E16 (Section 6, "Quality of Approximations").
//
// Paper direction: approximation schemes for certain answers (the 3-valued
// SQL-style evaluation of [26, 32]) are sound but incomplete; "the only
// theoretical guarantee we have is that on databases without nulls,
// approximation schemes do not lose any answers. We would like to use the
// techniques developed here to measure the quality of such approximations."
//
// Measured, with exactly those techniques: across null densities,
//   recall      = |3V-certain| / |certain|          (how much is lost),
//   naive gap   = |naive| − |certain|               (what µ reclassifies),
// and the µ-classification of the missed answers: every certain answer the
// 3-valued scheme misses still has µ = 1, so the measure framework pinpoints
// the loss. Timings compare the three checks.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/measure.h"
#include "core/threevalued.h"
#include "gen/random_db.h"
#include "gen/random_query.h"

using namespace zeroone;

namespace {

Database MakeDb(std::uint64_t seed, double null_probability) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, 4}, {"S", 1, 3}};
  options.constant_pool = 3;
  options.null_pool = 3;
  options.null_probability = null_probability;
  options.seed = seed;
  return GenerateRandomDatabase(options);
}

Query MakeQuery(std::uint64_t seed) {
  RandomQueryOptions options;
  options.relations = {{"R", 2}, {"S", 1}};
  options.free_variables = 1;
  options.existential_variables = 1;
  options.clauses = 2;
  options.atoms_per_clause = 2;
  options.seed = seed;
  return GenerateRandomFo(options, 0.35);
}

void QualityTable(bench::Experiment* experiment) {
  std::printf("%12s %10s %10s %10s %12s %14s\n", "null-prob", "certain",
              "3V-found", "missed", "recall", "missed w/ mu=1");
  bool misses_have_mu1 = true;
  for (double p : {0.1, 0.3, 0.5, 0.7}) {
    std::size_t certain_total = 0;
    std::size_t found_total = 0;
    std::size_t missed_mu1 = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      Database db = MakeDb(seed + 90000, p);
      Query q = MakeQuery(seed + 90100);
      for (const Tuple& t : CertainAnswers(q, db)) {
        ++certain_total;
        if (ThreeValuedMembership(q, db, t) == TruthValue::kTrue) {
          ++found_total;
        } else {
          // The miss is still almost certainly true — by Cor 1 certain ⊆
          // naive, so µ = 1; counted to confirm the measure classifies it.
          missed_mu1 += static_cast<std::size_t>(MuLimit(q, db, t) == 1);
        }
      }
    }
    std::size_t missed = certain_total - found_total;
    misses_have_mu1 = misses_have_mu1 && missed == missed_mu1;
    std::printf("%12.1f %10zu %10zu %10zu %11.1f%% %14zu\n", p,
                certain_total, found_total, missed,
                certain_total == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(found_total) /
                          static_cast<double>(certain_total),
                missed_mu1);
  }
  std::printf("(claims: recall = 100%% at null-prob 0 by [32]; every missed "
              "certain answer has mu = 1 — the measure recovers what the "
              "approximation loses)\n\n");
  experiment->Claim(misses_have_mu1,
                    "every certain answer missed by 3-valued evaluation "
                    "still has mu = 1");
}

void BM_ThreeValuedCheck(benchmark::State& state) {
  Database db = MakeDb(555, 0.4);
  Query q = MakeQuery(556);
  Tuple t{db.ActiveDomain().front()};
  for (auto _ : state) {
    TruthValue tv = ThreeValuedMembership(q, db, t);
    benchmark::DoNotOptimize(tv);
  }
}
BENCHMARK(BM_ThreeValuedCheck);

void BM_NaiveCheck(benchmark::State& state) {
  Database db = MakeDb(555, 0.4);
  Query q = MakeQuery(556);
  Tuple t{db.ActiveDomain().front()};
  for (auto _ : state) {
    bool naive = AlmostCertainlyTrue(q, db, t);
    benchmark::DoNotOptimize(naive);
  }
}
BENCHMARK(BM_NaiveCheck);

void BM_ExactCertainCheck(benchmark::State& state) {
  Database db = MakeDb(555, 0.4);
  Query q = MakeQuery(556);
  Tuple t{db.ActiveDomain().front()};
  for (auto _ : state) {
    bool certain = IsCertainAnswer(q, db, t);
    benchmark::DoNotOptimize(certain);
  }
}
BENCHMARK(BM_ExactCertainCheck);

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("approximation");
  std::printf("E16: quality of certain-answer approximations (Section 6)\n");
  std::printf("---------------------------------------------------------\n");
  QualityTable(&experiment);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("(claim shape: the 3-valued check costs about one evaluation "
              "— same order as naive — while exact certainty pays the "
              "exponential valuation search)\n");
  return experiment.Finish();
}
