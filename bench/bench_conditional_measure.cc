// Experiments E6 and E8 (Theorem 3, Theorem 4).
//
// Paper claims:
//  - E6: µ(Q|Σ,D,ā) always exists and is rational; on the Section 4
//    example it equals 1/3 and 2/3.
//  - E8: if Σ^naive(D) = true, then µ(Q|Σ,D,ā) = µ(Q,D,ā) — almost surely
//    true constraints don't matter.
//
// Measured: the worked example (exact values and the finite-k sequence),
// convergence of µ^k(Q|Σ) to the closed-form limit on random instances, and
// the E8 equality on constraint sets closed under naive evaluation.

#include <cstdio>

#include "bench_common.h"
#include "constraints/ind.h"
#include "core/conditional.h"
#include "core/measure.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "gen/scenarios.h"

using namespace zeroone;

int main() {
  bench::Experiment experiment("conditional_measure");
  std::printf("E6: conditional measure exists and is rational (Thm 3)\n");
  std::printf("------------------------------------------------------\n");
  ConditionalExample example = PaperConditionalExample();
  ConditionalMeasure mu_a = ComputeConditionalMu(
      example.query, example.constraints, example.db, example.tuple_a);
  ConditionalMeasure mu_b = ComputeConditionalMu(
      example.query, example.constraints, example.db, example.tuple_b);
  std::printf("Section 4 example: mu(Q|Sigma,D,(1,⊥)) = %s (claim 1/3), "
              "mu(Q|Sigma,D,(2,⊥)) = %s (claim 2/3)\n",
              mu_a.value.ToString().c_str(), mu_b.value.ToString().c_str());
  experiment.Claim(mu_a.value == Rational(1, 3) &&
                       mu_b.value == Rational(2, 3),
                   "Section 4 example: conditional measures are 1/3 and 2/3");

  std::printf("\nfinite-k sequence for (2,⊥):  ");
  Query sigma = ConstraintSetQuery(example.constraints);
  Query qb = example.query.Substitute(example.tuple_b);
  for (std::size_t k = 4; k <= 12; k += 2) {
    std::printf("mu^%zu=%s  ", k,
                ConditionalMuK(qb, sigma, example.db, Tuple{}, k)
                    .ToString()
                    .c_str());
  }
  std::printf("\n");

  std::printf("\nRandom IND instances: distinct rational limits observed\n");
  std::printf("%6s %28s %10s\n", "seed", "mu(Q|Sigma,D)", "in[0,1]");
  bool all_in_range = true;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    RandomDatabaseOptions db_options;
    db_options.relations = {{"R", 2, 3}, {"U", 1, 3}};
    db_options.constant_pool = 3;
    db_options.null_pool = 2;
    db_options.null_probability = 0.5;
    db_options.seed = seed + 8000;
    Database db = GenerateRandomDatabase(db_options);
    ConstraintSet constraints = {std::make_shared<InclusionDependency>(
        "R", 2, std::vector<std::size_t>{0}, "U", 1,
        std::vector<std::size_t>{0})};
    RandomQueryOptions q_options;
    q_options.relations = {{"R", 2}, {"U", 1}};
    q_options.free_variables = 0;
    q_options.existential_variables = 2;
    q_options.clauses = 1;
    q_options.atoms_per_clause = 2;
    q_options.seed = seed + 8100;
    Query query = GenerateRandomUcq(q_options);
    Rational mu = ConditionalMu(query, constraints, db);
    bool in_range = mu >= Rational(0) && mu <= Rational(1);
    all_in_range = all_in_range && in_range;
    std::printf("%6llu %28s %10s\n",
                static_cast<unsigned long long>(seed), mu.ToString().c_str(),
                in_range ? "yes" : "NO");
  }
  experiment.Claim(all_in_range,
                   "every random conditional measure is a rational in [0,1]");

  std::printf("\nE8: almost surely true constraints do not matter (Thm 4)\n");
  std::printf("---------------------------------------------------------\n");
  std::size_t agreements = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    RandomDatabaseOptions db_options;
    db_options.relations = {{"R", 2, 3}, {"U", 1, 4}};
    db_options.constant_pool = 4;
    db_options.null_pool = 2;
    db_options.null_probability = 0.35;
    db_options.seed = seed + 8200;
    Database db = GenerateRandomDatabase(db_options);
    for (Relation::Row t : db.relation("R")) {
      db.mutable_relation("U").Insert({t[0]});  // Close U: Σ^naive true.
    }
    ConstraintSet constraints = {std::make_shared<InclusionDependency>(
        "R", 2, std::vector<std::size_t>{0}, "U", 1,
        std::vector<std::size_t>{0})};
    RandomQueryOptions q_options;
    q_options.relations = {{"R", 2}, {"U", 1}};
    q_options.free_variables = 0;
    q_options.existential_variables = 2;
    q_options.clauses = 2;
    q_options.atoms_per_clause = 2;
    q_options.seed = seed + 8300;
    Query query = GenerateRandomFo(q_options, 0.3);
    Rational conditional = ConditionalMu(query, constraints, db);
    ++total;
    agreements += static_cast<std::size_t>(
        conditional == Rational(MuLimit(query, db)));
  }
  std::printf("mu(Q|Sigma,D) == mu(Q,D) on %zu/%zu instances with "
              "Sigma^naive(D) = true   (claim: all)\n",
              agreements, total);
  experiment.Claim(total > 0 && agreements == total,
                   "Theorem 4: almost surely true constraints do not matter");
  return experiment.Finish();
}
