// Experiment E1/E2 (Theorem 1, 0–1 law).
//
// Paper claim: µ^k(Q,D,ā) converges, the limit is 0 or 1, and it is 1
// exactly when ā ∈ Q^naive(D). Proof device: the share of C-bijective
// valuations → 1.
//
// Measured here: (a) µ^k along k for the intro example's two naive answers
// and a non-answer; (b) µ from the definition (partition-polynomial limit)
// vs naive evaluation across random databases; (c) the bijective share.

#include <cstdio>

#include "bench_common.h"
#include "core/measure.h"
#include "core/support.h"
#include "core/support_polynomial.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "gen/scenarios.h"

using namespace zeroone;

int main() {
  bench::Experiment experiment("zero_one_law");
  std::printf("E1: 0-1 law (Theorem 1)\n");
  std::printf("-----------------------\n");
  IntroExample example = PaperIntroExample();
  Tuple a{Value::Constant("c1"), Value::Null("1")};
  Tuple b{Value::Constant("c2"), Value::Null("2")};
  Tuple bad{Value::Constant("c2"), Value::Null("1")};

  std::printf("mu^k on the intro example (paper: first two -> 1, last -> 0)\n");
  std::printf("%6s %14s %14s %14s\n", "k", "mu^k(c1,n1)", "mu^k(c2,n2)",
              "mu^k(c2,n1)");
  for (std::size_t k = 4; k <= 28; k += 4) {
    std::printf("%6zu %14.6f %14.6f %14.6f\n", k,
                MuK(example.query, example.db, a, k).ToDouble(),
                MuK(example.query, example.db, b, k).ToDouble(),
                MuK(example.query, example.db, bad, k).ToDouble());
  }
  Rational mu_a = MuViaPolynomial(example.query, example.db, a);
  Rational mu_b = MuViaPolynomial(example.query, example.db, b);
  Rational mu_bad = MuViaPolynomial(example.query, example.db, bad);
  std::printf("limit via partition polynomial: %s, %s, %s  (claim: 1, 1, 0)\n",
              mu_a.ToString().c_str(), mu_b.ToString().c_str(),
              mu_bad.ToString().c_str());
  experiment.Claim(mu_a == Rational(1) && mu_b == Rational(1) &&
                       mu_bad == Rational(0),
                   "intro example limits are 1, 1, 0");

  std::printf(
      "\nRandom sweep: mu (from definition) vs naive evaluation\n");
  std::size_t checked = 0;
  std::size_t zero_one = 0;
  std::size_t matches = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    RandomDatabaseOptions db_options;
    db_options.relations = {{"R", 2, 4}, {"S", 1, 3}};
    db_options.constant_pool = 3;
    db_options.null_pool = 3;
    db_options.null_probability = 0.45;
    db_options.seed = seed + 5000;
    Database db = GenerateRandomDatabase(db_options);
    RandomQueryOptions q_options;
    q_options.relations = {{"R", 2}, {"S", 1}};
    q_options.free_variables = 1;
    q_options.existential_variables = 1;
    q_options.clauses = 2;
    q_options.atoms_per_clause = 2;
    q_options.seed = seed + 6000;
    Query fo = GenerateRandomFo(q_options, 0.35);
    for (Value v : db.ActiveDomain()) {
      Tuple t{v};
      Rational mu = MuViaPolynomial(fo, db, t);
      bool is_zero_or_one = mu == Rational(0) || mu == Rational(1);
      bool agrees =
          (mu == Rational(1)) == AlmostCertainlyTrue(fo, db, t);
      ++checked;
      zero_one += static_cast<std::size_t>(is_zero_or_one);
      matches += static_cast<std::size_t>(agrees);
    }
  }
  std::printf("  %zu (query, tuple) pairs: mu in {0,1} for %zu, "
              "mu == naive for %zu   (claim: all)\n",
              checked, zero_one, matches);
  experiment.Claim(checked > 0 && zero_one == checked,
                   "mu is 0 or 1 on every random (query, tuple) pair");
  experiment.Claim(matches == checked,
                   "mu == 1 exactly on naive answers (Theorem 1)");

  std::printf("\nE2: share of C-bijective valuations (proof of Thm 1)\n");
  SupportInstance instance =
      MakeSupportInstance(example.query, example.db, a);
  std::printf("%6s %18s %22s\n", "k", "bijective share",
              "mu^k_bij (within bij)");
  double previous_share = 0.0;
  bool share_grows = true;
  bool bijective_witnessed = true;
  for (std::size_t k = 8; k <= 40; k += 8) {
    BijectiveSupportCount count =
        CountBijectiveSupport(instance, example.db, k);
    double share = Rational(count.bijective, count.total).ToDouble();
    double mu_bij = count.bijective.is_zero()
                        ? 0.0
                        : Rational(count.support, count.bijective).ToDouble();
    share_grows = share_grows && share >= previous_share;
    previous_share = share;
    bijective_witnessed = bijective_witnessed && mu_bij == 1.0;
    std::printf("%6zu %18.6f %22.6f\n", k, share, mu_bij);
  }
  std::printf("(claim: share -> 1; within bijective valuations the naive "
              "answer is always witnessed -> 1.0 column)\n");
  experiment.Claim(share_grows && previous_share > 0.5,
                   "C-bijective share of valuations grows toward 1");
  experiment.Claim(bijective_witnessed,
                   "every C-bijective valuation witnesses the naive answer");
  return experiment.Finish();
}
