// Experiment E4 (Proposition 2, open-world semantics).
//
// Paper claim: under OWA the connection between the measure and naive
// evaluation breaks: for D with one empty unary relation U,
// owa-m^k(¬∃x U(x), D) = 2^{-k} → 0 although naive evaluation says true,
// and owa-m^k(∃x U(x), D) → 1 although naive evaluation says false.

#include <cstdio>

#include "bench_common.h"
#include "core/measure.h"
#include "core/owa.h"
#include "gen/scenarios.h"

using namespace zeroone;

int main() {
  bench::Experiment experiment("owa");
  std::printf("E4: open-world measure (Proposition 2)\n");
  std::printf("---------------------------------------\n");
  OwaExample example = Proposition2Example();
  std::printf("D: single empty unary relation U\n");
  bool naive_q1 = MuLimit(example.q1, example.db);
  bool naive_q2 = MuLimit(example.q2, example.db);
  std::printf("Q1 = %s   (naive: %s)\n", example.q1.ToString().c_str(),
              naive_q1 ? "true" : "false");
  std::printf("Q2 = %s   (naive: %s)\n", example.q2.ToString().c_str(),
              naive_q2 ? "true" : "false");
  experiment.Claim(naive_q1 && !naive_q2,
                   "naive evaluation: Q1 true, Q2 false on the empty U");
  std::printf("%6s %16s %12s %16s\n", "k", "owa-m^k(Q1)", "claim 2^-k",
              "owa-m^k(Q2)");
  bool q1_matches_series = true;
  std::size_t points = 0;
  for (std::size_t k = 1; k <= 8; ++k) {
    StatusOr<Rational> q1 = OwaMK(example.q1, example.db, k);
    StatusOr<Rational> q2 = OwaMK(example.q2, example.db, k);
    if (!q1.ok() || !q2.ok()) {
      std::printf("%6zu  (guard: %s)\n", k, q1.status().message().c_str());
      break;
    }
    q1_matches_series =
        q1_matches_series &&
        *q1 == Rational(1, static_cast<std::int64_t>(1) << k);
    ++points;
    std::printf("%6zu %16s %12.6f %16s\n", k, q1->ToString().c_str(),
                1.0 / static_cast<double>(1u << k), q2->ToString().c_str());
  }
  std::printf("(claim: owa-m(Q1) = 0 with naive true; owa-m(Q2) = 1 with "
              "naive false — naive evaluation and the OWA measure point in "
              "opposite directions)\n");
  experiment.Claim(points > 0 && q1_matches_series,
                   "owa-m^k(Q1) equals 2^-k exactly (Proposition 2)");
  return experiment.Finish();
}
