// Experiment E13 (Proposition 7 and Section 5).
//
// Paper claims: best-vs-non-best and almost-certainly-true-vs-false are
// fully orthogonal — all four combinations occur; and on the Section 5
// difference-query example, Best(Q,D) = {(2,⊥2)} while certain answers are
// empty.
//
// Measured: the four cells of the orthogonality table with exact finite-k
// measures, and the Section 5 example's comparison outcomes.

#include <cstdio>

#include <algorithm>

#include "bench_common.h"
#include "core/comparison.h"
#include "core/measure.h"
#include "core/support.h"
#include "gen/scenarios.h"

using namespace zeroone;

int main() {
  bench::Experiment experiment("best_answers");
  std::printf("E13: best answers vs the measure (Prop 7, Section 5)\n");
  std::printf("----------------------------------------------------\n");

  std::printf("Section 5 example (Q = R - S):\n");
  BestAnswerExample example = PaperBestAnswerExample();
  std::size_t certain = CertainAnswers(example.query, example.db).size();
  std::printf("  certain answers: %zu   (claim: 0)\n", certain);
  experiment.Claim(certain == 0,
                   "Section 5 example has no certain answers");
  bool dominated = StrictlyDominated(example.query, example.db,
                                     example.tuple_a, example.tuple_b);
  std::printf("  (1,⊥1) ◁ (2,⊥2): %s   (claim: yes)\n",
              dominated ? "yes" : "no");
  experiment.Claim(dominated, "(1,⊥1) is strictly dominated by (2,⊥2)");
  std::vector<Tuple> best = BestAnswers(example.query, example.db);
  std::printf("  Best(Q,D) = {");
  for (std::size_t i = 0; i < best.size(); ++i) {
    std::printf("%s%s", i ? ", " : " ", best[i].ToString().c_str());
  }
  std::printf(" }   (claim: {(2,⊥2)})\n\n");
  experiment.Claim(best.size() == 1 && best[0] == example.tuple_b,
                   "Best(Q,D) is exactly {(2,⊥2)}");

  std::printf("Proposition 7 orthogonality table:\n");
  std::printf("%-12s %-10s %-8s %-12s %-12s\n", "tuple", "variant", "best?",
              "mu", "mu^8");
  for (bool with_g : {false, true}) {
    OrthogonalityExample ortho = Proposition7Example(with_g);
    std::vector<Tuple> b = BestAnswers(ortho.query, ortho.db);
    for (const Tuple& t : {ortho.tuple_a, ortho.tuple_b}) {
      bool is_best = std::count(b.begin(), b.end(), t) > 0;
      std::printf("%-12s %-10s %-8s %-12d %-12s\n", t.ToString().c_str(),
                  with_g ? "with G" : "plain", is_best ? "best" : "non-best",
                  MuLimit(ortho.query, ortho.db, t),
                  MuK(ortho.query, ortho.db, t, 8).ToString().c_str());
    }
  }
  std::printf("(claim: the four rows realize (best,1), (best,0), "
              "(non-best,1), (non-best,0); mu^k = 1-1/k and 1/k resp.)\n\n");

  std::printf("Best_mu (best ∩ almost certainly true):\n");
  OrthogonalityExample plain = Proposition7Example(false);
  std::vector<Tuple> best_mu = BestMuAnswers(plain.query, plain.db);
  std::printf("  plain variant: {");
  for (std::size_t i = 0; i < best_mu.size(); ++i) {
    std::printf("%s%s", i ? ", " : " ", best_mu[i].ToString().c_str());
  }
  std::printf(" }   (claim: {(a)})\n");
  experiment.Claim(best_mu.size() == 1,
                   "Best_mu of the plain Proposition 7 variant is a "
                   "single answer");
  return experiment.Finish();
}
