// Experiment E12 (Propositions 5 and 6, counting-hardness shape).
//
// Paper claims: computing µ(Q|Σ,D) is in FP^#P (Prop 5) and #P-hard even
// for a fixed unary foreign key (Prop 6), while *satisfiability* of unary
// keys and foreign keys is decidable in polynomial time.
//
// Measured: (a) the cost of the exact partition-polynomial computation as
// the number of nulls grows — the Bell(m)·(a+1)^m profile behind the FP^#P
// upper bound; (b) the polynomial-time key/FK satisfiability check scaling
// with database size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "common/partitions.h"
#include "constraints/keys.h"
#include "constraints/ind.h"
#include "core/conditional.h"
#include "gen/random_db.h"
#include "query/parser.h"

using namespace zeroone;

namespace {

Database MakeNullHeavyDb(std::size_t nulls) {
  Database db;
  Relation& r = db.AddRelation("R", 2);
  Relation& u = db.AddRelation("U", 1);
  for (std::size_t i = 0; i < nulls; ++i) {
    r.Insert({Value::Null("sp" + std::to_string(i)),
              Value::Int(static_cast<std::int64_t>(i % 3))});
  }
  u.Insert({Value::Int(0)});
  u.Insert({Value::Int(1)});
  return db;
}

void BM_ExactConditionalByNullCount(benchmark::State& state) {
  std::size_t nulls = static_cast<std::size_t>(state.range(0));
  Database db = MakeNullHeavyDb(nulls);
  ConstraintSet constraints = {std::make_shared<InclusionDependency>(
      "R", 2, std::vector<std::size_t>{0}, "U", 1,
      std::vector<std::size_t>{0})};
  Query query = ParseQuery(":= exists x, y . R(x, y) & U(x)").value();
  for (auto _ : state) {
    Rational mu = ConditionalMu(query, constraints, db);
    benchmark::DoNotOptimize(mu);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(nulls));
}
BENCHMARK(BM_ExactConditionalByNullCount)->DenseRange(1, 7);

void BM_KeySatisfiability(benchmark::State& state) {
  std::size_t tuples = static_cast<std::size_t>(state.range(0));
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, tuples}, {"S", 2, tuples}};
  options.constant_pool = tuples * 2;  // Keep key duplicates rare.
  options.null_pool = tuples / 3 + 1;
  options.null_probability = 0.3;
  options.seed = 13579;
  Database db = GenerateRandomDatabase(options);
  // Ensure the key column of S is null-free so the check exercises the
  // chase + FK machinery rather than failing early.
  Database clean(db.schema());
  for (const auto& [name, rel] : db.relations()) {
    for (Relation::Row t : rel) {
      if (name == "S" && t[0].is_null()) continue;
      clean.mutable_relation(name).InsertRow(t.data());
    }
  }
  std::vector<UnaryKey> keys = {{"S", 2, 0}};
  std::vector<UnaryForeignKey> fks = {{"R", 1, "S", 0}};
  for (auto _ : state) {
    StatusOr<KeySatisfiability> result =
        CheckKeySatisfiability(keys, fks, clean);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(tuples));
}
BENCHMARK(BM_KeySatisfiability)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("sharp_p");
  std::printf("E12: #P-shaped exact computation vs PTIME satisfiability "
              "(Props 5, 6)\n");
  std::printf("--------------------------------------------------------\n");
  std::printf("Bell numbers drive the exact algorithm: ");
  for (std::size_t m = 1; m <= 7; ++m) {
    std::printf("B(%zu)=%s ", m, BellNumber(m).ToString().c_str());
  }
  experiment.Claim(BellNumber(7) == BigInt(877),
                   "Bell-number sequence is computed correctly (B(7) = 877)");
  std::printf("\n(claim shape: exact conditional-measure time tracks "
              "Bell(m)·(a+1)^m growth in the null count m, while key/FK "
              "satisfiability stays polynomial in |D|)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return experiment.Finish();
}
