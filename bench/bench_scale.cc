// Experiment E17: the framework at workload scale.
//
// The paper motivates the measure with data-integration practice: systems
// run naive evaluation on large integrated tables and need to know what the
// results mean. This bench runs the full pipeline on the intro scenario
// scaled up — customers × orders with a null fraction — and reports the
// costs that matter operationally:
//   - naive evaluation (the almost-certainty classifier, Thm 1 / Cor 2),
//   - the Theorem 8 polynomial-time Sep on a pair of answers,
//   - Monte-Carlo µ^k estimation for one answer,
// all of which stay tractable, versus the exact certainty check, which is
// feasible only while the null count is small.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/measure.h"
#include "data/relation.h"
#include "core/sampling.h"
#include "core/ucq_compare.h"
#include "gen/scenarios.h"
#include "par/pool.h"
#include "plan/mode.h"
#include "query/eval.h"
#include "query/matcher.h"
#include "query/parser.h"

using namespace zeroone;

namespace {

IntroExample Scaled(std::size_t customers) {
  return ScaledIntroExample(customers, /*orders_per_customer=*/5,
                            /*null_fraction=*/0.2,
                            /*seed=*/1234 + customers);
}

void BM_NaiveEvaluationScale(benchmark::State& state) {
  IntroExample example = Scaled(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<Tuple> naive = NaiveEvaluate(example.query, example.db);
    benchmark::DoNotOptimize(naive.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveEvaluationScale)->Arg(8)->Arg(16)->Arg(32);

void BM_UcqMembershipScale(benchmark::State& state) {
  // Membership of one tuple via the backtracking matcher on the UCQ part
  // (R1 alone): polynomial and far below the generic evaluator's cost.
  IntroExample example = Scaled(static_cast<std::size_t>(state.range(0)));
  StatusOr<Query> positive = ParseQuery("Q(x, y) := R1(x, y)");
  Tuple probe = example.db.relation("R1").row(0).ToTuple();
  for (auto _ : state) {
    StatusOr<bool> member = UcqMembership(*positive, example.db, probe);
    benchmark::DoNotOptimize(member.ok());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UcqMembershipScale)->Arg(32)->Arg(128)->Arg(512);

void BM_SampledMuScale(benchmark::State& state) {
  // 500-sample estimate of µ^k for one naive answer — the practical
  // instrument once exact enumeration is out of reach.
  IntroExample example = Scaled(static_cast<std::size_t>(state.range(0)));
  std::vector<Tuple> naive = NaiveEvaluate(example.query, example.db);
  if (naive.empty()) {
    state.SkipWithError("no naive answers at this scale");
    return;
  }
  Tuple probe = naive.front();
  for (auto _ : state) {
    MuEstimate estimate =
        EstimateMuK(example.query, example.db, probe, 500, 500, 7);
    benchmark::DoNotOptimize(estimate.estimate);
  }
}
BENCHMARK(BM_SampledMuScale)->Arg(8)->Arg(16);

void ScaleTable(bench::Experiment* experiment) {
  std::printf("%12s %10s %10s %14s %16s\n", "customers", "tuples", "nulls",
              "naive answers", "all mu = 1?");
  bool every_scale = true;
  for (std::size_t customers : {20u, 50u, 100u, 200u}) {
    IntroExample example = Scaled(customers);
    std::vector<Tuple> naive = NaiveEvaluate(example.query, example.db);
    bool all_one = true;
    for (const Tuple& t : naive) {
      all_one = all_one && MuLimit(example.query, example.db, t) == 1;
    }
    every_scale = every_scale && all_one;
    std::printf("%12zu %10zu %10zu %14zu %16s\n", customers,
                example.db.TupleCount(), example.db.Nulls().size(),
                naive.size(), all_one ? "yes" : "NO");
  }
  std::printf("(claim: Theorem 1 at every scale — naive answers are exactly "
              "the almost-certainly-true ones, and the classifier costs one "
              "evaluation regardless of the null count)\n\n");
  experiment->Claim(every_scale,
                    "Theorem 1 holds at every workload scale (all naive "
                    "answers have mu = 1)");
}

// Evaluates `query` naively under the given storage mode and reports the
// wall time; the answer count comes back through *answers so the claim can
// also check that both paths agree.
double TimedNaiveMs(StorageMode mode, const Query& query, const Database& db,
                    std::size_t* answers) {
  // The scan/indexed comparison is defined on the tree-walking interpreter:
  // the bytecode VM (src/plan) resolves candidates through the index layer
  // in both storage modes, so under compiled plans the two modes measure
  // the same thing. CompiledPlanTable below covers the interpreter-vs-VM
  // axis.
  plan::PlanMode previous_plan = plan::plan_mode();
  plan::SetPlanMode(plan::PlanMode::kInterpret);
  StorageMode previous = storage_mode();
  SetStorageMode(mode);
  std::size_t previous_threads = par::par_threads();
  par::SetParThreads(1);  // Serial queries: this table isolates storage.
  auto start = std::chrono::steady_clock::now();
  std::vector<Tuple> result = NaiveEvaluate(query, db);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  par::SetParThreads(previous_threads);
  SetStorageMode(previous);
  plan::SetPlanMode(previous_plan);
  *answers = result.size();
  return ms;
}

void IndexedStorageTable(bench::Experiment* experiment) {
  // A pure join workload: R holds a functional graph i -> 7i+1 (mod n), and
  // the query asks for the 2-cycles. Under full scans every existential
  // quantifier walks the whole active domain (n values per candidate);
  // under the probe path the bound column of R(x, y) pins the candidates
  // for y to the rows matching x.
  constexpr std::size_t kRows = 1500;
  Database db;
  Relation& r = db.AddRelation("R", 2);
  std::vector<Tuple> batch;
  batch.reserve(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    batch.push_back(Tuple{Value::Int(static_cast<std::int64_t>(i)),
                          Value::Int(static_cast<std::int64_t>(
                              (i * 7 + 1) % kRows))});
  }
  r.InsertBatch(batch);
  Query join = ParseQuery("Q(x) := exists y . R(x, y) & R(y, x)").value();
  std::size_t scan_answers = 0;
  std::size_t indexed_answers = 0;
  double scan_ms =
      TimedNaiveMs(StorageMode::kScan, join, db, &scan_answers);
  double indexed_ms =
      TimedNaiveMs(StorageMode::kIndexed, join, db, &indexed_answers);
  std::printf("indexed storage on a %zu-row join: scan %.1f ms, indexed "
              "%.1f ms (%.1fx), answers %zu/%zu\n\n",
              kRows, scan_ms, indexed_ms,
              indexed_ms > 0 ? scan_ms / indexed_ms : 0.0, scan_answers,
              indexed_answers);
  experiment->Claim(scan_answers == indexed_answers,
                    "indexed and scan storage agree on the join query");
  experiment->Claim(scan_ms >= 5.0 * indexed_ms,
                    "hash probes evaluate the join workload at least 5x "
                    "faster than full scans");
}

// Evaluates `query` naively under the given plan mode and reports the wall
// time (storage stays kIndexed — this isolates plan compilation from the
// PR-5 storage win).
double TimedPlanMs(plan::PlanMode mode, const Query& query,
                   const Database& db, std::size_t* answers) {
  plan::PlanMode previous = plan::plan_mode();
  plan::SetPlanMode(mode);
  std::size_t previous_threads = par::par_threads();
  par::SetParThreads(1);  // Serial queries: this table isolates the VM.
  auto start = std::chrono::steady_clock::now();
  std::vector<Tuple> result = NaiveEvaluate(query, db);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  par::SetParThreads(previous_threads);
  plan::SetPlanMode(previous);
  *answers = result.size();
  return ms;
}

void CompiledPlanTable(bench::Experiment* experiment) {
  // The same 2-cycle join workload as IndexedStorageTable, now comparing
  // the tree-walking interpreter (ZEROONE_PLAN=interpret) against the
  // cost-based plan lowered to bytecode (src/plan). Both run on indexed
  // storage; the delta is dispatch overhead — the interpreter re-walks the
  // Formula tree and re-derives candidate sets per binding, the VM runs a
  // flat instruction stream with the candidate atoms resolved at compile
  // time.
  constexpr std::size_t kRows = 1500;
  Database db;
  Relation& r = db.AddRelation("R", 2);
  std::vector<Tuple> batch;
  batch.reserve(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    batch.push_back(Tuple{Value::Int(static_cast<std::int64_t>(i)),
                          Value::Int(static_cast<std::int64_t>(
                              (i * 7 + 1) % kRows))});
  }
  r.InsertBatch(batch);
  Query join = ParseQuery("Q(x) := exists y . R(x, y) & R(y, x)").value();
  std::size_t interpreted_answers = 0;
  std::size_t compiled_answers = 0;
  double interpreted_ms = TimedPlanMs(plan::PlanMode::kInterpret, join, db,
                                      &interpreted_answers);
  double compiled_ms =
      TimedPlanMs(plan::PlanMode::kCompiled, join, db, &compiled_answers);
  std::printf("compiled plans on the %zu-row join: interpreted %.1f ms, "
              "compiled %.1f ms (%.1fx), answers %zu/%zu\n\n",
              kRows, interpreted_ms, compiled_ms,
              compiled_ms > 0 ? interpreted_ms / compiled_ms : 0.0,
              interpreted_answers, compiled_answers);
  experiment->Claim(interpreted_answers == compiled_answers,
                    "compiled and interpreted evaluation agree on the join "
                    "query");
  experiment->Claim(interpreted_ms >= 1.5 * compiled_ms,
                    "the bytecode VM evaluates the join workload at least "
                    "1.5x faster than the tree-walking interpreter");
}

// Evaluates `query` naively with the given morsel-team width and reports
// the wall time (indexed storage, compiled plans — the fastest serial
// configuration, so the parallel ratio is not flattered by dispatch
// overhead elsewhere).
double TimedParMs(std::size_t threads, const Query& query, const Database& db,
                  std::vector<Tuple>* answers) {
  plan::PlanMode previous_plan = plan::plan_mode();
  plan::SetPlanMode(plan::PlanMode::kCompiled);
  std::size_t previous_threads = par::par_threads();
  par::SetParThreads(threads);
  auto start = std::chrono::steady_clock::now();
  std::vector<Tuple> result = NaiveEvaluate(query, db);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  par::SetParThreads(previous_threads);
  plan::SetPlanMode(previous_plan);
  *answers = std::move(result);
  return ms;
}

void ParallelQueryTable(bench::Experiment* experiment) {
  // The 2-cycle join workload again, scaled up so each outer candidate does
  // real work, timed serial vs a 4-worker morsel team. The answers claim is
  // unconditional (the differential battery's contract, re-checked here on
  // the bench workload); the >= 3x speedup claim is only meaningful when
  // the machine actually has >= 4 hardware threads, so on smaller boxes it
  // is recorded as skipped with the measured ratio embedded.
  constexpr std::size_t kRows = 20000;
  Database db;
  Relation& r = db.AddRelation("R", 2);
  std::vector<Tuple> batch;
  batch.reserve(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    batch.push_back(Tuple{Value::Int(static_cast<std::int64_t>(i)),
                          Value::Int(static_cast<std::int64_t>(
                              (i * 7 + 1) % kRows))});
  }
  r.InsertBatch(batch);
  Query join = ParseQuery("Q(x) := exists y . R(x, y) & R(y, x)").value();
  std::vector<Tuple> serial_answers;
  std::vector<Tuple> parallel_answers;
  // Warm once so one-time plan-cache compilation does not pollute either
  // side of the ratio.
  TimedParMs(1, join, db, &serial_answers);
  double serial_ms = TimedParMs(1, join, db, &serial_answers);
  double parallel_ms = TimedParMs(4, join, db, &parallel_answers);
  double ratio = parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("morsel parallelism on the %zu-row join: serial %.1f ms, "
              "4 threads %.1f ms (%.2fx, %u hardware threads), answers "
              "%zu/%zu\n\n",
              kRows, serial_ms, parallel_ms, ratio, hw,
              serial_answers.size(), parallel_answers.size());
  experiment->Claim(serial_answers == parallel_answers,
                    "serial and 4-thread morsel teams return byte-identical "
                    "answers on the join workload");
  char ratio_claim[160];
  if (hw >= 4) {
    std::snprintf(ratio_claim, sizeof(ratio_claim),
                  "a 4-worker morsel team evaluates the join workload at "
                  "least 3x faster than serial (measured %.2fx on %u "
                  "hardware threads)",
                  ratio, hw);
    experiment->Claim(ratio >= 3.0, ratio_claim);
  } else {
    std::snprintf(ratio_claim, sizeof(ratio_claim),
                  "morsel speedup check skipped: only %u hardware threads "
                  "(measured %.2fx at 4 workers; needs >= 4 threads for the "
                  "3x bar)",
                  hw, ratio);
    experiment->Claim(true, ratio_claim);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("scale");
  std::printf("E17: the framework at workload scale\n");
  std::printf("------------------------------------\n");
  ScaleTable(&experiment);
  IndexedStorageTable(&experiment);
  CompiledPlanTable(&experiment);
  ParallelQueryTable(&experiment);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return experiment.Finish();
}
