// Experiment E15 (Theorem 1 beyond first-order logic).
//
// Paper claim: the 0–1 law "holds for a very large class of queries — the
// only condition we need is genericity", explicitly covering datalog and
// fixed-point logics, which have no classical logical 0–1 law story in this
// setting. Reachability (transitive closure) is the canonical non-FO
// generic query.
//
// Measured: (a) µ from the definition (partition-polynomial) is 0/1 and
// matches naive datalog evaluation across random incomplete graphs;
// (b) µ^k convergence for an almost-certain and an almost-impossible
// reachability fact; (c) semi-naive evaluation scaling on growing graphs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "data/io.h"
#include "data/relation.h"
#include "datalog/eval.h"
#include "datalog/measure.h"
#include "datalog/parser.h"
#include "gen/random_db.h"

using namespace zeroone;

namespace {

constexpr const char* kTransitiveClosure = R"(
  T(X, Y) :- E(X, Y).
  T(X, Z) :- E(X, Y), T(Y, Z).
  ?- T
)";

Database RandomGraph(std::size_t edges, std::size_t nodes, std::size_t nulls,
                     std::uint64_t seed) {
  RandomDatabaseOptions options;
  options.relations = {{"E", 2, edges}};
  options.constant_pool = nodes;
  options.null_pool = nulls;
  options.null_probability = nulls == 0 ? 0.0 : 0.3;
  options.seed = seed;
  return GenerateRandomDatabase(options);
}

void ZeroOneLawSweep(bench::Experiment* experiment) {
  DatalogProgram program = ParseDatalogProgram(kTransitiveClosure).value();
  std::size_t checked = 0;
  std::size_t zero_one = 0;
  std::size_t match_naive = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Database db = RandomGraph(4, 3, 2, seed + 70000);
    std::vector<Value> adom = db.ActiveDomain();
    for (Value x : adom) {
      for (Value y : adom) {
        Tuple t{x, y};
        Rational mu = DatalogMuViaPolynomial(program, db, t);
        ++checked;
        zero_one += static_cast<std::size_t>(mu == Rational(0) ||
                                             mu == Rational(1));
        match_naive += static_cast<std::size_t>(
            (mu == Rational(1)) == (DatalogMuLimit(program, db, t) == 1));
      }
    }
  }
  std::printf("reachability over random incomplete graphs: %zu pairs, "
              "mu in {0,1} for %zu, mu == naive for %zu   (claim: all — "
              "the 0-1 law needs only genericity, not FO)\n\n",
              checked, zero_one, match_naive);
  experiment->Claim(checked > 0 && zero_one == checked,
                    "datalog mu is 0 or 1 on every reachability pair");
  experiment->Claim(match_naive == checked,
                    "datalog mu == 1 exactly on naive datalog answers");
}

void ConvergenceTable() {
  DatalogProgram program = ParseDatalogProgram(kTransitiveClosure).value();
  // Likely path: a → ⊥1 → b (certain); unlikely path: needs v(⊥1) = v(⊥2).
  Database likely = ParseDatabase("E(2) = { (a, _be1), (_be1, b) }").value();
  Database unlikely =
      ParseDatabase("E(2) = { (a, _be2), (_be3, b) }").value();
  Tuple ab{Value::Constant("a"), Value::Constant("b")};
  std::printf("mu^k of reach(a,b):\n%6s %16s %16s\n", "k", "via shared ⊥",
              "via two nulls");
  for (std::size_t k = 3; k <= 12; k += 3) {
    std::printf("%6zu %16.6f %16.6f\n", k,
                DatalogMuK(program, likely, ab, k).ToDouble(),
                DatalogMuK(program, unlikely, ab, k).ToDouble());
  }
  std::printf("(claim: left column ≡ 1 — the shared null is a real path; "
              "right column = (3k-3)/k² → 0)\n\n");
}

void IndexedSemiNaiveTable(bench::Experiment* experiment) {
  // The semi-naive join E(X, Y), T(Y, Z): under full scans every delta
  // tuple is matched against all of T; under the probe path the bound join
  // column pins the T candidates. Timed once per storage mode on a sparse
  // graph whose closure dwarfs the edge set.
  Database db = RandomGraph(/*edges=*/1200, /*nodes=*/700, /*nulls=*/0, 9090);
  DatalogProgram program = ParseDatalogProgram(kTransitiveClosure).value();
  auto timed = [&](StorageMode mode, std::size_t* answers) {
    StorageMode previous = storage_mode();
    SetStorageMode(mode);
    auto start = std::chrono::steady_clock::now();
    std::vector<Tuple> closure = EvaluateDatalog(program, db);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    SetStorageMode(previous);
    *answers = closure.size();
    return ms;
  };
  std::size_t scan_answers = 0;
  std::size_t indexed_answers = 0;
  double scan_ms = timed(StorageMode::kScan, &scan_answers);
  double indexed_ms = timed(StorageMode::kIndexed, &indexed_answers);
  std::printf("indexed storage on semi-naive closure (%zu facts): scan "
              "%.1f ms, indexed %.1f ms (%.1fx)\n\n",
              scan_answers, scan_ms, indexed_ms,
              indexed_ms > 0 ? scan_ms / indexed_ms : 0.0);
  experiment->Claim(scan_answers == indexed_answers,
                    "indexed and scan storage agree on the closure");
  experiment->Claim(scan_ms >= 5.0 * indexed_ms,
                    "hash probes run the semi-naive closure at least 5x "
                    "faster than full scans");
}

void BM_TransitiveClosure(benchmark::State& state) {
  std::size_t edges = static_cast<std::size_t>(state.range(0));
  Database db = RandomGraph(edges, edges / 2 + 2, 0, 4242);
  DatalogProgram program = ParseDatalogProgram(kTransitiveClosure).value();
  for (auto _ : state) {
    std::vector<Tuple> closure = EvaluateDatalog(program, db);
    benchmark::DoNotOptimize(closure.size());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(edges));
}
BENCHMARK(BM_TransitiveClosure)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

void BM_StratifiedNegation(benchmark::State& state) {
  std::size_t edges = static_cast<std::size_t>(state.range(0));
  Database db = RandomGraph(edges, edges / 2 + 2, 0, 777);
  // Non-reachability requires the full closure plus a negation stratum.
  DatalogProgram program = ParseDatalogProgram(R"(
    T(X, Y)  :- E(X, Y).
    T(X, Z)  :- E(X, Y), T(Y, Z).
    N(X)     :- E(X, Y).
    N(Y)     :- E(X, Y).
    Far(X, Y) :- N(X), N(Y), !T(X, Y).
    ?- Far
  )").value();
  for (auto _ : state) {
    std::vector<Tuple> result = EvaluateDatalog(program, db);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_StratifiedNegation)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("datalog");
  std::printf("E15: the 0-1 law beyond FO — datalog reachability\n");
  std::printf("-------------------------------------------------\n");
  ZeroOneLawSweep(&experiment);
  ConvergenceTable();
  IndexedSemiNaiveTable(&experiment);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("(claim shape: semi-naive closure scales polynomially; the "
              "measure machinery applies to it unchanged)\n");
  return experiment.Finish();
}
