// Experiment E19: plan caching on the serving path.
//
// A dashboard-style serving workload re-runs the same query against a
// session between mutations: every request used to pay the full
// tree-walking evaluation. With the src/plan subsystem the dispatcher
// installs a plan-cache scope keyed on (session, version), so the first
// request compiles a cost-based bytecode program and every subsequent
// request executes the cached program directly.
//
// This bench drives Dispatcher::Execute with repeated `naive` requests
// under @nocache — the *result* cache is bypassed, so every request really
// evaluates; only the *plan* cache is hot — and compares
// ZEROONE_PLAN=interpret against the compiled default. The JSON metrics
// block picks up the plan.{compile,cache_hit,exec} counters for the run.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "plan/cache.h"
#include "plan/mode.h"
#include "svc/dispatch.h"
#include "svc/protocol.h"

using namespace zeroone;

namespace {

constexpr std::size_t kRows = 800;
constexpr int kRequests = 30;

// R holds the functional graph i -> 7i+1 (mod kRows); the query hunts for
// triangles, a three-way self-join that makes per-binding evaluator
// overhead visible.
constexpr const char* kQuery =
    "Q(x) := exists y . exists z . R(x, y) & R(y, z) & R(z, x)";

std::string GraphDbText() {
  std::string text = "R(2) = {";
  for (std::size_t i = 0; i < kRows; ++i) {
    if (i > 0) text += ",";
    text += " (n" + std::to_string(i) + ", n" +
            std::to_string((i * 7 + 1) % kRows) + ")";
  }
  text += " }";
  return text;
}

svc::Request NaiveRequest() {
  svc::Request request;
  request.session = "bench";
  request.command = "naive";
  request.no_cache = true;
  return request;
}

// Runs kRequests identical naive evaluations under `mode`, returning total
// wall time; all payloads must be identical and OK (checked by caller via
// the returned payload).
double TimedRequestsMs(svc::Dispatcher* dispatcher, plan::PlanMode mode,
                       std::string* payload, bool* all_ok) {
  plan::PlanMode previous = plan::plan_mode();
  plan::SetPlanMode(mode);
  *all_ok = true;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    svc::Response response = dispatcher->Execute(NaiveRequest());
    *all_ok = *all_ok && response.status == svc::WireStatus::kOk;
    if (i == 0) {
      *payload = response.payload;
    } else {
      *all_ok = *all_ok && response.payload == *payload;
    }
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  plan::SetPlanMode(previous);
  return ms;
}

}  // namespace

int main() {
  bench::Experiment experiment("plan");
  std::printf("E19: plan caching on the serving path\n");
  std::printf("-------------------------------------\n");

  svc::Dispatcher dispatcher(svc::Dispatcher::Options{});
  svc::Request setup = NaiveRequest();
  setup.command = "db";
  setup.args = GraphDbText();
  bool setup_ok = dispatcher.Execute(setup).status == svc::WireStatus::kOk;
  setup.command = "query";
  setup.args = kQuery;
  setup_ok =
      setup_ok && dispatcher.Execute(setup).status == svc::WireStatus::kOk;
  experiment.Claim(setup_ok, "session setup (db + query) succeeded");

  std::string interpreted_payload;
  std::string compiled_payload;
  bool interpreted_ok = false;
  bool compiled_ok = false;
  double interpreted_ms = TimedRequestsMs(
      &dispatcher, plan::PlanMode::kInterpret, &interpreted_payload,
      &interpreted_ok);
  plan::PlanCache::Stats before = plan::PlanCache::Global().stats();
  double compiled_ms = TimedRequestsMs(&dispatcher, plan::PlanMode::kCompiled,
                                       &compiled_payload, &compiled_ok);
  plan::PlanCache::Stats after = plan::PlanCache::Global().stats();

  std::printf("%d repeated naive requests (@nocache, %zu-row triangle "
              "join):\n  interpreted %.1f ms (%.2f ms/req)\n  compiled "
              "%8.1f ms (%.2f ms/req)  speedup %.1fx\n  plan cache: %llu "
              "hits, %llu misses during the compiled run\n\n",
              kRequests, kRows, interpreted_ms, interpreted_ms / kRequests,
              compiled_ms, compiled_ms / kRequests,
              compiled_ms > 0 ? interpreted_ms / compiled_ms : 0.0,
              static_cast<unsigned long long>(after.hits - before.hits),
              static_cast<unsigned long long>(after.misses - before.misses));

  experiment.Claim(interpreted_ok && compiled_ok,
                   "every request succeeded with a stable payload");
  experiment.Claim(compiled_payload == interpreted_payload,
                   "compiled and interpreted serving payloads are "
                   "byte-identical");
  experiment.Claim(after.hits - before.hits >=
                       static_cast<std::uint64_t>(kRequests - 1),
                   "the plan cache served every request after the first");
  experiment.Claim(interpreted_ms >= 5.0 * compiled_ms,
                   "hot-plan-cache serving is at least 5x faster than "
                   "interpreted serving on the repeated-query workload");
  return experiment.Finish();
}
