// Experiment E3 (Theorem 2).
//
// Paper claim: the valuation-counting measure µ^k and the
// database-counting measure m^k differ at finite k (valuations can collapse
// to the same v(D)) but have the same limit.
//
// Measured: both sequences on a database with collapsible nulls, for a
// query that converges to 1 and one that converges to 0.

#include <cstdio>

#include "bench_common.h"
#include "core/measure.h"
#include "core/support.h"
#include "data/io.h"
#include "query/parser.h"

using namespace zeroone;

int main() {
  bench::Experiment experiment("alternative_measure");
  std::printf("E3: alternative measure m^k vs mu^k (Theorem 2)\n");
  std::printf("-----------------------------------------------\n");
  Database db = ParseDatabase("R(2) = { (1, _alt1), (1, _alt2) }").value();
  // Q1 tends to 1; Q2 (the two nulls coincide) tends to 0. For Q2 the exact
  // closed forms are mu^k = 1/k and m^k = 2/(k+1).
  Query q1 = ParseQuery(":= exists x, y . R(x, y) & y != 2").value();
  Query q2 =
      ParseQuery(
          ":= exists x, y . R(x, y) & (forall z, u . R(z, u) -> u = y)")
          .value();

  std::printf("D: %s\n", db.ToString().c_str());
  std::printf("%6s | %12s %12s %12s | %12s %12s %12s\n", "k", "mu^k(Q1)",
              "m^k(Q1)", "nu^k(Q1)", "mu^k(Q2)", "m^k(Q2)", "nu^k(Q2)");
  bool q2_closed_forms = true;
  for (std::size_t k = 2; k <= 14; k += 2) {
    Rational mu_q2 = MuK(q2, db, k);
    Rational m_q2 = MK(q2, db, k);
    q2_closed_forms =
        q2_closed_forms &&
        mu_q2 == Rational(1, static_cast<std::int64_t>(k)) &&
        m_q2 == Rational(2, static_cast<std::int64_t>(k) + 1);
    std::printf("%6zu | %12.6f %12.6f %12.6f | %12.6f %12.6f %12.6f\n", k,
                MuK(q1, db, k).ToDouble(), MK(q1, db, k).ToDouble(),
                NuK(q1, db, k).ToDouble(), mu_q2.ToDouble(),
                m_q2.ToDouble(), NuK(q2, db, k).ToDouble());
  }
  experiment.Claim(q2_closed_forms,
                   "exact closed forms mu^k(Q2) = 1/k and m^k(Q2) = 2/(k+1)");
  std::printf("(claims: mu^k and m^k differ at finite k but pair up in the "
              "limit — Q1 -> 1, Q2 -> 0, exact forms mu^k(Q2) = 1/k and "
              "m^k(Q2) = 2/(k+1); the isomorphism-type measure nu^k "
              "STABILIZES instead, per the remark after Theorem 1: the "
              "number of types stops growing, so nu is a type-level "
              "measure, not an asymptotic one)\n");
  bool limit_q1 = MuLimit(q1, db);
  bool limit_q2 = MuLimit(q2, db);
  std::printf("limits by 0-1 law: mu(Q1) = %d, mu(Q2) = %d\n", limit_q1,
              limit_q2);
  experiment.Claim(limit_q1 && !limit_q2,
                   "limits pair up: mu(Q1) = 1, mu(Q2) = 0");
  return experiment.Finish();
}
