// Experiment E11 (Theorem 8).
//
// Paper claim: for unions of conjunctive queries, ⊴-/◁-Comparison and
// BestAnswer have polynomial-time data complexity — in contrast with the
// general FO case, whose generic algorithm is exponential in the number of
// nulls.
//
// Measured: (a) wall-clock of the Theorem 8 Sep algorithm as the database
// (and its null count) grows — polynomial growth; (b) the generic
// exponential algorithm on the same instances, exhibiting the crossover;
// (c) a correctness spot-check between the two.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/comparison.h"
#include "core/ucq_compare.h"
#include "gen/random_db.h"
#include "query/parser.h"

using namespace zeroone;

namespace {

Database MakeDb(std::size_t tuples, std::uint64_t seed) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, tuples}, {"S", 2, tuples / 2}};
  options.constant_pool = std::max<std::size_t>(3, tuples / 2);
  options.null_pool = std::max<std::size_t>(2, tuples / 4);
  options.null_probability = 0.35;
  options.seed = seed;
  return GenerateRandomDatabase(options);
}

Query MakeQuery() {
  return ParseQuery(
             "Q(x) := (exists y . R(x, y) & S(y, x)) | (exists y . S(x, y))")
      .value();
}

std::pair<Tuple, Tuple> MakePair(const Database& db) {
  std::vector<Value> adom = db.ActiveDomain();
  return {Tuple{adom.front()}, Tuple{adom.back()}};
}

void BM_UcqSeparates(benchmark::State& state) {
  std::size_t tuples = static_cast<std::size_t>(state.range(0));
  Database db = MakeDb(tuples, 1234);
  Query q = MakeQuery();
  auto [a, b] = MakePair(db);
  for (auto _ : state) {
    StatusOr<bool> sep = UcqSeparates(q, db, a, b);
    benchmark::DoNotOptimize(sep.ok());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(tuples));
}
BENCHMARK(BM_UcqSeparates)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_GenericSeparates(benchmark::State& state) {
  // Exponential in nulls: already painful at ~8 nulls (tuples/4 nulls).
  std::size_t tuples = static_cast<std::size_t>(state.range(0));
  Database db = MakeDb(tuples, 1234);
  Query q = MakeQuery();
  auto [a, b] = MakePair(db);
  for (auto _ : state) {
    bool sep = Separates(q, db, a, b);
    benchmark::DoNotOptimize(sep);
  }
}
BENCHMARK(BM_GenericSeparates)->Arg(8)->Arg(12)->Arg(16);

void BM_UcqBestAnswers(benchmark::State& state) {
  std::size_t tuples = static_cast<std::size_t>(state.range(0));
  Database db = MakeDb(tuples, 77);
  Query q = MakeQuery();
  for (auto _ : state) {
    StatusOr<std::vector<Tuple>> best = UcqBestAnswers(q, db);
    benchmark::DoNotOptimize(best.ok());
  }
}
BENCHMARK(BM_UcqBestAnswers)->Arg(8)->Arg(16)->Arg(24);

void SpotCheck(bench::Experiment* experiment) {
  std::size_t agreements = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Database db = MakeDb(6, seed + 11000);
    Query q = MakeQuery();
    std::vector<Value> adom = db.ActiveDomain();
    for (std::size_t i = 0; i + 1 < adom.size() && i < 4; ++i) {
      Tuple a{adom[i]};
      Tuple b{adom[i + 1]};
      StatusOr<bool> fast = UcqSeparates(q, db, a, b);
      if (!fast.ok()) continue;
      ++total;
      agreements += static_cast<std::size_t>(*fast == Separates(q, db, a, b));
    }
  }
  std::printf("correctness spot-check: Theorem 8 algorithm agrees with the "
              "generic search on %zu/%zu pairs (claim: all)\n\n",
              agreements, total);
  experiment->Claim(total > 0 && agreements == total,
                    "Theorem 8 UCQ algorithm agrees with the generic search");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("comparison_ucq");
  std::printf("E11: polynomial UCQ comparisons (Thm 8)\n");
  std::printf("---------------------------------------\n");
  SpotCheck(&experiment);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("(claim shape: UcqSeparates grows polynomially with |D| while "
              "the generic algorithm blows up with the null count — compare "
              "BM_UcqSeparates/16 with BM_GenericSeparates/16)\n");
  return experiment.Finish();
}
