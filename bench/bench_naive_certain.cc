// Experiment E14 (Corollaries 1–3).
//
// Paper claims: (Q,D) ⊆ Q^naive(D) for every generic query (Cor 1);
// checking almost-certain truth has the data complexity of query
// evaluation (Cor 2); for Pos∀G queries, certain and almost-certainly-true
// answers coincide (Cor 3).
//
// Measured: containment and equality rates on random FO vs random Pos∀G
// (positive) queries, plus the timing gap between naive evaluation (the
// almost-certainty check) and the exponential certain-answer check.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdint>

#include "bench_common.h"
#include "core/measure.h"
#include "data/homomorphism.h"
#include "data/relation.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "query/eval.h"
#include "query/fragments.h"

using namespace zeroone;

namespace {

Database MakeDb(std::uint64_t seed, std::size_t tuples = 4,
                std::size_t nulls = 2) {
  RandomDatabaseOptions options;
  options.relations = {{"R", 2, tuples}, {"S", 1, tuples / 2 + 1}};
  options.constant_pool = 3;
  options.null_pool = nulls;
  options.null_probability = 0.4;
  options.seed = seed;
  return GenerateRandomDatabase(options);
}

Query MakeQuery(std::uint64_t seed, bool positive) {
  RandomQueryOptions options;
  options.relations = {{"R", 2}, {"S", 1}};
  options.free_variables = 1;
  options.existential_variables = 1;
  options.clauses = 2;
  options.atoms_per_clause = 2;
  options.seed = seed;
  return positive ? GenerateRandomUcq(options)
                  : GenerateRandomFo(options, 0.35);
}

void ReportContainment(bench::Experiment* experiment) {
  std::size_t fo_contained = 0;
  std::size_t fo_equal = 0;
  std::size_t fo_total = 0;
  std::size_t pos_equal = 0;
  std::size_t pos_total = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Database db = MakeDb(seed + 12000);
    // Random FO (with negation): containment should always hold, equality
    // often fails.
    Query fo = MakeQuery(seed + 12100, /*positive=*/false);
    std::vector<Tuple> naive = NaiveEvaluate(fo, db);
    std::vector<Tuple> certain = CertainAnswers(fo, db);
    std::sort(naive.begin(), naive.end());
    bool contained = true;
    for (const Tuple& t : certain) {
      contained = contained &&
                  std::binary_search(naive.begin(), naive.end(), t);
    }
    ++fo_total;
    fo_contained += static_cast<std::size_t>(contained);
    fo_equal += static_cast<std::size_t>(certain.size() == naive.size());
    // Random positive queries (Pos∀G ⊇ UCQ): equality must hold.
    Query pos = MakeQuery(seed + 12200, /*positive=*/true);
    if (IsPosForallGuarded(*pos.formula())) {
      std::vector<Tuple> p_naive = NaiveEvaluate(pos, db);
      std::vector<Tuple> p_certain = CertainAnswers(pos, db);
      std::sort(p_naive.begin(), p_naive.end());
      std::sort(p_certain.begin(), p_certain.end());
      ++pos_total;
      pos_equal += static_cast<std::size_t>(p_naive == p_certain);
    }
  }
  std::printf("Cor 1: certain ⊆ naive on %zu/%zu random FO instances "
              "(claim: all)\n",
              fo_contained, fo_total);
  std::printf("       equality held on %zu/%zu — naive over-approximates, "
              "as expected with negation\n",
              fo_equal, fo_total);
  std::printf("Cor 3: certain == naive on %zu/%zu Pos∀G instances "
              "(claim: all)\n\n",
              pos_equal, pos_total);
  experiment->Claim(fo_total > 0 && fo_contained == fo_total,
                    "Corollary 1: certain ⊆ naive on every FO instance");
  experiment->Claim(pos_total > 0 && pos_equal == pos_total,
                    "Corollary 3: certain == naive on every Pos∀G instance");
}

// The homomorphism search that underlies the naive/certain story for UCQs
// (a tuple is certain iff the canonical instance maps into every
// completion): the indexed path orders patterns most-constrained-first and
// probes the bound columns, so it visits far fewer search nodes than the
// historical scan-everything backtracking.
void HomomorphismNodesReport(bench::Experiment* experiment) {
#if ZEROONE_OBS_ENABLED
  // Target: one genuine 7-edge path preceded (in sorted row order) by 30
  // distractor edges that dead-end after one step.
  Database to;
  Relation& target = to.AddRelation("R", 2);
  for (int i = 0; i < 30; ++i) {
    target.Insert({Value::Constant("a" + std::to_string(i)),
                   Value::Constant("b" + std::to_string(i))});
  }
  for (int i = 0; i < 7; ++i) {
    target.Insert({Value::Constant("p" + std::to_string(i)),
                   Value::Constant("p" + std::to_string(i + 1))});
  }
  // The pattern is a pure-null chain (a Boolean path CQ): the scan search
  // tries every target row at every depth, while the probe path follows
  // the already-bound join column, so its candidate sets are out-degrees.
  Database from;
  Relation& chain = from.AddRelation("R", 2);
  for (int i = 0; i < 7; ++i) {
    chain.Insert({Value::Null("h" + std::to_string(i)),
                  Value::Null("h" + std::to_string(i + 1))});
  }
  auto nodes = [] {
    return obs::Registry::Global()
        .GetCounter("homomorphism.search_nodes")
        .value();
  };
  auto measure = [&](StorageMode mode, bool* found) {
    StorageMode previous = storage_mode();
    SetStorageMode(mode);
    std::uint64_t before = nodes();
    *found = FindHomomorphism(from, to).has_value();
    std::uint64_t visited = nodes() - before;
    SetStorageMode(previous);
    return visited;
  };
  bool scan_found = false;
  bool indexed_found = false;
  std::uint64_t scan_nodes = measure(StorageMode::kScan, &scan_found);
  std::uint64_t indexed_nodes =
      measure(StorageMode::kIndexed, &indexed_found);
  std::printf("homomorphism search nodes (pattern with nulls into a "
              "complete instance): scan %llu, indexed %llu\n\n",
              static_cast<unsigned long long>(scan_nodes),
              static_cast<unsigned long long>(indexed_nodes));
  experiment->Claim(scan_found == indexed_found,
                    "indexed and scan homomorphism searches agree");
  experiment->Claim(indexed_nodes > 0 && indexed_nodes * 5 <= scan_nodes,
                    "probe-guided search visits at least 5x fewer "
                    "homomorphism.search_nodes than full scans");
#else
  (void)experiment;
  std::printf("homomorphism search-node report skipped (obs disabled)\n\n");
#endif
}

void BM_AlmostCertainCheck(benchmark::State& state) {
  // Cor 2: the almost-certainty check is one naive evaluation.
  Database db = MakeDb(314, static_cast<std::size_t>(state.range(0)),
                       /*nulls=*/3);
  Query fo = MakeQuery(315, /*positive=*/false);
  Tuple t{db.ActiveDomain().front()};
  for (auto _ : state) {
    bool almost = AlmostCertainlyTrue(fo, db, t);
    benchmark::DoNotOptimize(almost);
  }
}
BENCHMARK(BM_AlmostCertainCheck)->Arg(4)->Arg(8)->Arg(16);

void BM_CertainCheck(benchmark::State& state) {
  // The exact certainty check pays (a+m)^m — exponential in nulls. Use a
  // positive query and one of its naive answers, which is certain (Cor 3),
  // so the check cannot exit early and visits the whole valuation space.
  std::size_t nulls = static_cast<std::size_t>(state.range(0));
  // Exactly `nulls` distinct nulls, each occurring in R.
  Database db = MakeDb(314, 4, 1);
  for (std::size_t i = 0; i < nulls; ++i) {
    db.mutable_relation("R").Insert(
        {Value::Int(static_cast<std::int64_t>(i)),
         Value::Null("cert" + std::to_string(i))});
  }
  Query ucq = MakeQuery(316, /*positive=*/true);
  std::vector<Tuple> naive = NaiveEvaluate(ucq, db);
  Tuple t = naive.empty() ? Tuple{db.ActiveDomain().front()} : naive.front();
  for (auto _ : state) {
    bool certain = IsCertainAnswer(ucq, db, t);
    benchmark::DoNotOptimize(certain);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(nulls));
}
BENCHMARK(BM_CertainCheck)->DenseRange(1, 4)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment experiment("naive_certain");
  std::printf("E14: naive vs certain answers (Corollaries 1-3)\n");
  std::printf("-----------------------------------------------\n");
  ReportContainment(&experiment);
  HomomorphismNodesReport(&experiment);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("(claim shape: the almost-certainty check costs one query "
              "evaluation (Cor 2) while exact certainty explodes with the "
              "null count)\n");
  return experiment.Finish();
}
