// Experiment E5 (Proposition 3).
//
// Paper claim: measuring the implication Σ → Q carries little information —
// µ(Σ→Q,D) = 1 whenever µ(Σ,D) = 0, and µ(Σ→Q,D) = µ(Q,D) otherwise. The
// conditional measure µ(Q|Σ,D) is the informative notion.
//
// Measured: a sweep of random (Σ, Q, D) triples classified into the two
// cases, plus the Section 4.3 instance where the implication is almost
// surely true while the conditional measure is 0.

#include <cstdio>

#include "bench_common.h"
#include "constraints/ind.h"
#include "core/conditional.h"
#include "core/measure.h"
#include "gen/random_db.h"
#include "gen/random_query.h"
#include "gen/scenarios.h"

using namespace zeroone;

int main() {
  bench::Experiment experiment("implication");
  std::printf("E5: measuring implication vs conditional (Prop 3)\n");
  std::printf("-------------------------------------------------\n");
  std::size_t case_sigma_zero = 0;
  std::size_t case_sigma_one = 0;
  std::size_t confirmed = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    RandomDatabaseOptions db_options;
    db_options.relations = {{"R", 2, 3}, {"U", 1, 3}};
    db_options.constant_pool = 3;
    db_options.null_pool = 2;
    db_options.null_probability = 0.4;
    db_options.seed = seed + 7000;
    Database db = GenerateRandomDatabase(db_options);
    ConstraintSet constraints = {std::make_shared<InclusionDependency>(
        "R", 2, std::vector<std::size_t>{0}, "U", 1,
        std::vector<std::size_t>{0})};
    Query sigma = ConstraintSetQuery(constraints);
    RandomQueryOptions q_options;
    q_options.relations = {{"R", 2}, {"U", 1}};
    q_options.free_variables = 0;
    q_options.existential_variables = 2;
    q_options.clauses = 2;
    q_options.atoms_per_clause = 2;
    q_options.seed = seed + 7100;
    Query query = GenerateRandomFo(q_options, 0.3);

    int mu_sigma = MuLimit(sigma, db);
    int mu_q = MuLimit(query, db);
    int mu_impl = ImplicationMuLimit(query, sigma, db, Tuple{});
    ++total;
    if (mu_sigma == 0) {
      ++case_sigma_zero;
      confirmed += static_cast<std::size_t>(mu_impl == 1);
    } else {
      ++case_sigma_one;
      confirmed += static_cast<std::size_t>(mu_impl == mu_q);
    }
  }
  std::printf("random triples: %zu   [mu(Sigma)=0: %zu, mu(Sigma)=1: %zu]\n",
              total, case_sigma_zero, case_sigma_one);
  std::printf("Proposition 3 prediction confirmed on %zu/%zu\n", confirmed,
              total);
  experiment.Claim(total > 0 && confirmed == total,
                   "Proposition 3 case analysis holds on every random triple");

  std::printf("\nSection 4.3 contrast (implication blind, conditional not):\n");
  NaiveBreaksExample example = PaperNaiveBreaksExample();
  Query sigma = ConstraintSetQuery(example.constraints);
  int impl = ImplicationMuLimit(example.query, sigma, example.db, Tuple{});
  Rational cond =
      ConditionalMu(example.query, example.constraints, example.db);
  std::printf("  mu(Sigma -> Q, D) = %d   (claim: 1)\n", impl);
  std::printf("  mu(Q | Sigma, D)  = %s   (claim: 0)\n",
              cond.ToString().c_str());
  experiment.Claim(impl == 1 && cond == Rational(0),
                   "Section 4.3: implication measure 1 but conditional 0");
  return experiment.Finish();
}
