#ifndef ZEROONE_FAULT_FAULT_H_
#define ZEROONE_FAULT_FAULT_H_

// Deterministic, seed-driven fault injection (docs/robustness.md).
//
// Instrumented code marks failure-capable operations with a named site:
//
//   if (ZO_FAULT_POINT("svc.send.partial")) {
//     // behave as if the operation failed here
//   }
//
// Sites are inert until a fault plan is installed, either programmatically
// (Registry::Global().Configure("seed=42,svc.send.partial=0.01")) or from
// the ZEROONE_FAULTS environment variable / a tool's --faults flag. The
// plan grammar:
//
//   spec     := entry *( "," entry )
//   entry    := "seed=" UINT | site "=" schedule
//   schedule := FLOAT          fire each hit with this probability in [0,1]
//             | "#" UINT       fire exactly on the Nth hit (1-based), once
//             | "%" UINT       fire on every Nth hit (N, 2N, 3N, ...)
//   site     := 1*64( ALPHA / DIGIT / "." / "_" / "-" )
//
// Determinism: whether hit number k of site s fires depends only on
// (seed, s, k) — a hash of the three for probability schedules, arithmetic
// on k for the others — never on wall clock, thread identity, or address
// layout. Two runs with the same plan and the same per-site hit counts
// fire identically; a chaos failure therefore reproduces from its seed.
//
// Hot-path contract (mirrors obs/metrics.h): the site handle is resolved
// once per call-site into a function-local static; afterwards an unarmed
// site costs one relaxed atomic load and a predictable branch, cheap
// enough for the valuation-enumeration inner loop. Armed sites add one
// relaxed fetch_add (the hit counter) and the schedule arithmetic.
//
// Building with -DZEROONE_FAULT=OFF defines ZEROONE_FAULT_ENABLED=0 and
// ZO_FAULT_POINT expands to `false`: instrumented translation units carry
// no reference to zeroone::fault at all (nm-checked in CI, like obs).

#if !defined(ZEROONE_FAULT_ENABLED)
#define ZEROONE_FAULT_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace zeroone {
namespace fault {

// One named injection point. Instances live forever inside the Registry;
// handles taken once stay valid for the process lifetime.
class Site {
 public:
  explicit Site(std::string name);
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  // Counts a hit and decides whether it fires. Unarmed: one relaxed load.
  bool Evaluate();

  const std::string& name() const { return name_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;

  enum class Kind { kProbability, kNth, kEvery };
  struct Schedule {
    Kind kind = Kind::kProbability;
    double probability = 0.0;  // kProbability
    std::uint64_t n = 0;       // kNth / kEvery
    std::uint64_t seed = 0;    // Global seed mixed with the site name.
  };

  const std::string name_;
  const std::uint64_t name_hash_;  // Mixed into probability decisions.
  // Armed schedule, or nullptr. Retired schedules are kept alive by the
  // Registry so a racing Evaluate never dereferences freed memory.
  std::atomic<const Schedule*> schedule_{nullptr};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fired_{0};
};

struct SiteStats {
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

// Process-global site registry and fault plan.
class Registry {
 public:
  static Registry& Global();

  // Parses `spec` (grammar above) and installs it as the complete fault
  // plan, replacing any previous plan and resetting hit/fired counts of
  // every known site. An empty spec clears the plan. On a parse error the
  // previous plan is left untouched.
  Status Configure(std::string_view spec);

  // Configure(getenv("ZEROONE_FAULTS")); an unset or empty variable is a
  // no-op success. Tools call this before parsing --faults (which wins).
  Status ConfigureFromEnv();

  // Removes the plan and resets all site counters.
  void Clear();

  // The canonical form of the installed plan ("" when none), for logging.
  std::string PlanString() const;

  // Lookup-or-create; the ZO_FAULT_POINT macro caches the result.
  Site& GetSite(std::string_view name);

  // Hit/fired counts for one site (zeros for unknown sites).
  SiteStats Stats(std::string_view name) const;
  // All sites that have been hit or configured, by name.
  std::map<std::string, SiteStats> AllStats() const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Site>, std::less<>> sites_;
  // (site name, schedule) pairs of the installed plan, in spec order.
  std::vector<std::pair<std::string, Site::Schedule>> plan_;
  std::uint64_t seed_ = 0;
  // Schedules ever installed; never freed (plans are tiny and reconfigs
  // rare) so Site::schedule_ pointers stay valid without synchronizing
  // Evaluate against Configure.
  std::vector<std::unique_ptr<Site::Schedule>> retired_;
};

}  // namespace fault
}  // namespace zeroone

#define ZO_FAULT_CONCAT_INNER_(a, b) a##b
#define ZO_FAULT_CONCAT_(a, b) ZO_FAULT_CONCAT_INNER_(a, b)

#if ZEROONE_FAULT_ENABLED

// True when the named site fires on this hit. `name` must be a string
// literal; the registry lookup happens once per call-site.
#define ZO_FAULT_POINT(name)                                              \
  ([]() -> bool {                                                         \
    static ::zeroone::fault::Site& ZO_FAULT_CONCAT_(zo_fault_site_,       \
                                                    __LINE__) =           \
        ::zeroone::fault::Registry::Global().GetSite(name);               \
    return ZO_FAULT_CONCAT_(zo_fault_site_, __LINE__).Evaluate();         \
  }())

#else  // !ZEROONE_FAULT_ENABLED

#define ZO_FAULT_POINT(name) (false)

#endif  // ZEROONE_FAULT_ENABLED

#endif  // ZEROONE_FAULT_FAULT_H_
