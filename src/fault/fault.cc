#include "fault/fault.h"

#include <cstdlib>
#include <utility>

namespace zeroone {
namespace fault {

namespace {

// splitmix64: the decision hash for probability schedules. Statistical
// quality is ample for fault scheduling, and it is trivially portable, so
// a fault seed reproduces the same firing pattern on every platform.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t HashName(std::string_view name) {
  // FNV-1a, then one mix round to spread the low bits.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return Mix64(h);
}

// Uniform double in [0, 1) from the top 53 bits of the hash.
double Unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

bool IsSiteChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

bool IsValidSiteName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    if (!IsSiteChar(c)) return false;
  }
  return true;
}

StatusOr<std::uint64_t> ParseUint(std::string_view text) {
  if (text.empty() || text.size() > 19) {
    return Status::Error("bad unsigned integer '", text, "'");
  }
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::Error("bad unsigned integer '", text, "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

StatusOr<double> ParseProbability(std::string_view text) {
  // Accepts 0, 1, 0.5, .25 — digits and at most one dot, value in [0,1].
  if (text.empty() || text.size() > 18) {
    return Status::Error("bad probability '", text, "'");
  }
  double value = 0.0;
  double scale = 0.0;  // 0 until the dot is seen, then 0.1, 0.01, ...
  bool any_digit = false;
  for (char c : text) {
    if (c == '.') {
      if (scale != 0.0) return Status::Error("bad probability '", text, "'");
      scale = 0.1;
    } else if (c >= '0' && c <= '9') {
      any_digit = true;
      if (scale == 0.0) {
        value = value * 10.0 + (c - '0');
      } else {
        value += (c - '0') * scale;
        scale *= 0.1;
      }
    } else {
      return Status::Error("bad probability '", text, "'");
    }
  }
  if (!any_digit || value < 0.0 || value > 1.0) {
    return Status::Error("probability '", text, "' not in [0, 1]");
  }
  return value;
}

}  // namespace

Site::Site(std::string name)
    : name_(std::move(name)), name_hash_(HashName(name_)) {}

bool Site::Evaluate() {
  const Schedule* schedule = schedule_.load(std::memory_order_acquire);
  if (schedule == nullptr) return false;
  std::uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (schedule->kind) {
    case Kind::kProbability:
      fire = Unit(Mix64(schedule->seed ^ name_hash_ ^ Mix64(hit))) <
             schedule->probability;
      break;
    case Kind::kNth:
      fire = hit == schedule->n;
      break;
    case Kind::kEvery:
      fire = schedule->n != 0 && hit % schedule->n == 0;
      break;
  }
  if (fire) fired_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Status Registry::Configure(std::string_view spec) {
  // Parse into a staging plan first; install only a fully valid spec.
  std::vector<std::pair<std::string, Site::Schedule>> plan;
  std::uint64_t seed = 0;
  std::string_view rest = spec;
  while (!rest.empty()) {
    std::size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::Error("fault spec entry '", entry, "' has no '='");
    }
    std::string_view key = entry.substr(0, eq);
    std::string_view value = entry.substr(eq + 1);
    if (key == "seed") {
      ZO_ASSIGN_OR_RETURN(seed, ParseUint(value));
      continue;
    }
    if (!IsValidSiteName(key)) {
      return Status::Error("bad fault site name '", key, "'");
    }
    Site::Schedule schedule;
    if (!value.empty() && value.front() == '#') {
      schedule.kind = Site::Kind::kNth;
      ZO_ASSIGN_OR_RETURN(schedule.n, ParseUint(value.substr(1)));
      if (schedule.n == 0) {
        return Status::Error("fault site '", key, "': #N must have N >= 1");
      }
    } else if (!value.empty() && value.front() == '%') {
      schedule.kind = Site::Kind::kEvery;
      ZO_ASSIGN_OR_RETURN(schedule.n, ParseUint(value.substr(1)));
      if (schedule.n == 0) {
        return Status::Error("fault site '", key, "': %N must have N >= 1");
      }
    } else {
      schedule.kind = Site::Kind::kProbability;
      ZO_ASSIGN_OR_RETURN(schedule.probability, ParseProbability(value));
    }
    plan.emplace_back(std::string(key), schedule);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  // Disarm everything, then arm the new plan. Counters restart so a plan
  // change always measures from hit 1 (determinism depends on it).
  for (auto& [name, site] : sites_) {
    site->schedule_.store(nullptr, std::memory_order_release);
    site->hits_.store(0, std::memory_order_relaxed);
    site->fired_.store(0, std::memory_order_relaxed);
  }
  seed_ = seed;
  plan_ = std::move(plan);
  for (auto& [name, schedule] : plan_) {
    schedule.seed = seed_;
    auto owned = std::make_unique<Site::Schedule>(schedule);
    const Site::Schedule* raw = owned.get();
    retired_.push_back(std::move(owned));
    auto it = sites_.find(name);
    if (it == sites_.end()) {
      it = sites_.emplace(name, std::make_unique<Site>(name)).first;
    }
    it->second->schedule_.store(raw, std::memory_order_release);
  }
  return Status::Ok();
}

Status Registry::ConfigureFromEnv() {
  const char* spec = std::getenv("ZEROONE_FAULTS");
  if (spec == nullptr || *spec == '\0') return Status::Ok();
  return Configure(spec);
}

void Registry::Clear() { (void)Configure(""); }

std::string Registry::PlanString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  if (!plan_.empty()) {
    out = StrCat("seed=", seed_);
  }
  for (const auto& [name, schedule] : plan_) {
    out += ',';
    out += name;
    out += '=';
    switch (schedule.kind) {
      case Site::Kind::kProbability:
        out += StrCat(schedule.probability);
        break;
      case Site::Kind::kNth:
        out += StrCat('#', schedule.n);
        break;
      case Site::Kind::kEvery:
        out += StrCat('%', schedule.n);
        break;
    }
  }
  return out;
}

Site& Registry::GetSite(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(name),
                        std::make_unique<Site>(std::string(name)))
             .first;
  }
  return *it->second;
}

SiteStats Registry::Stats(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(name);
  if (it == sites_.end()) return SiteStats{};
  return SiteStats{it->second->hits(), it->second->fired()};
}

std::map<std::string, SiteStats> Registry::AllStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, SiteStats> stats;
  for (const auto& [name, site] : sites_) {
    stats.emplace(name, SiteStats{site->hits(), site->fired()});
  }
  return stats;
}

}  // namespace fault
}  // namespace zeroone
