#ifndef ZEROONE_SVC_WAL_H_
#define ZEROONE_SVC_WAL_H_

// Per-session append-only write-ahead log (docs/robustness.md).
//
// One log per named session at `<dir>/<session>.zo1wal`, holding one
// CRC32-framed record per acknowledged mutating command:
//
//   log    := header *record
//   header := "ZO1WAL 1" SP session SP base_version LF
//   record := "#" version SP payload_bytes SP crc32(8 lowercase hex) LF
//             payload LF
//
// `payload` is `command [SP args]` — exactly payload_bytes bytes, and may
// itself contain newlines (the `loaddata` replay form of `load` embeds the
// loaded file's contents so replay never depends on the filesystem).
// `version` is the session version after applying the record; the header's
// base_version is the session version the log starts from (the version of
// the snapshot the last compaction folded the prefix into — 0 for a log
// that has never been compacted). The crc32 covers the literal header
// fields plus the payload (`version SP payload_bytes SP payload`), so a
// corrupted version or size digit is detected as damage instead of
// decoding as a different, "valid" record.
//
// One encoded frame is capped at kMaxWalRecordBytes: anything larger could
// never be shipped to a follower inside one wire payload (see
// kMaxPayloadBytes in svc/protocol.h), so Append refuses it up front and
// the dispatcher answers the oversized mutation with an explicit error.
//
// Durability: Append writes the frame with a single write(2) to an
// O_APPEND descriptor and, in fsync ack mode, fsyncs before returning —
// the Dispatcher does not acknowledge a mutation until Append succeeded.
// Any append failure (short write, failed fsync) truncates the file back
// to its pre-append length, so a failed append leaves no partial frame and
// the command can be safely retried.
//
// Recovery (ReadAll) mirrors SnapshotStore::LoadAll's posture: a torn tail
// (a frame cut off by a crash) is truncated in place at the last record
// boundary and counted, undecodable bytes followed by more data are moved
// aside to `<log>.corrupt` (never loaded, never a crash), and a log whose
// header itself is damaged is quarantined whole. Everything decodable
// before the damage is returned for replay.
//
// Fault sites: wal.append.fail (short write + ENOSPC), wal.fsync.fail,
// compact.rename.fail (Reset's atomic swap), replay.decode.fail (a read
// record treated as undecodable). Counters land under svc.wal.*.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace zeroone {
namespace svc {

inline constexpr std::string_view kWalMagic = "ZO1WAL 1";
inline constexpr std::string_view kWalSuffix = ".zo1wal";
// Record headers are "#<u64> <u64> <8 hex>\n": 20 + 20 + 8 digits plus
// punctuation fits well under this; anything longer is damage, not a tail.
inline constexpr std::size_t kMaxWalHeaderBytes = 64;
// Hard cap on one encoded record frame. Chosen so a ship batch plus one
// frame of overshoot stays under the wire payload cap (the dispatcher
// static_asserts the arithmetic); Append refuses anything larger.
inline constexpr std::size_t kMaxWalRecordBytes = 2 * 1024 * 1024;

struct WalRecord {
  std::uint64_t version = 0;  // Session version after applying the record.
  std::string command;
  std::string args;  // May contain any bytes, including newlines.
};

// The log's first line (terminated with LF).
std::string EncodeWalHeader(const std::string& session,
                            std::uint64_t base_version);

// Parses the header line at the front of `bytes`; returns bytes consumed.
StatusOr<std::size_t> DecodeWalHeader(std::string_view bytes,
                                      std::string* session,
                                      std::uint64_t* base_version);

// One full record frame (header line + payload + LF terminator).
std::string EncodeWalRecord(const WalRecord& record);

// Examines the front of `buffer`: a complete valid frame fills `out` and
// returns the bytes consumed; 0 means the buffer holds a clean prefix of a
// frame (a torn tail); an error Status means the bytes can never decode.
StatusOr<std::size_t> DecodeWalRecord(std::string_view buffer,
                                      WalRecord* out);

// Log directory manager. Thread-safety: operations on distinct sessions
// are independent; operations on one session serialize on an internal
// per-session handle mutex (the Dispatcher additionally orders appends via
// the session's exclusive lock, so record order matches version order).
class WalStore {
 public:
  explicit WalStore(std::string dir);
  ~WalStore();
  WalStore(const WalStore&) = delete;
  WalStore& operator=(const WalStore&) = delete;

  const std::string& dir() const { return dir_; }
  std::string PathFor(const std::string& session) const;

  // Creates the directory if missing. Call once before Append/ReadAll.
  Status Prepare() const;

  // Appends one record, creating the log (base = record.version - 1) on
  // first use. Refuses records whose encoded frame exceeds
  // kMaxWalRecordBytes before touching the file. With `sync`, fsyncs
  // before returning (fsync ack mode). On any failure the file is restored
  // to its pre-append length. On success returns the pre-append length,
  // which TruncateTo accepts to roll the record back out if the command it
  // logged then fails to apply — the log holds exactly the mutations that
  // were applied.
  StatusOr<std::uint64_t> Append(const std::string& session,
                                 const WalRecord& record, bool sync);

  // Rolls the log back to `size` bytes (an Append return value). Only
  // valid while the caller still holds the session's exclusive lock, so
  // no later record can have landed after the one being rolled back.
  void TruncateTo(const std::string& session, std::uint64_t size);

  // Atomically replaces the log with an empty one based at `base_version`
  // (temp → fsync → rename → dirsync, like SnapshotStore::Save), after a
  // compaction folded the records into a snapshot at that version. On
  // failure the old log is untouched.
  Status Reset(const std::string& session, std::uint64_t base_version);

  struct ReadReport {
    std::uint64_t base_version = 0;
    std::size_t records = 0;
    std::size_t truncated_tails = 0;  // Torn tails cut off in place.
    std::size_t quarantined = 0;      // Undecodable spans moved aside.
    // Byte offset of each returned record's frame, parallel to the result
    // vector — TruncateAt/QuarantineFrom take these to cut the log at a
    // record boundary during replay.
    std::vector<std::size_t> offsets;
  };

  // Reads every decodable record in order, applying the recovery posture
  // described above. A missing log is an empty result, not an error.
  StatusOr<std::vector<WalRecord>> ReadAll(const std::string& session,
                                           ReadReport* report);

  // Cuts the log off at `offset` (a ReadReport frame offset). Used by
  // replay to drop an unacknowledged final record whose rollback a crash
  // beat — the record was never acked, so nothing is lost.
  Status TruncateAt(const std::string& session, std::size_t offset);

  // Moves everything from `offset` to end-of-log into `<log>.corrupt` for
  // post-mortem and truncates the log at `offset`. Used by replay when a
  // mid-log record fails to re-apply: the records after it must not be
  // applied to a base missing that mutation.
  Status QuarantineFrom(const std::string& session, std::size_t offset,
                        std::string_view reason);

  // True when the session has a log file on disk.
  bool Exists(const std::string& session) const;

  // Sessions with a log file, sorted (for recovery and the stats surface).
  std::vector<std::string> ListSessions() const;

 private:
  struct Handle {
    std::mutex mutex;
    int fd = -1;
  };

  std::shared_ptr<Handle> HandleFor(const std::string& session);

  const std::string dir_;
  mutable std::mutex mutex_;  // Guards handles_ (the map, not the files).
  std::map<std::string, std::shared_ptr<Handle>> handles_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_WAL_H_
