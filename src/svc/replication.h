#ifndef ZEROONE_SVC_REPLICATION_H_
#define ZEROONE_SVC_REPLICATION_H_

// Warm-standby log-shipping replication (docs/robustness.md).
//
// A follower (`zeroone_server --follow=host:port`) runs a Replicator next
// to its own Dispatcher. The Replicator is a pull loop over the ordinary
// wire protocol: every pull_interval_ms it sends `shiplist` to the primary
// to learn (session, version) pairs, then for each session it is behind on
// sends `ship <session> <cursor>` and applies what comes back —
//
//   "RECS <count> <more>\n" *record — WAL record frames past the cursor,
//       applied through Dispatcher::ApplyReplicatedRecord (which logs them
//       to the follower's own WAL before applying, so a follower crash
//       recovers to its cursor);
//   "SNAP\n" <image>                — a full snapshot image, installed via
//       Dispatcher::InstallSnapshotImage when the primary's log has been
//       compacted past the cursor.
//
// The follower's Dispatcher runs read-only: client mutations are answered
// UNAVAILABLE while the primary is alive. Pull failures are classified:
// only *transport* failures (connect refused, IO timeout — the primary may
// be dead) feed the promotion clock. When transport failures have run
// continuously for promote_after_ms, the Replicator declares the primary
// dead, flips the Dispatcher read-write, and stops pulling — the standby
// is now the primary and serves every acknowledged write it replicated.
// *Replication* failures (an ERR/UNAVAILABLE answer, an undecodable or
// unappliable shipped record) prove the primary is alive, so they reset
// that clock and never promote — promoting against a serving primary
// would split-brain. They alarm instead: logged once per episode and
// counted (svc.repl.pulls_broken) until a pull succeeds again.
//
// Fault sites exercised here: the primary's ship.send.fail surfaces as a
// transient UNAVAILABLE pull, and replay.decode.fail fires on the
// follower's frame decode path. Counters land under svc.repl.*.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "svc/dispatch.h"

namespace zeroone {
namespace svc {

// Why one pull failed. Transport failures mean the primary may be dead
// (nothing answered); replication failures mean it answered but the
// stream could not be used — alive, so never a reason to promote.
enum class PullFailureKind { kNone, kTransport, kReplication };

struct ReplicatorOptions {
  std::string host;
  int port = 0;
  std::uint64_t pull_interval_ms = 50;
  // Continuous *transport*-failure time before the standby promotes
  // itself. 0 disables promotion (the standby follows forever).
  std::uint64_t promote_after_ms = 2000;
  // Per-pull IO/connect timeout, kept short so a dead primary is detected
  // within a few intervals.
  std::uint64_t io_timeout_ms = 1000;
};

class Replicator {
 public:
  struct Stats {
    std::uint64_t pulls = 0;             // shiplist round-trips attempted.
    std::uint64_t pull_failures = 0;     // All failed pulls (both kinds).
    std::uint64_t transport_failures = 0;  // Connect/IO failures only.
    std::uint64_t broken_pulls = 0;      // Primary alive, stream unusable.
    std::uint64_t records_applied = 0;   // Shipped records applied.
    std::uint64_t snapshots_installed = 0;
    std::uint64_t decode_failures = 0;   // Undecodable ship payloads.
    bool promoted = false;
  };

  Replicator(Dispatcher* dispatcher, const ReplicatorOptions& options);
  ~Replicator();
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  // Marks the dispatcher read-only and starts the pull thread.
  void Start();
  // Stops the pull thread (idempotent; also called by the destructor).
  // The dispatcher's read-only flag is left as the loop set it: still
  // read-only if the primary was alive, writable if promotion happened.
  void Stop();

  // One synchronous catch-up pass (shiplist + ship until every session is
  // current). Exposed for tests and callable while the loop is stopped.
  // On failure, *kind (when given) says whether the primary went silent
  // (kTransport) or answered unusably (kReplication).
  Status PullOnce(PullFailureKind* kind = nullptr);

  bool promoted() const { return promoted_.load(std::memory_order_acquire); }
  Stats stats() const;

 private:
  void Loop();
  // The pull body; sets *kind at every failure return site so PullOnce
  // can report how the pull failed.
  Status Pull(PullFailureKind* kind);
  // Applies one ship payload for `session`; advances *cursor. Sets
  // *caught_up when the primary reports no records past the cursor.
  Status ApplyShipPayload(const std::string& session,
                          const std::string& payload, std::uint64_t* cursor,
                          bool* caught_up);
  void Promote();

  Dispatcher* const dispatcher_;
  const ReplicatorOptions options_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> promoted_{false};

  mutable std::mutex mutex_;  // Guards stats_ and cursors_.
  Stats stats_;
  // Last version successfully applied per session (the ship cursor).
  std::map<std::string, std::uint64_t> cursors_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_REPLICATION_H_
