#include "svc/cache.h"

#include "fault/fault.h"
#include "obs/metrics.h"

namespace zeroone {
namespace svc {

bool LruCache::Get(const std::string& key, std::string* value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string_view(key));
  if (it == index_.end()) {
    ++stats_.misses;
    ZO_COUNTER_INC("svc.cache.miss");
    return false;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  *value = it->second->value;
  ++stats_.hits;
  ZO_COUNTER_INC("svc.cache.hit");
  return true;
}

void LruCache::Put(const std::string& key, std::string value) {
  if (ZO_FAULT_POINT("svc.cache.insert.drop")) {
    // Simulated allocation failure: the insert is silently dropped. The
    // cache is an optimization only — correctness must survive any miss.
    ZO_COUNTER_INC("svc.cache.injected_insert_drop");
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string_view(key));
  if (it != index_.end()) {
    bytes_ -= EntryBytes(*it->second);
    it->second->value = std::move(value);
    bytes_ += EntryBytes(*it->second);
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.insertions;
    EvictToFit();
    return;
  }
  Entry entry{key, std::move(value)};
  if (EntryBytes(entry) > capacity_bytes_) {
    ++stats_.oversized_rejections;
    ZO_COUNTER_INC("svc.cache.oversized_rejection");
    return;
  }
  entries_.push_front(std::move(entry));
  bytes_ += EntryBytes(entries_.front());
  index_.emplace(std::string_view(entries_.front().key), entries_.begin());
  ++stats_.insertions;
  ZO_COUNTER_INC("svc.cache.insertion");
  EvictToFit();
}

void LruCache::EvictToFit() {
  while (bytes_ > capacity_bytes_ && !entries_.empty()) {
    Entry& victim = entries_.back();
    bytes_ -= EntryBytes(victim);
    index_.erase(std::string_view(victim.key));
    entries_.pop_back();
    ++stats_.evictions;
    ZO_COUNTER_INC("svc.cache.eviction");
  }
}

std::size_t LruCache::EraseIf(
    const std::function<bool(std::string_view key)>& predicate) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t erased = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (predicate(it->key)) {
      bytes_ -= EntryBytes(*it);
      index_.erase(std::string_view(it->key));
      it = entries_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  stats_.invalidations += erased;
  ZO_COUNTER_ADD("svc.cache.invalidation", erased);
  return erased;
}

void LruCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.invalidations += entries_.size();
  index_.clear();
  entries_.clear();
  bytes_ = 0;
}

LruCache::Stats LruCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.bytes = bytes_;
  stats.entries = entries_.size();
  stats.capacity_bytes = capacity_bytes_;
  return stats;
}

}  // namespace svc
}  // namespace zeroone
