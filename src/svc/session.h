#ifndef ZEROONE_SVC_SESSION_H_
#define ZEROONE_SVC_SESSION_H_

// Named database sessions.
//
// A session carries the same state as one zeroone_cli shell: a database, a
// current query, and a constraint set. Sessions are created on first use
// (the `@session=` request option; "default" otherwise) and live for the
// server's lifetime.
//
// Concurrency: the per-session shared_mutex serializes mutations against
// evaluations — evaluation commands are pure in the session state, so any
// number of them run concurrently under shared locks, while a mutation
// (which also bumps `version`) takes the lock exclusively. The version is
// part of every cache key, so results computed against an old version can
// never be served after a mutation.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "constraints/fd.h"
#include "data/database.h"
#include "query/query.h"

namespace zeroone {
namespace svc {

// persisted_version value for a session no snapshot has ever captured.
inline constexpr std::uint64_t kNeverPersisted = ~std::uint64_t{0};

struct SessionState {
  // Guards every field below except the atomics. Shared for evaluation,
  // exclusive for mutation (see Dispatcher).
  std::shared_mutex mutex;

  // Bumped on every successful mutation command.
  std::uint64_t version = 0;

  // The version the last successfully persisted snapshot captured
  // (kNeverPersisted before the first). Atomic because `save` runs under
  // the shared lock yet must publish its success; `save` is a fast no-op
  // when this equals `version`.
  std::atomic<std::uint64_t> persisted_version{kNeverPersisted};

  // Write-ahead-log records appended since the last compaction (guarded
  // by `mutex`; only touched on the exclusive-lock mutation path).
  std::uint64_t wal_pending = 0;

  Database db;
  Query query;
  bool has_query = false;
  ConstraintSet constraints;
  std::vector<FunctionalDependency> fds;
};

class SessionRegistry {
 public:
  SessionRegistry() = default;
  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  // Returns the named session, creating it on first use. The returned
  // pointer stays valid for the registry's lifetime.
  std::shared_ptr<SessionState> GetOrCreate(const std::string& name);

  // Session names in deterministic order (for the `stats` command).
  std::vector<std::string> Names() const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<SessionState>> sessions_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_SESSION_H_
