#ifndef ZEROONE_SVC_ROUTER_H_
#define ZEROONE_SVC_ROUTER_H_

// Consistent-hash shard router (tools/zeroone_router.cc is the binary).
//
// The router is a RequestSink like the Server, behind the same Transport
// and protocol handlers — it accepts ZO1 connections (and optionally HTTP
// via svc/http.h) — but instead of executing requests it forwards each one
// to a backend zeroone_server chosen by consistent-hashing the request's
// session key onto the backend pool (docs/serving.md, "Scaling out").
// Sessions are the unit of state, so hashing the session pins all of a
// session's mutations and reads to one backend; the ring keeps placement
// deterministic (loadgen recomputes it to predict shard assignment) and
// minimizes movement when a backend leaves.
//
// Failure handling: a transport failure talking to a backend gets one
// reconnect to the same backend (the pooled connection may simply be
// stale); a second failure marks the backend down for down_cooldown_ms and
// the request moves to the next distinct backend on the ring, up to
// retry_backends fallbacks. Exhausting the candidates answers UNAVAILABLE
// (transient by contract: clients with retry loops — RetryingClient,
// loadgen — re-resolve through the rehashed ring on the next attempt).
// Responses the backend actually produced (OK, ERR, BAD_REQUEST, ...) are
// relayed verbatim; the router never retries them, because a delivered
// mutation must not be double-applied.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/net.h"
#include "common/status.h"
#include "svc/client.h"
#include "svc/executor.h"
#include "svc/frontend.h"
#include "svc/protocol.h"
#include "svc/transport.h"

namespace zeroone {
namespace svc {

// The consistent-hash ring. Pure function of (backend count, replicas):
// virtual node r of backend b sits at PlacementHash("b#r"), so any process
// that knows the ordered backend list recomputes the identical placement —
// tools/zeroone_loadgen.cc relies on that to predict per-endpoint tallies.
class HashRing {
 public:
  HashRing(std::size_t backends, std::size_t replicas_per_backend);

  std::size_t backends() const { return backends_; }

  // The backend owning `key` (the first virtual node clockwise).
  std::size_t Owner(std::string_view key) const;

  // Up to `count` distinct backends clockwise from `key`: the owner first,
  // then the successive fallbacks a failover walks.
  std::vector<std::size_t> Preference(std::string_view key,
                                      std::size_t count) const;

  static std::uint64_t Fnv1a64(std::string_view text);
  // The ring's position hash: murmur3-finalized FNV-1a. Raw FNV-1a of the
  // short, near-identical vnode/session strings clusters in the high bits
  // badly enough to starve whole backends.
  static std::uint64_t PlacementHash(std::string_view text);

 private:
  struct VirtualNode {
    std::uint64_t hash;
    std::size_t backend;
  };
  std::size_t backends_;
  std::vector<VirtualNode> ring_;  // Sorted by hash.
};

struct RouterOptions {
  // Ordered backend list; the order is part of the ring contract.
  std::vector<HostPort> backends;
  std::size_t ring_replicas = 64;
  // Fallback backends tried after the owner before answering UNAVAILABLE.
  std::size_t retry_backends = 2;
  // A backend that failed twice in a row is skipped for this long.
  std::uint64_t down_cooldown_ms = 1000;
  // Backend connection timeouts (svc/client.h).
  std::uint64_t connect_timeout_ms = 1000;
  std::uint64_t io_timeout_ms = 30000;

  // Front listeners (same knobs as ServerOptions; see svc/transport.h).
  std::string host = "127.0.0.1";
  int port = 0;       // ZO1 listener; 0 = ephemeral.
  int http_port = -1; // HTTP gateway; -1 = disabled.
  std::size_t threads = 4;          // Forwarding worker pool.
  std::size_t queue_capacity = 64;  // Admission bound, as on the server.
  std::size_t event_threads = 0;
  std::size_t max_conns = 0;
  std::size_t outbox_max_bytes = 8 * 1024 * 1024;
  int so_sndbuf = 0;
  std::uint64_t bind_retry_ms = 2000;
  std::uint64_t drain_flush_timeout_ms = 30000;
};

class Router : public RequestSink {
 public:
  explicit Router(const RouterOptions& options);
  ~Router() override;
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Status Start();

  int port() const;
  int http_port() const;

  const HashRing& ring() const { return ring_; }

  // Same drain protocol as Server (tools share the signal plumbing).
  void BeginShutdown();
  void Wait();
  void Shutdown();
  void Notify();
  void WaitForShutdownRequest();

  // RequestSink: parse the line (rejecting malformed requests here, with
  // the server's exact BAD_REQUEST strings), then forward.
  void Submit(const std::shared_ptr<Channel>& channel, std::string line,
              Encoder encoder) override;
  void OnWireError() override;

  struct Stats {
    std::uint64_t requests_received = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t shutting_down_rejects = 0;
    std::uint64_t forwarded = 0;          // Answered by some backend.
    std::uint64_t reconnects = 0;         // Same-backend second attempts.
    std::uint64_t failovers = 0;          // Moved to a fallback backend.
    std::uint64_t backend_down_marks = 0; // Cooldown entries.
    std::uint64_t unavailable = 0;        // All candidates exhausted.
    std::vector<std::uint64_t> per_backend_forwarded;
  };
  Stats stats() const;

 private:
  struct Backend {
    HostPort endpoint;
    std::mutex mutex;
    // Idle pooled connections (stack: most-recently-used first, so stale
    // sockets age out at the bottom and get culled on failure).
    std::vector<std::unique_ptr<BlockingClient>> idle;
    // Cooldown gate, as steady-clock milliseconds (0 = up).
    std::atomic<std::int64_t> down_until_ms{0};
  };

  // Executes one request against the ring: owner, then fallbacks.
  Response Forward(const Request& request);
  // One backend attempt: pooled (or fresh) connection, one reconnect.
  StatusOr<Response> CallBackend(Backend& backend, const Request& request);
  std::unique_ptr<BlockingClient> AcquireClient(Backend& backend);
  void ReleaseClient(Backend& backend, std::unique_ptr<BlockingClient> c);
  bool IsDown(const Backend& backend) const;
  void MarkDown(Backend& backend);
  static std::int64_t NowMs();

  const RouterOptions options_;
  const HashRing ring_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::unique_ptr<BoundedExecutor> executor_;

  std::unique_ptr<Transport> transport_;       // ZO1 front.
  std::unique_ptr<Transport> http_transport_;  // Null unless http_port >= 0.

  int notify_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_ROUTER_H_
