#include "svc/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "constraints/fd.h"
#include "constraints/ind.h"
#include "data/io.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "query/parser.h"

namespace zeroone {
namespace svc {

namespace {

bool IsSessionChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
}

bool IsValidSessionName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  return std::all_of(name.begin(), name.end(), IsSessionChar);
}

std::string JoinPositions(const std::vector<std::size_t>& positions) {
  std::string out;
  for (std::size_t p : positions) {
    if (!out.empty()) out += ',';
    out += std::to_string(p);
  }
  return out;
}

StatusOr<std::uint64_t> ParseUint(std::string_view text) {
  if (text.empty() || text.size() > 19) {
    return Status::Error("bad unsigned integer '", text, "'");
  }
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::Error("bad unsigned integer '", text, "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

StatusOr<std::vector<std::size_t>> ParsePositions(std::string_view text) {
  std::vector<std::size_t> positions;
  while (!text.empty()) {
    std::size_t comma = text.find(',');
    std::string_view item = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view()
                                           : text.substr(comma + 1);
    ZO_ASSIGN_OR_RETURN(std::uint64_t value, ParseUint(item));
    positions.push_back(static_cast<std::size_t>(value));
  }
  if (positions.empty()) return Status::Error("empty position list");
  return positions;
}

void AppendSection(std::string* body, std::string_view kind,
                   std::string_view content) {
  *body += '[';
  *body += kind;
  *body += ' ';
  *body += std::to_string(content.size());
  *body += "]\n";
  *body += content;
  *body += '\n';
}

// Splits whitespace-separated fields of an fd/ind section payload.
std::vector<std::string_view> SplitFields(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    std::size_t start = i;
    while (i < text.size() && text[i] != ' ') ++i;
    if (i > start) fields.push_back(text.substr(start, i - start));
  }
  return fields;
}

StatusOr<std::shared_ptr<const FunctionalDependency>> ParseFdSection(
    std::string_view content) {
  std::vector<std::string_view> fields = SplitFields(content);
  if (fields.size() != 4) {
    return Status::Error("fd section needs 4 fields, got ", fields.size());
  }
  ZO_ASSIGN_OR_RETURN(std::uint64_t arity, ParseUint(fields[1]));
  ZO_ASSIGN_OR_RETURN(std::vector<std::size_t> lhs,
                      ParsePositions(fields[2]));
  ZO_ASSIGN_OR_RETURN(std::uint64_t rhs, ParseUint(fields[3]));
  if (arity == 0 || rhs >= arity) {
    return Status::Error("fd rhs ", rhs, " out of range for arity ", arity);
  }
  for (std::size_t p : lhs) {
    if (p >= arity) {
      return Status::Error("fd lhs position ", p, " out of range for arity ",
                           arity);
    }
  }
  return std::make_shared<const FunctionalDependency>(
      std::string(fields[0]), static_cast<std::size_t>(arity), std::move(lhs),
      static_cast<std::size_t>(rhs));
}

StatusOr<std::shared_ptr<const InclusionDependency>> ParseIndSection(
    std::string_view content) {
  std::vector<std::string_view> fields = SplitFields(content);
  if (fields.size() != 6) {
    return Status::Error("ind section needs 6 fields, got ", fields.size());
  }
  ZO_ASSIGN_OR_RETURN(std::uint64_t from_arity, ParseUint(fields[1]));
  ZO_ASSIGN_OR_RETURN(std::vector<std::size_t> from_positions,
                      ParsePositions(fields[2]));
  ZO_ASSIGN_OR_RETURN(std::uint64_t to_arity, ParseUint(fields[4]));
  ZO_ASSIGN_OR_RETURN(std::vector<std::size_t> to_positions,
                      ParsePositions(fields[5]));
  if (from_arity == 0 || to_arity == 0 ||
      from_positions.size() != to_positions.size()) {
    return Status::Error("ind sides disagree: ", from_positions.size(),
                         " vs ", to_positions.size(), " positions");
  }
  for (std::size_t p : from_positions) {
    if (p >= from_arity) {
      return Status::Error("ind position ", p, " out of range for arity ",
                           from_arity);
    }
  }
  for (std::size_t p : to_positions) {
    if (p >= to_arity) {
      return Status::Error("ind position ", p, " out of range for arity ",
                           to_arity);
    }
  }
  return std::make_shared<const InclusionDependency>(
      std::string(fields[0]), static_cast<std::size_t>(from_arity),
      std::move(from_positions), std::string(fields[3]),
      static_cast<std::size_t>(to_arity), std::move(to_positions));
}

// Reads `prefix` + value + LF at `*offset`, advancing past it.
StatusOr<std::string_view> ReadHeaderLine(std::string_view bytes,
                                          std::size_t* offset,
                                          std::string_view prefix) {
  std::size_t newline = bytes.find('\n', *offset);
  if (newline == std::string_view::npos) {
    return Status::Error("truncated header (no '", prefix, "' line)");
  }
  std::string_view line = bytes.substr(*offset, newline - *offset);
  if (line.substr(0, prefix.size()) != prefix) {
    return Status::Error("expected header '", prefix, "', got '", line, "'");
  }
  *offset = newline + 1;
  return line.substr(prefix.size());
}

// Writes all of `data` to `fd`, short-write tolerant. The snap.write.fail
// fault simulates a full disk: half the bytes land, then ENOSPC.
bool WriteAllFd(int fd, std::string_view data) {
  if (ZO_FAULT_POINT("snap.write.fail")) {
    (void)::write(fd, data.data(), data.size() / 2);
    errno = ENOSPC;
    return false;
  }
  while (!data.empty()) {
    ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

StatusOr<std::string> EncodeSnapshot(const std::string& session,
                                     const SessionState& state) {
  if (!IsValidSessionName(session)) {
    return Status::Error("session name '", session,
                         "' cannot be snapshotted");
  }
  std::string body;
  AppendSection(&body, "database", FormatDatabase(state.db));
  if (state.has_query) {
    AppendSection(&body, "query", state.query.ToString());
  }
  for (const ConstraintPtr& constraint : state.constraints) {
    if (const auto* fd =
            dynamic_cast<const FunctionalDependency*>(constraint.get())) {
      AppendSection(&body, "fd",
                    StrCat(fd->relation(), " ", fd->arity(), " ",
                           JoinPositions(fd->lhs()), " ", fd->rhs()));
    } else if (const auto* ind = dynamic_cast<const InclusionDependency*>(
                   constraint.get())) {
      AppendSection(
          &body, "ind",
          StrCat(ind->from_relation(), " ", ind->from_arity(), " ",
                 JoinPositions(ind->from_positions()), " ",
                 ind->to_relation(), " ", ind->to_arity(), " ",
                 JoinPositions(ind->to_positions())));
    } else {
      return Status::Error("constraint '", constraint->ToString(),
                           "' has no snapshot serialization");
    }
  }
  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(body));
  std::string out;
  out.reserve(body.size() + 128);
  out += kSnapshotMagic;
  out += '\n';
  out += StrCat("session=", session, "\n");
  out += StrCat("version=", state.version, "\n");
  out += StrCat("body_bytes=", body.size(), "\n");
  out += StrCat("crc32=", crc_hex, "\n");
  out += '\n';
  out += body;
  out += '\n';
  return out;
}

Status DecodeSnapshot(std::string_view bytes, std::string* session,
                      SessionState* state) {
  std::size_t offset = 0;
  ZO_ASSIGN_OR_RETURN(std::string_view magic,
                      ReadHeaderLine(bytes, &offset, ""));
  if (magic != kSnapshotMagic) {
    return Status::Error("bad magic '", magic, "'");
  }
  ZO_ASSIGN_OR_RETURN(std::string_view session_field,
                      ReadHeaderLine(bytes, &offset, "session="));
  if (!IsValidSessionName(session_field)) {
    return Status::Error("bad session name '", session_field, "'");
  }
  ZO_ASSIGN_OR_RETURN(std::string_view version_field,
                      ReadHeaderLine(bytes, &offset, "version="));
  ZO_ASSIGN_OR_RETURN(std::uint64_t version, ParseUint(version_field));
  ZO_ASSIGN_OR_RETURN(std::string_view body_bytes_field,
                      ReadHeaderLine(bytes, &offset, "body_bytes="));
  ZO_ASSIGN_OR_RETURN(std::uint64_t body_bytes, ParseUint(body_bytes_field));
  ZO_ASSIGN_OR_RETURN(std::string_view crc_field,
                      ReadHeaderLine(bytes, &offset, "crc32="));
  if (crc_field.size() != 8) {
    return Status::Error("bad crc32 field '", crc_field, "'");
  }
  std::uint32_t expected_crc = 0;
  for (char c : crc_field) {
    std::uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return Status::Error("bad crc32 field '", crc_field, "'");
    }
    expected_crc = expected_crc * 16 + digit;
  }
  ZO_ASSIGN_OR_RETURN(std::string_view blank,
                      ReadHeaderLine(bytes, &offset, ""));
  if (!blank.empty()) {
    return Status::Error("expected blank line after header");
  }
  if (bytes.size() != offset + body_bytes + 1 || bytes.back() != '\n') {
    return Status::Error("file is ", bytes.size(), " bytes, header says ",
                         offset + body_bytes + 1);
  }
  std::string_view body = bytes.substr(offset, body_bytes);
  std::uint32_t actual_crc = Crc32(body);
  if (actual_crc != expected_crc) {
    return Status::Error("body crc mismatch");
  }

  // The body checks out; parse its sections.
  bool database_seen = false;
  Database db;
  Query query;
  bool has_query = false;
  ConstraintSet constraints;
  std::vector<FunctionalDependency> fds;
  std::size_t at = 0;
  while (at < body.size()) {
    if (body[at] != '[') {
      return Status::Error("expected section at body offset ", at);
    }
    std::size_t close = body.find("]\n", at);
    if (close == std::string_view::npos) {
      return Status::Error("unterminated section header");
    }
    std::string_view header = body.substr(at + 1, close - at - 1);
    std::size_t space = header.find(' ');
    if (space == std::string_view::npos) {
      return Status::Error("section header '", header, "' has no size");
    }
    std::string_view kind = header.substr(0, space);
    ZO_ASSIGN_OR_RETURN(std::uint64_t size,
                        ParseUint(header.substr(space + 1)));
    std::size_t content_start = close + 2;
    if (content_start + size + 1 > body.size() ||
        body[content_start + size] != '\n') {
      return Status::Error("section '", kind, "' overruns the body");
    }
    std::string_view content = body.substr(content_start, size);
    at = content_start + size + 1;
    if (kind == "database") {
      if (database_seen) return Status::Error("duplicate database section");
      database_seen = true;
      ZO_ASSIGN_OR_RETURN(db, ParseDatabase(content));
    } else if (kind == "query") {
      if (has_query) return Status::Error("duplicate query section");
      has_query = true;
      ZO_ASSIGN_OR_RETURN(query, ParseQuery(content));
    } else if (kind == "fd") {
      ZO_ASSIGN_OR_RETURN(std::shared_ptr<const FunctionalDependency> fd,
                          ParseFdSection(content));
      fds.push_back(*fd);
      constraints.push_back(std::move(fd));
    } else if (kind == "ind") {
      ZO_ASSIGN_OR_RETURN(std::shared_ptr<const InclusionDependency> ind,
                          ParseIndSection(content));
      constraints.push_back(std::move(ind));
    } else {
      return Status::Error("unknown section kind '", kind, "'");
    }
  }
  if (!database_seen) return Status::Error("missing database section");

  *session = std::string(session_field);
  state->version = version;
  state->db = std::move(db);
  state->query = std::move(query);
  state->has_query = has_query;
  state->constraints = std::move(constraints);
  state->fds = std::move(fds);
  return Status::Ok();
}

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

std::string SnapshotStore::PathFor(const std::string& session) const {
  return StrCat(dir_, "/", session, kSnapshotSuffix);
}

Status SnapshotStore::Prepare() const {
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::Error("cannot create snapshot dir '", dir_,
                         "': ", std::strerror(errno));
  }
  return Status::Ok();
}

Status SnapshotStore::Save(const std::string& session,
                           const SessionState& state) {
  ZO_ASSIGN_OR_RETURN(std::string image, EncodeSnapshot(session, state));
  if (ZO_FAULT_POINT("snap.corrupt")) {
    // Simulated silent corruption (a torn sector the rename dance cannot
    // prevent): flip one body byte. The CRC catches it at load time.
    image[image.size() / 2] ^= 0x20;
  }
  const std::string final_path = PathFor(session);
  const std::string tmp_path =
      StrCat(final_path, ".tmp.", ::getpid(), ".",
             tmp_seq_.fetch_add(1, std::memory_order_relaxed));
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Error("cannot create '", tmp_path,
                         "': ", std::strerror(errno));
  }
  if (!WriteAllFd(fd, image)) {
    Status status = Status::Error("write to '", tmp_path,
                                  "' failed: ", std::strerror(errno));
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (ZO_FAULT_POINT("snap.fsync.fail") || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::Error("fsync '", tmp_path, "' failed");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::Error("close '", tmp_path,
                         "' failed: ", std::strerror(errno));
  }
  if (ZO_FAULT_POINT("snap.rename.fail") ||
      ::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::Error("rename to '", final_path, "' failed");
  }
  // Make the rename itself durable before acknowledging.
  int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  ZO_COUNTER_INC("svc.snapshot.saved");
  return Status::Ok();
}

SnapshotStore::LoadReport SnapshotStore::LoadAll(SessionRegistry* sessions) {
  LoadReport report;
  std::vector<std::string> names;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return report;  // No directory: nothing persisted yet.
  while (dirent* entry = ::readdir(dir)) {
    names.emplace_back(entry->d_name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());

  auto quarantine = [&](const std::string& name, const Status& why) {
    const std::string path = StrCat(dir_, "/", name);
    const std::string aside = StrCat(path, ".corrupt");
    std::fprintf(stderr,
                 "snapshot: quarantining '%s' (%s); moved to '%s'\n",
                 path.c_str(), why.message().c_str(), aside.c_str());
    if (::rename(path.c_str(), aside.c_str()) != 0) {
      std::fprintf(stderr, "snapshot: rename aside failed: %s\n",
                   std::strerror(errno));
    }
    ++report.quarantined;
    ZO_COUNTER_INC("svc.snapshot.quarantined");
  };

  for (const std::string& name : names) {
    if (name.find(std::string(kSnapshotSuffix) + ".tmp.") !=
        std::string::npos) {
      // Leftover from a Save interrupted mid-write: never valid, remove.
      ::unlink(StrCat(dir_, "/", name).c_str());
      ++report.tmp_removed;
      ZO_COUNTER_INC("svc.snapshot.tmp_removed");
      continue;
    }
    if (name.size() <= kSnapshotSuffix.size() ||
        name.substr(name.size() - kSnapshotSuffix.size()) !=
            kSnapshotSuffix) {
      continue;  // Not a snapshot (e.g. an earlier *.corrupt file).
    }
    const std::string stem =
        name.substr(0, name.size() - kSnapshotSuffix.size());
    std::ifstream file(StrCat(dir_, "/", name), std::ios::binary);
    if (!file) {
      quarantine(name, Status::Error("unreadable"));
      continue;
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    const std::string image = contents.str();

    std::string session;
    SessionState loaded;
    Status decoded = DecodeSnapshot(image, &session, &loaded);
    if (!decoded.ok()) {
      quarantine(name, decoded);
      continue;
    }
    if (session != stem) {
      quarantine(name, Status::Error("header session '", session,
                                     "' does not match filename"));
      continue;
    }
    std::shared_ptr<SessionState> target = sessions->GetOrCreate(session);
    {
      std::unique_lock<std::shared_mutex> lock(target->mutex);
      target->version = loaded.version;
      target->db = std::move(loaded.db);
      target->query = std::move(loaded.query);
      target->has_query = loaded.has_query;
      target->constraints = std::move(loaded.constraints);
      target->fds = std::move(loaded.fds);
      // The on-disk snapshot is exactly this state: `save` can no-op
      // until the next mutation.
      target->persisted_version.store(loaded.version,
                                      std::memory_order_release);
    }
    ++report.loaded;
    ZO_COUNTER_INC("svc.snapshot.loaded");
  }
  return report;
}

}  // namespace svc
}  // namespace zeroone
