#include "svc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"

namespace zeroone {
namespace svc {

namespace {

// Writes all of `data` to a *blocking* `fd`, ignoring SIGPIPE (the peer may
// have gone). Used by the legacy reader model and for one-shot refusal
// frames on freshly accepted sockets. Returns false when the peer closed or
// the send timed out (SO_SNDTIMEO): a frame may then have been written
// partially, so the stream is desynced and the caller must stop writing to
// this connection entirely.
bool WriteAll(int fd, std::string_view data) {
  if (ZO_FAULT_POINT("svc.send.partial")) {
    // Simulated torn send: half a frame leaves the socket, then the
    // "connection" fails. The caller must latch the stream broken, exactly
    // as for a real partial send.
    if (data.size() > 1) {
      (void)::send(fd, data.data(), data.size() / 2, MSG_NOSIGNAL);
    }
    return false;
  }
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// One event-loop shard: an epoll instance, a self-pipe for cross-thread
// wakeups (worker completions, shutdown — a thread parked in epoll_wait
// notices nothing else), and the connections assigned to it. Mutex-guarded
// fields are the cross-thread mailbox; the rest belongs to the loop thread.
struct Server::EventLoop {
  int epoll_fd = -1;
  int wake[2] = {-1, -1};  // [0] registered in epoll with data.ptr == null.
  std::thread thread;

  std::mutex mutex;
  std::vector<std::shared_ptr<Connection>> incoming;     // Accepted conns.
  std::vector<std::shared_ptr<Connection>> flush_queue;  // Outbox gained data.
  bool shutdown_reads = false;  // Drain: half-close every connection.
  bool stop_when_idle = false;  // Drain: exit once every conn is retired.
  bool wake_pending = false;    // Coalesces self-pipe bytes.

  // Loop-thread-only state.
  std::vector<std::shared_ptr<Connection>> conns;
  bool shut_reads_done = false;
  bool drain_deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline;

  ~EventLoop() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake[0] >= 0) ::close(wake[0]);
    if (wake[1] >= 0) ::close(wake[1]);
  }

  // Caller holds `mutex`.
  void WakeLocked() {
    if (wake_pending) return;
    wake_pending = true;
    ZO_COUNTER_INC("svc.epoll.wakeups");
    char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake[1], &byte, 1);
  }

  void NotifyFlush(std::shared_ptr<Connection> connection) {
    std::lock_guard<std::mutex> lock(mutex);
    flush_queue.push_back(std::move(connection));
    WakeLocked();
  }
};

// One client connection. Responses are delivered in request-arrival order:
// the reader assigns each request a slot in `pending_`, workers fill slots
// out of order, and whoever fills the front moves the longest completed
// prefix onward.
//
// Epoll mode (loop_ != nullptr): completed frames go into the bounded
// outbox_ and the owning event loop is woken to flush them nonblockingly —
// workers never touch the socket. A client that stops reading grows the
// outbox past its cap, which latches broken_ and shuts the socket down.
//
// Legacy mode (loop_ == nullptr): whoever completes the front flushes it to
// the (blocking) socket directly; `writing_` serializes flushers, and a
// send timeout (SO_SNDTIMEO) bounds slow readers.
class Server::Connection
    : public std::enable_shared_from_this<Server::Connection> {
 public:
  enum class FlushResult { kIdle, kWantWrite, kBroken, kDone };

  Connection(Server* server, EventLoop* loop, int fd, std::size_t outbox_cap)
      : server_(server), loop_(loop), fd_(fd), outbox_cap_(outbox_cap) {
    server_->live_connections_.fetch_add(1, std::memory_order_relaxed);
  }
  ~Connection() {
    server_->live_connections_.fetch_sub(1, std::memory_order_relaxed);
    if (fd_ >= 0) ::close(fd_);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  // Reserves the next in-order response slot; returns its sequence number.
  std::uint64_t ReserveSlot() {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace_back();
    return base_seq_ + pending_.size() - 1;
  }

  // Fills a slot and moves every completed frame at the queue's front
  // onward: into the outbox (epoll mode, waking the owning loop) or out the
  // socket (legacy mode).
  void CompleteSlot(std::uint64_t seq, std::string frame) {
    if (loop_ == nullptr) {
      CompleteSlotLegacy(seq, std::move(frame));
      return;
    }
    bool notify = false;
    bool overflowed = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_[static_cast<std::size_t>(seq - base_seq_)] = std::move(frame);
      while (!pending_.empty() && pending_.front().has_value()) {
        std::string next = std::move(*pending_.front());
        pending_.pop_front();
        ++base_seq_;
        if (broken_) continue;  // Discard: the stream is already torn down.
        outbox_bytes_ += next.size();
        ZO_COUNTER_ADD("svc.server.outbox_bytes_enqueued", next.size());
        outbox_.push_back(std::move(next));
        notify = true;
        if (outbox_bytes_ > outbox_cap_) {
          // Backpressure contract (docs/serving.md): a client that stops
          // reading costs one bounded buffer, then gets disconnected.
          MarkBrokenLocked();
          overflowed = true;
        }
      }
    }
    if (overflowed) {
      ZO_COUNTER_INC("svc.server.outbox_overflows");
      server_->CountOutboxOverflow();
    }
    if (notify) loop_->NotifyFlush(shared_from_this());
  }

  // Nonblocking drain of the outbox. Called only by the owning event loop.
  FlushResult FlushOutbox() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (broken_) return FlushResult::kBroken;
    while (!outbox_.empty()) {
      const std::string& front = outbox_.front();
      if (ZO_FAULT_POINT("svc.send.partial")) {
        // Same torn-send contract as WriteAll's site: half the remaining
        // frame escapes, then the connection is latched broken.
        std::size_t remaining = front.size() - write_offset_;
        if (remaining > 1) {
          (void)::send(fd_, front.data() + write_offset_, remaining / 2,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
        }
        MarkBrokenLocked();
        return FlushResult::kBroken;
      }
      if (ZO_FAULT_POINT("svc.epoll.write.fail")) {
        // Simulated clean write failure (EPIPE-style): nothing further may
        // be written, tear the connection down.
        ZO_COUNTER_INC("svc.server.injected_epoll_write_fails");
        MarkBrokenLocked();
        return FlushResult::kBroken;
      }
      ssize_t n = ::send(fd_, front.data() + write_offset_,
                         front.size() - write_offset_,
                         MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        ZO_COUNTER_ADD("svc.server.outbox_bytes_flushed",
                       static_cast<std::uint64_t>(n));
        write_offset_ += static_cast<std::size_t>(n);
        outbox_bytes_ -= static_cast<std::size_t>(n);
        if (write_offset_ == front.size()) {
          outbox_.pop_front();
          write_offset_ = 0;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return FlushResult::kWantWrite;
      }
      // Peer closed or reset mid-frame: the framing is desynced for good.
      MarkBrokenLocked();
      return FlushResult::kBroken;
    }
    MaybeShutdownWriteLocked();
    return done_ ? FlushResult::kDone : FlushResult::kIdle;
  }

  // Half-closes the read side; the reader (thread or event loop) observes
  // EOF and stops submitting. Queued responses can still be written.
  void ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

  // Read-side teardown after a protocol violation: no further input will be
  // parsed, but reserved slots still get answered and flushed.
  void AbortReading() {
    ::shutdown(fd_, SHUT_RD);
    FinishReading();
  }

  // Called when reading stops (client EOF, framing error, or drain). Once
  // every reserved slot has been answered and flushed, the write side is
  // half-closed so clients reading until EOF terminate promptly.
  void FinishReading() {
    std::lock_guard<std::mutex> lock(mutex_);
    reading_done_ = true;
    MaybeShutdownWriteLocked();
  }

  bool reading_done() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reading_done_;
  }

  // True once the connection can be retired: torn down, or fully answered
  // and flushed after EOF.
  bool IsDone() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return broken_ || done_;
  }

  void MarkBroken() {
    std::lock_guard<std::mutex> lock(mutex_);
    MarkBrokenLocked();
  }

  // Loop-thread-only accessors (epoll mode).
  std::string& input() { return input_; }
  bool registered() const { return registered_; }
  void set_registered(bool registered) { registered_ = registered; }
  bool want_write() const { return want_write_; }
  void set_want_write(bool want) { want_write_ = want; }

 private:
  // Legacy inline flush: socket writes happen with the mutex released so a
  // client that stops reading blocks only the one flushing thread in
  // send(), not every worker finishing a request for this connection (nor
  // the reader in ReserveSlot). `writing_` serializes flushers; whoever
  // holds it keeps draining frames completed by others in the meantime.
  void CompleteSlotLegacy(std::uint64_t seq, std::string frame) {
    std::unique_lock<std::mutex> lock(mutex_);
    pending_[static_cast<std::size_t>(seq - base_seq_)] = std::move(frame);
    if (writing_) return;  // The active flusher will pick this frame up.
    writing_ = true;
    while (!pending_.empty() && pending_.front().has_value()) {
      std::string next = std::move(*pending_.front());
      pending_.pop_front();
      ++base_seq_;
      if (broken_) continue;  // Discard: the stream is already desynced.
      lock.unlock();
      bool ok = WriteAll(fd_, next);
      lock.lock();
      if (!ok) {
        // A partial or timed-out send leaves the framing desynced; writing
        // later frames would feed the client garbage. Tear the connection
        // down instead so it sees a broken socket.
        broken_ = true;
        ::shutdown(fd_, SHUT_RDWR);
      }
    }
    writing_ = false;
    MaybeShutdownWriteLocked();
  }

  void MarkBrokenLocked() {
    if (broken_) return;
    broken_ = true;
    outbox_.clear();
    outbox_bytes_ = 0;
    write_offset_ = 0;
    ::shutdown(fd_, SHUT_RDWR);
  }

  void MaybeShutdownWriteLocked() {
    if (loop_ != nullptr) {
      if (reading_done_ && pending_.empty() && outbox_.empty() && !broken_ &&
          !done_) {
        ::shutdown(fd_, SHUT_WR);
        done_ = true;
      }
      return;
    }
    // !writing_: a flusher may be mid-send() with mutex_ released and
    // pending_ momentarily empty; it re-runs this check when it finishes.
    if (reading_done_ && pending_.empty() && !writing_) {
      ::shutdown(fd_, SHUT_WR);
    }
  }

  Server* const server_;
  EventLoop* const loop_;  // Null in legacy mode.
  const int fd_;
  const std::size_t outbox_cap_;

  mutable std::mutex mutex_;
  std::deque<std::optional<std::string>> pending_;
  std::uint64_t base_seq_ = 0;
  std::deque<std::string> outbox_;   // Completed frames awaiting the socket.
  std::size_t outbox_bytes_ = 0;
  std::size_t write_offset_ = 0;     // Into outbox_.front().
  bool reading_done_ = false;
  bool writing_ = false;  // Legacy: a flusher is in send(), mutex released.
  bool broken_ = false;   // A send failed or the outbox overflowed.
  bool done_ = false;     // Epoll: fully answered + flushed after EOF.

  // Loop-thread-only (epoll mode).
  std::string input_;
  bool registered_ = false;
  bool want_write_ = false;
};

Server::Server(const ServerOptions& options)
    : options_(options),
      dispatcher_(Dispatcher::Options{options.cache_bytes,
                                      options.snapshot_dir, options.wal,
                                      options.ack_mode,
                                      options.wal_compact_every}),
      executor_(std::make_unique<BoundedExecutor>(options.threads,
                                                  options.queue_capacity)) {}

Server::~Server() {
  BeginShutdown();
  Wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::Error("server already started");
  }
  if (::pipe(wake_pipe_) != 0) {
    return Status::Error("pipe failed: ", std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error("socket failed: ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::Error("bad listen address '", options_.host, "'");
  }
  // EADDRINUSE gets retried with backoff for a bounded window: after a
  // SIGKILL the predecessor's socket may linger briefly even with
  // SO_REUSEADDR (e.g. an orphaned process still closing), and restart
  // supervisors should not flake on that.
  const auto bind_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.bind_retry_ms);
  std::uint64_t backoff_ms = 10;
  for (;;) {
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) == 0) {
      break;
    }
    if (errno != EADDRINUSE ||
        std::chrono::steady_clock::now() >= bind_deadline) {
      return Status::Error("bind to ", options_.host, ":", options_.port,
                           " failed: ", std::strerror(errno));
    }
    ZO_COUNTER_INC("svc.server.bind_retries");
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, 200);
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Error("listen failed: ", std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  // Reload persisted sessions before any traffic can observe their absence.
  if (dispatcher_.snapshots() != nullptr) {
    Dispatcher::RecoveryReport report = dispatcher_.LoadSnapshots();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.snapshots_loaded = report.snapshots.loaded;
      stats_.snapshots_quarantined = report.snapshots.quarantined;
      stats_.wal_records_replayed = report.wal_records_applied;
      stats_.wal_truncated_tails = report.wal_truncated_tails;
      stats_.wal_quarantined = report.wal_quarantined;
    }
    std::fprintf(stderr,
                 "zeroone_server: snapshots: loaded %zu, quarantined %zu\n",
                 report.snapshots.loaded, report.snapshots.quarantined);
    if (dispatcher_.wal() != nullptr) {
      std::fprintf(stderr,
                   "zeroone_server: wal: replayed %zu records over %zu "
                   "sessions (%zu torn tails truncated, %zu spans set "
                   "aside)\n",
                   report.wal_records_applied, report.wal_sessions,
                   report.wal_truncated_tails, report.wal_quarantined);
    }
  }
  if (!options_.follow_host.empty()) {
    ReplicatorOptions repl;
    repl.host = options_.follow_host;
    repl.port = options_.follow_port;
    repl.pull_interval_ms = options_.pull_interval_ms;
    repl.promote_after_ms = options_.promote_after_ms;
    replicator_ = std::make_unique<Replicator>(&dispatcher_, repl);
    replicator_->Start();
    std::fprintf(stderr,
                 "zeroone_server: following %s:%d (read-only standby, "
                 "promote after %llu ms of transport silence)\n",
                 options_.follow_host.c_str(), options_.follow_port,
                 static_cast<unsigned long long>(options_.promote_after_ms));
  }
  // Intra-query thread budget: each executor worker may fan one query out
  // across a morsel team, so the auto default divides the hardware threads
  // by the worker-pool size — `threads` concurrent parallel queries then
  // use about one core each instead of oversubscribing by NxM.
  {
    std::size_t per_query = options_.par_threads;
    if (per_query == 0) {
      unsigned hw = std::thread::hardware_concurrency();
      std::size_t workers = std::max<std::size_t>(1, options_.threads);
      per_query = std::max<std::size_t>(1, (hw == 0 ? 1 : hw) / workers);
    }
    par::SetParThreads(per_query);
    std::fprintf(stderr, "zeroone_server: intra-query parallelism: %zu\n",
                 par::par_threads());
  }
  if (!options_.legacy_readers) {
    std::size_t count = options_.event_threads;
    if (count == 0) {
      unsigned hw = std::thread::hardware_concurrency();
      count = std::min<std::size_t>(4, hw == 0 ? 1 : hw);
    }
    count = std::max<std::size_t>(1, count);
    for (std::size_t i = 0; i < count; ++i) {
      auto loop = std::make_unique<EventLoop>();
      loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      if (loop->epoll_fd < 0) {
        return Status::Error("epoll_create1 failed: ", std::strerror(errno));
      }
      if (::pipe(loop->wake) != 0) {
        return Status::Error("pipe failed: ", std::strerror(errno));
      }
      SetNonBlocking(loop->wake[0]);
      SetNonBlocking(loop->wake[1]);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = nullptr;  // Sentinel: the loop's own wake pipe.
      if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake[0], &ev) !=
          0) {
        return Status::Error("epoll_ctl failed: ", std::strerror(errno));
      }
      loops_.push_back(std::move(loop));
    }
    for (auto& loop : loops_) {
      EventLoop* raw = loop.get();
      raw->thread = std::thread([this, raw] { EventLoopRun(raw); });
    }
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Notify() {
  // Async-signal-safe: a single write to the self-pipe.
  if (wake_pipe_[1] >= 0) {
    char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::WaitForShutdownRequest() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{wake_pipe_[0], POLLIN, 0};
    int rc = ::poll(&pfd, 1, 200);
    if (rc > 0 && (pfd.revents & POLLIN) != 0) return;
  }
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, 200);
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (rc <= 0) continue;
    if ((fds[1].revents & POLLIN) != 0) return;  // Woken for shutdown.
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    if (ZO_FAULT_POINT("svc.accept.drop")) {
      // Simulated accept-time failure: the connection dies before the
      // client sees a single byte, as if the server crashed right here.
      ZO_COUNTER_INC("svc.server.injected_accept_drops");
      ::close(client);
      continue;
    }
    if (options_.max_conns != 0 &&
        live_connections_.load(std::memory_order_relaxed) >=
            options_.max_conns) {
      // Admission control at the connection level: refuse explicitly
      // instead of letting an unbounded connection count exhaust memory.
      ZO_COUNTER_INC("svc.server.connections_refused");
      WriteAll(client,
               FormatResponse(Response{
                   WireStatus::kOverloaded, "0",
                   StrCat("connection limit reached (--max-conns=",
                          options_.max_conns, "); retry later")}));
      {
        // Count before close: a client that saw EOF must already see the
        // refusal in stats() (svc_test polls exactly that ordering).
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections_refused;
      }
      ::close(client);
      continue;
    }
    if (options_.so_sndbuf > 0) {
      ::setsockopt(client, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    ZO_COUNTER_INC("svc.server.connections");
    if (options_.legacy_readers) {
      // A client that stops reading must not wedge a worker (or the drain)
      // in send(): bound the blocking write time, then drop the frame.
      timeval send_timeout{30, 0};
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                   sizeof(send_timeout));
      auto connection = std::make_shared<Connection>(
          this, nullptr, client, options_.outbox_max_bytes);
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        if (stopping_.load(std::memory_order_relaxed)) {
          // Raced with shutdown: refuse politely.
          WriteAll(client,
                   FormatResponse(Response{WireStatus::kShuttingDown, "0",
                                           "server draining"}));
          continue;  // connection closes the fd on destruction.
        }
        connections_.push_back(connection);
        reader_threads_.emplace_back(
            [this, connection] { ServeConnection(connection); });
      }
    } else {
      SetNonBlocking(client);
      EventLoop* loop = loops_[next_loop_++ % loops_.size()].get();
      auto connection = std::make_shared<Connection>(
          this, loop, client, options_.outbox_max_bytes);
      if (stopping_.load(std::memory_order_relaxed)) {
        WriteAll(client,
                 FormatResponse(Response{WireStatus::kShuttingDown, "0",
                                         "server draining"}));
        continue;  // connection closes the fd on destruction.
      }
      std::lock_guard<std::mutex> lock(loop->mutex);
      loop->incoming.push_back(std::move(connection));
      loop->WakeLocked();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_accepted;
    }
  }
}

// ---------------------------------------------------------------------------
// Epoll event loop

void Server::EventLoopRun(EventLoop* loop) {
  epoll_event events[64];
  for (;;) {
    int ready = ::epoll_wait(loop->epoll_fd, events,
                             static_cast<int>(std::size(events)), 200);
    if (ready < 0) {
      if (errno != EINTR) {
        ZO_COUNTER_INC("svc.epoll.wait_errors");
      }
      ready = 0;
    }
    if (ready > 0 && ZO_FAULT_POINT("svc.epoll.wait.fail")) {
      // Simulated transient epoll_wait failure: this batch of readiness
      // events is dropped. Level-triggered epoll re-reports them on the
      // next wait, so the only observable effect is latency — exactly a
      // kernel hiccup, never lost work.
      ZO_COUNTER_INC("svc.server.injected_epoll_wait_drops");
      ready = 0;
    }
    if (ready > 0) {
      ZO_COUNTER_ADD("svc.epoll.ready_events",
                     static_cast<std::uint64_t>(ready));
    }
    for (int i = 0; i < ready; ++i) {
      if (events[i].data.ptr == nullptr) {
        char buf[256];
        while (::read(loop->wake[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      auto* raw = static_cast<Connection*>(events[i].data.ptr);
      std::shared_ptr<Connection> connection = raw->shared_from_this();
      std::uint32_t mask = events[i].events;
      if ((mask & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP)) != 0) {
        HandleReadable(loop, connection);
      }
      if ((mask & EPOLLOUT) != 0) {
        FlushConnection(loop, connection);
      }
    }
    // Drain the cross-thread mailbox: newly accepted connections, flush
    // notifications from workers, and drain directives.
    std::vector<std::shared_ptr<Connection>> incoming;
    std::vector<std::shared_ptr<Connection>> flushes;
    bool shut_reads = false;
    bool stop_idle = false;
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      incoming.swap(loop->incoming);
      flushes.swap(loop->flush_queue);
      shut_reads = loop->shutdown_reads;
      stop_idle = loop->stop_when_idle;
      loop->wake_pending = false;
    }
    for (auto& connection : incoming) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.ptr = connection.get();
      if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, connection->fd(), &ev) !=
          0) {
        continue;  // Dropped; the destructor closes the fd.
      }
      connection->set_registered(true);
      loop->conns.push_back(connection);
      if (shut_reads) {
        // Raced with drain: half-close immediately and process the EOF now
        // (the local SHUT_RD itself produces no fresh epoll event).
        connection->ShutdownRead();
        HandleReadable(loop, connection);
      }
    }
    for (auto& connection : flushes) FlushConnection(loop, connection);
    if (shut_reads && !loop->shut_reads_done) {
      loop->shut_reads_done = true;
      for (auto& connection : loop->conns) {
        connection->ShutdownRead();
        HandleReadable(loop, connection);
      }
    }
    SweepConnections(loop);
    if (stop_idle) {
      if (!loop->drain_deadline_set) {
        loop->drain_deadline_set = true;
        loop->drain_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.drain_flush_timeout_ms);
      }
      for (auto& connection : loop->conns) FlushConnection(loop, connection);
      SweepConnections(loop);
      if (loop->conns.empty()) return;
      if (std::chrono::steady_clock::now() >= loop->drain_deadline) {
        // Peers that stopped reading would hold the drain forever; declare
        // them broken (same contract as the legacy send timeout).
        for (auto& connection : loop->conns) connection->MarkBroken();
        SweepConnections(loop);
        return;
      }
    }
  }
}

void Server::HandleReadable(EventLoop* loop,
                            const std::shared_ptr<Connection>& connection) {
  if (!connection->registered() || connection->reading_done()) return;
  char chunk[4096];
  // Fairness bound: a client blasting pipelined requests yields the loop
  // after this many reads; level-triggered epoll re-reports the rest.
  int rounds = 16;
  std::string& input = connection->input();
  for (;;) {
    if (ZO_FAULT_POINT("svc.epoll.read.fail")) {
      // Simulated mid-stream connection reset: stop reading as if the peer
      // vanished. Reserved slots still get answered and flushed.
      ZO_COUNTER_INC("svc.server.injected_epoll_read_resets");
      connection->AbortReading();
      return;
    }
    ssize_t n = ::recv(connection->fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      connection->FinishReading();  // Reset or error: treat as EOF.
      return;
    }
    if (n == 0) {
      connection->FinishReading();
      return;
    }
    input.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = input.find('\n')) != std::string::npos) {
      std::string line = input.substr(0, newline);
      input.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;  // Blank keep-alive line.
      HandleLine(connection, std::move(line));
    }
    if (input.size() > kMaxRequestBytes) {
      // Framing is unrecoverable once a line overruns the cap: answer
      // BAD_REQUEST and stop reading this connection.
      std::uint64_t seq = connection->ReserveSlot();
      connection->CompleteSlot(
          seq, FormatResponse(Response{
                   WireStatus::kBadRequest, "0",
                   StrCat("request line exceeds ", kMaxRequestBytes,
                          " bytes")}));
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.bad_requests;
      }
      connection->AbortReading();
      return;
    }
    if (static_cast<std::size_t>(n) < sizeof(chunk)) return;  // Drained.
    if (--rounds == 0) return;
  }
}

void Server::FlushConnection(EventLoop* loop,
                             const std::shared_ptr<Connection>& connection) {
  if (!connection->registered()) return;
  Connection::FlushResult result = connection->FlushOutbox();
  bool want_write = result == Connection::FlushResult::kWantWrite;
  if (want_write != connection->want_write()) {
    connection->set_want_write(want_write);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | (want_write ? EPOLLOUT : 0u);
    ev.data.ptr = connection.get();
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, connection->fd(), &ev);
  }
}

void Server::SweepConnections(EventLoop* loop) {
  auto& conns = loop->conns;
  for (std::size_t i = 0; i < conns.size();) {
    if (conns[i]->IsDone()) {
      // Deregister before dropping the loop's reference: workers may still
      // hold the shared_ptr (and call CompleteSlot, which discards), but no
      // further epoll event can reference the raw pointer.
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conns[i]->fd(), nullptr);
      conns[i]->set_registered(false);
      conns[i] = std::move(conns.back());
      conns.pop_back();
    } else {
      ++i;
    }
  }
}

void Server::CountOutboxOverflow() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.outbox_overflows;
}

// ---------------------------------------------------------------------------
// Legacy reader model

void Server::ServeConnection(std::shared_ptr<Connection> connection) {
  // Whatever path exits the read loop, let the connection half-close its
  // write side once all reserved slots are answered.
  struct ReadingGuard {
    Connection* connection;
    ~ReadingGuard() { connection->FinishReading(); }
  } guard{connection.get()};
  std::string buffer;
  char chunk[4096];
  for (;;) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) == std::string::npos) {
      if (buffer.size() > kMaxRequestBytes) {
        // Framing is unrecoverable once a line overruns the cap: answer
        // BAD_REQUEST and drop the connection.
        std::uint64_t seq = connection->ReserveSlot();
        connection->CompleteSlot(
            seq, FormatResponse(Response{
                     WireStatus::kBadRequest, "0",
                     StrCat("request line exceeds ", kMaxRequestBytes,
                            " bytes")}));
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.bad_requests;
        }
        return;
      }
      if (ZO_FAULT_POINT("svc.recv.reset")) {
        // Simulated mid-stream connection reset: stop reading as if the
        // peer vanished. Reserved slots still get answered and flushed.
        ZO_COUNTER_INC("svc.server.injected_recv_resets");
        ::shutdown(connection->fd(), SHUT_RD);
        return;
      }
      ssize_t n = ::recv(connection->fd(), chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // EOF or error: client is done.
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer.substr(0, newline);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    buffer.erase(0, newline + 1);
    if (line.empty()) continue;  // Blank keep-alive line.
    HandleLine(connection, std::move(line));
  }
}

// ---------------------------------------------------------------------------
// Shared request admission

void Server::HandleLine(const std::shared_ptr<Connection>& connection,
                        std::string line) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_received;
  }
  ZO_COUNTER_INC("svc.server.requests");
  std::uint64_t seq = connection->ReserveSlot();
  StatusOr<Request> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_requests;
    }
    ZO_COUNTER_INC("svc.server.bad_requests");
    connection->CompleteSlot(
        seq, FormatResponse(Response{WireStatus::kBadRequest, "0",
                                     parsed.status().message()}));
    return;
  }
  Request request = std::move(*parsed);
  std::uint64_t deadline_ms = request.deadline_ms != 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  // The lambda below moves `request` out when it is *constructed* (i.e.
  // even when TrySubmit then rejects it), so keep what the rejection
  // response needs.
  const std::string request_id = request.id;
  auto admitted = std::chrono::steady_clock::now();

  bool submitted = executor_->TrySubmit([this, connection, seq,
                                         request = std::move(request),
                                         deadline_ms, admitted] {
    ZO_TRACE_SPAN("svc.request");
    // The worker never touches the socket: the response lands in the
    // connection's outbox (or is flushed inline in legacy mode) via the
    // CompleteSlot completion callback.
    Response response =
        dispatcher_.ExecuteAdmitted(request, admitted, deadline_ms);
    connection->CompleteSlot(seq, FormatResponse(response));
  });
  if (!submitted) {
    bool draining = stopping_.load(std::memory_order_relaxed) ||
                    executor_->draining();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (draining) {
        ++stats_.shutting_down_rejects;
      } else {
        ++stats_.overloaded;
      }
    }
    ZO_COUNTER_INC("svc.server.overloaded");
    connection->CompleteSlot(
        seq,
        FormatResponse(Response{
            draining ? WireStatus::kShuttingDown : WireStatus::kOverloaded,
            request_id,
            draining
                ? std::string("server draining; request rejected")
                : StrCat("work queue full (capacity ",
                         options_.queue_capacity, "); retry later")}));
  }
}

// ---------------------------------------------------------------------------
// Drain

void Server::BeginShutdown() {
  if (stopping_.exchange(true)) {
    Notify();
    return;
  }
  Notify();  // Wake the accept loop and WaitForShutdownRequest.
  // Half-close every connection: readers see EOF and stop submitting; the
  // executor still finishes (and answers) everything already accepted. The
  // event loops need an explicit self-pipe wakeup — a thread parked in
  // epoll_wait never observes a flag by itself (the PR-3 drain relied on
  // per-connection reader threads unblocking on shutdown(SHUT_RD), which
  // no longer exist).
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> lock(loop->mutex);
    loop->shutdown_reads = true;
    loop->WakeLocked();
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const auto& connection : connections_) connection->ShutdownRead();
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Close the listen socket so late connects are refused outright instead
  // of sitting unanswered in the accept backlog.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Legacy readers are joinable once their sockets are half-closed; the
  // epoll loops keep running through the executor drain so completed
  // responses still get flushed.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    readers.swap(reader_threads_);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }
  // No new submissions can arrive once readers are gone (or half-closed);
  // Drain completes every accepted request, parking its response in the
  // connection outboxes (epoll) or writing it inline (legacy).
  executor_->Drain();
  // Join order matters: only after the executor is drained may the event
  // loops stop — they still have outboxes to flush. Each loop exits once
  // every connection is retired (flushed + EOF, broken, or past the drain
  // flush timeout), and must be woken explicitly to notice the directive.
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> lock(loop->mutex);
    loop->stop_when_idle = true;
    loop->WakeLocked();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Stop pulling from the primary before the drain save so no shipped
  // record lands between a session's snapshot and process exit.
  if (replicator_ != nullptr) replicator_->Stop();
  // All accepted work is finished; persist every named session so a
  // restart resumes from exactly what clients last observed. Wait() runs
  // again from the destructor, so save exactly once.
  if (dispatcher_.snapshots() != nullptr &&
      !saved_on_drain_.exchange(true)) {
    std::size_t saved = dispatcher_.SaveAllSessions();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.snapshots_saved = saved;
    }
    std::fprintf(stderr, "zeroone_server: snapshots: saved %zu sessions\n",
                 saved);
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.clear();  // Closes fds once workers release their refs.
}

void Server::Shutdown() {
  BeginShutdown();
  Wait();
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace svc
}  // namespace zeroone
