#include "svc/server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "svc/http.h"

namespace zeroone {
namespace svc {

Server::Server(const ServerOptions& options)
    : options_(options),
      dispatcher_(Dispatcher::Options{options.cache_bytes,
                                      options.snapshot_dir, options.wal,
                                      options.ack_mode,
                                      options.wal_compact_every}),
      executor_(std::make_unique<BoundedExecutor>(options.threads,
                                                  options.queue_capacity)) {}

Server::~Server() {
  BeginShutdown();
  Wait();
  if (notify_pipe_[0] >= 0) ::close(notify_pipe_[0]);
  if (notify_pipe_[1] >= 0) ::close(notify_pipe_[1]);
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::Error("server already started");
  }
  if (::pipe(notify_pipe_) != 0) {
    return Status::Error("pipe failed: ", std::strerror(errno));
  }
  TransportOptions zo1;
  zo1.host = options_.host;
  zo1.port = options_.port;
  zo1.event_threads = options_.event_threads;
  zo1.max_conns = options_.max_conns;
  zo1.outbox_max_bytes = options_.outbox_max_bytes;
  zo1.legacy_readers = options_.legacy_readers;
  zo1.so_sndbuf = options_.so_sndbuf;
  zo1.bind_retry_ms = options_.bind_retry_ms;
  zo1.drain_flush_timeout_ms = options_.drain_flush_timeout_ms;
  TransportHooks zo1_hooks;
  zo1_hooks.make_handler = [this](Channel* channel) {
    return std::make_unique<Zo1LineHandler>(channel, this);
  };
  zo1_hooks.refusal_frame = [this](RefusalReason reason) {
    return Zo1RefusalFrame(reason, options_.max_conns);
  };
  transport_ =
      std::make_unique<Transport>(zo1, std::move(zo1_hooks));
  ZO_RETURN_IF_ERROR(transport_->Bind());
  if (options_.http_port >= 0) {
    TransportOptions http = zo1;
    http.port = options_.http_port;
    http.legacy_readers = false;  // The gateway always uses event loops.
    TransportHooks http_hooks;
    http_hooks.make_handler = [this](Channel* channel) {
      return std::make_unique<HttpHandler>(channel, this);
    };
    http_hooks.refusal_frame = [this](RefusalReason reason) {
      return HttpRefusalFrame(reason, options_.max_conns);
    };
    http_transport_ =
        std::make_unique<Transport>(http, std::move(http_hooks));
    ZO_RETURN_IF_ERROR(http_transport_->Bind());
  }
  // Reload persisted sessions before any traffic can observe their absence
  // (the listeners are bound but not serving yet).
  if (dispatcher_.snapshots() != nullptr) {
    Dispatcher::RecoveryReport report = dispatcher_.LoadSnapshots();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.snapshots_loaded = report.snapshots.loaded;
      stats_.snapshots_quarantined = report.snapshots.quarantined;
      stats_.wal_records_replayed = report.wal_records_applied;
      stats_.wal_truncated_tails = report.wal_truncated_tails;
      stats_.wal_quarantined = report.wal_quarantined;
    }
    std::fprintf(stderr,
                 "zeroone_server: snapshots: loaded %zu, quarantined %zu\n",
                 report.snapshots.loaded, report.snapshots.quarantined);
    if (dispatcher_.wal() != nullptr) {
      std::fprintf(stderr,
                   "zeroone_server: wal: replayed %zu records over %zu "
                   "sessions (%zu torn tails truncated, %zu spans set "
                   "aside)\n",
                   report.wal_records_applied, report.wal_sessions,
                   report.wal_truncated_tails, report.wal_quarantined);
    }
  }
  if (!options_.follow_host.empty()) {
    ReplicatorOptions repl;
    repl.host = options_.follow_host;
    repl.port = options_.follow_port;
    repl.pull_interval_ms = options_.pull_interval_ms;
    repl.promote_after_ms = options_.promote_after_ms;
    replicator_ = std::make_unique<Replicator>(&dispatcher_, repl);
    replicator_->Start();
    std::fprintf(stderr,
                 "zeroone_server: following %s:%d (read-only standby, "
                 "promote after %llu ms of transport silence)\n",
                 options_.follow_host.c_str(), options_.follow_port,
                 static_cast<unsigned long long>(options_.promote_after_ms));
  }
  // Intra-query thread budget: each executor worker may fan one query out
  // across a morsel team, so the auto default divides the hardware threads
  // by the worker-pool size — `threads` concurrent parallel queries then
  // use about one core each instead of oversubscribing by NxM.
  {
    std::size_t per_query = options_.par_threads;
    if (per_query == 0) {
      unsigned hw = std::thread::hardware_concurrency();
      std::size_t workers = std::max<std::size_t>(1, options_.threads);
      per_query = std::max<std::size_t>(1, (hw == 0 ? 1 : hw) / workers);
    }
    par::SetParThreads(per_query);
    std::fprintf(stderr, "zeroone_server: intra-query parallelism: %zu\n",
                 par::par_threads());
  }
  ZO_RETURN_IF_ERROR(transport_->Serve());
  if (http_transport_ != nullptr) {
    ZO_RETURN_IF_ERROR(http_transport_->Serve());
  }
  return Status::Ok();
}

int Server::port() const {
  return transport_ != nullptr ? transport_->port() : 0;
}

int Server::http_port() const {
  return http_transport_ != nullptr ? http_transport_->port() : -1;
}

std::size_t Server::event_threads() const {
  return transport_ != nullptr ? transport_->event_threads() : 0;
}

void Server::Notify() {
  // Async-signal-safe: a single write to the self-pipe.
  if (notify_pipe_[1] >= 0) {
    char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(notify_pipe_[1], &byte, 1);
  }
}

void Server::WaitForShutdownRequest() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{notify_pipe_[0], POLLIN, 0};
    int rc = ::poll(&pfd, 1, 200);
    if (rc > 0 && (pfd.revents & POLLIN) != 0) return;
  }
}

// ---------------------------------------------------------------------------
// Request admission (RequestSink)

void Server::Submit(const std::shared_ptr<Channel>& channel,
                    std::string line, Encoder encoder) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_received;
  }
  ZO_COUNTER_INC("svc.server.requests");
  std::uint64_t seq = channel->ReserveSlot();
  StatusOr<Request> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_requests;
    }
    ZO_COUNTER_INC("svc.server.bad_requests");
    channel->CompleteSlot(seq,
                          encoder(Response{WireStatus::kBadRequest, "0",
                                           parsed.status().message()}));
    return;
  }
  Request request = std::move(*parsed);
  std::uint64_t deadline_ms = request.deadline_ms != 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  // The lambda below moves `request` out when it is *constructed* (i.e.
  // even when TrySubmit then rejects it), so keep what the rejection
  // response needs.
  const std::string request_id = request.id;
  auto admitted = std::chrono::steady_clock::now();

  bool submitted = executor_->TrySubmit([this, channel, seq,
                                         request = std::move(request),
                                         encoder, deadline_ms, admitted] {
    ZO_TRACE_SPAN("svc.request");
    // The worker never touches the socket: the response lands in the
    // connection's outbox (or is flushed inline in legacy mode) via the
    // CompleteSlot completion callback.
    Response response =
        dispatcher_.ExecuteAdmitted(request, admitted, deadline_ms);
    channel->CompleteSlot(seq, encoder(response));
  });
  if (!submitted) {
    bool draining = stopping_.load(std::memory_order_relaxed) ||
                    executor_->draining();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (draining) {
        ++stats_.shutting_down_rejects;
      } else {
        ++stats_.overloaded;
      }
    }
    ZO_COUNTER_INC("svc.server.overloaded");
    channel->CompleteSlot(
        seq,
        encoder(Response{
            draining ? WireStatus::kShuttingDown : WireStatus::kOverloaded,
            request_id,
            draining
                ? std::string("server draining; request rejected")
                : StrCat("work queue full (capacity ",
                         options_.queue_capacity, "); retry later")}));
  }
}

void Server::OnWireError() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.bad_requests;
}

// ---------------------------------------------------------------------------
// Drain

void Server::BeginShutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  Notify();  // Wake WaitForShutdownRequest.
  if (transport_ != nullptr) transport_->BeginShutdown();
  if (http_transport_ != nullptr) http_transport_->BeginShutdown();
}

void Server::Wait() {
  // Phase 1: no new request can enter the system once the accept threads
  // are joined and every connection is half-closed for reading.
  if (transport_ != nullptr) transport_->JoinReaders();
  if (http_transport_ != nullptr) http_transport_->JoinReaders();
  // Phase 2: Drain completes every accepted request, parking its response
  // in the connection outboxes (epoll) or writing it inline (legacy).
  executor_->Drain();
  // Phase 3: only after the executor is drained may the event loops stop —
  // they still have outboxes to flush.
  if (transport_ != nullptr) transport_->StopAndJoin();
  if (http_transport_ != nullptr) http_transport_->StopAndJoin();
  // Stop pulling from the primary before the drain save so no shipped
  // record lands between a session's snapshot and process exit.
  if (replicator_ != nullptr) replicator_->Stop();
  // All accepted work is finished; persist every named session so a
  // restart resumes from exactly what clients last observed. Wait() runs
  // again from the destructor, so save exactly once.
  if (dispatcher_.snapshots() != nullptr &&
      !saved_on_drain_.exchange(true)) {
    std::size_t saved = dispatcher_.SaveAllSessions();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.snapshots_saved = saved;
    }
    std::fprintf(stderr, "zeroone_server: snapshots: saved %zu sessions\n",
                 saved);
  }
}

void Server::Shutdown() {
  BeginShutdown();
  Wait();
}

Server::Stats Server::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
  }
  for (const Transport* transport :
       {transport_.get(), http_transport_.get()}) {
    if (transport == nullptr) continue;
    Transport::Stats t = transport->stats();
    out.connections_accepted += t.connections_accepted;
    out.connections_refused += t.connections_refused;
    out.outbox_overflows += t.outbox_overflows;
  }
  return out;
}

}  // namespace svc
}  // namespace zeroone
