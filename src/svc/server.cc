#include "svc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>
#include <utility>

#include "common/cancel.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {
namespace svc {

namespace {

// Writes all of `data` to `fd`, ignoring SIGPIPE (the peer may have gone).
// Returns false when the peer closed or the send timed out (SO_SNDTIMEO):
// a frame may then have been written partially, so the stream is desynced
// and the caller must stop writing to this connection entirely.
bool WriteAll(int fd, std::string_view data) {
  if (ZO_FAULT_POINT("svc.send.partial")) {
    // Simulated torn send: half a frame leaves the socket, then the
    // "connection" fails. The caller must latch the stream broken, exactly
    // as for a real partial send.
    if (data.size() > 1) {
      (void)::send(fd, data.data(), data.size() / 2, MSG_NOSIGNAL);
    }
    return false;
  }
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

// One client connection. Responses are delivered in request-arrival order:
// the reader assigns each request a slot in `pending_`, workers fill slots
// out of order, and whoever fills the front flushes the longest completed
// prefix to the socket.
class Server::Connection {
 public:
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  // Reserves the next in-order response slot; returns its sequence number.
  std::uint64_t ReserveSlot() {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace_back();
    return base_seq_ + pending_.size() - 1;
  }

  // Fills a slot and flushes every completed frame at the queue's front.
  // Socket writes happen with the mutex released: a client that stops
  // reading blocks only the one flushing thread in send(), not every worker
  // finishing a request for this connection (nor the reader in ReserveSlot).
  // `writing_` serializes flushers; whoever holds it keeps draining frames
  // completed by others in the meantime.
  void CompleteSlot(std::uint64_t seq, std::string frame) {
    std::unique_lock<std::mutex> lock(mutex_);
    pending_[static_cast<std::size_t>(seq - base_seq_)] = std::move(frame);
    if (writing_) return;  // The active flusher will pick this frame up.
    writing_ = true;
    while (!pending_.empty() && pending_.front().has_value()) {
      std::string next = std::move(*pending_.front());
      pending_.pop_front();
      ++base_seq_;
      if (broken_) continue;  // Discard: the stream is already desynced.
      lock.unlock();
      bool ok = WriteAll(fd_, next);
      lock.lock();
      if (!ok) {
        // A partial or timed-out send leaves the framing desynced; writing
        // later frames would feed the client garbage. Tear the connection
        // down instead so it sees a broken socket.
        broken_ = true;
        ::shutdown(fd_, SHUT_RDWR);
      }
    }
    writing_ = false;
    MaybeShutdownWriteLocked();
  }

  // Half-closes the read side so the reader thread unblocks; queued
  // responses can still be written.
  void ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

  // Called by the reader thread when it stops reading (client EOF or a
  // framing error). Once every reserved slot has been answered, half-close
  // the write side so clients reading until EOF terminate promptly.
  void FinishReading() {
    std::lock_guard<std::mutex> lock(mutex_);
    reading_done_ = true;
    MaybeShutdownWriteLocked();
  }

 private:
  void MaybeShutdownWriteLocked() {
    // !writing_: a flusher may be mid-send() with mutex_ released and
    // pending_ momentarily empty; it re-runs this check when it finishes.
    if (reading_done_ && pending_.empty() && !writing_) {
      ::shutdown(fd_, SHUT_WR);
    }
  }

  const int fd_;
  std::mutex mutex_;
  std::deque<std::optional<std::string>> pending_;
  std::uint64_t base_seq_ = 0;
  bool reading_done_ = false;
  bool writing_ = false;  // A flusher is in send() with mutex_ released.
  bool broken_ = false;   // A send failed; drop all further frames.
};

Server::Server(const ServerOptions& options)
    : options_(options),
      dispatcher_(
          Dispatcher::Options{options.cache_bytes, options.snapshot_dir}),
      executor_(std::make_unique<BoundedExecutor>(options.threads,
                                                  options.queue_capacity)) {}

Server::~Server() {
  BeginShutdown();
  Wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::Error("server already started");
  }
  if (::pipe(wake_pipe_) != 0) {
    return Status::Error("pipe failed: ", std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error("socket failed: ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::Error("bad listen address '", options_.host, "'");
  }
  // EADDRINUSE gets retried with backoff for a bounded window: after a
  // SIGKILL the predecessor's socket may linger briefly even with
  // SO_REUSEADDR (e.g. an orphaned process still closing), and restart
  // supervisors should not flake on that.
  const auto bind_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.bind_retry_ms);
  std::uint64_t backoff_ms = 10;
  for (;;) {
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) == 0) {
      break;
    }
    if (errno != EADDRINUSE ||
        std::chrono::steady_clock::now() >= bind_deadline) {
      return Status::Error("bind to ", options_.host, ":", options_.port,
                           " failed: ", std::strerror(errno));
    }
    ZO_COUNTER_INC("svc.server.bind_retries");
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, 200);
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Error("listen failed: ", std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  // Reload persisted sessions before any traffic can observe their absence.
  if (dispatcher_.snapshots() != nullptr) {
    SnapshotStore::LoadReport report = dispatcher_.LoadSnapshots();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.snapshots_loaded = report.loaded;
      stats_.snapshots_quarantined = report.quarantined;
    }
    std::fprintf(stderr,
                 "zeroone_server: snapshots: loaded %zu, quarantined %zu\n",
                 report.loaded, report.quarantined);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Notify() {
  // Async-signal-safe: a single write to the self-pipe.
  if (wake_pipe_[1] >= 0) {
    char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::WaitForShutdownRequest() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{wake_pipe_[0], POLLIN, 0};
    int rc = ::poll(&pfd, 1, 200);
    if (rc > 0 && (pfd.revents & POLLIN) != 0) return;
  }
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, 200);
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (rc <= 0) continue;
    if ((fds[1].revents & POLLIN) != 0) return;  // Woken for shutdown.
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    if (ZO_FAULT_POINT("svc.accept.drop")) {
      // Simulated accept-time failure: the connection dies before the
      // client sees a single byte, as if the server crashed right here.
      ZO_COUNTER_INC("svc.server.injected_accept_drops");
      ::close(client);
      continue;
    }
    // A client that stops reading must not wedge a worker (or the drain)
    // in send(): bound the blocking write time, then drop the frame.
    timeval send_timeout{30, 0};
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    ZO_COUNTER_INC("svc.server.connections");
    auto connection = std::make_shared<Connection>(client);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (stopping_.load(std::memory_order_relaxed)) {
        // Raced with shutdown: refuse politely.
        WriteAll(client, FormatResponse(Response{WireStatus::kShuttingDown,
                                                 "0", "server draining"}));
        continue;  // connection closes the fd on destruction.
      }
      connections_.push_back(connection);
      reader_threads_.emplace_back(
          [this, connection] { ServeConnection(connection); });
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_accepted;
    }
  }
}

void Server::ServeConnection(std::shared_ptr<Connection> connection) {
  // Whatever path exits the read loop, let the connection half-close its
  // write side once all reserved slots are answered.
  struct ReadingGuard {
    Connection* connection;
    ~ReadingGuard() { connection->FinishReading(); }
  } guard{connection.get()};
  std::string buffer;
  char chunk[4096];
  for (;;) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) == std::string::npos) {
      if (buffer.size() > kMaxRequestBytes) {
        // Framing is unrecoverable once a line overruns the cap: answer
        // BAD_REQUEST and drop the connection.
        std::uint64_t seq = connection->ReserveSlot();
        connection->CompleteSlot(
            seq, FormatResponse(Response{
                     WireStatus::kBadRequest, "0",
                     StrCat("request line exceeds ", kMaxRequestBytes,
                            " bytes")}));
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.bad_requests;
        }
        return;
      }
      if (ZO_FAULT_POINT("svc.recv.reset")) {
        // Simulated mid-stream connection reset: stop reading as if the
        // peer vanished. Reserved slots still get answered and flushed.
        ZO_COUNTER_INC("svc.server.injected_recv_resets");
        ::shutdown(connection->fd(), SHUT_RD);
        return;
      }
      ssize_t n = ::recv(connection->fd(), chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // EOF or error: client is done.
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer.substr(0, newline);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    buffer.erase(0, newline + 1);
    if (line.empty()) continue;  // Blank keep-alive line.
    HandleLine(connection, std::move(line));
  }
}

void Server::HandleLine(const std::shared_ptr<Connection>& connection,
                        std::string line) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_received;
  }
  ZO_COUNTER_INC("svc.server.requests");
  std::uint64_t seq = connection->ReserveSlot();
  StatusOr<Request> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_requests;
    }
    ZO_COUNTER_INC("svc.server.bad_requests");
    connection->CompleteSlot(
        seq, FormatResponse(Response{WireStatus::kBadRequest, "0",
                                     parsed.status().message()}));
    return;
  }
  Request request = std::move(*parsed);
  std::uint64_t deadline_ms = request.deadline_ms != 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  // The lambda below moves `request` out when it is *constructed* (i.e.
  // even when TrySubmit then rejects it), so keep what the rejection
  // response needs.
  const std::string request_id = request.id;
  auto admitted = std::chrono::steady_clock::now();

  bool submitted = executor_->TrySubmit([this, connection, seq,
                                         request = std::move(request),
                                         deadline_ms, admitted] {
    ZO_TRACE_SPAN("svc.request");
    CancelToken token;
    if (deadline_ms != 0) {
      // The deadline clock starts at admission: time spent queued counts.
      token.SetDeadline(admitted + std::chrono::milliseconds(deadline_ms));
    }
    ScopedCancelToken scoped(&token);
    Response response;
    if (token.cancelled()) {
      // Expired while queued; don't start the evaluation at all.
      ZO_COUNTER_INC("svc.requests.deadline_exceeded");
      response = Response{WireStatus::kDeadlineExceeded, request.id,
                          StrCat("deadline expired after ", deadline_ms,
                                 "ms in queue; '", request.command,
                                 "' not started")};
    } else {
      response = dispatcher_.Execute(request);
    }
    connection->CompleteSlot(seq, FormatResponse(response));
  });
  if (!submitted) {
    bool draining = stopping_.load(std::memory_order_relaxed) ||
                    executor_->draining();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (draining) {
        ++stats_.shutting_down_rejects;
      } else {
        ++stats_.overloaded;
      }
    }
    ZO_COUNTER_INC("svc.server.overloaded");
    connection->CompleteSlot(
        seq,
        FormatResponse(Response{
            draining ? WireStatus::kShuttingDown : WireStatus::kOverloaded,
            request_id,
            draining
                ? std::string("server draining; request rejected")
                : StrCat("work queue full (capacity ",
                         options_.queue_capacity, "); retry later")}));
  }
}

void Server::BeginShutdown() {
  if (stopping_.exchange(true)) {
    Notify();
    return;
  }
  Notify();  // Wake the accept loop and WaitForShutdownRequest.
  // Half-close every connection: readers see EOF and stop submitting; the
  // executor still finishes (and answers) everything already accepted.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const auto& connection : connections_) connection->ShutdownRead();
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Close the listen socket so late connects are refused outright instead
  // of sitting unanswered in the accept backlog.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // No new submissions can arrive once readers are gone or rejected;
  // Drain completes every accepted request (writing its response).
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    readers.swap(reader_threads_);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }
  executor_->Drain();
  // All accepted work is finished; persist every named session so a
  // restart resumes from exactly what clients last observed. Wait() runs
  // again from the destructor, so save exactly once.
  if (dispatcher_.snapshots() != nullptr &&
      !saved_on_drain_.exchange(true)) {
    std::size_t saved = dispatcher_.SaveAllSessions();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.snapshots_saved = saved;
    }
    std::fprintf(stderr, "zeroone_server: snapshots: saved %zu sessions\n",
                 saved);
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.clear();  // Closes fds once workers release their refs.
}

void Server::Shutdown() {
  BeginShutdown();
  Wait();
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace svc
}  // namespace zeroone
