#ifndef ZEROONE_SVC_HTTP_H_
#define ZEROONE_SVC_HTTP_H_

// Minimal HTTP/1.1 gateway over the same Transport and RequestSink as the
// ZO1 newline protocol (docs/serving.md has the endpoint reference).
//
//   POST /v1/query   body: {"command": "...", "args": "...", "id": "...",
//                           "session": "...", "deadline_ms": N,
//                           "nocache": true, "explain": true}
//   GET  /metrics    the obs registry dump (counters + histograms).
//
// Parity by construction: the JSON body is assembled into a ZO1 request
// *line* ("@id=.. @session=.. command args") and submitted through the one
// RequestSink, so parse errors, admission responses, and dispatcher
// payloads are byte-for-byte the strings a raw ZO1 client would see —
// only the framing differs (tests/svc_http_test.cc asserts this). The
// response body is {"status": "...", "id": "...", "payload": "..."} with
// the HTTP status code mapped from the wire status (HttpStatusFor).
//
// Scope: request-line + headers + Content-Length bodies only. No chunked
// transfer encoding, no multipart, no TLS. HTTP/1.1 keep-alive (and
// pipelining, via the channel's response slots) is supported; Connection:
// close is honored. Violations that desync framing (malformed head, bad
// Content-Length, oversized head or body) are answered 400/413 with
// Connection: close and the read side is torn down — never a crash
// (tests/svc_fuzz_test.cc mutation battery).

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"
#include "svc/frontend.h"
#include "svc/protocol.h"
#include "svc/transport.h"

namespace zeroone {
namespace svc {

struct HttpOptions {
  // Cap on the request line + headers block.
  std::size_t max_head_bytes = 16 * 1024;
  // Cap on a request body; aligned with the ZO1 request-line cap since the
  // body becomes one request line.
  std::size_t max_body_bytes = kMaxRequestBytes;
};

class HttpHandler : public ProtocolHandler {
 public:
  HttpHandler(Channel* channel, RequestSink* sink,
              const HttpOptions& options = HttpOptions());

  void OnData(std::string_view bytes) override;

  // The wire-status → HTTP-status mapping (exposed for tests):
  // OK→200, ERR→422, BAD_REQUEST→400, OVERLOADED/SHUTTING_DOWN/
  // UNAVAILABLE→503, DEADLINE_EXCEEDED→504.
  static int HttpStatusFor(WireStatus status);

  // Encodes one wire response as the HTTP response to a /v1/query request.
  static std::string EncodeQueryResponse(const Response& response,
                                         bool keep_alive);

 private:
  enum class State { kHead, kBody, kClosed };

  void ProcessBuffer();
  // Parses the head block (request line + headers); on error answers the
  // peer and closes. Returns false when the connection is being torn down.
  bool ParseHead(std::string_view head);
  void DispatchRequest(std::string body);
  // Reserves the next response slot and completes it immediately.
  void RespondNow(int code, std::string_view reason, std::string body,
                  bool keep_alive);
  // Unrecoverable wire-level failure: answer with Connection: close,
  // account it, and stop reading.
  void FailAndClose(int code, std::string_view reason, std::string body);

  Channel* const channel_;  // The owning Conn outlives its handler.
  RequestSink* const sink_;
  const HttpOptions options_;

  std::string buffer_;
  State state_ = State::kHead;
  // Current request, valid in State::kBody.
  std::string method_;
  std::string target_;
  bool keep_alive_ = true;
  std::size_t content_length_ = 0;
};

// Accept-time refusal bytes for HTTP listeners (TransportHooks::
// refusal_frame): a 503 with Connection: close carrying the same payload
// strings as the ZO1 refusal frames.
std::string HttpRefusalFrame(RefusalReason reason, std::size_t max_conns);

// Translates a /v1/query JSON body into its ZO1 request line, or an error
// describing the malformed JSON / unknown field. Exposed for tests; the
// returned line is what HttpHandler submits to the RequestSink.
StatusOr<std::string> AssembleQueryLine(std::string_view json_body);

// Escapes `text` for inclusion in a JSON string literal.
std::string JsonEscape(std::string_view text);

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_HTTP_H_
