#include "svc/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "fault/fault.h"

namespace zeroone {
namespace svc {

namespace {

void SetSocketTimeout(int fd, int option, std::uint64_t ms) {
  if (ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

// Connects with a deadline: non-blocking connect, poll for writability,
// then read back SO_ERROR. Blocking mode is restored on success.
Status ConnectWithTimeout(int fd, const sockaddr_in& addr,
                          std::uint64_t timeout_ms) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Error("fcntl failed: ", std::strerror(errno));
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      return Status::Error("connect failed: ", std::strerror(errno));
    }
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc == 0) {
      return Status::Error("connect timed out after ", timeout_ms, "ms");
    }
    if (rc < 0) {
      return Status::Error("poll failed: ", std::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return Status::Error("connect failed: ",
                           std::strerror(err != 0 ? err : errno));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    return Status::Error("fcntl failed: ", std::strerror(errno));
  }
  return Status::Ok();
}

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BlockingClient::~BlockingClient() { Close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : options_(other.options_),
      fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    options_ = other.options_;
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status BlockingClient::Connect(const std::string& host, int port) {
  Close();
  if (ZO_FAULT_POINT("svc.client.connect.fail")) {
    return Status::Error("injected fault: connect to ", host, ":", port,
                         " refused");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Error("socket failed: ", std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error("bad host address '", host, "'");
  }
  Status connected =
      options_.connect_timeout_ms != 0
          ? ConnectWithTimeout(fd_, addr, options_.connect_timeout_ms)
          : (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0
                 ? Status::Ok()
                 : Status::Error("connect failed: ", std::strerror(errno)));
  if (!connected.ok()) {
    Status status = Status::Error("connect to ", host, ":", port, " failed: ",
                                  connected.message());
    Close();
    return status;
  }
  SetSocketTimeout(fd_, SO_SNDTIMEO, options_.io_timeout_ms);
  SetSocketTimeout(fd_, SO_RCVTIMEO, options_.io_timeout_ms);
  return Status::Ok();
}

Status BlockingClient::Send(const Request& request) {
  if (fd_ < 0) return Status::Error("not connected");
  if (ZO_FAULT_POINT("svc.client.send.fail")) {
    // Simulated send-side failure: the request may or may not have reached
    // the server — exactly the ambiguity a retrying caller must tolerate.
    Close();
    return Status::Error("injected fault: send failed (connection reset)");
  }
  std::string line = FormatRequestLine(request);
  line.push_back('\n');
  std::string_view data = line;
  while (!data.empty()) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Error("send failed: ", std::strerror(errno));
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status::Ok();
}

StatusOr<Response> BlockingClient::Receive() {
  if (fd_ < 0) return Status::Error("not connected");
  char chunk[4096];
  for (;;) {
    Response response;
    ZO_ASSIGN_OR_RETURN(std::size_t consumed,
                        ParseResponseFrame(buffer_, &response));
    if (consumed > 0) {
      buffer_.erase(0, consumed);
      return response;
    }
    if (ZO_FAULT_POINT("svc.client.recv.reset")) {
      Close();
      return Status::Error("injected fault: connection reset mid-response");
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::Error("receive timed out after ", options_.io_timeout_ms,
                           "ms (", buffer_.size(), " bytes buffered)");
    }
    if (n <= 0) {
      return Status::Error("connection closed mid-response (",
                           buffer_.size(), " bytes buffered)");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

StatusOr<Response> BlockingClient::Call(const Request& request) {
  ZO_RETURN_IF_ERROR(Send(request));
  return Receive();
}

bool IsTransientWireStatus(WireStatus status) {
  switch (status) {
    case WireStatus::kOverloaded:
    case WireStatus::kUnavailable:
    case WireStatus::kShuttingDown:
      return true;
    case WireStatus::kOk:
    case WireStatus::kErr:
    case WireStatus::kBadRequest:
    case WireStatus::kDeadlineExceeded:
      return false;
  }
  return false;
}

RetryingClient::RetryingClient(const std::string& host, int port,
                               const RetryPolicy& policy,
                               const ClientOptions& options)
    : host_(host),
      port_(port),
      policy_(policy),
      client_(options),
      rng_state_(policy.seed != 0 ? policy.seed : 1) {}

std::uint64_t RetryingClient::BackoffMs(int retry_index) {
  double nominal = static_cast<double>(policy_.initial_backoff_ms);
  for (int i = 0; i < retry_index; ++i) nominal *= policy_.backoff_multiplier;
  double cap = static_cast<double>(policy_.max_backoff_ms);
  if (nominal > cap) nominal = cap;
  // Uniform in [1-jitter, 1+jitter] from the deterministic PRNG.
  rng_state_ = Mix64(rng_state_);
  double unit =
      static_cast<double>(rng_state_ >> 11) * (1.0 / 9007199254740992.0);
  double factor = 1.0 + policy_.jitter * (2.0 * unit - 1.0);
  double jittered = nominal * factor;
  if (jittered < 0.0) jittered = 0.0;
  return static_cast<std::uint64_t>(jittered);
}

StatusOr<Response> RetryingClient::CallWithRetry(const Request& request) {
  ++stats_.calls;
  Status last_error = Status::Ok();
  Response last_transient;
  bool saw_transient_response = false;
  int attempts = policy_.max_attempts > 0 ? policy_.max_attempts : 1;
  std::uint64_t attempts_this_call = 0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      std::uint64_t sleep_ms = BackoffMs(attempt - 1);
      stats_.backoff_ms += sleep_ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    ++stats_.attempts;
    ++attempts_this_call;
    if (!client_.connected()) {
      Status connected = client_.Connect(host_, port_);
      if (!connected.ok()) {
        ++stats_.transport_errors;
        last_error = connected;
        saw_transient_response = false;
        continue;
      }
      ++stats_.reconnects;
    }
    StatusOr<Response> result = client_.Call(request);
    if (!result.ok()) {
      // Transport failure: the connection is unusable (a partial frame may
      // be buffered); reconnect on the next attempt.
      ++stats_.transport_errors;
      client_.Close();
      last_error = result.status();
      saw_transient_response = false;
      continue;
    }
    if (IsTransientWireStatus(result->status)) {
      ++stats_.transient_responses;
      last_transient = *result;
      saw_transient_response = true;
      if (result->status == WireStatus::kShuttingDown) {
        // The server is draining; this connection won't recover.
        client_.Close();
      }
      continue;
    }
    if (attempts_this_call > stats_.max_attempts_seen) {
      stats_.max_attempts_seen = attempts_this_call;
    }
    return *result;
  }
  ++stats_.gave_up;
  if (attempts_this_call > stats_.max_attempts_seen) {
    stats_.max_attempts_seen = attempts_this_call;
  }
  if (saw_transient_response) return last_transient;
  return Status::Error("retries exhausted after ", attempts_this_call,
                       " attempts; last error: ", last_error.message());
}

}  // namespace svc
}  // namespace zeroone
