#include "svc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace zeroone {
namespace svc {

BlockingClient::~BlockingClient() { Close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status BlockingClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Error("socket failed: ", std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error("bad host address '", host, "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Error("connect to ", host, ":", port,
                                  " failed: ", std::strerror(errno));
    Close();
    return status;
  }
  return Status::Ok();
}

Status BlockingClient::Send(const Request& request) {
  if (fd_ < 0) return Status::Error("not connected");
  std::string line = FormatRequestLine(request);
  line.push_back('\n');
  std::string_view data = line;
  while (!data.empty()) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Error("send failed: ", std::strerror(errno));
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status::Ok();
}

StatusOr<Response> BlockingClient::Receive() {
  if (fd_ < 0) return Status::Error("not connected");
  char chunk[4096];
  for (;;) {
    Response response;
    ZO_ASSIGN_OR_RETURN(std::size_t consumed,
                        ParseResponseFrame(buffer_, &response));
    if (consumed > 0) {
      buffer_.erase(0, consumed);
      return response;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Error("connection closed mid-response (",
                           buffer_.size(), " bytes buffered)");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

StatusOr<Response> BlockingClient::Call(const Request& request) {
  ZO_RETURN_IF_ERROR(Send(request));
  return Receive();
}

}  // namespace svc
}  // namespace zeroone
