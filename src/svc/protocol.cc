#include "svc/protocol.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace zeroone {
namespace svc {

namespace {

constexpr std::string_view kKnownCommands[] = {
    "ping",  "stats",   "db",          "load",  "reset", "show",
    "query", "naive",   "certain",     "possible", "best", "bestmu",
    "mu",    "muk",     "poly",        "compare", "cond", "fd",
    "ind",   "constraints", "clear",   "chase", "ra",    "dlog",
    "save",  "shiplist", "ship",
};

constexpr std::string_view kMutationCommands[] = {
    "db", "load", "reset", "query", "fd", "ind", "clear", "chase",
};

// `show`/`constraints`/`stats`/`ping` are cheap enough that caching them
// would only churn the LRU list; `load`/`dlog` read server-side files whose
// contents can change without a version bump.
constexpr std::string_view kCacheableCommands[] = {
    "naive", "certain", "possible", "best", "bestmu",
    "mu",    "muk",     "poly",     "compare", "cond", "ra",
};

bool Contains(const std::string_view* begin, const std::string_view* end,
              std::string_view needle) {
  return std::find(begin, end, needle) != end;
}

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.';
}

bool IsValidToken(std::string_view token) {
  if (token.empty() || token.size() > kMaxTokenBytes) return false;
  return std::all_of(token.begin(), token.end(), IsTokenChar);
}

std::string_view TrimSpaces(std::string_view text) {
  while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
  while (!text.empty() && text.back() == ' ') text.remove_suffix(1);
  return text;
}

StatusOr<std::uint64_t> ParseUint(std::string_view text) {
  if (text.empty() || text.size() > 19) {
    return Status::Error("bad unsigned integer '", text, "'");
  }
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::Error("bad unsigned integer '", text, "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

std::string_view WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kErr: return "ERR";
    case WireStatus::kBadRequest: return "BAD_REQUEST";
    case WireStatus::kOverloaded: return "OVERLOADED";
    case WireStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireStatus::kShuttingDown: return "SHUTTING_DOWN";
    case WireStatus::kUnavailable: return "UNAVAILABLE";
  }
  return "ERR";
}

StatusOr<WireStatus> ParseWireStatus(std::string_view name) {
  constexpr std::array<WireStatus, 7> all = {
      WireStatus::kOk,           WireStatus::kErr,
      WireStatus::kBadRequest,   WireStatus::kOverloaded,
      WireStatus::kDeadlineExceeded, WireStatus::kShuttingDown,
      WireStatus::kUnavailable,
  };
  for (WireStatus status : all) {
    if (WireStatusName(status) == name) return status;
  }
  return Status::Error("unknown wire status '", name, "'");
}

bool IsKnownCommand(std::string_view command) {
  return Contains(std::begin(kKnownCommands), std::end(kKnownCommands),
                  command);
}

bool IsMutationCommand(std::string_view command) {
  return Contains(std::begin(kMutationCommands), std::end(kMutationCommands),
                  command);
}

bool IsCacheableCommand(std::string_view command) {
  return Contains(std::begin(kCacheableCommands),
                  std::end(kCacheableCommands), command);
}

bool IsValidUtf8(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size()) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    std::size_t len;
    std::uint32_t code;
    if (c < 0x80) {
      ++i;
      continue;
    } else if ((c & 0xE0) == 0xC0) {
      len = 2;
      code = c & 0x1F;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      code = c & 0x0F;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      code = c & 0x07;
    } else {
      return false;  // Stray continuation byte or 5+/invalid lead byte.
    }
    if (i + len > text.size()) return false;  // Truncated sequence.
    for (std::size_t j = 1; j < len; ++j) {
      unsigned char cc = static_cast<unsigned char>(text[i + j]);
      if ((cc & 0xC0) != 0x80) return false;
      code = (code << 6) | (cc & 0x3F);
    }
    // Overlong encodings, UTF-16 surrogates, and out-of-range values.
    constexpr std::uint32_t min_for_len[5] = {0, 0, 0x80, 0x800, 0x10000};
    if (code < min_for_len[len]) return false;
    if (code >= 0xD800 && code <= 0xDFFF) return false;
    if (code > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

StatusOr<Request> ParseRequestLine(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    return Status::Error("request line of ", line.size(),
                         " bytes exceeds the ", kMaxRequestBytes,
                         "-byte limit");
  }
  for (char c : line) {
    // All C0 control bytes are rejected, not just the line terminators:
    // this is what lets '\x1f' serve as an unambiguous cache-key separator
    // (svc/dispatch.cc) and keeps payload echoes printable.
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) {
      return Status::Error("request line contains a control byte (0x",
                           static_cast<int>(u), ")");
    }
  }
  if (!IsValidUtf8(line)) {
    return Status::Error("request line is not valid UTF-8");
  }

  Request request;
  std::string_view rest = TrimSpaces(line);
  while (!rest.empty() && rest.front() == '@') {
    std::size_t space = rest.find(' ');
    std::string_view option = rest.substr(0, space);
    rest = space == std::string_view::npos
               ? std::string_view()
               : TrimSpaces(rest.substr(space + 1));
    if (option == "@nocache") {
      request.no_cache = true;
    } else if (option.rfind("@id=", 0) == 0) {
      std::string_view value = option.substr(4);
      if (!IsValidToken(value)) {
        return Status::Error("bad @id token '", std::string(value), "'");
      }
      request.id = std::string(value);
    } else if (option.rfind("@session=", 0) == 0) {
      std::string_view value = option.substr(9);
      if (!IsValidToken(value)) {
        return Status::Error("bad @session token '", std::string(value), "'");
      }
      request.session = std::string(value);
    } else if (option.rfind("@deadline_ms=", 0) == 0) {
      ZO_ASSIGN_OR_RETURN(request.deadline_ms,
                          ParseUint(option.substr(13)));
    } else if (option.rfind("@explain=", 0) == 0) {
      std::uint64_t value = 0;
      ZO_ASSIGN_OR_RETURN(value, ParseUint(option.substr(9)));
      if (value > 1) {
        return Status::Error("bad @explain value '",
                             std::string(option.substr(9)),
                             "' (expected 0 or 1)");
      }
      request.explain = value != 0;
    } else {
      return Status::Error("unknown request option '", std::string(option),
                           "'");
    }
  }
  if (rest.empty()) {
    return Status::Error("empty request: expected a command");
  }
  std::size_t space = rest.find(' ');
  request.command = std::string(rest.substr(0, space));
  if (!IsKnownCommand(request.command)) {
    return Status::Error("unknown command '", request.command,
                         "' (see docs/serving.md)");
  }
  if (space != std::string_view::npos) {
    request.args = std::string(TrimSpaces(rest.substr(space + 1)));
  }
  return request;
}

std::string FormatRequestLine(const Request& request) {
  std::string line;
  if (request.id != "0") line += StrCat("@id=", request.id, " ");
  if (request.session != "default") {
    line += StrCat("@session=", request.session, " ");
  }
  if (request.deadline_ms != 0) {
    line += StrCat("@deadline_ms=", request.deadline_ms, " ");
  }
  if (request.no_cache) line += "@nocache ";
  if (request.explain) line += "@explain=1 ";
  line += request.command;
  if (!request.args.empty()) line += StrCat(" ", request.args);
  return line;
}

std::string FormatResponse(const Response& response) {
  std::string_view payload = response.payload;
  std::string_view marker;
  if (payload.size() > kMaxPayloadBytes) {
    marker = "\n...[truncated]";
    payload = payload.substr(0, kMaxPayloadBytes - marker.size());
  }
  std::string frame = StrCat("ZO1 ", WireStatusName(response.status), " ",
                             response.id, " ", payload.size() + marker.size(),
                             "\n");
  frame.append(payload);
  frame.append(marker);
  frame.push_back('\n');
  return frame;
}

StatusOr<std::size_t> ParseResponseFrame(std::string_view buffer,
                                         Response* out) {
  std::size_t newline = buffer.find('\n');
  if (newline == std::string_view::npos) {
    if (buffer.size() > kMaxRequestBytes) {
      return Status::Error("response header exceeds ", kMaxRequestBytes,
                           " bytes without a newline");
    }
    return std::size_t{0};  // Header incomplete.
  }
  std::string_view header = buffer.substr(0, newline);
  if (header.rfind("ZO1 ", 0) != 0) {
    return Status::Error("bad response header '", std::string(header), "'");
  }
  header.remove_prefix(4);
  std::size_t space1 = header.find(' ');
  if (space1 == std::string_view::npos) {
    return Status::Error("response header missing id");
  }
  std::size_t space2 = header.find(' ', space1 + 1);
  if (space2 == std::string_view::npos) {
    return Status::Error("response header missing payload length");
  }
  Response response;
  ZO_ASSIGN_OR_RETURN(response.status,
                      ParseWireStatus(header.substr(0, space1)));
  response.id = std::string(
      header.substr(space1 + 1, space2 - space1 - 1));
  if (!IsValidToken(response.id)) {
    return Status::Error("bad response id token");
  }
  ZO_ASSIGN_OR_RETURN(std::uint64_t length,
                      ParseUint(header.substr(space2 + 1)));
  if (length > kMaxPayloadBytes + 32) {
    return Status::Error("response payload length ", length,
                         " exceeds the limit");
  }
  std::size_t frame_size = newline + 1 + length + 1;
  if (buffer.size() < frame_size) return std::size_t{0};  // Payload pending.
  if (buffer[frame_size - 1] != '\n') {
    return Status::Error("response frame missing terminator");
  }
  response.payload = std::string(buffer.substr(newline + 1, length));
  *out = std::move(response);
  return frame_size;
}

}  // namespace svc
}  // namespace zeroone
