#ifndef ZEROONE_SVC_SNAPSHOT_H_
#define ZEROONE_SVC_SNAPSHOT_H_

// Crash-safe session snapshots (docs/robustness.md has the format spec).
//
// A snapshot serializes one named session — database (FormatDatabase),
// current query, constraint list, and version — into
// `<dir>/<session>.zo1snap`:
//
//   ZO1SNAP 1\n
//   session=<token>\n
//   version=<uint>\n
//   body_bytes=<uint>\n
//   crc32=<8 lowercase hex of the body>\n
//   \n
//   <body (exactly body_bytes bytes)>\n
//
// body := *section, each `[<kind> <bytes>]\n` + exactly <bytes> bytes + \n
// with kinds `database` (FormatDatabase text), `query` (the canonical
// Query::ToString form, omitted when the session has none), and `fd`/`ind`
// (one constraint each, in session order, in the wire-command argument
// syntax: `R <arity> <l1,l2,..> <rhs>` / `R <arity> <p,..> S <arity> <q,..>`).
//
// Durability: Save writes a unique temp file, fsyncs it, renames it over
// the final path, and fsyncs the directory — a crash at any point (every
// step carries a fault site) leaves either the old snapshot or the new
// one, never a torn file. Load verifies magic, header sanity, exact file
// length, and the body CRC; anything invalid is quarantined (renamed to
// `*.zo1snap.corrupt`, logged, counted in obs), never loaded and never a
// crash.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "svc/session.h"

namespace zeroone {
namespace svc {

inline constexpr std::string_view kSnapshotMagic = "ZO1SNAP 1";
inline constexpr std::string_view kSnapshotSuffix = ".zo1snap";

// Serializes `state` (caller holds at least the session's shared lock).
// Fails on a constraint type it cannot round-trip.
StatusOr<std::string> EncodeSnapshot(const std::string& session,
                                     const SessionState& state);

// Parses and validates a full snapshot file image; on success fills
// `session` and the state fields (db, query, constraints, fds, version —
// not the mutex). Any malformation is an error, never a crash.
Status DecodeSnapshot(std::string_view bytes, std::string* session,
                      SessionState* state);

// Snapshot directory manager. Thread-safe: concurrent Saves of distinct
// sessions are independent; concurrent Saves of one session both land
// atomically (last rename wins).
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string PathFor(const std::string& session) const;

  // Creates the directory if missing. Call once before Save/LoadAll.
  Status Prepare() const;

  // Atomically persists one session (temp → fsync → rename → dirsync).
  // On failure the previous snapshot, if any, is untouched.
  Status Save(const std::string& session, const SessionState& state);

  struct LoadReport {
    std::size_t loaded = 0;       // Valid snapshots installed.
    std::size_t quarantined = 0;  // Corrupt files renamed aside.
    std::size_t tmp_removed = 0;  // Stale temp files from a crashed Save.
  };

  // Scans the directory, installs every valid snapshot into `sessions`
  // (overwriting the named session's state), quarantines corrupt ones and
  // removes stale temp files. Diagnostics go to stderr; counts also land
  // in the obs counters svc.snapshot.{loaded,quarantined}.
  LoadReport LoadAll(SessionRegistry* sessions);

 private:
  const std::string dir_;
  std::atomic<std::uint64_t> tmp_seq_{0};
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_SNAPSHOT_H_
