#ifndef ZEROONE_SVC_SERVER_H_
#define ZEROONE_SVC_SERVER_H_

// The long-lived query server (tools/zeroone_server.cc is the binary).
//
// The serving stack is layered (docs/serving.md has the full picture):
//
//   Transport (svc/transport.h) — sockets, epoll event loops, outboxes,
//     connection admission, graceful drain. Protocol-agnostic.
//   Protocol handlers — Zo1LineHandler (svc/frontend.h) for the newline
//     protocol, HttpHandler (svc/http.h) for the HTTP/JSON gateway. Both
//     decode wire bytes into ZO1 request lines.
//   RequestSink — this Server: parse the line (svc/protocol.h), admit it
//     into the shared BoundedExecutor worker pool (a full queue is answered
//     OVERLOADED immediately — admission control, not unbounded buffering),
//     run the Dispatcher under a per-request deadline counted from
//     admission, and complete the channel's response slot with the
//     protocol's encoding of the response. Workers never touch sockets.
//
// The Server listens on a ZO1 transport always, and additionally on an
// HTTP transport when ServerOptions::http_port >= 0. Both fronts share the
// executor, dispatcher, and admission paths, so capacity limits apply to
// the sum of the traffic.
//
// Backpressure: the per-connection outbox is byte-bounded
// (ServerOptions::outbox_max_bytes). A client that stops reading makes its
// outbox grow past the bound, at which point the connection latches broken
// and is shut down — a slow reader costs one buffer, never a thread, and
// never delays other connections sharing the event loop.
//
// Responses on a connection are delivered in request-arrival order via a
// per-connection reorder buffer, so clients may pipeline without matching
// ids themselves.
//
// Graceful drain: BeginShutdown() (async-signal-safe trigger via Notify on
// a self-pipe) stops the accept loops and half-closes every connection for
// reading; accepted requests finish, their responses are flushed, then
// Wait() joins everything. Accepted work is never dropped.
//
// ServerOptions::legacy_readers selects the pre-epoll model (one blocking
// reader thread per connection, inline blocking sends). It exists so the
// differential conformance test (tests/svc_epoll_diff_test.cc) can prove
// the two models byte-identical on the wire; new deployments should not
// use it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "svc/dispatch.h"
#include "svc/executor.h"
#include "svc/frontend.h"
#include "svc/protocol.h"
#include "svc/replication.h"
#include "svc/transport.h"

namespace zeroone {
namespace svc {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; the bound port is Server::port().
  // HTTP/JSON gateway listener (svc/http.h): -1 = disabled, 0 = ephemeral
  // (the bound port is Server::http_port()).
  int http_port = -1;
  std::size_t threads = 4;
  std::size_t queue_capacity = 64;
  std::size_t cache_bytes = 8 * 1024 * 1024;
  // Applied when a request carries no @deadline_ms; 0 = unlimited.
  std::uint64_t default_deadline_ms = 0;
  // Session snapshot directory (docs/robustness.md): valid snapshots are
  // reloaded before accepting traffic, every named session is persisted on
  // drain, and the `save` command persists on demand. Empty = disabled.
  std::string snapshot_dir;
  // Per-session write-ahead logging in snapshot_dir (requires one): acked
  // mutations survive a crash without an explicit `save`. docs/robustness.md.
  bool wal = true;
  // fsync: a mutation is not acknowledged until its WAL record is on disk.
  AckMode ack_mode = AckMode::kAsync;
  // Fold a session's log into its snapshot after this many records.
  std::uint64_t wal_compact_every = 256;
  // Warm-standby follower mode (--follow): pull the primary's log from
  // host:port, serve reads, answer mutations UNAVAILABLE, and promote to
  // primary after promote_after_ms of failed pulls. Empty host = disabled.
  std::string follow_host;
  int follow_port = 0;
  std::uint64_t pull_interval_ms = 50;
  std::uint64_t promote_after_ms = 2000;
  // On EADDRINUSE, keep retrying bind with backoff for this long — a
  // freshly killed predecessor's socket may still be draining, and chaos
  // restarts must not flake on it. 0 = fail immediately.
  std::uint64_t bind_retry_ms = 2000;
  // Event-loop (epoll) threads multiplexing all connections.
  // 0 = min(4, hw_concurrency). Ignored under legacy_readers.
  std::size_t event_threads = 0;
  // Morsel-pool width for intra-query parallelism (docs/parallelism.md):
  // the per-query worker-team cap installed via par::SetParThreads at
  // Start(). 0 = auto — hardware threads divided by the executor's worker
  // pool, at least 1, so `threads` concurrent queries each going parallel
  // do not oversubscribe the machine. 1 = serial queries (the
  // ZEROONE_PAR=off reference behavior).
  std::size_t par_threads = 0;
  // Connection admission limit: a connect beyond this many live
  // connections is answered OVERLOADED and closed. 0 = unlimited.
  // Applies per listener.
  std::size_t max_conns = 0;
  // Byte bound on one connection's queued-but-unsent responses. A client
  // that stops reading trips the bound and gets disconnected instead of
  // buffering without limit. Ignored under legacy_readers (there the
  // blocking send timeout bounds slow readers).
  std::size_t outbox_max_bytes = 8 * 1024 * 1024;
  // Pre-epoll model: one blocking reader thread per connection. Kept for
  // the differential conformance test; see the header comment. ZO1
  // listener only — the HTTP listener always uses the event loops.
  bool legacy_readers = false;
  // SO_SNDBUF for accepted sockets; 0 = kernel default. Tests shrink it so
  // outbox backpressure trips without megabytes of traffic.
  int so_sndbuf = 0;
  // During drain, a connection whose outbox makes no progress for this
  // long (peer stopped reading) is declared broken so Wait() terminates.
  std::uint64_t drain_flush_timeout_ms = 30000;
};

class Server : public RequestSink {
 public:
  explicit Server(const ServerOptions& options);
  ~Server() override;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, recovers persisted sessions, and starts the transport
  // threads. Call once.
  Status Start();

  // The port actually bound (resolves port 0). Valid after Start().
  int port() const;
  // The HTTP listener's bound port; -1 when the gateway is disabled.
  int http_port() const;

  // Event-loop threads serving ZO1 connections (0 under legacy_readers).
  // The count is fixed at Start() and never grows with the connection
  // count — bench_serving asserts exactly that.
  std::size_t event_threads() const;

  // Initiates graceful drain; returns immediately. Safe to call from any
  // thread and more than once. From a signal handler, call Notify()
  // instead and run BeginShutdown() on a normal thread.
  void BeginShutdown();

  // Blocks until the accept threads, all in-flight requests, and all
  // event-loop (or legacy reader) threads have finished. Call after
  // BeginShutdown().
  void Wait();

  // Convenience: BeginShutdown() + Wait().
  void Shutdown();

  // Async-signal-safe: wakes WaitForShutdownRequest(). The signal handler
  // in tools/zeroone_server.cc calls this.
  void Notify();

  // Blocks until Notify() or BeginShutdown() is called.
  void WaitForShutdownRequest();

  // RequestSink: parse, admit, and submit one ZO1 request line. Called by
  // the protocol handlers; the reserved slot is completed with
  // encoder(response) from a worker (or inline on parse/admission errors).
  void Submit(const std::shared_ptr<Channel>& channel, std::string line,
              Encoder encoder) override;
  void OnWireError() override;

  Dispatcher& dispatcher() { return dispatcher_; }
  BoundedExecutor& executor() { return *executor_; }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_refused = 0;  // --max-conns admission limit.
    std::uint64_t requests_received = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t shutting_down_rejects = 0;
    std::uint64_t outbox_overflows = 0;  // Slow readers disconnected.
    std::uint64_t snapshots_loaded = 0;       // Valid snapshots on Start().
    std::uint64_t snapshots_quarantined = 0;  // Corrupt files set aside.
    std::uint64_t snapshots_saved = 0;        // Sessions saved on drain.
    std::uint64_t wal_records_replayed = 0;   // Log records applied on Start().
    std::uint64_t wal_truncated_tails = 0;    // Torn log tails cut off.
    std::uint64_t wal_quarantined = 0;        // Undecodable log spans aside.
  };
  Stats stats() const;

  // Non-null in follower mode (ServerOptions::follow_host).
  Replicator* replicator() { return replicator_.get(); }

 private:
  const ServerOptions options_;
  Dispatcher dispatcher_;
  std::unique_ptr<BoundedExecutor> executor_;
  std::unique_ptr<Replicator> replicator_;

  std::unique_ptr<Transport> transport_;       // ZO1 listener.
  std::unique_ptr<Transport> http_transport_;  // Null unless http_port >= 0.

  int notify_pipe_[2] = {-1, -1};  // Signal-handler → WaitForShutdownRequest.
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> saved_on_drain_{false};

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_SERVER_H_
