#ifndef ZEROONE_SVC_SERVER_H_
#define ZEROONE_SVC_SERVER_H_

// The long-lived TCP query server (tools/zeroone_server.cc is the binary).
//
// Architecture: one accept thread, one reader thread per connection, and a
// shared BoundedExecutor worker pool. The reader parses newline-delimited
// requests (svc/protocol.h), stamps each with its admission time, and
// submits it to the executor; a full queue is answered OVERLOADED
// immediately — admission control, not unbounded buffering. Workers run the
// Dispatcher under a per-request CancelToken whose deadline is admission
// time + @deadline_ms, so queueing time counts against the deadline.
//
// Responses on a connection are delivered in request-arrival order via a
// per-connection reorder buffer, so clients may pipeline without matching
// ids themselves.
//
// Graceful drain: BeginShutdown() (async-signal-safe trigger via Notify on
// a self-pipe) stops the accept loop, half-closes every connection for
// reading, and lets accepted requests finish; Wait() joins everything.
// Accepted work is never dropped.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "svc/dispatch.h"
#include "svc/executor.h"
#include "svc/protocol.h"

namespace zeroone {
namespace svc {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; the bound port is Server::port().
  std::size_t threads = 4;
  std::size_t queue_capacity = 64;
  std::size_t cache_bytes = 8 * 1024 * 1024;
  // Applied when a request carries no @deadline_ms; 0 = unlimited.
  std::uint64_t default_deadline_ms = 0;
  // Session snapshot directory (docs/robustness.md): valid snapshots are
  // reloaded before accepting traffic, every named session is persisted on
  // drain, and the `save` command persists on demand. Empty = disabled.
  std::string snapshot_dir;
  // On EADDRINUSE, keep retrying bind with backoff for this long — a
  // freshly killed predecessor's socket may still be draining, and chaos
  // restarts must not flake on it. 0 = fail immediately.
  std::uint64_t bind_retry_ms = 2000;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the accept thread. Call once.
  Status Start();

  // The port actually bound (resolves port 0). Valid after Start().
  int port() const { return port_; }

  // Initiates graceful drain; returns immediately. Safe to call from any
  // thread and more than once. From a signal handler, call Notify()
  // instead and run BeginShutdown() on a normal thread.
  void BeginShutdown();

  // Blocks until the accept thread, all in-flight requests, and all
  // connection readers have finished. Call after BeginShutdown().
  void Wait();

  // Convenience: BeginShutdown() + Wait().
  void Shutdown();

  // Async-signal-safe: wakes WaitForShutdownRequest(). The signal handler
  // in tools/zeroone_server.cc calls this.
  void Notify();

  // Blocks until Notify() or BeginShutdown() is called.
  void WaitForShutdownRequest();

  Dispatcher& dispatcher() { return dispatcher_; }
  BoundedExecutor& executor() { return *executor_; }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests_received = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t shutting_down_rejects = 0;
    std::uint64_t snapshots_loaded = 0;       // Valid snapshots on Start().
    std::uint64_t snapshots_quarantined = 0;  // Corrupt files set aside.
    std::uint64_t snapshots_saved = 0;        // Sessions saved on drain.
  };
  Stats stats() const;

 private:
  class Connection;

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Connection> connection);
  void HandleLine(const std::shared_ptr<Connection>& connection,
                  std::string line);

  const ServerOptions options_;
  Dispatcher dispatcher_;
  std::unique_ptr<BoundedExecutor> executor_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // [0] read end polled by AcceptLoop.
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> saved_on_drain_{false};

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> reader_threads_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_SERVER_H_
