#include "svc/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/parse.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace zeroone {
namespace svc {

namespace {

bool IsSessionChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
}

bool IsValidSessionName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  return std::all_of(name.begin(), name.end(), IsSessionChar);
}

StatusOr<std::uint32_t> ParseCrcHex(std::string_view text) {
  if (text.size() != 8) {
    return Status::Error("bad crc32 field '", text, "'");
  }
  std::uint32_t crc = 0;
  for (char c : text) {
    std::uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return Status::Error("bad crc32 field '", text, "'");
    }
    crc = crc * 16 + digit;
  }
  return crc;
}

// Writes all of `data` to `fd`, short-write tolerant. The wal.append.fail
// fault simulates a full disk mid-frame: half the bytes land, then ENOSPC
// (the caller truncates the torn frame back off).
bool WriteAllFd(int fd, std::string_view data) {
  if (ZO_FAULT_POINT("wal.append.fail")) {
    (void)::write(fd, data.data(), data.size() / 2);
    errno = ENOSPC;
    return false;
  }
  while (!data.empty()) {
    ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

std::string EncodeWalHeader(const std::string& session,
                            std::uint64_t base_version) {
  return StrCat(kWalMagic, " ", session, " ", base_version, "\n");
}

StatusOr<std::size_t> DecodeWalHeader(std::string_view bytes,
                                      std::string* session,
                                      std::uint64_t* base_version) {
  std::size_t newline = bytes.find('\n');
  if (newline == std::string_view::npos) {
    return Status::Error("log header has no newline");
  }
  std::string_view line = bytes.substr(0, newline);
  if (line.substr(0, kWalMagic.size()) != kWalMagic ||
      line.size() <= kWalMagic.size() || line[kWalMagic.size()] != ' ') {
    return Status::Error("bad log magic '", line, "'");
  }
  line.remove_prefix(kWalMagic.size() + 1);
  std::size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    return Status::Error("log header missing base version");
  }
  std::string_view name = line.substr(0, space);
  if (!IsValidSessionName(name)) {
    return Status::Error("bad session name '", name, "' in log header");
  }
  ZO_ASSIGN_OR_RETURN(std::uint64_t base,
                      ParseUint64(line.substr(space + 1)));
  *session = std::string(name);
  *base_version = base;
  return newline + 1;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload = record.command;
  if (!record.args.empty()) {
    payload += ' ';
    payload += record.args;
  }
  // The CRC covers the header fields and the payload — "version SP size SP
  // payload" — so a flipped version or size digit fails the checksum
  // instead of decoding as a different valid record.
  const std::string head = StrCat(record.version, " ", payload.size(), " ");
  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(payload, Crc32(head)));
  std::string frame = StrCat("#", head, crc_hex, "\n");
  frame += payload;
  frame += '\n';
  return frame;
}

StatusOr<std::size_t> DecodeWalRecord(std::string_view buffer,
                                      WalRecord* out) {
  if (buffer.empty()) return std::size_t{0};
  if (buffer[0] != '#') {
    return Status::Error("record does not start with '#'");
  }
  std::size_t newline = buffer.find('\n');
  if (newline == std::string_view::npos) {
    if (buffer.size() > kMaxWalHeaderBytes) {
      return Status::Error("unterminated record header");
    }
    return std::size_t{0};  // A clean prefix of a header: torn tail.
  }
  if (newline > kMaxWalHeaderBytes) {
    return Status::Error("record header of ", newline, " bytes exceeds ",
                         kMaxWalHeaderBytes);
  }
  std::string_view header = buffer.substr(1, newline - 1);
  std::size_t space1 = header.find(' ');
  if (space1 == std::string_view::npos) {
    return Status::Error("record header missing payload size");
  }
  std::size_t space2 = header.find(' ', space1 + 1);
  if (space2 == std::string_view::npos) {
    return Status::Error("record header missing crc32");
  }
  ZO_ASSIGN_OR_RETURN(std::uint64_t version,
                      ParseUint64(header.substr(0, space1)));
  ZO_ASSIGN_OR_RETURN(std::uint64_t payload_bytes,
                      ParseUint64(header.substr(space1 + 1,
                                                space2 - space1 - 1)));
  ZO_ASSIGN_OR_RETURN(std::uint32_t expected_crc,
                      ParseCrcHex(header.substr(space2 + 1)));
  std::size_t frame = newline + 1 + payload_bytes + 1;
  if (buffer.size() < frame) return std::size_t{0};  // Torn payload.
  if (buffer[frame - 1] != '\n') {
    return Status::Error("record frame missing terminator");
  }
  std::string_view payload = buffer.substr(newline + 1, payload_bytes);
  // Checksum the literal header bytes ("version SP size SP") plus the
  // payload — exactly what the encoder checksummed.
  std::string_view head = header.substr(0, space2 + 1);
  if (Crc32(payload, Crc32(head)) != expected_crc) {
    return Status::Error("record crc mismatch");
  }
  std::size_t split = payload.find(' ');
  std::string_view command = payload.substr(0, split);
  if (command.empty()) {
    return Status::Error("record has an empty command");
  }
  out->version = version;
  out->command = std::string(command);
  out->args = split == std::string_view::npos
                  ? std::string()
                  : std::string(payload.substr(split + 1));
  return frame;
}

WalStore::WalStore(std::string dir) : dir_(std::move(dir)) {}

WalStore::~WalStore() {
  for (auto& [name, handle] : handles_) {
    if (handle->fd >= 0) ::close(handle->fd);
  }
}

std::string WalStore::PathFor(const std::string& session) const {
  return StrCat(dir_, "/", session, kWalSuffix);
}

Status WalStore::Prepare() const {
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::Error("cannot create wal dir '", dir_,
                         "': ", std::strerror(errno));
  }
  return Status::Ok();
}

std::shared_ptr<WalStore::Handle> WalStore::HandleFor(
    const std::string& session) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<Handle>& handle = handles_[session];
  if (handle == nullptr) handle = std::make_shared<Handle>();
  return handle;
}

StatusOr<std::uint64_t> WalStore::Append(const std::string& session,
                                         const WalRecord& record, bool sync) {
  if (!IsValidSessionName(session)) {
    return Status::Error("session name '", session, "' cannot be logged");
  }
  std::string encoded = EncodeWalRecord(record);
  if (encoded.size() > kMaxWalRecordBytes) {
    // An oversized frame could never be shipped to a follower inside one
    // wire payload; refuse it before any byte lands.
    ZO_COUNTER_INC("svc.wal.oversized_rejected");
    return Status::Error("record frame of ", encoded.size(),
                         " bytes exceeds the ", kMaxWalRecordBytes,
                         "-byte write-ahead log record cap");
  }
  std::shared_ptr<Handle> handle = HandleFor(session);
  std::lock_guard<std::mutex> lock(handle->mutex);
  if (handle->fd < 0) {
    handle->fd = ::open(PathFor(session).c_str(),
                        O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (handle->fd < 0) {
      ZO_COUNTER_INC("svc.wal.append_failed");
      return Status::Error("cannot open '", PathFor(session),
                           "': ", std::strerror(errno));
    }
  }
  const off_t before = ::lseek(handle->fd, 0, SEEK_END);
  if (before < 0) {
    ZO_COUNTER_INC("svc.wal.append_failed");
    return Status::Error("lseek '", PathFor(session),
                         "' failed: ", std::strerror(errno));
  }
  std::string frame;
  if (before == 0) {
    // First record: the log starts at the version the session had before
    // this mutation (its snapshot-covered prefix).
    frame = EncodeWalHeader(session, record.version - 1);
  }
  frame += encoded;
  // All-or-nothing at the file level: a failed write or fsync truncates the
  // torn frame back off, so the log never grows an unacknowledged record
  // and the command can be retried without double-logging.
  if (!WriteAllFd(handle->fd, frame)) {
    Status status = Status::Error("append to '", PathFor(session),
                                  "' failed: ", std::strerror(errno));
    (void)::ftruncate(handle->fd, before);
    ZO_COUNTER_INC("svc.wal.append_failed");
    return status;
  }
  if (sync) {
    if (ZO_FAULT_POINT("wal.fsync.fail") || ::fsync(handle->fd) != 0) {
      (void)::ftruncate(handle->fd, before);
      ZO_COUNTER_INC("svc.wal.append_failed");
      return Status::Error("fsync '", PathFor(session), "' failed");
    }
    ZO_COUNTER_INC("svc.wal.fsyncs");
  }
  ZO_COUNTER_INC("svc.wal.appends");
  return static_cast<std::uint64_t>(before);
}

void WalStore::TruncateTo(const std::string& session, std::uint64_t size) {
  std::shared_ptr<Handle> handle = HandleFor(session);
  std::lock_guard<std::mutex> lock(handle->mutex);
  if (handle->fd < 0) return;
  if (::ftruncate(handle->fd, static_cast<off_t>(size)) != 0) {
    std::fprintf(stderr, "wal: rollback truncate of '%s' failed: %s\n",
                 PathFor(session).c_str(), std::strerror(errno));
  }
  ZO_COUNTER_INC("svc.wal.rollbacks");
}

Status WalStore::Reset(const std::string& session,
                       std::uint64_t base_version) {
  if (!IsValidSessionName(session)) {
    return Status::Error("session name '", session, "' cannot be logged");
  }
  std::shared_ptr<Handle> handle = HandleFor(session);
  std::lock_guard<std::mutex> lock(handle->mutex);
  const std::string final_path = PathFor(session);
  const std::string tmp_path = StrCat(final_path, ".tmp.", ::getpid());
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Error("cannot create '", tmp_path,
                         "': ", std::strerror(errno));
  }
  if (!WriteAllFd(fd, EncodeWalHeader(session, base_version))) {
    Status status = Status::Error("write to '", tmp_path,
                                  "' failed: ", std::strerror(errno));
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::Error("fsync '", tmp_path, "' failed");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::Error("close '", tmp_path,
                         "' failed: ", std::strerror(errno));
  }
  if (ZO_FAULT_POINT("compact.rename.fail") ||
      ::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::Error("rename to '", final_path, "' failed");
  }
  int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  // The cached append descriptor still points at the replaced inode; swap
  // it so the next Append lands in the fresh log.
  if (handle->fd >= 0) {
    ::close(handle->fd);
    handle->fd = ::open(final_path.c_str(), O_WRONLY | O_APPEND, 0644);
  }
  ZO_COUNTER_INC("svc.wal.resets");
  return Status::Ok();
}

StatusOr<std::vector<WalRecord>> WalStore::ReadAll(const std::string& session,
                                                   ReadReport* report) {
  *report = ReadReport{};
  std::shared_ptr<Handle> handle = HandleFor(session);
  std::lock_guard<std::mutex> lock(handle->mutex);
  const std::string path = PathFor(session);
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::vector<WalRecord>{};  // No log: nothing replayed.
  std::ostringstream contents;
  contents << file.rdbuf();
  const std::string image = contents.str();
  file.close();

  auto quarantine_whole = [&](const Status& why) {
    const std::string aside = StrCat(path, ".corrupt");
    std::fprintf(stderr, "wal: quarantining '%s' (%s); moved to '%s'\n",
                 path.c_str(), why.message().c_str(), aside.c_str());
    if (::rename(path.c_str(), aside.c_str()) != 0) {
      std::fprintf(stderr, "wal: rename aside failed: %s\n",
                   std::strerror(errno));
    }
    if (handle->fd >= 0) {
      ::close(handle->fd);
      handle->fd = -1;
    }
    ++report->quarantined;
    ZO_COUNTER_INC("svc.wal.quarantined");
  };

  if (image.empty()) {
    // An O_CREAT'd log whose header write never landed: just remove it.
    ::unlink(path.c_str());
    return std::vector<WalRecord>{};
  }
  std::string header_session;
  StatusOr<std::size_t> header =
      DecodeWalHeader(image, &header_session, &report->base_version);
  if (!header.ok()) {
    quarantine_whole(header.status());
    return std::vector<WalRecord>{};
  }
  if (header_session != session) {
    quarantine_whole(Status::Error("header session '", header_session,
                                   "' does not match filename"));
    return std::vector<WalRecord>{};
  }

  std::vector<WalRecord> records;
  std::size_t offset = *header;
  while (offset < image.size()) {
    WalRecord record;
    StatusOr<std::size_t> consumed =
        DecodeWalRecord(std::string_view(image).substr(offset), &record);
    if (consumed.ok() && *consumed > 0 &&
        ZO_FAULT_POINT("replay.decode.fail")) {
      // Injected decode failure: treat a structurally valid record as
      // undecodable, exercising the quarantine path below.
      consumed = Status::Error("injected fault: replay.decode.fail");
    }
    if (consumed.ok() && *consumed == 0) {
      // Torn tail: the crash cut a frame short. Truncate it off in place;
      // everything before it was acknowledged-complete and stays.
      std::fprintf(stderr,
                   "wal: '%s' torn tail of %zu bytes truncated at %zu\n",
                   path.c_str(), image.size() - offset, offset);
      if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
        std::fprintf(stderr, "wal: truncate failed: %s\n",
                     std::strerror(errno));
      }
      ++report->truncated_tails;
      ZO_COUNTER_INC("svc.wal.truncated_tails");
      break;
    }
    if (!consumed.ok()) {
      // Undecodable bytes (CRC mismatch, mangled framing): move the whole
      // damaged span aside for post-mortem, keep the valid prefix.
      const std::string aside = StrCat(path, ".corrupt");
      std::fprintf(stderr,
                   "wal: '%s' undecodable at %zu (%s); %zu bytes moved to "
                   "'%s'\n",
                   path.c_str(), offset, consumed.status().message().c_str(),
                   image.size() - offset, aside.c_str());
      std::ofstream out(aside, std::ios::binary | std::ios::trunc);
      out.write(image.data() + offset,
                static_cast<std::streamsize>(image.size() - offset));
      out.close();
      if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
        std::fprintf(stderr, "wal: truncate failed: %s\n",
                     std::strerror(errno));
      }
      ++report->quarantined;
      ZO_COUNTER_INC("svc.wal.quarantined");
      break;
    }
    report->offsets.push_back(offset);
    offset += *consumed;
    records.push_back(std::move(record));
  }
  report->records = records.size();
  ZO_COUNTER_ADD("svc.wal.records_read",
                 static_cast<std::uint64_t>(records.size()));
  return records;
}

Status WalStore::TruncateAt(const std::string& session, std::size_t offset) {
  std::shared_ptr<Handle> handle = HandleFor(session);
  std::lock_guard<std::mutex> lock(handle->mutex);
  const std::string path = PathFor(session);
  if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
    return Status::Error("truncate '", path,
                         "' failed: ", std::strerror(errno));
  }
  ZO_COUNTER_INC("svc.wal.truncated_tails");
  return Status::Ok();
}

Status WalStore::QuarantineFrom(const std::string& session,
                                std::size_t offset, std::string_view reason) {
  std::shared_ptr<Handle> handle = HandleFor(session);
  std::lock_guard<std::mutex> lock(handle->mutex);
  const std::string path = PathFor(session);
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::Error("cannot open '", path, "' for quarantine");
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  const std::string image = contents.str();
  file.close();
  if (offset > image.size()) {
    return Status::Error("quarantine offset ", offset, " past end of '",
                         path, "' (", image.size(), " bytes)");
  }
  const std::string aside = StrCat(path, ".corrupt");
  std::fprintf(stderr,
               "wal: '%s' quarantined from %zu (%.*s); %zu bytes moved to "
               "'%s'\n",
               path.c_str(), offset, static_cast<int>(reason.size()),
               reason.data(), image.size() - offset, aside.c_str());
  std::ofstream out(aside, std::ios::binary | std::ios::trunc);
  out.write(image.data() + offset,
            static_cast<std::streamsize>(image.size() - offset));
  out.close();
  if (!out) {
    return Status::Error("cannot write quarantine sidecar '", aside, "'");
  }
  if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
    return Status::Error("truncate '", path,
                         "' failed: ", std::strerror(errno));
  }
  ZO_COUNTER_INC("svc.wal.quarantined");
  return Status::Ok();
}

bool WalStore::Exists(const std::string& session) const {
  struct stat st;
  return ::stat(PathFor(session).c_str(), &st) == 0;
}

std::vector<std::string> WalStore::ListSessions() const {
  std::vector<std::string> sessions;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return sessions;
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name.size() <= kWalSuffix.size() ||
        name.substr(name.size() - kWalSuffix.size()) != kWalSuffix) {
      continue;  // Not a log (e.g. a *.corrupt file or a stale tmp).
    }
    sessions.push_back(name.substr(0, name.size() - kWalSuffix.size()));
  }
  ::closedir(dir);
  std::sort(sessions.begin(), sessions.end());
  return sessions;
}

}  // namespace svc
}  // namespace zeroone
