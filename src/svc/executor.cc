#include "svc/executor.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace zeroone {
namespace svc {

BoundedExecutor::BoundedExecutor(std::size_t threads,
                                 std::size_t queue_capacity)
    : queue_capacity_(std::max<std::size_t>(1, queue_capacity)) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BoundedExecutor::~BoundedExecutor() { Drain(); }

bool BoundedExecutor::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || queue_.size() >= queue_capacity_) {
      ++rejected_;
      ZO_COUNTER_INC("svc.executor.rejected");
      return false;
    }
    queue_.push_back(std::move(task));
    ++submitted_;
    ZO_COUNTER_INC("svc.executor.submitted");
  }
  work_available_.notify_one();
  return true;
}

void BoundedExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Draining and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
    ZO_COUNTER_INC("svc.executor.completed");
  }
}

void BoundedExecutor::Drain() {
  std::call_once(drain_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      draining_ = true;
    }
    work_available_.notify_all();
    // Joined threads stay in the vector (stats() reads its size under the
    // mutex concurrently; join itself does not mutate the vector).
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  });
}

bool BoundedExecutor::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

BoundedExecutor::Stats BoundedExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.completed = completed_;
  stats.queue_depth = queue_.size();
  stats.threads = workers_.size();
  stats.queue_capacity = queue_capacity_;
  return stats;
}

}  // namespace svc
}  // namespace zeroone
