#ifndef ZEROONE_SVC_FRONTEND_H_
#define ZEROONE_SVC_FRONTEND_H_

// The seam between wire protocols and request execution.
//
// A RequestSink is anything that can execute one ZO1 request line and
// eventually answer it: the Server (parse → admit → BoundedExecutor →
// Dispatcher) and the shard Router (parse → consistent-hash → forward to a
// backend) both implement it. Protocol handlers sit in front of a sink:
// Zo1LineHandler (here) does newline framing, svc/http.h translates
// HTTP/1.1 + JSON into the same request lines. Because every front-end
// funnels through the one sink with the one line grammar, the HTTP gateway
// inherits the ZO1 parse errors, admission responses, and dispatcher
// payloads verbatim — tests/svc_http_test.cc asserts that parity.
//
// The Encoder passed to Submit localizes protocol framing: the sink
// produces wire-level Response structs and the protocol decides the bytes
// (a ZO1 frame, an HTTP response, ...).

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "svc/protocol.h"
#include "svc/transport.h"

namespace zeroone {
namespace svc {

class RequestSink {
 public:
  // Encodes one wire response into the submitting protocol's frame bytes.
  // Called from worker threads; must be thread-safe and self-contained.
  using Encoder = std::function<std::string(const Response&)>;

  virtual ~RequestSink() = default;

  // Executes one ZO1 request line read from `channel`. The sink reserves
  // the channel's next response slot immediately (preserving pipeline
  // order) and completes it with encoder(response) when done — possibly
  // before Submit returns (parse errors, admission rejections).
  virtual void Submit(const std::shared_ptr<Channel>& channel,
                      std::string line, Encoder encoder) = 0;

  // Accounting hook for input the wire layer rejected before it could
  // reach Submit (oversized line, malformed HTTP head). The protocol
  // handler has already answered the peer through its channel.
  virtual void OnWireError() = 0;
};

// ZO1 newline framing over a Channel: splits raw bytes into lines, strips
// an optional trailing CR, skips blank keep-alive lines, and submits each
// line to the sink with the ZO1 frame encoder. A line overrunning
// kMaxRequestBytes is unrecoverable (the stream cannot be re-synced):
// answer BAD_REQUEST in-slot and tear the read side down.
class Zo1LineHandler : public ProtocolHandler {
 public:
  Zo1LineHandler(Channel* channel, RequestSink* sink)
      : channel_(channel), sink_(sink) {}

  void OnData(std::string_view bytes) override;

 private:
  Channel* const channel_;  // The owning Conn outlives its handler.
  RequestSink* const sink_;
  std::string input_;  // Bytes past the last complete line.
};

// Accept-time refusal bytes for ZO1 listeners (TransportHooks::
// refusal_frame): an OVERLOADED frame for the max_conns admission limit, a
// SHUTTING_DOWN frame for connections racing the drain.
std::string Zo1RefusalFrame(RefusalReason reason, std::size_t max_conns);

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_FRONTEND_H_
