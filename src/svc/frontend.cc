#include "svc/frontend.h"

#include <utility>

namespace zeroone {
namespace svc {

void Zo1LineHandler::OnData(std::string_view bytes) {
  input_.append(bytes.data(), bytes.size());
  std::size_t newline;
  while ((newline = input_.find('\n')) != std::string::npos) {
    std::string line = input_.substr(0, newline);
    input_.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // Blank keep-alive line.
    sink_->Submit(channel_->shared_from_this(), std::move(line),
                  [](const Response& response) {
                    return FormatResponse(response);
                  });
  }
  if (input_.size() > kMaxRequestBytes) {
    // Framing is unrecoverable once a line overruns the cap: answer
    // BAD_REQUEST and stop reading this connection.
    std::uint64_t seq = channel_->ReserveSlot();
    channel_->CompleteSlot(
        seq, FormatResponse(Response{
                 WireStatus::kBadRequest, "0",
                 StrCat("request line exceeds ", kMaxRequestBytes,
                        " bytes")}));
    sink_->OnWireError();
    channel_->AbortReading();
  }
}

std::string Zo1RefusalFrame(RefusalReason reason, std::size_t max_conns) {
  switch (reason) {
    case RefusalReason::kMaxConns:
      return FormatResponse(Response{
          WireStatus::kOverloaded, "0",
          StrCat("connection limit reached (--max-conns=", max_conns,
                 "); retry later")});
    case RefusalReason::kShuttingDown:
      break;
  }
  return FormatResponse(
      Response{WireStatus::kShuttingDown, "0", "server draining"});
}

}  // namespace svc
}  // namespace zeroone
