#include "svc/replication.h"

#include <chrono>
#include <cstdio>
#include <shared_mutex>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/parse.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/wal.h"

namespace zeroone {
namespace svc {

namespace {

using Clock = std::chrono::steady_clock;

// Parses one shiplist line `<session> SP <version>`.
bool ParseShipListLine(std::string_view line, std::string* session,
                       std::uint64_t* version) {
  std::size_t space = line.find(' ');
  if (space == std::string_view::npos || space == 0) return false;
  StatusOr<std::uint64_t> value = ParseUint64(line.substr(space + 1));
  if (!value.ok()) return false;
  *session = std::string(line.substr(0, space));
  *version = *value;
  return true;
}

}  // namespace

Replicator::Replicator(Dispatcher* dispatcher,
                       const ReplicatorOptions& options)
    : dispatcher_(dispatcher), options_(options) {}

Replicator::~Replicator() { Stop(); }

void Replicator::Start() {
  if (running_.exchange(true)) return;
  stop_.store(false, std::memory_order_release);
  dispatcher_->SetReadOnly(true);
  thread_ = std::thread(&Replicator::Loop, this);
}

void Replicator::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

Replicator::Stats Replicator::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Replicator::Loop() {
  // The promotion clock measures continuous *unreachability*: it resets on
  // every successful pull and on every replication-level failure (the
  // primary answered, so it is provably alive). Only transport failures
  // let it run — promoting while the primary serves writes is split brain.
  Clock::time_point last_contact = Clock::now();
  bool broken = false;
  while (!stop_.load(std::memory_order_acquire)) {
    PullFailureKind kind = PullFailureKind::kNone;
    Status pulled = PullOnce(&kind);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.pulls;
      if (!pulled.ok()) {
        ++stats_.pull_failures;
        if (kind == PullFailureKind::kTransport) ++stats_.transport_failures;
        if (kind == PullFailureKind::kReplication) ++stats_.broken_pulls;
      }
    }
    if (pulled.ok()) {
      last_contact = Clock::now();
      if (broken) {
        broken = false;
        std::fprintf(stderr, "replication: stream healed; following again\n");
      }
      ZO_COUNTER_INC("svc.repl.pulls_ok");
    } else if (kind == PullFailureKind::kReplication) {
      last_contact = Clock::now();
      ZO_COUNTER_INC("svc.repl.pulls_broken");
      if (!broken) {
        broken = true;
        std::fprintf(stderr,
                     "replication: BROKEN — the primary is alive but the "
                     "stream is unusable (%s); alarming, not promoting\n",
                     pulled.message().c_str());
      }
    } else {
      ZO_COUNTER_INC("svc.repl.pulls_failed");
      if (options_.promote_after_ms > 0 &&
          Clock::now() - last_contact >=
              std::chrono::milliseconds(options_.promote_after_ms)) {
        Promote();
        return;  // Promoted standbys stop pulling for good.
      }
    }
    // Sleep in short slices so Stop() is honored promptly.
    Clock::time_point wake =
        Clock::now() + std::chrono::milliseconds(options_.pull_interval_ms);
    while (!stop_.load(std::memory_order_acquire) && Clock::now() < wake) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

void Replicator::Promote() {
  promoted_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.promoted = true;
  }
  dispatcher_->SetReadOnly(false);
  ZO_COUNTER_INC("svc.repl.promoted");
  std::fprintf(stderr,
               "replication: primary unreachable for %llu ms; promoting "
               "standby to primary (mutations now accepted)\n",
               static_cast<unsigned long long>(options_.promote_after_ms));
}

Status Replicator::PullOnce(PullFailureKind* kind_out) {
  PullFailureKind kind = PullFailureKind::kReplication;
  Status status = Pull(&kind);
  if (kind_out != nullptr) {
    *kind_out = status.ok() ? PullFailureKind::kNone : kind;
  }
  return status;
}

Status Replicator::Pull(PullFailureKind* kind) {
  ClientOptions client_options;
  client_options.connect_timeout_ms = options_.io_timeout_ms;
  client_options.io_timeout_ms = options_.io_timeout_ms;
  BlockingClient client(client_options);
  // No response seen yet: a failure here is transport-level (the primary
  // may be dead).
  *kind = PullFailureKind::kTransport;
  ZO_RETURN_IF_ERROR(client.Connect(options_.host, options_.port));

  Request list;
  list.command = "shiplist";
  StatusOr<Response> listed = client.Call(list);
  if (!listed.ok()) return listed.status();  // Still transport: no answer.
  // The primary answered: every failure from here on proves it alive.
  *kind = PullFailureKind::kReplication;
  if (listed->status != WireStatus::kOk) {
    return Status::Error("shiplist answered ",
                         WireStatusName(listed->status), ": ",
                         listed->payload);
  }

  std::istringstream lines(listed->payload);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string session;
    std::uint64_t primary_version = 0;
    if (!ParseShipListLine(line, &session, &primary_version)) {
      return Status::Error("bad shiplist line '", line, "'");
    }
    std::uint64_t cursor = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = cursors_.find(session);
      if (it != cursors_.end()) cursor = it->second;
    }
    if (cursor == 0) {
      // First contact (or a follower restart): resume from whatever the
      // local recovery already holds instead of re-shipping history.
      std::shared_ptr<SessionState> local =
          dispatcher_->sessions().GetOrCreate(session);
      std::shared_lock<std::shared_mutex> lock(local->mutex);
      cursor = local->version;
    }
    while (cursor < primary_version &&
           !stop_.load(std::memory_order_acquire)) {
      Request ship;
      ship.command = "ship";
      ship.args = StrCat(session, " ", cursor);
      *kind = PullFailureKind::kTransport;  // This call may go unanswered.
      StatusOr<Response> shipped = client.Call(ship);
      if (!shipped.ok()) return shipped.status();
      *kind = PullFailureKind::kReplication;
      if (shipped->status != WireStatus::kOk) {
        return Status::Error("ship ", session, " answered ",
                             WireStatusName(shipped->status), ": ",
                             shipped->payload);
      }
      bool caught_up = false;
      ZO_RETURN_IF_ERROR(
          ApplyShipPayload(session, shipped->payload, &cursor, &caught_up));
      {
        std::lock_guard<std::mutex> lock(mutex_);
        cursors_[session] = cursor;
      }
      if (caught_up) break;
    }
  }
  return Status::Ok();
}

Status Replicator::ApplyShipPayload(const std::string& session,
                                    const std::string& payload,
                                    std::uint64_t* cursor, bool* caught_up) {
  *caught_up = false;
  std::size_t newline = payload.find('\n');
  if (newline == std::string::npos) {
    return Status::Error("ship payload for '", session, "' has no header");
  }
  std::string_view head = std::string_view(payload).substr(0, newline);

  if (head == "SNAP") {
    Status installed =
        dispatcher_->InstallSnapshotImage(payload.substr(newline + 1));
    if (!installed.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.decode_failures;
      return installed;
    }
    std::shared_ptr<SessionState> local =
        dispatcher_->sessions().GetOrCreate(session);
    {
      std::shared_lock<std::shared_mutex> session_lock(local->mutex);
      *cursor = local->version;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.snapshots_installed;
    ZO_COUNTER_INC("svc.repl.snapshots_installed");
    return Status::Ok();
  }

  constexpr std::string_view kRecsPrefix = "RECS ";
  if (head.substr(0, kRecsPrefix.size()) != kRecsPrefix) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.decode_failures;
    return Status::Error("bad ship header '", head, "' for '", session, "'");
  }
  std::string_view counts = head.substr(kRecsPrefix.size());
  bool more = !counts.empty() && counts.back() == '1';
  std::size_t count = 0;

  std::size_t offset = newline + 1;
  while (offset < payload.size()) {
    WalRecord record;
    StatusOr<std::size_t> consumed = DecodeWalRecord(
        std::string_view(payload).substr(offset), &record);
    if (consumed.ok() && *consumed > 0 &&
        ZO_FAULT_POINT("replay.decode.fail")) {
      // Injected stream corruption: the pull aborts and retries from the
      // last applied cursor — shipped records are idempotent by version.
      consumed = Status::Error("injected fault: replay.decode.fail");
    }
    if (!consumed.ok() || *consumed == 0) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.decode_failures;
      }
      ZO_COUNTER_INC("svc.repl.decode_failed");
      return Status::Error(
          "undecodable shipped record for '", session, "': ",
          consumed.ok() ? "truncated frame" : consumed.status().message());
    }
    offset += *consumed;
    ZO_RETURN_IF_ERROR(dispatcher_->ApplyReplicatedRecord(session, record));
    *cursor = record.version;
    ++count;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.records_applied;
    }
    ZO_COUNTER_INC("svc.repl.records_applied");
  }
  // `RECS 0 0` (nothing past the cursor) means the follower is current.
  *caught_up = (count == 0 && !more);
  return Status::Ok();
}

}  // namespace svc
}  // namespace zeroone
