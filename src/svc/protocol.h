#ifndef ZEROONE_SVC_PROTOCOL_H_
#define ZEROONE_SVC_PROTOCOL_H_

// Wire protocol of the zeroone query server (docs/serving.md has the full
// grammar). The protocol is line-oriented and UTF-8:
//
// Request — exactly one line, at most kMaxRequestBytes bytes:
//
//   request  := *(option SP) command [SP args] LF
//   option   := "@id=" token | "@session=" token | "@deadline_ms=" uint
//             | "@nocache" | "@explain=" ("0" | "1")
//   command  := "ping" | "stats" | "db" | "load" | "reset" | "show"
//             | "query" | "naive" | "certain" | "possible" | "best"
//             | "bestmu" | "mu" | "muk" | "poly" | "compare" | "cond"
//             | "fd" | "ind" | "constraints" | "clear" | "chase" | "ra"
//             | "dlog" | "save" | "shiplist" | "ship"
//
// `shiplist` and `ship <session> <from_version>` are the log-shipping
// surface a warm standby pulls over (docs/robustness.md): shiplist answers
// `<session> SP <version> LF` per session; ship answers either
// `"RECS" SP count SP more LF *record` (WAL record frames after
// from_version) or `"SNAP" LF snapshot-image` when the log has been
// compacted past the follower's cursor.
//   token    := 1*64( ALPHA / DIGIT / "_" / "-" / "." )
//
// Response — a header line followed by a length-prefixed payload:
//
//   response := "ZO1" SP status SP id SP payload_bytes LF payload LF
//   status   := "OK" | "ERR" | "BAD_REQUEST" | "OVERLOADED"
//             | "DEADLINE_EXCEEDED" | "SHUTTING_DOWN" | "UNAVAILABLE"
//
// The payload is exactly payload_bytes bytes (it may itself contain
// newlines); the trailing LF is a frame terminator, not part of the
// payload. Requests on one connection are answered in submission order.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace zeroone {
namespace svc {

// Hard cap on one request line (including options), chosen to fit any
// realistic inline `db` statement while bounding per-connection memory.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;
// Hard cap on one response payload; larger payloads are truncated with a
// trailing marker rather than silently dropped.
inline constexpr std::size_t kMaxPayloadBytes = 4 * 1024 * 1024;
// Cap on @id= and @session= tokens.
inline constexpr std::size_t kMaxTokenBytes = 64;

enum class WireStatus {
  kOk,
  kErr,               // Command-level failure (parse error, bad tuple, ...).
  kBadRequest,        // The request line itself was malformed.
  kOverloaded,        // Bounded queue full; retry later.
  kDeadlineExceeded,  // Evaluation abandoned at the request deadline.
  kShuttingDown,      // Server is draining; no new work accepted.
  kUnavailable,       // Transient server-side failure (e.g. a snapshot
                      // write failed); nothing was applied — safe to retry.
};

std::string_view WireStatusName(WireStatus status);
// Inverse of WireStatusName; errors on unknown names.
StatusOr<WireStatus> ParseWireStatus(std::string_view name);

struct Request {
  std::string id = "0";            // Echoed verbatim in the response.
  std::string session = "default"; // Named database session.
  std::uint64_t deadline_ms = 0;   // 0 = no deadline.
  bool no_cache = false;           // Bypass (and do not fill) the cache.
  bool explain = false;            // Print the query plan, don't execute.
  std::string command;
  std::string args;                // Remainder of the line, trimmed.
};

struct Response {
  WireStatus status = WireStatus::kOk;
  std::string id = "0";
  std::string payload;
};

// True for commands the server understands (the list in the grammar above).
bool IsKnownCommand(std::string_view command);
// True for commands that mutate session state (database, query,
// constraints) and therefore bump the session version and invalidate the
// session's cache entries. `query` counts: it changes what the evaluation
// commands operate on.
bool IsMutationCommand(std::string_view command);
// True for commands whose successful results are worth caching: pure reads
// whose output depends only on (session state version, command, args).
bool IsCacheableCommand(std::string_view command);

// Parses one request line (without the trailing LF). Enforces the size cap,
// UTF-8 validity, option syntax, token shape, and command membership; any
// violation is an error Status (never a crash — see svc_protocol_test).
StatusOr<Request> ParseRequestLine(std::string_view line);

// Serializes a request to its canonical line form (no trailing LF).
// Options with default values are omitted. ParseRequestLine round-trips it.
std::string FormatRequestLine(const Request& request);

// Serializes a full response frame (header, payload, terminator). Payloads
// over kMaxPayloadBytes are truncated with a "\n...[truncated]" tail.
std::string FormatResponse(const Response& response);

// Incremental response parse: examines the front of `buffer` and, if it
// holds a complete frame, fills `out` and returns the bytes consumed.
// Returns 0 when the frame is still incomplete; an error Status when the
// buffer cannot be a response frame prefix.
StatusOr<std::size_t> ParseResponseFrame(std::string_view buffer,
                                         Response* out);

// True iff `text` is well-formed UTF-8 (rejects overlongs, surrogates,
// and values past U+10FFFF). Exposed for tests.
bool IsValidUtf8(std::string_view text);

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_PROTOCOL_H_
