#ifndef ZEROONE_SVC_CLIENT_H_
#define ZEROONE_SVC_CLIENT_H_

// Minimal blocking client for the zeroone wire protocol, shared by
// tools/zeroone_loadgen.cc, bench/bench_serving.cc, and tests/svc_test.cc.
// One connection, synchronous Call() or pipelined Send()/Receive().

#include <cstdint>
#include <string>

#include "common/status.h"
#include "svc/protocol.h"

namespace zeroone {
namespace svc {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Sends one request line (pipelining: responses arrive in order).
  Status Send(const Request& request);
  // Blocks for the next response frame.
  StatusOr<Response> Receive();
  // Send + Receive.
  StatusOr<Response> Call(const Request& request);

 private:
  int fd_ = -1;
  std::string buffer_;  // Unconsumed bytes past the last parsed frame.
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_CLIENT_H_
