#ifndef ZEROONE_SVC_CLIENT_H_
#define ZEROONE_SVC_CLIENT_H_

// Clients for the zeroone wire protocol, shared by tools/zeroone_loadgen.cc,
// bench/bench_serving.cc, and the tests.
//
// BlockingClient: one connection, synchronous Call() or pipelined
// Send()/Receive(), with optional connect/IO timeouts.
//
// RetryingClient: wraps a BlockingClient with jittered exponential backoff
// over *transient* failures — transport errors (ECONNRESET, ECONNREFUSED,
// partial frames, timeouts) and the retryable wire statuses OVERLOADED,
// UNAVAILABLE, and SHUTTING_DOWN. Anything the server actually answered
// (OK, ERR, BAD_REQUEST, DEADLINE_EXCEEDED) is returned as-is: the request
// was applied or definitively rejected, and retrying would double-apply or
// mask a real bug. Backoff jitter is drawn from a deterministic per-client
// PRNG so chaos runs are reproducible (docs/robustness.md).

#include <cstdint>
#include <string>

#include "common/status.h"
#include "svc/protocol.h"

namespace zeroone {
namespace svc {

struct ClientOptions {
  // 0 = block indefinitely (the pre-timeout behaviour).
  std::uint64_t connect_timeout_ms = 0;
  // Applied to every send/recv via SO_SNDTIMEO/SO_RCVTIMEO; 0 = no limit.
  std::uint64_t io_timeout_ms = 0;
};

class BlockingClient {
 public:
  BlockingClient() = default;
  explicit BlockingClient(const ClientOptions& options) : options_(options) {}
  ~BlockingClient();
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Sends one request line (pipelining: responses arrive in order).
  Status Send(const Request& request);
  // Blocks for the next response frame.
  StatusOr<Response> Receive();
  // Send + Receive.
  StatusOr<Response> Call(const Request& request);

 private:
  ClientOptions options_;
  int fd_ = -1;
  std::string buffer_;  // Unconsumed bytes past the last parsed frame.
};

struct RetryPolicy {
  // Total tries, including the first. 1 = no retries.
  int max_attempts = 5;
  std::uint64_t initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_ms = 1000;
  // Each sleep is scattered uniformly in [1-jitter, 1+jitter] × nominal so
  // a fleet of clients does not reconverge on the server in lockstep.
  double jitter = 0.2;
  // Seeds the jitter PRNG; same seed + same failure pattern = same sleeps.
  std::uint64_t seed = 1;
};

// True for outcomes where retrying can help and cannot double-apply an
// acknowledged mutation: the transport failed (no response seen) or the
// server explicitly refused before doing work.
bool IsTransientWireStatus(WireStatus status);

class RetryingClient {
 public:
  struct Stats {
    std::uint64_t calls = 0;             // CallWithRetry invocations.
    std::uint64_t attempts = 0;          // Individual wire attempts.
    std::uint64_t retries = 0;           // attempts - calls, when retried.
    std::uint64_t reconnects = 0;        // Successful re-Connect()s.
    std::uint64_t backoff_ms = 0;        // Total time slept in backoff.
    std::uint64_t transport_errors = 0;  // send/recv/connect failures.
    std::uint64_t transient_responses = 0;  // OVERLOADED etc. answers.
    std::uint64_t gave_up = 0;           // Calls that exhausted attempts.
    std::uint64_t max_attempts_seen = 0;  // Worst single call.
  };

  RetryingClient(const std::string& host, int port,
                 const RetryPolicy& policy = RetryPolicy(),
                 const ClientOptions& options = ClientOptions());

  // Calls until a non-transient response arrives or attempts run out.
  // Reconnects automatically after transport failures. On exhaustion,
  // returns the last failure (transport Status or transient Response).
  StatusOr<Response> CallWithRetry(const Request& request);

  const Stats& stats() const { return stats_; }
  bool connected() const { return client_.connected(); }
  void Close() { client_.Close(); }

 private:
  // Next backoff sleep for `retry_index` (0-based), jittered.
  std::uint64_t BackoffMs(int retry_index);

  const std::string host_;
  const int port_;
  const RetryPolicy policy_;
  BlockingClient client_;
  std::uint64_t rng_state_;
  Stats stats_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_CLIENT_H_
