#include "svc/http.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>
#include <vector>

#include "common/parse.h"
#include "obs/metrics.h"

namespace zeroone {
namespace svc {

namespace {

std::string_view ReasonFor(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Content";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string BuildHttpResponse(int code, std::string_view reason,
                              std::string_view body, bool keep_alive) {
  return StrCat("HTTP/1.1 ", code, " ", reason,
                "\r\nContent-Type: application/json\r\nContent-Length: ",
                body.size(), "\r\nConnection: ",
                keep_alive ? "keep-alive" : "close", "\r\n\r\n", body);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

// ---------------------------------------------------------------------------
// A deliberately small JSON reader: one flat object of string / unsigned
// integer / boolean / null values — exactly the /v1/query body shape.
// Anything else (arrays, nesting, floats) is rejected with a message
// naming the problem; malformed bodies must never crash the gateway
// (tests/svc_fuzz_test.cc).

struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;
  std::uint64_t num = 0;
  bool boolean = false;
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  StatusOr<std::vector<std::pair<std::string, JsonValue>>> ReadObject() {
    SkipSpace();
    if (!Consume('{')) {
      return Status::Error("body is not a JSON object");
    }
    std::vector<std::pair<std::string, JsonValue>> fields;
    SkipSpace();
    if (Consume('}')) {
      return Finish(std::move(fields));
    }
    for (;;) {
      SkipSpace();
      ZO_ASSIGN_OR_RETURN(std::string key, ReadString());
      SkipSpace();
      if (!Consume(':')) {
        return Status::Error("expected ':' after JSON key '", key, "'");
      }
      SkipSpace();
      ZO_ASSIGN_OR_RETURN(JsonValue value, ReadValue());
      fields.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Finish(std::move(fields));
      return Status::Error("expected ',' or '}' in JSON object");
    }
  }

 private:
  StatusOr<std::vector<std::pair<std::string, JsonValue>>> Finish(
      std::vector<std::pair<std::string, JsonValue>> fields) {
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::Error("trailing data after JSON object");
    }
    return fields;
  }

  StatusOr<JsonValue> ReadValue() {
    if (pos_ >= text_.size()) {
      return Status::Error("truncated JSON value");
    }
    char c = text_[pos_];
    JsonValue value;
    if (c == '"') {
      ZO_ASSIGN_OR_RETURN(value.str, ReadString());
      value.kind = JsonValue::Kind::kString;
      return value;
    }
    if (c >= '0' && c <= '9') {
      std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ < text_.size() &&
          (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
        return Status::Error("JSON numbers must be unsigned integers");
      }
      ZO_ASSIGN_OR_RETURN(value.num,
                          ParseUint64(text_.substr(start, pos_ - start)));
      value.kind = JsonValue::Kind::kNumber;
      return value;
    }
    if (ConsumeWord("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (ConsumeWord("null")) {
      value.kind = JsonValue::Kind::kNull;
      return value;
    }
    return Status::Error("unsupported JSON value (want string, unsigned "
                         "integer, boolean, or null)");
  }

  StatusOr<std::string> ReadString() {
    if (!Consume('"')) {
      return Status::Error("expected a JSON string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        // RFC 8259: control characters must be escaped. Enforcing it also
        // guarantees an assembled request line cannot contain a raw
        // newline — framing bytes never enter through a JSON body.
        if (static_cast<unsigned char>(c) < 0x20) {
          return Status::Error(
              "unescaped control character in JSON string");
        }
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::Error("truncated \\u escape in JSON string");
          }
          std::uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<std::uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<std::uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<std::uint32_t>(h - 'A' + 10);
            } else {
              return Status::Error("bad \\u escape in JSON string");
            }
          }
          // BMP only; surrogate pairs are out of scope for query bodies.
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Status::Error("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::Error("bad escape '\\", std::string(1, esc),
                               "' in JSON string");
      }
    }
    return Status::Error("unterminated JSON string");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

StatusOr<std::string> AssembleQueryLine(std::string_view json_body) {
  JsonReader reader(json_body);
  ZO_ASSIGN_OR_RETURN(auto fields, reader.ReadObject());
  std::string command;
  std::string args;
  std::string options;  // "@..."-prefixed, space-joined.
  bool have_command = false;
  std::vector<std::string_view> seen;
  for (auto& [key, value] : fields) {
    for (std::string_view prior : seen) {
      if (prior == key) {
        return Status::Error("duplicate field '", key, "'");
      }
    }
    seen.push_back(key);
    if (value.kind == JsonValue::Kind::kNull) continue;  // Same as absent.
    auto want_string = [&](const JsonValue& v) -> Status {
      if (v.kind != JsonValue::Kind::kString) {
        return Status::Error("field '", key, "' must be a string");
      }
      return Status::Ok();
    };
    auto want_bool = [&](const JsonValue& v) -> Status {
      if (v.kind != JsonValue::Kind::kBool) {
        return Status::Error("field '", key, "' must be a boolean");
      }
      return Status::Ok();
    };
    if (key == "command") {
      ZO_RETURN_IF_ERROR(want_string(value));
      command = std::move(value.str);
      have_command = true;
    } else if (key == "args") {
      ZO_RETURN_IF_ERROR(want_string(value));
      args = std::move(value.str);
    } else if (key == "id") {
      ZO_RETURN_IF_ERROR(want_string(value));
      if (!value.str.empty()) {
        options += StrCat("@id=", value.str, " ");
      }
    } else if (key == "session") {
      ZO_RETURN_IF_ERROR(want_string(value));
      if (!value.str.empty()) {
        options += StrCat("@session=", value.str, " ");
      }
    } else if (key == "deadline_ms") {
      if (value.kind != JsonValue::Kind::kNumber) {
        return Status::Error("field 'deadline_ms' must be an unsigned "
                             "integer");
      }
      if (value.num != 0) {
        options += StrCat("@deadline_ms=", value.num, " ");
      }
    } else if (key == "nocache") {
      ZO_RETURN_IF_ERROR(want_bool(value));
      if (value.boolean) options += "@nocache ";
    } else if (key == "explain") {
      ZO_RETURN_IF_ERROR(want_bool(value));
      if (value.boolean) options += "@explain=1 ";
    } else {
      return Status::Error("unknown field '", key,
                           "' (want command, args, id, session, "
                           "deadline_ms, nocache, explain)");
    }
  }
  if (!have_command) {
    return Status::Error("missing required field 'command'");
  }
  // The assembled line goes through the sink's ZO1 parser unmodified, so a
  // token the grammar rejects (bad id shape, unknown command, an embedded
  // control byte) earns exactly the BAD_REQUEST a raw ZO1 client would get.
  std::string line = std::move(options);
  line += command;
  if (!args.empty()) {
    line += ' ';
    line += args;
  }
  return line;
}

int HttpHandler::HttpStatusFor(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return 200;
    case WireStatus::kErr: return 422;
    case WireStatus::kBadRequest: return 400;
    case WireStatus::kOverloaded: return 503;
    case WireStatus::kDeadlineExceeded: return 504;
    case WireStatus::kShuttingDown: return 503;
    case WireStatus::kUnavailable: return 503;
  }
  return 500;
}

std::string HttpHandler::EncodeQueryResponse(const Response& response,
                                             bool keep_alive) {
  int code = HttpStatusFor(response.status);
  std::string body =
      StrCat("{\"status\":\"", WireStatusName(response.status),
             "\",\"id\":\"", JsonEscape(response.id), "\",\"payload\":\"",
             JsonEscape(response.payload), "\"}");
  return BuildHttpResponse(code, ReasonFor(code), body, keep_alive);
}

std::string HttpRefusalFrame(RefusalReason reason, std::size_t max_conns) {
  // Same payload strings as the ZO1 refusal frames (Zo1RefusalFrame), so
  // both fronts describe the same condition identically.
  if (reason == RefusalReason::kMaxConns) {
    return BuildHttpResponse(
        503, ReasonFor(503),
        StrCat("{\"status\":\"OVERLOADED\",\"id\":\"0\",\"payload\":\"",
               JsonEscape(StrCat("connection limit reached (--max-conns=",
                                 max_conns, "); retry later")),
               "\"}"),
        /*keep_alive=*/false);
  }
  return BuildHttpResponse(
      503, ReasonFor(503),
      "{\"status\":\"SHUTTING_DOWN\",\"id\":\"0\",\"payload\":\"server "
      "draining\"}",
      /*keep_alive=*/false);
}

HttpHandler::HttpHandler(Channel* channel, RequestSink* sink,
                         const HttpOptions& options)
    : channel_(channel), sink_(sink), options_(options) {}

void HttpHandler::OnData(std::string_view bytes) {
  if (state_ == State::kClosed) return;
  buffer_.append(bytes.data(), bytes.size());
  ProcessBuffer();
}

void HttpHandler::ProcessBuffer() {
  for (;;) {
    if (state_ == State::kHead) {
      // The head ends at the first blank line; tolerate bare-LF clients.
      std::size_t crlf = buffer_.find("\r\n\r\n");
      std::size_t lf = buffer_.find("\n\n");
      std::size_t head_len;
      std::size_t term_len;
      if (crlf != std::string::npos &&
          (lf == std::string::npos || crlf < lf)) {
        head_len = crlf;
        term_len = 4;
      } else if (lf != std::string::npos) {
        head_len = lf;
        term_len = 2;
      } else {
        if (buffer_.size() > options_.max_head_bytes) {
          FailAndClose(413, ReasonFor(413),
                       StrCat("{\"error\":\"request head exceeds ",
                              options_.max_head_bytes, " bytes\"}"));
        }
        return;  // Await more bytes.
      }
      if (head_len > options_.max_head_bytes) {
        FailAndClose(413, ReasonFor(413),
                     StrCat("{\"error\":\"request head exceeds ",
                            options_.max_head_bytes, " bytes\"}"));
        return;
      }
      std::string head = buffer_.substr(0, head_len);
      buffer_.erase(0, head_len + term_len);
      if (!ParseHead(head)) return;  // Answered and closed.
      state_ = State::kBody;
    }
    if (state_ == State::kBody) {
      if (buffer_.size() < content_length_) return;  // Await the body.
      std::string body = buffer_.substr(0, content_length_);
      buffer_.erase(0, content_length_);
      state_ = State::kHead;
      DispatchRequest(std::move(body));
    }
    if (state_ == State::kClosed) return;
  }
}

bool HttpHandler::ParseHead(std::string_view head) {
  // Split into lines; each may carry a trailing CR (mixed-ending clients).
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= head.size()) {
    std::size_t nl = head.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? head.substr(start)
                                : head.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  if (lines.empty() || lines[0].empty()) {
    FailAndClose(400, ReasonFor(400),
                 "{\"error\":\"malformed request line\"}");
    return false;
  }
  // Request line: METHOD SP TARGET SP VERSION, single spaces, no extras.
  std::string_view request_line = lines[0];
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 = sp1 == std::string_view::npos
                        ? std::string_view::npos
                        : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= request_line.size() ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    FailAndClose(400, ReasonFor(400),
                 "{\"error\":\"malformed request line\"}");
    return false;
  }
  method_ = std::string(request_line.substr(0, sp1));
  target_ = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    FailAndClose(400, ReasonFor(400),
                 StrCat("{\"error\":\"unsupported HTTP version '",
                        JsonEscape(version), "'\"}"));
    return false;
  }
  keep_alive_ = version == "HTTP/1.1";
  content_length_ = 0;
  bool have_length = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      FailAndClose(400, ReasonFor(400),
                   "{\"error\":\"malformed header line\"}");
      return false;
    }
    std::string_view name = Trim(line.substr(0, colon));
    std::string_view value = Trim(line.substr(colon + 1));
    if (EqualsIgnoreCase(name, "content-length")) {
      StatusOr<std::uint64_t> parsed = ParseUint64(value);
      if (!parsed.ok()) {
        FailAndClose(400, ReasonFor(400),
                     StrCat("{\"error\":\"bad Content-Length '",
                            JsonEscape(value), "'\"}"));
        return false;
      }
      if (have_length && *parsed != content_length_) {
        FailAndClose(400, ReasonFor(400),
                     "{\"error\":\"conflicting Content-Length headers\"}");
        return false;
      }
      if (*parsed > options_.max_body_bytes) {
        FailAndClose(413, ReasonFor(413),
                     StrCat("{\"error\":\"request body exceeds ",
                            options_.max_body_bytes, " bytes\"}"));
        return false;
      }
      content_length_ = static_cast<std::size_t>(*parsed);
      have_length = true;
    } else if (EqualsIgnoreCase(name, "transfer-encoding")) {
      FailAndClose(400, ReasonFor(400),
                   "{\"error\":\"transfer encodings are not supported; "
                   "send Content-Length\"}");
      return false;
    } else if (EqualsIgnoreCase(name, "connection")) {
      // Comma-separated token list.
      std::size_t pos = 0;
      while (pos <= value.size()) {
        std::size_t comma = value.find(',', pos);
        std::string_view token =
            Trim(comma == std::string_view::npos
                     ? value.substr(pos)
                     : value.substr(pos, comma - pos));
        if (EqualsIgnoreCase(token, "close")) keep_alive_ = false;
        if (EqualsIgnoreCase(token, "keep-alive")) keep_alive_ = true;
        if (comma == std::string_view::npos) break;
        pos = comma + 1;
      }
    }
    // Other headers are accepted and ignored.
  }
  return true;
}

void HttpHandler::DispatchRequest(std::string body) {
  const bool keep_alive = keep_alive_;
  if (target_ == "/v1/query") {
    if (method_ != "POST") {
      RespondNow(405, ReasonFor(405),
                 "{\"error\":\"use POST for /v1/query\"}", keep_alive);
    } else {
      StatusOr<std::string> line = AssembleQueryLine(body);
      if (!line.ok()) {
        // A malformed body is this front's BAD_REQUEST: same accounting as
        // a malformed ZO1 line, same response shape as a parse error.
        sink_->OnWireError();
        RespondNow(400, ReasonFor(400),
                   StrCat("{\"status\":\"BAD_REQUEST\",\"id\":\"0\","
                          "\"payload\":\"",
                          JsonEscape(line.status().message()), "\"}"),
                   keep_alive);
      } else {
        sink_->Submit(channel_->shared_from_this(), std::move(*line),
                      [keep_alive](const Response& response) {
                        return EncodeQueryResponse(response, keep_alive);
                      });
      }
    }
  } else if (target_ == "/metrics") {
    if (method_ != "GET") {
      RespondNow(405, ReasonFor(405), "{\"error\":\"use GET for /metrics\"}",
                 keep_alive);
    } else {
      std::ostringstream dump;
      obs::Registry::Global().DumpJson(dump);
      RespondNow(200, ReasonFor(200), dump.str(), keep_alive);
    }
  } else {
    RespondNow(404, ReasonFor(404),
               StrCat("{\"error\":\"no such endpoint '", JsonEscape(target_),
                      "' (want /v1/query or /metrics)\"}"),
               keep_alive);
  }
  if (!keep_alive) {
    state_ = State::kClosed;
    // Half-close the read side; queued responses (including this one)
    // still flush, then the write side closes — a clean HTTP close.
    channel_->AbortReading();
  }
}

void HttpHandler::RespondNow(int code, std::string_view reason,
                             std::string body, bool keep_alive) {
  std::uint64_t seq = channel_->ReserveSlot();
  channel_->CompleteSlot(seq,
                         BuildHttpResponse(code, reason, body, keep_alive));
}

void HttpHandler::FailAndClose(int code, std::string_view reason,
                               std::string body) {
  RespondNow(code, reason, std::move(body), /*keep_alive=*/false);
  sink_->OnWireError();
  state_ = State::kClosed;
  channel_->AbortReading();
}

}  // namespace svc
}  // namespace zeroone
