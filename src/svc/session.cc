#include "svc/session.h"

#include "obs/metrics.h"

namespace zeroone {
namespace svc {

std::shared_ptr<SessionState> SessionRegistry::GetOrCreate(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(name);
  if (it != sessions_.end()) return it->second;
  auto session = std::make_shared<SessionState>();
  sessions_.emplace(name, session);
  ZO_COUNTER_INC("svc.sessions.created");
  return session;
}

std::vector<std::string> SessionRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) names.push_back(name);
  return names;
}

std::size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace svc
}  // namespace zeroone
