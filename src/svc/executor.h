#ifndef ZEROONE_SVC_EXECUTOR_H_
#define ZEROONE_SVC_EXECUTOR_H_

// Worker-thread pool with a *bounded* work queue.
//
// Overload policy: TrySubmit never blocks and never queues unboundedly —
// when the queue is at capacity (or the executor is draining) it returns
// false immediately and the caller turns that into an explicit OVERLOADED
// response. This keeps tail latency bounded under load instead of letting
// the queue absorb (and eventually time out) an unbounded backlog.
//
// Drain policy: Drain() stops admission, lets the workers finish every task
// that was already accepted (accepted work is never silently dropped), then
// joins the workers. Idempotent.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zeroone {
namespace svc {

class BoundedExecutor {
 public:
  BoundedExecutor(std::size_t threads, std::size_t queue_capacity);
  ~BoundedExecutor();  // Drains.
  BoundedExecutor(const BoundedExecutor&) = delete;
  BoundedExecutor& operator=(const BoundedExecutor&) = delete;

  // Enqueues `task` unless the queue is full or the executor is draining.
  bool TrySubmit(std::function<void()> task);

  // Stops admission, completes all accepted tasks, joins the workers.
  void Drain();

  bool draining() const;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;   // TrySubmit refusals (full or draining).
    std::uint64_t completed = 0;
    std::size_t queue_depth = 0;  // Tasks queued, not yet started.
    std::size_t threads = 0;
    std::size_t queue_capacity = 0;
  };
  Stats stats() const;

 private:
  void WorkerLoop();

  const std::size_t queue_capacity_;
  std::once_flag drain_once_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool draining_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_EXECUTOR_H_
