#ifndef ZEROONE_SVC_TRANSPORT_H_
#define ZEROONE_SVC_TRANSPORT_H_

// The protocol-agnostic connection core of the serving stack.
//
// Transport owns everything below the wire protocol: the listen socket and
// accept thread, a small fixed pool of epoll event-loop threads with
// self-pipe wakeups, nonblocking per-connection IO, byte-bounded outboxes
// with slow-reader disconnection, connection-count admission (max_conns),
// and the graceful-drain state machine. It knows nothing about frames: raw
// bytes read from a socket are handed to the connection's ProtocolHandler,
// and the handler pushes complete response frames (opaque byte strings)
// back through the Channel slot interface.
//
// Channel: what a protocol handler drives. ReserveSlot/CompleteSlot give
// in-arrival-order response delivery with out-of-order completion (workers
// fill slots whenever they finish; the transport flushes the longest
// completed prefix), so every protocol gets pipelining for free.
// AbortReading tears down the read side after an unrecoverable framing
// violation while still answering and flushing reserved slots.
//
// The ZO1 newline protocol (svc/frontend.h) and the HTTP/1.1 gateway
// (svc/http.h) are both ProtocolHandler implementations over this seam;
// the shard router (svc/router.h) reuses the same core for its front
// listeners. tests/svc_epoll_diff_test.cc proves the extraction
// byte-identical to the pre-split server.
//
// Legacy mode (TransportOptions::legacy_readers): one blocking reader
// thread per connection with inline blocking sends — the pre-epoll model,
// kept exclusively as the reference side of the differential battery.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"

namespace zeroone {
namespace svc {

class Transport;
struct EventLoop;

// What a protocol handler sees of its connection. Channels are owned by
// the transport; handlers hold a raw pointer (a handler never outlives its
// connection) and use shared_from_this() to keep the connection alive in
// asynchronous completion callbacks.
class Channel : public std::enable_shared_from_this<Channel> {
 public:
  virtual ~Channel() = default;

  // Reserves the next in-order response slot; returns its sequence number.
  virtual std::uint64_t ReserveSlot() = 0;

  // Fills a slot with a complete, protocol-encoded frame. Thread-safe;
  // called from worker threads as requests finish.
  virtual void CompleteSlot(std::uint64_t seq, std::string frame) = 0;

  // Read-side teardown after a protocol violation: no further input will
  // be parsed, but reserved slots still get answered and flushed.
  virtual void AbortReading() = 0;
};

// Per-connection protocol state machine. OnData is called with raw socket
// bytes on the owning event-loop thread (or the reader thread in legacy
// mode) — never concurrently for one connection.
class ProtocolHandler {
 public:
  virtual ~ProtocolHandler() = default;
  virtual void OnData(std::string_view bytes) = 0;
};

// Why the transport is refusing a connection at accept time. The protocol
// supplies the refusal bytes (a ZO1 OVERLOADED frame, an HTTP 503, ...)
// via TransportHooks::refusal_frame.
enum class RefusalReason { kMaxConns, kShuttingDown };

struct TransportOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; the bound port is Transport::port().
  // Event-loop (epoll) threads multiplexing all connections.
  // 0 = min(4, hw_concurrency). Ignored under legacy_readers.
  std::size_t event_threads = 0;
  // Connection admission limit; 0 = unlimited.
  std::size_t max_conns = 0;
  // Byte bound on one connection's queued-but-unsent responses.
  std::size_t outbox_max_bytes = 8 * 1024 * 1024;
  // Pre-epoll model: one blocking reader thread per connection.
  bool legacy_readers = false;
  // SO_SNDBUF for accepted sockets; 0 = kernel default.
  int so_sndbuf = 0;
  // On EADDRINUSE, keep retrying bind with backoff for this long.
  std::uint64_t bind_retry_ms = 2000;
  // During drain, a connection whose outbox makes no progress for this
  // long is declared broken so StopAndJoin() terminates.
  std::uint64_t drain_flush_timeout_ms = 30000;
};

struct TransportHooks {
  // Builds the per-connection protocol handler. Required.
  std::function<std::unique_ptr<ProtocolHandler>(Channel* channel)>
      make_handler;
  // Protocol-encoded refusal bytes written (blocking, best-effort) to a
  // connection refused at accept time. Null = close without a frame.
  std::function<std::string(RefusalReason)> refusal_frame;
};

// One client connection (transport-internal; protocols only see Channel).
class Conn : public Channel {
 public:
  enum class FlushResult { kIdle, kWantWrite, kBroken, kDone };

  Conn(Transport* transport, EventLoop* loop, int fd, std::size_t outbox_cap);
  ~Conn() override;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_; }
  ProtocolHandler* handler() { return handler_.get(); }
  void set_handler(std::unique_ptr<ProtocolHandler> handler) {
    handler_ = std::move(handler);
  }

  // Channel interface (see above).
  std::uint64_t ReserveSlot() override;
  void CompleteSlot(std::uint64_t seq, std::string frame) override;
  void AbortReading() override;

  // Nonblocking drain of the outbox. Called only by the owning event loop.
  FlushResult FlushOutbox();

  // Half-closes the read side; the reader (thread or event loop) observes
  // EOF and stops submitting. Queued responses can still be written.
  void ShutdownRead();

  // Called when reading stops (client EOF, framing error, or drain). Once
  // every reserved slot has been answered and flushed, the write side is
  // half-closed so clients reading until EOF terminate promptly.
  void FinishReading();

  bool reading_done() const;

  // True once the connection can be retired: torn down, or fully answered
  // and flushed after EOF.
  bool IsDone() const;

  void MarkBroken();

  // Loop-thread-only accessors (epoll mode).
  bool registered() const { return registered_; }
  void set_registered(bool registered) { registered_ = registered; }
  bool want_write() const { return want_write_; }
  void set_want_write(bool want) { want_write_ = want; }

 private:
  // Legacy inline flush; see the implementation comment in transport.cc.
  void CompleteSlotLegacy(std::uint64_t seq, std::string frame);
  void MarkBrokenLocked();
  void MaybeShutdownWriteLocked();

  Transport* const transport_;
  EventLoop* const loop_;  // Null in legacy mode.
  const int fd_;
  const std::size_t outbox_cap_;
  std::unique_ptr<ProtocolHandler> handler_;

  mutable std::mutex mutex_;
  std::deque<std::optional<std::string>> pending_;
  std::uint64_t base_seq_ = 0;
  std::deque<std::string> outbox_;   // Completed frames awaiting the socket.
  std::size_t outbox_bytes_ = 0;
  std::size_t write_offset_ = 0;     // Into outbox_.front().
  bool reading_done_ = false;
  bool writing_ = false;  // Legacy: a flusher is in send(), mutex released.
  bool broken_ = false;   // A send failed or the outbox overflowed.
  bool done_ = false;     // Epoll: fully answered + flushed after EOF.

  // Loop-thread-only (epoll mode).
  bool registered_ = false;
  bool want_write_ = false;
};

class Transport {
 public:
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_refused = 0;  // max_conns admission limit.
    std::uint64_t outbox_overflows = 0;     // Slow readers disconnected.
  };

  Transport(const TransportOptions& options, TransportHooks hooks);
  ~Transport();
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Binds and listens (resolving an ephemeral port) without serving yet,
  // so the owner can finish recovery work before any byte is read.
  Status Bind();
  // Starts the event-loop threads and the accept thread. Call after Bind().
  Status Serve();
  // Bind() + Serve().
  Status Start();

  // The port actually bound. Valid after Bind().
  int port() const { return port_; }

  // Event-loop threads serving connections (0 under legacy_readers).
  std::size_t event_threads() const { return loops_.size(); }

  // Drain, phase 1: stop accepting and half-close every connection for
  // reading. Readers observe EOF and stop submitting; in-flight responses
  // still flush. Idempotent, returns immediately.
  void BeginShutdown();
  // Drain, phase 2: join the accept thread and (legacy) reader threads and
  // close the listen socket. After this returns, no new request can enter
  // the system — safe to drain the worker pool.
  void JoinReaders();
  // Drain, phase 3: ask every event loop to exit once its connections are
  // retired (flushed + EOF, broken, or past drain_flush_timeout_ms) and
  // join them. Call only after the worker pool is drained: the loops are
  // what flush the final responses.
  void StopAndJoin();

  bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

  Stats stats() const;

 private:
  friend class Conn;

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Conn> conn);  // Legacy reader body.
  void EventLoopRun(EventLoop* loop);
  void HandleReadable(EventLoop* loop, const std::shared_ptr<Conn>& conn);
  void FlushConnection(EventLoop* loop, const std::shared_ptr<Conn>& conn);
  void SweepConnections(EventLoop* loop);
  void CountOutboxOverflow();

  const TransportOptions options_;
  const TransportHooks hooks_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // [0] polled by AcceptLoop.
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> bound_{false};
  std::atomic<std::size_t> live_connections_{0};

  std::thread accept_thread_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::size_t next_loop_ = 0;  // Accept thread only: round-robin assignment.

  // Legacy model state.
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Conn>> connections_;
  std::vector<std::thread> reader_threads_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_TRANSPORT_H_
