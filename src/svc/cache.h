#ifndef ZEROONE_SVC_CACHE_H_
#define ZEROONE_SVC_CACHE_H_

// Byte-bounded LRU cache for query results.
//
// Keys encode (session, session version, semantics command, canonicalized
// arguments, canonicalized query) — see Dispatcher::CacheKey — so a stale
// entry can never be served: any mutation bumps the session version and
// makes old keys unreachable. Mutations additionally erase the session's
// entries eagerly (EraseIf) so dead results stop occupying budget.
//
// Thread-safe; one mutex guards the map and the recency list. The charged
// size of an entry is key + value + a fixed bookkeeping overhead, so a
// cache full of tiny entries cannot blow past the byte budget via
// per-entry allocator costs.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace zeroone {
namespace svc {

class LruCache {
 public:
  // Charged per entry on top of key/value bytes (list node + map slot).
  static constexpr std::size_t kEntryOverheadBytes = 96;

  explicit LruCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}
  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  // On hit copies the value into *value, refreshes recency, and returns
  // true. Counts a hit or a miss either way.
  bool Get(const std::string& key, std::string* value);

  // Inserts or overwrites. Entries larger than the whole capacity are not
  // admitted (counted as an oversized rejection, not an eviction storm).
  void Put(const std::string& key, std::string value);

  // Erases every entry whose key matches the predicate; returns the number
  // of entries removed. Used for eager invalidation of one session's keys.
  std::size_t EraseIf(
      const std::function<bool(std::string_view key)>& predicate);

  void Clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;  // Entries removed by EraseIf/Clear.
    std::uint64_t oversized_rejections = 0;
    std::size_t bytes = 0;
    std::size_t entries = 0;
    std::size_t capacity_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  using EntryList = std::list<Entry>;

  static std::size_t EntryBytes(const Entry& entry) {
    return entry.key.size() + entry.value.size() + kEntryOverheadBytes;
  }

  // Drops least-recently-used entries until bytes_ fits the budget.
  // Caller holds mutex_.
  void EvictToFit();

  const std::size_t capacity_bytes_;
  mutable std::mutex mutex_;
  EntryList entries_;  // Front = most recently used.
  std::unordered_map<std::string_view, EntryList::iterator> index_;
  std::size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_CACHE_H_
