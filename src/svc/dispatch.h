#ifndef ZEROONE_SVC_DISPATCH_H_
#define ZEROONE_SVC_DISPATCH_H_

// Command execution over named sessions, with result caching.
//
// The Dispatcher exposes the zeroone_cli command surface (load / db / query
// / naive / certain / possible / best / bestmu / mu / muk / poly / compare
// / fd / ind / constraints / clear / cond / chase / ra / dlog) as a pure
// request → response function, shared by the TCP server, the serving bench,
// and the tests. Payload text matches the CLI's output byte-for-byte so
// concurrent serving can be validated against sequential evaluation.
//
// Locking: evaluation commands hold the session's shared lock, mutations
// the exclusive lock; see svc/session.h. Caching: successful cacheable
// results are stored under a key that includes the session version (see
// CacheKey); any mutation bumps the version and eagerly erases the
// session's entries.
//
// Deadlines: Execute runs under the calling thread's CancelToken (see
// common/cancel.h). When the token reports cancellation after evaluation,
// the partial result is discarded and a DEADLINE_EXCEEDED response is
// returned; cancelled results are never cached.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "svc/cache.h"
#include "svc/protocol.h"
#include "svc/session.h"
#include "svc/snapshot.h"
#include "svc/wal.h"

namespace zeroone {
namespace svc {

// When a mutation is acknowledged: after its WAL record is written
// (kAsync, survives process death via the page cache) or after the record
// is fsync'd (kFsync, survives power loss).
enum class AckMode { kAsync, kFsync };

class Dispatcher {
 public:
  struct Options {
    std::size_t cache_bytes = 8 * 1024 * 1024;
    // Directory for session snapshots; empty disables persistence (the
    // `save` command then reports ERR and drains do not write).
    std::string snapshot_dir;
    // Per-session write-ahead logging (in snapshot_dir; requires one).
    // Every applied mutation appends one record before it is acknowledged,
    // so acked mutations survive a crash without an explicit `save`.
    bool wal = true;
    AckMode ack_mode = AckMode::kAsync;
    // Fold the log into a snapshot after this many records (0 = never).
    std::uint64_t wal_compact_every = 256;
  };

  explicit Dispatcher(const Options& options);
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // Executes one parsed request to completion (request-line errors are the
  // caller's concern; `request` is assumed well-formed). Thread-safe.
  Response Execute(const Request& request);

  // Execute under a deadline of `deadline_ms` (0 = none) whose clock
  // started at `admitted` — time spent queued counts against it. A request
  // whose deadline expired while queued is answered DEADLINE_EXCEEDED
  // without starting the evaluation; otherwise a CancelToken with the
  // absolute deadline is installed for the call. This is the server's
  // worker-side entry point, shared by the legacy reader and epoll models
  // so both produce byte-identical deadline payloads.
  Response ExecuteAdmitted(const Request& request,
                           std::chrono::steady_clock::time_point admitted,
                           std::uint64_t deadline_ms);

  // The cache key for a cacheable command at one session version:
  //   session \x1f version \x1f command \x1f args \x1f query
  // The current query's canonical ToString() form participates because
  // every evaluation command is implicitly parameterized by it.
  static std::string CacheKey(const Request& request, std::uint64_t version,
                              const std::string& canonical_query);

  LruCache& cache() { return cache_; }
  SessionRegistry& sessions() { return sessions_; }
  // Null when persistence is disabled.
  SnapshotStore* snapshots() { return snapshots_.get(); }
  // Null when write-ahead logging is disabled.
  WalStore* wal() { return wal_.get(); }

  struct RecoveryReport {
    SnapshotStore::LoadReport snapshots;
    std::size_t wal_sessions = 0;         // Sessions with a log on disk.
    std::size_t wal_records_applied = 0;  // Replayed past their snapshot.
    std::size_t wal_records_skipped = 0;  // Already covered by a snapshot.
    // Final-record apply failures (a crash beat the rollback of a command
    // that failed after its append): the unacked record is truncated off.
    std::size_t wal_replay_failed = 0;
    // Mid-log apply failures: replay stops, the failed record and
    // everything after it is quarantined — later records must not apply
    // to a base missing that mutation.
    std::size_t wal_replay_diverged = 0;
    std::size_t wal_truncated_tails = 0;  // Torn tails cut off in place.
    std::size_t wal_quarantined = 0;      // Undecodable spans moved aside.
  };

  // Recovers persistent state: reloads every valid snapshot (quarantining
  // corrupt ones), then replays each session's write-ahead log tail on
  // top. No-op report when persistence is disabled. The server calls this
  // once before accepting traffic.
  RecoveryReport LoadSnapshots();

  // Persists every named session (the drain path), skipping sessions
  // whose version is already persisted. Returns the number of sessions
  // saved; failures are logged to stderr and counted in obs.
  std::size_t SaveAllSessions();

  // Follower mode: while read-only, mutation commands are answered
  // UNAVAILABLE without touching the session (promotion flips this off).
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }
  void SetReadOnly(bool read_only) {
    read_only_.store(read_only, std::memory_order_release);
  }

  // Applies one shipped record to the named session (the follower's
  // replay path): appends it to the local log, runs the command, and
  // adopts the record's version. Records at or below the session's
  // current version are skipped (idempotent re-ship). Bypasses the
  // read-only gate — replication is the one writer on a follower.
  Status ApplyReplicatedRecord(const std::string& session,
                               const WalRecord& record);

  // Installs a full shipped snapshot image (the follower's catch-up path
  // when the primary's log no longer reaches back far enough): decodes,
  // swaps the session state, persists it locally, and resets the local
  // log to the snapshot's version.
  Status InstallSnapshotImage(const std::string& image);

  // Current (name, version) of every named session — the `shiplist`
  // payload and the Replicator's pull cursor source.
  std::vector<std::pair<std::string, std::uint64_t>> SessionVersions();

  // JSON object with cache/session statistics (the `stats` payload).
  std::string StatsJson() const;

 private:
  Response ExecuteSave(const Request& request, SessionState* session);
  Response ExecuteShipList(const Request& request);
  Response ExecuteShip(const Request& request);
  // Folds the session's log into a snapshot once wal_pending reaches the
  // configured threshold. Caller holds the session's exclusive lock.
  void MaybeCompactLocked(const std::string& name, SessionState* session);

  LruCache cache_;
  SessionRegistry sessions_;
  std::unique_ptr<SnapshotStore> snapshots_;
  std::unique_ptr<WalStore> wal_;
  AckMode ack_mode_ = AckMode::kAsync;
  std::uint64_t wal_compact_every_ = 0;
  std::atomic<bool> read_only_{false};
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_DISPATCH_H_
