#ifndef ZEROONE_SVC_DISPATCH_H_
#define ZEROONE_SVC_DISPATCH_H_

// Command execution over named sessions, with result caching.
//
// The Dispatcher exposes the zeroone_cli command surface (load / db / query
// / naive / certain / possible / best / bestmu / mu / muk / poly / compare
// / fd / ind / constraints / clear / cond / chase / ra / dlog) as a pure
// request → response function, shared by the TCP server, the serving bench,
// and the tests. Payload text matches the CLI's output byte-for-byte so
// concurrent serving can be validated against sequential evaluation.
//
// Locking: evaluation commands hold the session's shared lock, mutations
// the exclusive lock; see svc/session.h. Caching: successful cacheable
// results are stored under a key that includes the session version (see
// CacheKey); any mutation bumps the version and eagerly erases the
// session's entries.
//
// Deadlines: Execute runs under the calling thread's CancelToken (see
// common/cancel.h). When the token reports cancellation after evaluation,
// the partial result is discarded and a DEADLINE_EXCEEDED response is
// returned; cancelled results are never cached.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "svc/cache.h"
#include "svc/protocol.h"
#include "svc/session.h"
#include "svc/snapshot.h"

namespace zeroone {
namespace svc {

class Dispatcher {
 public:
  struct Options {
    std::size_t cache_bytes = 8 * 1024 * 1024;
    // Directory for session snapshots; empty disables persistence (the
    // `save` command then reports ERR and drains do not write).
    std::string snapshot_dir;
  };

  explicit Dispatcher(const Options& options);
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // Executes one parsed request to completion (request-line errors are the
  // caller's concern; `request` is assumed well-formed). Thread-safe.
  Response Execute(const Request& request);

  // Execute under a deadline of `deadline_ms` (0 = none) whose clock
  // started at `admitted` — time spent queued counts against it. A request
  // whose deadline expired while queued is answered DEADLINE_EXCEEDED
  // without starting the evaluation; otherwise a CancelToken with the
  // absolute deadline is installed for the call. This is the server's
  // worker-side entry point, shared by the legacy reader and epoll models
  // so both produce byte-identical deadline payloads.
  Response ExecuteAdmitted(const Request& request,
                           std::chrono::steady_clock::time_point admitted,
                           std::uint64_t deadline_ms);

  // The cache key for a cacheable command at one session version:
  //   session \x1f version \x1f command \x1f args \x1f query
  // The current query's canonical ToString() form participates because
  // every evaluation command is implicitly parameterized by it.
  static std::string CacheKey(const Request& request, std::uint64_t version,
                              const std::string& canonical_query);

  LruCache& cache() { return cache_; }
  SessionRegistry& sessions() { return sessions_; }
  // Null when persistence is disabled.
  SnapshotStore* snapshots() { return snapshots_.get(); }

  // Reloads every valid snapshot from the snapshot directory, quarantining
  // corrupt ones (no-op report when persistence is disabled). The server
  // calls this once before accepting traffic.
  SnapshotStore::LoadReport LoadSnapshots();

  // Persists every named session (the drain path). Returns the number of
  // sessions saved; failures are logged to stderr and counted in obs.
  std::size_t SaveAllSessions();

  // JSON object with cache/session statistics (the `stats` payload).
  std::string StatsJson() const;

 private:
  LruCache cache_;
  SessionRegistry sessions_;
  std::unique_ptr<SnapshotStore> snapshots_;
};

}  // namespace svc
}  // namespace zeroone

#endif  // ZEROONE_SVC_DISPATCH_H_
