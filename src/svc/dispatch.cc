#include "svc/dispatch.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <utility>

#include "algebra/ra_parser.h"
#include "common/cancel.h"
#include "common/parse.h"
#include "constraints/fd.h"
#include "constraints/ind.h"
#include "core/comparison.h"
#include "core/conditional.h"
#include "core/measure.h"
#include "core/support.h"
#include "core/support_polynomial.h"
#include "data/io.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "plan/cache.h"
#include "query/eval.h"
#include "query/parser.h"

namespace zeroone {
namespace svc {

namespace {

// Field separator in cache keys; cannot occur in request lines (control
// bytes are rejected by ParseRequestLine) or in Query::ToString output.
constexpr char kKeySep = '\x1f';

// Mirrors the CLI's tuple-list output exactly.
void AppendTuples(std::ostringstream* out, const std::vector<Tuple>& tuples) {
  if (tuples.empty()) {
    *out << "  (none)\n";
    return;
  }
  for (const Tuple& t : tuples) *out << "  " << t.ToString() << "\n";
}

// Commands that evaluate the session query against the session database —
// the ones whose FO plan `@explain=1` can print.
bool IsQueryEvalCommand(const std::string& command) {
  return command == "naive" || command == "certain" ||
         command == "possible" || command == "best" || command == "bestmu" ||
         command == "mu" || command == "muk" || command == "poly" ||
         command == "compare" || command == "cond";
}

Status RequireQuery(const SessionState& session) {
  if (!session.has_query) {
    return Status::Error("no query set (use `query <text>`)");
  }
  return Status::Ok();
}

StatusOr<Tuple> ParseTupleArg(const SessionState& session,
                              const std::string& text) {
  ZO_ASSIGN_OR_RETURN(Tuple tuple, ParseTuple(text));
  if (session.has_query && tuple.arity() != session.query.arity()) {
    return Status::Error("tuple arity ", tuple.arity(),
                         " does not match query arity ",
                         session.query.arity());
  }
  return tuple;
}

// Splits a comma list of numbers, e.g. "0,2" (CLI syntax for fd/ind).
StatusOr<std::vector<std::size_t>> ParsePositions(const std::string& text) {
  std::vector<std::size_t> positions;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) return Status::Error("empty position in '", text, "'");
    std::size_t value = 0;
    for (char c : item) {
      if (c < '0' || c > '9') {
        return Status::Error("bad position list '", text, "'");
      }
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    positions.push_back(value);
  }
  if (positions.empty()) return Status::Error("empty position list");
  return positions;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::Error("cannot open '", path, "'");
  std::stringstream contents;
  contents << file.rdbuf();
  return contents.str();
}

// Same token shape ParseRequestLine enforces for @session=; `ship` args
// re-validate because they name sessions outside the request option.
bool IsValidSessionToken(std::string_view token) {
  if (token.empty() || token.size() > kMaxTokenBytes) return false;
  for (char c : token) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

// One `ship` response carries at most this many record-frame bytes (plus
// one frame of overshoot), keeping the payload well under kMaxPayloadBytes
// so FormatResponse never truncates mid-frame. The overshoot frame is
// itself bounded by kMaxWalRecordBytes (enforced at append time), so the
// worst-case payload provably fits the wire cap:
constexpr std::size_t kShipBatchBytes = 1 << 20;
static_assert(kShipBatchBytes + kMaxWalRecordBytes + 64 <= kMaxPayloadBytes,
              "a full ship batch plus one frame of overshoot must fit one "
              "wire payload, or FormatResponse would truncate mid-frame");

// Runs one command against the session. The caller holds the appropriate
// session lock. Sets *mutated when session state changed (the caller then
// bumps the version and invalidates cache entries).
StatusOr<std::string> RunCommand(SessionState* session,
                                 const std::string& command,
                                 const std::string& args, bool* mutated) {
  std::ostringstream out;
  if (command == "db") {
    ZO_ASSIGN_OR_RETURN(Database parsed, ParseDatabase(args));
    std::size_t added = 0;
    for (const auto& [name, rel] : parsed.relations()) {
      Relation& target = session->db.AddRelation(name, rel.arity());
      target.InsertBatch(rel);
      added += rel.size();
    }
    *mutated = true;
    out << "added " << added << " tuples";
  } else if (command == "load") {
    ZO_ASSIGN_OR_RETURN(std::string contents, ReadFile(args));
    ZO_ASSIGN_OR_RETURN(Database db, ParseDatabase(contents));
    session->db = std::move(db);
    *mutated = true;
    out << "loaded " << session->db.TupleCount() << " tuples";
  } else if (command == "loaddata") {
    // Replay form of `load` (not a wire command): the database text is
    // inline, so WAL recovery and log shipping never read the primary's
    // filesystem. Output matches `load` byte-for-byte.
    ZO_ASSIGN_OR_RETURN(Database db, ParseDatabase(args));
    session->db = std::move(db);
    *mutated = true;
    out << "loaded " << session->db.TupleCount() << " tuples";
  } else if (command == "reset") {
    session->db = Database();
    session->query = Query();
    session->has_query = false;
    session->constraints.clear();
    session->fds.clear();
    *mutated = true;
    out << "reset";
  } else if (command == "show") {
    out << session->db.ToString() << "\n";
  } else if (command == "query") {
    ZO_ASSIGN_OR_RETURN(Query query, ParseQuery(args));
    session->query = std::move(query);
    session->has_query = true;
    *mutated = true;
    out << session->query.ToString();
  } else if (command == "naive") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    AppendTuples(&out, NaiveEvaluate(session->query, session->db));
  } else if (command == "certain") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    AppendTuples(&out, CertainAnswers(session->query, session->db));
  } else if (command == "possible") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    AppendTuples(&out, PossibleAnswers(session->query, session->db));
  } else if (command == "best") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    AppendTuples(&out, BestAnswers(session->query, session->db));
  } else if (command == "bestmu") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    AppendTuples(&out, BestMuAnswers(session->query, session->db));
  } else if (command == "mu") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    ZO_ASSIGN_OR_RETURN(Tuple tuple, ParseTupleArg(*session, args));
    out << "mu = " << MuLimit(session->query, session->db, tuple);
  } else if (command == "muk") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    std::stringstream arg_stream(args);
    std::size_t k = 0;
    arg_stream >> k;
    std::string tuple_text;
    std::getline(arg_stream, tuple_text);
    if (k == 0) return Status::Error("usage: muk <k> <tuple>");
    ZO_ASSIGN_OR_RETURN(Tuple tuple, ParseTupleArg(*session, tuple_text));
    SupportInstance instance =
        MakeSupportInstance(session->query, session->db, tuple);
    if (k < instance.prefix.size()) {
      return Status::Error("k must be at least |C ∪ Const(D)| = ",
                           instance.prefix.size());
    }
    // The sharded parallel counter is bit-identical to MuK (it partitions
    // the same enumeration on the first null) and puts the heaviest single
    // command on the morsel pool under the server's --par-threads budget.
    Rational mu = MuKParallel(session->query, session->db, tuple, k,
                              par::par_threads());
    out << "mu^" << k << " = " << mu.ToString() << " ≈ " << mu.ToDouble();
  } else if (command == "poly") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    ZO_ASSIGN_OR_RETURN(Tuple tuple, ParseTupleArg(*session, args));
    SupportPolynomial poly =
        ComputeSupportPolynomial(session->query, session->db, tuple);
    out << "|Supp^k| = " << poly.count.ToString() << "   (valid for k >= "
        << poly.valid_from << "; |V^k| = "
        << TotalCountPolynomial(session->db).ToString() << ")";
  } else if (command == "compare") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    std::size_t split = args.find(')');
    if (split == std::string::npos) {
      return Status::Error("usage: compare (t1) (t2)");
    }
    ZO_ASSIGN_OR_RETURN(Tuple a,
                        ParseTupleArg(*session, args.substr(0, split + 1)));
    ZO_ASSIGN_OR_RETURN(Tuple b,
                        ParseTupleArg(*session, args.substr(split + 1)));
    bool ab = WeaklyDominated(session->query, session->db, a, b);
    bool ba = WeaklyDominated(session->query, session->db, b, a);
    out << "Supp(a) ⊆ Supp(b): " << (ab ? "yes" : "no")
        << "; Supp(b) ⊆ Supp(a): " << (ba ? "yes" : "no") << "\n";
    if (ab && !ba) out << "a ◁ b (b is the better answer)\n";
    if (ba && !ab) out << "b ◁ a (a is the better answer)\n";
    if (ab && ba) out << "equal support\n";
    if (!ab && !ba) out << "incomparable\n";
  } else if (command == "fd") {
    std::stringstream arg_stream(args);
    std::string relation;
    std::size_t arity = 0;
    std::string lhs_text;
    std::size_t rhs = 0;
    arg_stream >> relation >> arity >> lhs_text >> rhs;
    if (relation.empty() || arity == 0) {
      return Status::Error("usage: fd <R> <arity> <l1,l2,..> <rhs>");
    }
    ZO_ASSIGN_OR_RETURN(std::vector<std::size_t> lhs,
                        ParsePositions(lhs_text));
    if (rhs >= arity) {
      return Status::Error("fd rhs position ", rhs, " out of range for arity ",
                           arity);
    }
    for (std::size_t p : lhs) {
      if (p >= arity) {
        return Status::Error("fd lhs position ", p, " out of range for arity ",
                             arity);
      }
    }
    FunctionalDependency fd(relation, arity, lhs, rhs);
    session->fds.push_back(fd);
    session->constraints.push_back(std::make_shared<FunctionalDependency>(fd));
    *mutated = true;
    out << "added " << fd.ToString();
  } else if (command == "ind") {
    std::stringstream arg_stream(args);
    std::string from, to, from_pos, to_pos;
    std::size_t from_arity = 0, to_arity = 0;
    arg_stream >> from >> from_arity >> from_pos >> to >> to_arity >> to_pos;
    if (from.empty() || to.empty() || from_arity == 0 || to_arity == 0) {
      return Status::Error(
          "usage: ind <R> <arity> <pos,..> <S> <arity> <pos,..>");
    }
    ZO_ASSIGN_OR_RETURN(std::vector<std::size_t> fp,
                        ParsePositions(from_pos));
    ZO_ASSIGN_OR_RETURN(std::vector<std::size_t> tp, ParsePositions(to_pos));
    for (std::size_t p : fp) {
      if (p >= from_arity) {
        return Status::Error("ind position ", p, " out of range for arity ",
                             from_arity);
      }
    }
    for (std::size_t p : tp) {
      if (p >= to_arity) {
        return Status::Error("ind position ", p, " out of range for arity ",
                             to_arity);
      }
    }
    auto ind = std::make_shared<InclusionDependency>(from, from_arity, fp, to,
                                                     to_arity, tp);
    out << "added " << ind->ToString();
    session->constraints.push_back(std::move(ind));
    *mutated = true;
  } else if (command == "constraints") {
    if (session->constraints.empty()) {
      out << "  (none)\n";
    } else {
      for (const ConstraintPtr& c : session->constraints) {
        out << "  " << c->ToString() << "\n";
      }
    }
  } else if (command == "clear") {
    session->constraints.clear();
    session->fds.clear();
    *mutated = true;
    out << "cleared";
  } else if (command == "cond") {
    ZO_RETURN_IF_ERROR(RequireQuery(*session));
    ZO_ASSIGN_OR_RETURN(Tuple tuple, ParseTupleArg(*session, args));
    ConditionalMeasure result = ComputeConditionalMu(
        session->query, session->constraints, session->db, tuple);
    out << "mu(Q|Sigma) = " << result.value.ToString();
    if (!result.sigma_satisfiable) out << "   (Sigma unsatisfiable)";
  } else if (command == "chase") {
    ChaseResult result = ChaseFds(session->fds, session->db);
    if (result.cancelled) {
      // Deadline hit mid-fixpoint: result.database is only half-repaired.
      // Leave session->db untouched and *mutated unset so Execute neither
      // commits it nor bumps the version; Execute's cancellation check then
      // turns this into DEADLINE_EXCEEDED.
      return Status::Error(result.failure_reason);
    }
    if (!result.success) {
      return Status::Error("chase failed: ", result.failure_reason);
    }
    session->db = result.database;
    *mutated = true;
    out << session->db.ToString() << "\n";
  } else if (command == "ra") {
    ZO_ASSIGN_OR_RETURN(RaExprPtr plan,
                        ParseRaExpr(args, session->db.schema()));
    out << plan->ToString() << "\n";
    AppendTuples(&out, plan->Evaluate(session->db));
  } else if (command == "dlog") {
    ZO_ASSIGN_OR_RETURN(std::string contents, ReadFile(args));
    ZO_ASSIGN_OR_RETURN(DatalogProgram program,
                        ParseDatalogProgram(contents));
    out << program.ToString();
    AppendTuples(&out, EvaluateDatalog(program, session->db));
  } else {
    return Status::Error("unknown command '", command, "'");
  }
  return out.str();
}

}  // namespace

Dispatcher::Dispatcher(const Options& options)
    : cache_(options.cache_bytes),
      ack_mode_(options.ack_mode),
      wal_compact_every_(options.wal_compact_every) {
  if (!options.snapshot_dir.empty()) {
    snapshots_ = std::make_unique<SnapshotStore>(options.snapshot_dir);
    // The log shares the snapshot directory; the suffixes are disjoint
    // and LoadAll/ListSessions each skip the other's files.
    if (options.wal) wal_ = std::make_unique<WalStore>(options.snapshot_dir);
  }
}

Dispatcher::RecoveryReport Dispatcher::LoadSnapshots() {
  RecoveryReport report;
  if (snapshots_ != nullptr) report.snapshots = snapshots_->LoadAll(&sessions_);
  if (wal_ == nullptr) return report;
  for (const std::string& name : wal_->ListSessions()) {
    WalStore::ReadReport read;
    StatusOr<std::vector<WalRecord>> records = wal_->ReadAll(name, &read);
    report.wal_truncated_tails += read.truncated_tails;
    report.wal_quarantined += read.quarantined;
    if (!records.ok() || records->empty()) continue;
    ++report.wal_sessions;
    std::shared_ptr<SessionState> session = sessions_.GetOrCreate(name);
    std::unique_lock<std::shared_mutex> lock(session->mutex);
    std::uint64_t pending = 0;
    for (std::size_t i = 0; i < records->size(); ++i) {
      const WalRecord& record = (*records)[i];
      ++pending;  // Every record sits in the log until the next compaction.
      if (record.version <= session->version) {
        // Covered by the snapshot the last compaction (or save) wrote.
        ++report.wal_records_skipped;
        continue;
      }
      bool mutated = false;
      StatusOr<std::string> applied =
          RunCommand(session.get(), record.command, record.args, &mutated);
      if (!applied.ok()) {
        std::fprintf(stderr, "wal: replaying '%s' v%llu '%s' failed: %s\n",
                     name.c_str(),
                     static_cast<unsigned long long>(record.version),
                     record.command.c_str(),
                     applied.status().message().c_str());
        if (i + 1 == records->size()) {
          // Only the log's final record may legitimately fail: the command
          // failed on the original run and the crash beat the rollback
          // truncate. It was never acknowledged — cut it off so the log
          // again holds exactly the acked mutations (and the version it
          // squatted on is free for the next mutation).
          ++report.wal_replay_failed;
          ZO_COUNTER_INC("svc.wal.replay_failed");
          --pending;
          Status cut = wal_->TruncateAt(name, read.offsets[i]);
          if (!cut.ok()) {
            std::fprintf(stderr, "wal: dropping unacked tail of '%s': %s\n",
                         name.c_str(), cut.message().c_str());
          }
          break;
        }
        // A mid-log failure means this state diverged from the logged
        // history — applying the later records to a base missing this
        // mutation would silently fork it further. Stop replay here and
        // quarantine the failed record and everything after it; the
        // session serves the consistent applied prefix.
        ++report.wal_replay_diverged;
        ZO_COUNTER_INC("svc.wal.replay_diverged");
        pending = i;  // Records still in the log once the tail is gone.
        Status aside = wal_->QuarantineFrom(name, read.offsets[i],
                                            applied.status().message());
        if (!aside.ok()) {
          std::fprintf(stderr, "wal: quarantining diverged tail of '%s': %s\n",
                       name.c_str(), aside.message().c_str());
        }
        break;
      }
      session->version = std::max(session->version, record.version);
      ++report.wal_records_applied;
      ZO_COUNTER_INC("svc.wal.replayed");
    }
    session->wal_pending = pending;
  }
  return report;
}

std::size_t Dispatcher::SaveAllSessions() {
  if (snapshots_ == nullptr) return 0;
  Status prepared = snapshots_->Prepare();
  if (!prepared.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", prepared.message().c_str());
    return 0;
  }
  std::size_t saved = 0;
  for (const std::string& name : sessions_.Names()) {
    std::shared_ptr<SessionState> session = sessions_.GetOrCreate(name);
    std::shared_lock<std::shared_mutex> lock(session->mutex);
    if (session->persisted_version.load(std::memory_order_acquire) ==
        session->version) {
      ZO_COUNTER_INC("svc.snapshot.save_skipped");
      continue;
    }
    Status status = snapshots_->Save(name, *session);
    if (status.ok()) {
      session->persisted_version.store(session->version,
                                       std::memory_order_release);
      if (wal_ != nullptr) {
        // Clean-shutdown compaction: the snapshot now covers every log
        // record, so the next start replays nothing.
        Status reset = wal_->Reset(name, session->version);
        if (!reset.ok()) {
          std::fprintf(stderr, "wal: resetting '%s' on drain failed: %s\n",
                       name.c_str(), reset.message().c_str());
        }
      }
      ++saved;
    } else {
      ZO_COUNTER_INC("svc.snapshot.save_failed");
      std::fprintf(stderr, "snapshot: saving '%s' failed: %s\n",
                   name.c_str(), status.message().c_str());
    }
  }
  return saved;
}

void Dispatcher::MaybeCompactLocked(const std::string& name,
                                    SessionState* session) {
  if (snapshots_ == nullptr || wal_ == nullptr || wal_compact_every_ == 0) {
    return;
  }
  if (session->wal_pending < wal_compact_every_) return;
  // Reset the counter up front so a failed compaction retries only after
  // another full window, not on every subsequent mutation.
  session->wal_pending = 0;
  Status prepared = snapshots_->Prepare();
  Status saved =
      prepared.ok() ? snapshots_->Save(name, *session) : prepared;
  if (!saved.ok()) {
    ZO_COUNTER_INC("svc.wal.compact_failed");
    std::fprintf(stderr, "wal: compacting '%s' failed at snapshot: %s\n",
                 name.c_str(), saved.message().c_str());
    return;
  }
  session->persisted_version.store(session->version,
                                   std::memory_order_release);
  Status reset = wal_->Reset(name, session->version);
  if (!reset.ok()) {
    // The snapshot landed, so the stale log is merely redundant: replay
    // skips records at or below the snapshot version.
    ZO_COUNTER_INC("svc.wal.compact_failed");
    std::fprintf(stderr, "wal: compacting '%s' failed at log reset: %s\n",
                 name.c_str(), reset.message().c_str());
    return;
  }
  ZO_COUNTER_INC("svc.wal.compactions");
}

Status Dispatcher::ApplyReplicatedRecord(const std::string& name,
                                         const WalRecord& record) {
  if (!IsValidSessionToken(name)) {
    return Status::Error("bad session token '", name, "'");
  }
  std::shared_ptr<SessionState> session = sessions_.GetOrCreate(name);
  std::unique_lock<std::shared_mutex> lock(session->mutex);
  if (record.version <= session->version) {
    ZO_COUNTER_INC("svc.ship.records_skipped");
    return Status::Ok();  // Re-shipped record; applying again would fork.
  }
  std::uint64_t wal_before = 0;
  bool wal_appended = false;
  if (wal_ != nullptr) {
    ZO_RETURN_IF_ERROR(wal_->Prepare());
    // Log shipped records like local mutations (keeping the primary's
    // version numbers), so a follower crash recovers to its cursor.
    ZO_ASSIGN_OR_RETURN(
        wal_before,
        wal_->Append(name, record, ack_mode_ == AckMode::kFsync));
    wal_appended = true;
  }
  bool mutated = false;
  StatusOr<std::string> applied =
      RunCommand(session.get(), record.command, record.args, &mutated);
  if (!applied.ok()) {
    if (wal_appended) wal_->TruncateTo(name, wal_before);
    ZO_COUNTER_INC("svc.ship.apply_failed");
    return Status::Error("applying shipped '", record.command, "' v",
                         record.version, " failed: ",
                         applied.status().message());
  }
  session->version = record.version;
  const std::string prefix = StrCat(name, kKeySep);
  cache_.EraseIf([&prefix](std::string_view key) {
    return key.substr(0, prefix.size()) == prefix;
  });
  if (wal_appended) {
    ++session->wal_pending;
    MaybeCompactLocked(name, session.get());
  }
  ZO_COUNTER_INC("svc.ship.records_applied");
  return Status::Ok();
}

Status Dispatcher::InstallSnapshotImage(const std::string& image) {
  std::string name;
  SessionState loaded;
  ZO_RETURN_IF_ERROR(DecodeSnapshot(image, &name, &loaded));
  if (!IsValidSessionToken(name)) {
    return Status::Error("bad session token '", name, "'");
  }
  std::shared_ptr<SessionState> session = sessions_.GetOrCreate(name);
  std::unique_lock<std::shared_mutex> lock(session->mutex);
  if (loaded.version < session->version) {
    return Status::Error("stale snapshot v", loaded.version, " for '", name,
                         "' already at v", session->version);
  }
  session->version = loaded.version;
  session->db = std::move(loaded.db);
  session->query = std::move(loaded.query);
  session->has_query = loaded.has_query;
  session->constraints = std::move(loaded.constraints);
  session->fds = std::move(loaded.fds);
  session->wal_pending = 0;
  const std::string prefix = StrCat(name, kKeySep);
  cache_.EraseIf([&prefix](std::string_view key) {
    return key.substr(0, prefix.size()) == prefix;
  });
  // Persist the image locally so a follower crash resumes from here
  // instead of re-pulling the full state.
  if (snapshots_ != nullptr) {
    Status prepared = snapshots_->Prepare();
    Status saved =
        prepared.ok() ? snapshots_->Save(name, *session) : prepared;
    if (saved.ok()) {
      session->persisted_version.store(session->version,
                                       std::memory_order_release);
      if (wal_ != nullptr) {
        Status reset = wal_->Reset(name, session->version);
        if (!reset.ok()) {
          std::fprintf(stderr, "wal: resetting '%s' after snapshot install "
                               "failed: %s\n",
                       name.c_str(), reset.message().c_str());
        }
      }
    } else {
      ZO_COUNTER_INC("svc.snapshot.save_failed");
      std::fprintf(stderr, "snapshot: persisting installed '%s' failed: %s\n",
                   name.c_str(), saved.message().c_str());
    }
  }
  ZO_COUNTER_INC("svc.ship.snapshots_installed");
  return Status::Ok();
}

std::vector<std::pair<std::string, std::uint64_t>>
Dispatcher::SessionVersions() {
  std::vector<std::pair<std::string, std::uint64_t>> versions;
  for (const std::string& name : sessions_.Names()) {
    std::shared_ptr<SessionState> session = sessions_.GetOrCreate(name);
    std::shared_lock<std::shared_mutex> lock(session->mutex);
    versions.emplace_back(name, session->version);
  }
  return versions;
}

std::string Dispatcher::CacheKey(const Request& request,
                                 std::uint64_t version,
                                 const std::string& canonical_query) {
  return StrCat(request.session, kKeySep, version, kKeySep, request.command,
                kKeySep, request.args, kKeySep, canonical_query);
}

Response Dispatcher::ExecuteAdmitted(
    const Request& request, std::chrono::steady_clock::time_point admitted,
    std::uint64_t deadline_ms) {
  CancelToken token;
  if (deadline_ms != 0) {
    // The deadline clock starts at admission: time spent queued counts.
    token.SetDeadline(admitted + std::chrono::milliseconds(deadline_ms));
  }
  ScopedCancelToken scoped(&token);
  if (token.cancelled()) {
    // Expired while queued; don't start the evaluation at all.
    ZO_COUNTER_INC("svc.requests.deadline_exceeded");
    return Response{WireStatus::kDeadlineExceeded, request.id,
                    StrCat("deadline expired after ", deadline_ms,
                           "ms in queue; '", request.command,
                           "' not started")};
  }
  return Execute(request);
}

Response Dispatcher::Execute(const Request& request) {
  ZO_TRACE_SPAN("svc.execute");
  Response response;
  response.id = request.id;

  if (request.command == "ping") {
    response.payload = "pong";
    return response;
  }
  if (request.command == "stats") {
    response.payload = StatsJson();
    return response;
  }

  if (request.command == "shiplist") return ExecuteShipList(request);
  if (request.command == "ship") return ExecuteShip(request);

  std::shared_ptr<SessionState> session = sessions_.GetOrCreate(request.session);
  if (request.command == "save") return ExecuteSave(request, session.get());
  if (request.explain) {
    // @explain=1: answer with the plan the evaluation would run, without
    // executing it. Never reads or fills the result cache — the point is
    // to see the plan for the live session state.
    std::shared_lock<std::shared_mutex> lock(session->mutex);
    if (IsQueryEvalCommand(request.command)) {
      Status has_query = RequireQuery(*session);
      if (!has_query.ok()) {
        response.status = WireStatus::kErr;
        response.payload = has_query.message();
        return response;
      }
      response.payload = ExplainQueryPlan(session->query, session->db);
      return response;
    }
    if (request.command == "dlog") {
      StatusOr<std::string> contents = ReadFile(request.args);
      StatusOr<DatalogProgram> program =
          contents.ok() ? ParseDatalogProgram(contents.value())
                        : StatusOr<DatalogProgram>(contents.status());
      if (!program.ok()) {
        response.status = WireStatus::kErr;
        response.payload = program.status().message();
        return response;
      }
      response.payload = ExplainDatalogPlan(program.value(), session->db);
      return response;
    }
    response.status = WireStatus::kErr;
    response.payload = StrCat("@explain=1 is not supported for '",
                              request.command, "'");
    return response;
  }
  CancelToken* token = CurrentCancelToken();
  bool mutation = IsMutationCommand(request.command);
  bool cacheable = !request.no_cache && !mutation &&
                   IsCacheableCommand(request.command);

  std::string cache_key;
  StatusOr<std::string> result = std::string();
  bool mutated = false;
  if (mutation) {
    if (read_only()) {
      // Warm standby: replication is the only writer until promotion.
      // UNAVAILABLE keeps the retry contract — nothing was applied.
      ZO_COUNTER_INC("svc.requests.read_only_rejected");
      response.status = WireStatus::kUnavailable;
      response.payload = StrCat("read-only follower: '", request.command,
                                "' not applied; retry after failover");
      return response;
    }
    if (ZO_FAULT_POINT("svc.session.mutate.fail")) {
      // Simulated allocation failure before the mutation starts: the
      // session is untouched, so the client may retry freely.
      ZO_COUNTER_INC("svc.requests.injected_unavailable");
      response.status = WireStatus::kUnavailable;
      response.payload =
          StrCat("injected fault: svc.session.mutate.fail before '",
                 request.command, "'");
      return response;
    }
    std::unique_lock<std::shared_mutex> lock(session->mutex);
    std::string command = request.command;
    std::string args = request.args;
    if (wal_ != nullptr && command == "load") {
      // Log the file's contents, not its path: replay and shipped
      // replicas must not depend on the primary's filesystem.
      StatusOr<std::string> contents = ReadFile(args);
      if (!contents.ok()) {
        ZO_COUNTER_INC("svc.requests.error");
        response.status = WireStatus::kErr;
        response.payload = contents.status().message();
        return response;
      }
      command = "loaddata";
      args = std::move(contents).value();
    }
    if (wal_ != nullptr) {
      // A record frame above kMaxWalRecordBytes can neither be logged nor
      // shipped to a follower inside one wire payload. Only `load` can
      // produce one (request lines are capped far below it); refuse it
      // with a definitive error — a retry cannot shrink the file.
      const std::size_t payload_bytes =
          command.size() + (args.empty() ? 0 : args.size() + 1);
      if (payload_bytes + kMaxWalHeaderBytes + 1 > kMaxWalRecordBytes) {
        ZO_COUNTER_INC("svc.requests.wal_oversized");
        response.status = WireStatus::kErr;
        response.payload = StrCat(
            "'", request.command, "' payload of ", payload_bytes,
            " bytes exceeds the ", kMaxWalRecordBytes,
            "-byte write-ahead log record cap; split the load or start "
            "the server with --wal=off");
        return response;
      }
    }
    std::uint64_t wal_before = 0;
    bool wal_appended = false;
    if (wal_ != nullptr) {
      // Write-ahead: the record is on disk (fsync'd in fsync ack mode)
      // before the command runs, so an OK response implies durability.
      Status prepared = wal_->Prepare();
      StatusOr<std::uint64_t> appended =
          prepared.ok()
              ? wal_->Append(request.session,
                             WalRecord{session->version + 1, command, args},
                             ack_mode_ == AckMode::kFsync)
              : StatusOr<std::uint64_t>(prepared);
      if (!appended.ok()) {
        ZO_COUNTER_INC("svc.requests.wal_unavailable");
        response.status = WireStatus::kUnavailable;
        response.payload = appended.status().message();
        return response;
      }
      wal_before = *appended;
      wal_appended = true;
    }
    result = RunCommand(session.get(), command, args, &mutated);
    if (mutated) {
      ++session->version;
      // Eager invalidation: results computed against older versions are
      // already unreachable (the version is in the key); erasing them
      // frees their bytes for live entries.
      const std::string prefix = StrCat(request.session, kKeySep);
      cache_.EraseIf([&prefix](std::string_view key) {
        return key.substr(0, prefix.size()) == prefix;
      });
      if (wal_appended) {
        ++session->wal_pending;
        MaybeCompactLocked(request.session, session.get());
      }
    } else if (wal_appended) {
      // The command failed (or was deadline-cancelled) and changed
      // nothing: roll its record back out so the log holds exactly the
      // applied mutations.
      wal_->TruncateTo(request.session, wal_before);
    }
  } else {
    std::shared_lock<std::shared_mutex> lock(session->mutex);
    // Compiled plans for this read are cached under (session, version):
    // any mutation bumps the version, so a stale plan is unreachable —
    // the same invalidation discipline as the result cache below.
    plan::ScopedPlanScope plan_scope(
        StrCat(request.session, kKeySep, session->version));
    if (cacheable) {
      cache_key = CacheKey(request, session->version,
                           session->has_query ? session->query.ToString()
                                              : std::string());
      std::string cached;
      if (cache_.Get(cache_key, &cached)) {
        response.payload = std::move(cached);
        return response;
      }
    }
    result = RunCommand(session.get(), request.command, request.args,
                        &mutated);
    // Publish while still holding the shared lock: mutations take the
    // exclusive lock, so no version bump + EraseIf can slip in between
    // computing the result and inserting it (which would re-insert an
    // unreachable entry that wastes cache budget until LRU eviction).
    if (cacheable && result.ok() &&
        (token == nullptr || !token->cancelled())) {
      cache_.Put(cache_key, result.value());
    }
  }

  if (token != nullptr && token->cancelled()) {
    // The evaluation was abandoned mid-enumeration; whatever RunCommand
    // returned is partial garbage. Report the partial failure explicitly.
    ZO_COUNTER_INC("svc.requests.deadline_exceeded");
    response.status = WireStatus::kDeadlineExceeded;
    response.payload = StrCat("deadline exceeded during '", request.command,
                              "'; partial result discarded");
    return response;
  }

  if (!result.ok()) {
    ZO_COUNTER_INC("svc.requests.error");
    response.status = WireStatus::kErr;
    response.payload = result.status().message();
    return response;
  }
  response.payload = std::move(result).value();
  ZO_COUNTER_INC("svc.requests.ok");
  return response;
}

Response Dispatcher::ExecuteSave(const Request& request,
                                 SessionState* session) {
  // Persist the session as it stands. Runs under the shared lock, so the
  // snapshot is a consistent (state, version) pair; a failed save changed
  // nothing server-side and is answered UNAVAILABLE so retrying is safe.
  Response response;
  response.id = request.id;
  if (snapshots_ == nullptr) {
    response.status = WireStatus::kErr;
    response.payload = "snapshots disabled (start with --snapshot-dir)";
    return response;
  }
  std::shared_lock<std::shared_mutex> lock(session->mutex);
  if (session->persisted_version.load(std::memory_order_acquire) ==
      session->version) {
    // Nothing changed since the last persisted snapshot: answer without
    // rewriting the file (byte-identical payload to a real save).
    ZO_COUNTER_INC("svc.snapshot.save_skipped");
    response.payload =
        StrCat("saved ", request.session, " v", session->version);
    return response;
  }
  Status prepared = snapshots_->Prepare();
  Status saved = prepared.ok() ? snapshots_->Save(request.session, *session)
                               : prepared;
  if (!saved.ok()) {
    ZO_COUNTER_INC("svc.snapshot.save_failed");
    response.status = WireStatus::kUnavailable;
    response.payload = saved.message();
    return response;
  }
  session->persisted_version.store(session->version,
                                   std::memory_order_release);
  response.payload = StrCat("saved ", request.session, " v", session->version);
  return response;
}

Response Dispatcher::ExecuteShipList(const Request& request) {
  Response response;
  response.id = request.id;
  if (wal_ == nullptr) {
    response.status = WireStatus::kErr;
    response.payload = "log shipping disabled (start with --snapshot-dir)";
    return response;
  }
  std::ostringstream out;
  for (const auto& [name, version] : SessionVersions()) {
    out << name << ' ' << version << '\n';
  }
  response.payload = out.str();
  return response;
}

Response Dispatcher::ExecuteShip(const Request& request) {
  Response response;
  response.id = request.id;
  if (wal_ == nullptr) {
    response.status = WireStatus::kErr;
    response.payload = "log shipping disabled (start with --snapshot-dir)";
    return response;
  }
  const std::size_t space = request.args.find(' ');
  if (space == std::string::npos) {
    response.status = WireStatus::kErr;
    response.payload = "usage: ship <session> <from_version>";
    return response;
  }
  const std::string name = request.args.substr(0, space);
  StatusOr<std::uint64_t> from = ParseUint64(request.args.substr(space + 1));
  if (!IsValidSessionToken(name) || !from.ok()) {
    response.status = WireStatus::kErr;
    response.payload = "usage: ship <session> <from_version>";
    return response;
  }
  if (ZO_FAULT_POINT("ship.send.fail")) {
    // Simulated shipping failure before any state is read: the follower
    // retries from the same cursor on its next pull.
    ZO_COUNTER_INC("svc.requests.injected_unavailable");
    response.status = WireStatus::kUnavailable;
    response.payload = "injected fault: ship.send.fail during 'ship'";
    return response;
  }
  std::shared_ptr<SessionState> session = sessions_.GetOrCreate(name);
  std::shared_lock<std::shared_mutex> lock(session->mutex);
  if (*from >= session->version) {
    response.payload = "RECS 0 0\n";  // Follower is caught up.
    return response;
  }
  if (wal_->Exists(name)) {
    // The shared session lock excludes mutations, so the log is stable
    // while we read it.
    WalStore::ReadReport read;
    StatusOr<std::vector<WalRecord>> records = wal_->ReadAll(name, &read);
    if (records.ok() && *from >= read.base_version) {
      std::string frames;
      std::size_t count = 0;
      bool more = false;
      bool oversized = false;
      for (const WalRecord& record : *records) {
        if (record.version <= *from) continue;
        if (frames.size() >= kShipBatchBytes) {
          more = true;  // The follower pulls again immediately.
          break;
        }
        std::string frame = EncodeWalRecord(record);
        if (frame.size() > kMaxWalRecordBytes) {
          // A legacy record from before the append-time cap: shipping it
          // would overflow the wire payload and truncate mid-frame. Fall
          // back to the snapshot path below, which covers it.
          ZO_COUNTER_INC("svc.ship.oversized_records");
          oversized = true;
          break;
        }
        frames += frame;
        ++count;
      }
      if (!oversized) {
        response.payload = StrCat("RECS ", count, " ", more ? 1 : 0, "\n");
        response.payload += frames;
        ZO_COUNTER_INC("svc.ship.batches");
        return response;
      }
    }
  }
  // The log no longer reaches back to the follower's cursor (compacted
  // away, or the session predates its log): ship the full state.
  StatusOr<std::string> image = EncodeSnapshot(name, *session);
  if (!image.ok()) {
    response.status = WireStatus::kErr;
    response.payload = image.status().message();
    return response;
  }
  if (image->size() > kMaxPayloadBytes - 64) {
    response.status = WireStatus::kErr;
    response.payload = StrCat("session '", name, "' snapshot of ",
                              image->size(), " bytes is too large to ship");
    return response;
  }
  response.payload = StrCat("SNAP\n", *image);
  ZO_COUNTER_INC("svc.ship.snapshots");
  return response;
}

std::string Dispatcher::StatsJson() const {
  LruCache::Stats cache = cache_.stats();
  std::ostringstream out;
  out << "{\"cache\": {\"hits\": " << cache.hits
      << ", \"misses\": " << cache.misses
      << ", \"insertions\": " << cache.insertions
      << ", \"evictions\": " << cache.evictions
      << ", \"invalidations\": " << cache.invalidations
      << ", \"oversized_rejections\": " << cache.oversized_rejections
      << ", \"bytes\": " << cache.bytes
      << ", \"entries\": " << cache.entries
      << ", \"capacity_bytes\": " << cache.capacity_bytes << "}"
      << ", \"sessions\": " << sessions_.size()
      << ", \"read_only\": " << (read_only() ? "true" : "false") << "}";
  return out.str();
}

}  // namespace svc
}  // namespace zeroone
