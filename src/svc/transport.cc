#include "svc/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace zeroone {
namespace svc {

namespace {

// Writes all of `data` to a *blocking* `fd`, ignoring SIGPIPE (the peer may
// have gone). Used by the legacy reader model and for one-shot refusal
// frames on freshly accepted sockets. Returns false when the peer closed or
// the send timed out (SO_SNDTIMEO): a frame may then have been written
// partially, so the stream is desynced and the caller must stop writing to
// this connection entirely.
bool WriteAll(int fd, std::string_view data) {
  if (ZO_FAULT_POINT("svc.send.partial")) {
    // Simulated torn send: half a frame leaves the socket, then the
    // "connection" fails. The caller must latch the stream broken, exactly
    // as for a real partial send.
    if (data.size() > 1) {
      (void)::send(fd, data.data(), data.size() / 2, MSG_NOSIGNAL);
    }
    return false;
  }
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// One event-loop shard: an epoll instance, a self-pipe for cross-thread
// wakeups (worker completions, shutdown — a thread parked in epoll_wait
// notices nothing else), and the connections assigned to it. Mutex-guarded
// fields are the cross-thread mailbox; the rest belongs to the loop thread.
struct EventLoop {
  int epoll_fd = -1;
  int wake[2] = {-1, -1};  // [0] registered in epoll with data.ptr == null.
  std::thread thread;

  std::mutex mutex;
  std::vector<std::shared_ptr<Conn>> incoming;     // Accepted conns.
  std::vector<std::shared_ptr<Conn>> flush_queue;  // Outbox gained data.
  bool shutdown_reads = false;  // Drain: half-close every connection.
  bool stop_when_idle = false;  // Drain: exit once every conn is retired.
  bool wake_pending = false;    // Coalesces self-pipe bytes.

  // Loop-thread-only state.
  std::vector<std::shared_ptr<Conn>> conns;
  bool shut_reads_done = false;
  bool drain_deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline;

  ~EventLoop() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake[0] >= 0) ::close(wake[0]);
    if (wake[1] >= 0) ::close(wake[1]);
  }

  // Caller holds `mutex`.
  void WakeLocked() {
    if (wake_pending) return;
    wake_pending = true;
    ZO_COUNTER_INC("svc.epoll.wakeups");
    char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake[1], &byte, 1);
  }

  void NotifyFlush(std::shared_ptr<Conn> conn) {
    std::lock_guard<std::mutex> lock(mutex);
    flush_queue.push_back(std::move(conn));
    WakeLocked();
  }
};

// ---------------------------------------------------------------------------
// Conn
//
// Responses are delivered in request-arrival order: the protocol handler
// assigns each request a slot in `pending_`, workers fill slots out of
// order, and whoever fills the front moves the longest completed prefix
// onward.
//
// Epoll mode (loop_ != nullptr): completed frames go into the bounded
// outbox_ and the owning event loop is woken to flush them nonblockingly —
// workers never touch the socket. A client that stops reading grows the
// outbox past its cap, which latches broken_ and shuts the socket down.
//
// Legacy mode (loop_ == nullptr): whoever completes the front flushes it to
// the (blocking) socket directly; `writing_` serializes flushers, and a
// send timeout (SO_SNDTIMEO) bounds slow readers.

Conn::Conn(Transport* transport, EventLoop* loop, int fd,
           std::size_t outbox_cap)
    : transport_(transport), loop_(loop), fd_(fd), outbox_cap_(outbox_cap) {
  transport_->live_connections_.fetch_add(1, std::memory_order_relaxed);
}

Conn::~Conn() {
  transport_->live_connections_.fetch_sub(1, std::memory_order_relaxed);
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t Conn::ReserveSlot() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.emplace_back();
  return base_seq_ + pending_.size() - 1;
}

void Conn::CompleteSlot(std::uint64_t seq, std::string frame) {
  if (loop_ == nullptr) {
    CompleteSlotLegacy(seq, std::move(frame));
    return;
  }
  bool notify = false;
  bool overflowed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_[static_cast<std::size_t>(seq - base_seq_)] = std::move(frame);
    while (!pending_.empty() && pending_.front().has_value()) {
      std::string next = std::move(*pending_.front());
      pending_.pop_front();
      ++base_seq_;
      if (broken_) continue;  // Discard: the stream is already torn down.
      outbox_bytes_ += next.size();
      ZO_COUNTER_ADD("svc.server.outbox_bytes_enqueued", next.size());
      outbox_.push_back(std::move(next));
      notify = true;
      if (outbox_bytes_ > outbox_cap_) {
        // Backpressure contract (docs/serving.md): a client that stops
        // reading costs one bounded buffer, then gets disconnected.
        MarkBrokenLocked();
        overflowed = true;
      }
    }
  }
  if (overflowed) {
    ZO_COUNTER_INC("svc.server.outbox_overflows");
    transport_->CountOutboxOverflow();
  }
  if (notify) {
    loop_->NotifyFlush(std::static_pointer_cast<Conn>(shared_from_this()));
  }
}

Conn::FlushResult Conn::FlushOutbox() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (broken_) return FlushResult::kBroken;
  while (!outbox_.empty()) {
    const std::string& front = outbox_.front();
    if (ZO_FAULT_POINT("svc.send.partial")) {
      // Same torn-send contract as WriteAll's site: half the remaining
      // frame escapes, then the connection is latched broken.
      std::size_t remaining = front.size() - write_offset_;
      if (remaining > 1) {
        (void)::send(fd_, front.data() + write_offset_, remaining / 2,
                     MSG_NOSIGNAL | MSG_DONTWAIT);
      }
      MarkBrokenLocked();
      return FlushResult::kBroken;
    }
    if (ZO_FAULT_POINT("svc.epoll.write.fail")) {
      // Simulated clean write failure (EPIPE-style): nothing further may
      // be written, tear the connection down.
      ZO_COUNTER_INC("svc.server.injected_epoll_write_fails");
      MarkBrokenLocked();
      return FlushResult::kBroken;
    }
    ssize_t n = ::send(fd_, front.data() + write_offset_,
                       front.size() - write_offset_,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      ZO_COUNTER_ADD("svc.server.outbox_bytes_flushed",
                     static_cast<std::uint64_t>(n));
      write_offset_ += static_cast<std::size_t>(n);
      outbox_bytes_ -= static_cast<std::size_t>(n);
      if (write_offset_ == front.size()) {
        outbox_.pop_front();
        write_offset_ = 0;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return FlushResult::kWantWrite;
    }
    // Peer closed or reset mid-frame: the framing is desynced for good.
    MarkBrokenLocked();
    return FlushResult::kBroken;
  }
  MaybeShutdownWriteLocked();
  return done_ ? FlushResult::kDone : FlushResult::kIdle;
}

void Conn::ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

void Conn::AbortReading() {
  ::shutdown(fd_, SHUT_RD);
  FinishReading();
}

void Conn::FinishReading() {
  std::lock_guard<std::mutex> lock(mutex_);
  reading_done_ = true;
  MaybeShutdownWriteLocked();
}

bool Conn::reading_done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reading_done_;
}

bool Conn::IsDone() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return broken_ || done_;
}

void Conn::MarkBroken() {
  std::lock_guard<std::mutex> lock(mutex_);
  MarkBrokenLocked();
}

// Legacy inline flush: socket writes happen with the mutex released so a
// client that stops reading blocks only the one flushing thread in
// send(), not every worker finishing a request for this connection (nor
// the reader in ReserveSlot). `writing_` serializes flushers; whoever
// holds it keeps draining frames completed by others in the meantime.
void Conn::CompleteSlotLegacy(std::uint64_t seq, std::string frame) {
  std::unique_lock<std::mutex> lock(mutex_);
  pending_[static_cast<std::size_t>(seq - base_seq_)] = std::move(frame);
  if (writing_) return;  // The active flusher will pick this frame up.
  writing_ = true;
  while (!pending_.empty() && pending_.front().has_value()) {
    std::string next = std::move(*pending_.front());
    pending_.pop_front();
    ++base_seq_;
    if (broken_) continue;  // Discard: the stream is already desynced.
    lock.unlock();
    bool ok = WriteAll(fd_, next);
    lock.lock();
    if (!ok) {
      // A partial or timed-out send leaves the framing desynced; writing
      // later frames would feed the client garbage. Tear the connection
      // down instead so it sees a broken socket.
      broken_ = true;
      ::shutdown(fd_, SHUT_RDWR);
    }
  }
  writing_ = false;
  MaybeShutdownWriteLocked();
}

void Conn::MarkBrokenLocked() {
  if (broken_) return;
  broken_ = true;
  outbox_.clear();
  outbox_bytes_ = 0;
  write_offset_ = 0;
  ::shutdown(fd_, SHUT_RDWR);
}

void Conn::MaybeShutdownWriteLocked() {
  if (loop_ != nullptr) {
    if (reading_done_ && pending_.empty() && outbox_.empty() && !broken_ &&
        !done_) {
      ::shutdown(fd_, SHUT_WR);
      done_ = true;
    }
    return;
  }
  // !writing_: a flusher may be mid-send() with mutex_ released and
  // pending_ momentarily empty; it re-runs this check when it finishes.
  if (reading_done_ && pending_.empty() && !writing_) {
    ::shutdown(fd_, SHUT_WR);
  }
}

// ---------------------------------------------------------------------------
// Transport

Transport::Transport(const TransportOptions& options, TransportHooks hooks)
    : options_(options), hooks_(std::move(hooks)) {}

Transport::~Transport() {
  BeginShutdown();
  JoinReaders();
  StopAndJoin();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status Transport::Bind() {
  if (bound_.exchange(true)) {
    return Status::Error("transport already bound");
  }
  if (::pipe(wake_pipe_) != 0) {
    return Status::Error("pipe failed: ", std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error("socket failed: ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::Error("bad listen address '", options_.host, "'");
  }
  // EADDRINUSE gets retried with backoff for a bounded window: after a
  // SIGKILL the predecessor's socket may linger briefly even with
  // SO_REUSEADDR (e.g. an orphaned process still closing), and restart
  // supervisors should not flake on that.
  const auto bind_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.bind_retry_ms);
  std::uint64_t backoff_ms = 10;
  for (;;) {
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) == 0) {
      break;
    }
    if (errno != EADDRINUSE ||
        std::chrono::steady_clock::now() >= bind_deadline) {
      return Status::Error("bind to ", options_.host, ":", options_.port,
                           " failed: ", std::strerror(errno));
    }
    ZO_COUNTER_INC("svc.server.bind_retries");
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, 200);
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Error("listen failed: ", std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::Ok();
}

Status Transport::Serve() {
  if (!options_.legacy_readers) {
    std::size_t count = options_.event_threads;
    if (count == 0) {
      unsigned hw = std::thread::hardware_concurrency();
      count = std::min<std::size_t>(4, hw == 0 ? 1 : hw);
    }
    count = std::max<std::size_t>(1, count);
    for (std::size_t i = 0; i < count; ++i) {
      auto loop = std::make_unique<EventLoop>();
      loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      if (loop->epoll_fd < 0) {
        return Status::Error("epoll_create1 failed: ", std::strerror(errno));
      }
      if (::pipe(loop->wake) != 0) {
        return Status::Error("pipe failed: ", std::strerror(errno));
      }
      SetNonBlocking(loop->wake[0]);
      SetNonBlocking(loop->wake[1]);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = nullptr;  // Sentinel: the loop's own wake pipe.
      if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake[0], &ev) !=
          0) {
        return Status::Error("epoll_ctl failed: ", std::strerror(errno));
      }
      loops_.push_back(std::move(loop));
    }
    for (auto& loop : loops_) {
      EventLoop* raw = loop.get();
      raw->thread = std::thread([this, raw] { EventLoopRun(raw); });
    }
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

Status Transport::Start() {
  Status bound = Bind();
  if (!bound.ok()) return bound;
  return Serve();
}

void Transport::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, 200);
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (rc <= 0) continue;
    if ((fds[1].revents & POLLIN) != 0) return;  // Woken for shutdown.
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    if (ZO_FAULT_POINT("svc.accept.drop")) {
      // Simulated accept-time failure: the connection dies before the
      // client sees a single byte, as if the server crashed right here.
      ZO_COUNTER_INC("svc.server.injected_accept_drops");
      ::close(client);
      continue;
    }
    if (options_.max_conns != 0 &&
        live_connections_.load(std::memory_order_relaxed) >=
            options_.max_conns) {
      // Admission control at the connection level: refuse explicitly
      // instead of letting an unbounded connection count exhaust memory.
      ZO_COUNTER_INC("svc.server.connections_refused");
      if (hooks_.refusal_frame != nullptr) {
        WriteAll(client, hooks_.refusal_frame(RefusalReason::kMaxConns));
      }
      {
        // Count before close: a client that saw EOF must already see the
        // refusal in stats() (svc_test polls exactly that ordering).
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections_refused;
      }
      ::close(client);
      continue;
    }
    if (options_.so_sndbuf > 0) {
      ::setsockopt(client, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    ZO_COUNTER_INC("svc.server.connections");
    if (options_.legacy_readers) {
      // A client that stops reading must not wedge a worker (or the drain)
      // in send(): bound the blocking write time, then drop the frame.
      timeval send_timeout{30, 0};
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                   sizeof(send_timeout));
      auto conn = std::make_shared<Conn>(this, nullptr, client,
                                         options_.outbox_max_bytes);
      conn->set_handler(hooks_.make_handler(conn.get()));
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        if (stopping_.load(std::memory_order_relaxed)) {
          // Raced with shutdown: refuse politely.
          if (hooks_.refusal_frame != nullptr) {
            WriteAll(client,
                     hooks_.refusal_frame(RefusalReason::kShuttingDown));
          }
          continue;  // conn closes the fd on destruction.
        }
        connections_.push_back(conn);
        reader_threads_.emplace_back(
            [this, conn] { ServeConnection(conn); });
      }
    } else {
      SetNonBlocking(client);
      EventLoop* loop = loops_[next_loop_++ % loops_.size()].get();
      auto conn = std::make_shared<Conn>(this, loop, client,
                                         options_.outbox_max_bytes);
      conn->set_handler(hooks_.make_handler(conn.get()));
      if (stopping_.load(std::memory_order_relaxed)) {
        if (hooks_.refusal_frame != nullptr) {
          WriteAll(client,
                   hooks_.refusal_frame(RefusalReason::kShuttingDown));
        }
        continue;  // conn closes the fd on destruction.
      }
      std::lock_guard<std::mutex> lock(loop->mutex);
      loop->incoming.push_back(std::move(conn));
      loop->WakeLocked();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_accepted;
    }
  }
}

// ---------------------------------------------------------------------------
// Epoll event loop

void Transport::EventLoopRun(EventLoop* loop) {
  epoll_event events[64];
  for (;;) {
    int ready = ::epoll_wait(loop->epoll_fd, events,
                             static_cast<int>(std::size(events)), 200);
    if (ready < 0) {
      if (errno != EINTR) {
        ZO_COUNTER_INC("svc.epoll.wait_errors");
      }
      ready = 0;
    }
    if (ready > 0 && ZO_FAULT_POINT("svc.epoll.wait.fail")) {
      // Simulated transient epoll_wait failure: this batch of readiness
      // events is dropped. Level-triggered epoll re-reports them on the
      // next wait, so the only observable effect is latency — exactly a
      // kernel hiccup, never lost work.
      ZO_COUNTER_INC("svc.server.injected_epoll_wait_drops");
      ready = 0;
    }
    if (ready > 0) {
      ZO_COUNTER_ADD("svc.epoll.ready_events",
                     static_cast<std::uint64_t>(ready));
    }
    for (int i = 0; i < ready; ++i) {
      if (events[i].data.ptr == nullptr) {
        char buf[256];
        while (::read(loop->wake[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      auto* raw = static_cast<Conn*>(events[i].data.ptr);
      std::shared_ptr<Conn> conn =
          std::static_pointer_cast<Conn>(raw->shared_from_this());
      std::uint32_t mask = events[i].events;
      if ((mask & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP)) != 0) {
        HandleReadable(loop, conn);
      }
      if ((mask & EPOLLOUT) != 0) {
        FlushConnection(loop, conn);
      }
    }
    // Drain the cross-thread mailbox: newly accepted connections, flush
    // notifications from workers, and drain directives.
    std::vector<std::shared_ptr<Conn>> incoming;
    std::vector<std::shared_ptr<Conn>> flushes;
    bool shut_reads = false;
    bool stop_idle = false;
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      incoming.swap(loop->incoming);
      flushes.swap(loop->flush_queue);
      shut_reads = loop->shutdown_reads;
      stop_idle = loop->stop_when_idle;
      loop->wake_pending = false;
    }
    for (auto& conn : incoming) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.ptr = conn.get();
      if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, conn->fd(), &ev) != 0) {
        continue;  // Dropped; the destructor closes the fd.
      }
      conn->set_registered(true);
      loop->conns.push_back(conn);
      if (shut_reads) {
        // Raced with drain: half-close immediately and process the EOF now
        // (the local SHUT_RD itself produces no fresh epoll event).
        conn->ShutdownRead();
        HandleReadable(loop, conn);
      }
    }
    for (auto& conn : flushes) FlushConnection(loop, conn);
    if (shut_reads && !loop->shut_reads_done) {
      loop->shut_reads_done = true;
      for (auto& conn : loop->conns) {
        conn->ShutdownRead();
        HandleReadable(loop, conn);
      }
    }
    SweepConnections(loop);
    if (stop_idle) {
      if (!loop->drain_deadline_set) {
        loop->drain_deadline_set = true;
        loop->drain_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.drain_flush_timeout_ms);
      }
      for (auto& conn : loop->conns) FlushConnection(loop, conn);
      SweepConnections(loop);
      if (loop->conns.empty()) return;
      if (std::chrono::steady_clock::now() >= loop->drain_deadline) {
        // Peers that stopped reading would hold the drain forever; declare
        // them broken (same contract as the legacy send timeout).
        for (auto& conn : loop->conns) conn->MarkBroken();
        SweepConnections(loop);
        return;
      }
    }
  }
}

void Transport::HandleReadable(EventLoop* loop,
                               const std::shared_ptr<Conn>& conn) {
  if (!conn->registered() || conn->reading_done()) return;
  char chunk[4096];
  // Fairness bound: a client blasting pipelined requests yields the loop
  // after this many reads; level-triggered epoll re-reports the rest.
  int rounds = 16;
  for (;;) {
    if (ZO_FAULT_POINT("svc.epoll.read.fail")) {
      // Simulated mid-stream connection reset: stop reading as if the peer
      // vanished. Reserved slots still get answered and flushed.
      ZO_COUNTER_INC("svc.server.injected_epoll_read_resets");
      conn->AbortReading();
      return;
    }
    ssize_t n = ::recv(conn->fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      conn->FinishReading();  // Reset or error: treat as EOF.
      return;
    }
    if (n == 0) {
      conn->FinishReading();
      return;
    }
    conn->handler()->OnData(
        std::string_view(chunk, static_cast<std::size_t>(n)));
    // The handler may have torn the read side down (framing violation).
    if (conn->reading_done()) return;
    if (static_cast<std::size_t>(n) < sizeof(chunk)) return;  // Drained.
    if (--rounds == 0) return;
  }
}

void Transport::FlushConnection(EventLoop* loop,
                                const std::shared_ptr<Conn>& conn) {
  if (!conn->registered()) return;
  Conn::FlushResult result = conn->FlushOutbox();
  bool want_write = result == Conn::FlushResult::kWantWrite;
  if (want_write != conn->want_write()) {
    conn->set_want_write(want_write);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | (want_write ? EPOLLOUT : 0u);
    ev.data.ptr = conn.get();
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd(), &ev);
  }
}

void Transport::SweepConnections(EventLoop* loop) {
  auto& conns = loop->conns;
  for (std::size_t i = 0; i < conns.size();) {
    if (conns[i]->IsDone()) {
      // Deregister before dropping the loop's reference: workers may still
      // hold the shared_ptr (and call CompleteSlot, which discards), but no
      // further epoll event can reference the raw pointer.
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conns[i]->fd(), nullptr);
      conns[i]->set_registered(false);
      conns[i] = std::move(conns.back());
      conns.pop_back();
    } else {
      ++i;
    }
  }
}

void Transport::CountOutboxOverflow() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.outbox_overflows;
}

// ---------------------------------------------------------------------------
// Legacy reader model

void Transport::ServeConnection(std::shared_ptr<Conn> conn) {
  // Whatever path exits the read loop, let the connection half-close its
  // write side once all reserved slots are answered.
  struct ReadingGuard {
    Conn* conn;
    ~ReadingGuard() { conn->FinishReading(); }
  } guard{conn.get()};
  char chunk[4096];
  for (;;) {
    if (ZO_FAULT_POINT("svc.recv.reset")) {
      // Simulated mid-stream connection reset: stop reading as if the
      // peer vanished. Reserved slots still get answered and flushed.
      ZO_COUNTER_INC("svc.server.injected_recv_resets");
      ::shutdown(conn->fd(), SHUT_RD);
      return;
    }
    ssize_t n = ::recv(conn->fd(), chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // EOF or error: client is done.
    conn->handler()->OnData(
        std::string_view(chunk, static_cast<std::size_t>(n)));
    // The handler answers framing violations itself and stops the read
    // side; the guard then completes the half-close.
    if (conn->reading_done()) return;
  }
}

// ---------------------------------------------------------------------------
// Drain

void Transport::BeginShutdown() {
  char byte = 's';
  if (stopping_.exchange(true)) {
    if (wake_pipe_[1] >= 0) {
      [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    }
    return;
  }
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  // Half-close every connection: readers see EOF and stop submitting. The
  // event loops need an explicit self-pipe wakeup — a thread parked in
  // epoll_wait notices nothing else.
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> lock(loop->mutex);
    loop->shutdown_reads = true;
    loop->WakeLocked();
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const auto& conn : connections_) conn->ShutdownRead();
}

void Transport::JoinReaders() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Close the listen socket so late connects are refused outright instead
  // of sitting unanswered in the accept backlog.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Legacy readers are joinable once their sockets are half-closed; the
  // epoll loops keep running through the worker-pool drain so completed
  // responses still get flushed.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    readers.swap(reader_threads_);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }
}

void Transport::StopAndJoin() {
  // Only after the worker pool is drained may the event loops stop — they
  // still have outboxes to flush. Each loop exits once every connection is
  // retired (flushed + EOF, broken, or past the drain flush timeout), and
  // must be woken explicitly to notice the directive.
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> lock(loop->mutex);
    loop->stop_when_idle = true;
    loop->WakeLocked();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.clear();  // Closes fds once workers release their refs.
}

Transport::Stats Transport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace svc
}  // namespace zeroone
