#include "svc/router.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "svc/http.h"

namespace zeroone {
namespace svc {

// ---------------------------------------------------------------------------
// HashRing

std::uint64_t HashRing::Fnv1a64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t HashRing::PlacementHash(std::string_view text) {
  // FNV-1a alone clusters badly on the short, near-identical strings this
  // ring hashes ("0#0", "1#17", "session-42", ...): its high bits barely
  // avalanche, and the sort order of the ring is dominated by them — with
  // 3 backends x 64 vnodes a whole backend can end up owning nothing. The
  // murmur3 finalizer on top restores uniformity without changing the
  // easily-reimplemented byte-level FNV core.
  std::uint64_t x = Fnv1a64(text);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

HashRing::HashRing(std::size_t backends, std::size_t replicas_per_backend)
    : backends_(backends) {
  ring_.reserve(backends * replicas_per_backend);
  for (std::size_t b = 0; b < backends; ++b) {
    for (std::size_t r = 0; r < replicas_per_backend; ++r) {
      ring_.push_back(
          VirtualNode{PlacementHash(StrCat(b, "#", r)), b});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const VirtualNode& a, const VirtualNode& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.backend < b.backend;  // Deterministic tie-break.
            });
}

std::size_t HashRing::Owner(std::string_view key) const {
  return Preference(key, 1).front();
}

std::vector<std::size_t> HashRing::Preference(std::string_view key,
                                              std::size_t count) const {
  count = std::min(count, backends_);
  std::vector<std::size_t> result;
  if (ring_.empty() || count == 0) return result;
  const std::uint64_t h = PlacementHash(key);
  // First virtual node clockwise of the key, wrapping at the top.
  std::size_t start = 0;
  {
    std::size_t lo = 0, hi = ring_.size();
    while (lo < hi) {
      std::size_t mid = (lo + hi) / 2;
      if (ring_[mid].hash < h) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    start = lo == ring_.size() ? 0 : lo;
  }
  result.reserve(count);
  for (std::size_t i = 0; i < ring_.size() && result.size() < count; ++i) {
    std::size_t backend = ring_[(start + i) % ring_.size()].backend;
    bool seen = false;
    for (std::size_t chosen : result) {
      if (chosen == backend) {
        seen = true;
        break;
      }
    }
    if (!seen) result.push_back(backend);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Router

Router::Router(const RouterOptions& options)
    : options_(options),
      ring_(options.backends.size(), options.ring_replicas),
      executor_(std::make_unique<BoundedExecutor>(options.threads,
                                                  options.queue_capacity)) {
  for (const HostPort& endpoint : options_.backends) {
    auto backend = std::make_unique<Backend>();
    backend->endpoint = endpoint;
    backends_.push_back(std::move(backend));
  }
  stats_.per_backend_forwarded.assign(backends_.size(), 0);
}

Router::~Router() {
  BeginShutdown();
  Wait();
  if (notify_pipe_[0] >= 0) ::close(notify_pipe_[0]);
  if (notify_pipe_[1] >= 0) ::close(notify_pipe_[1]);
}

Status Router::Start() {
  if (started_.exchange(true)) {
    return Status::Error("router already started");
  }
  if (backends_.empty()) {
    return Status::Error("router needs at least one backend");
  }
  if (::pipe(notify_pipe_) != 0) {
    return Status::Error("pipe failed: ", std::strerror(errno));
  }
  TransportOptions zo1;
  zo1.host = options_.host;
  zo1.port = options_.port;
  zo1.event_threads = options_.event_threads;
  zo1.max_conns = options_.max_conns;
  zo1.outbox_max_bytes = options_.outbox_max_bytes;
  zo1.so_sndbuf = options_.so_sndbuf;
  zo1.bind_retry_ms = options_.bind_retry_ms;
  zo1.drain_flush_timeout_ms = options_.drain_flush_timeout_ms;
  TransportHooks zo1_hooks;
  zo1_hooks.make_handler = [this](Channel* channel) {
    return std::make_unique<Zo1LineHandler>(channel, this);
  };
  zo1_hooks.refusal_frame = [this](RefusalReason reason) {
    return Zo1RefusalFrame(reason, options_.max_conns);
  };
  transport_ = std::make_unique<Transport>(zo1, std::move(zo1_hooks));
  ZO_RETURN_IF_ERROR(transport_->Bind());
  if (options_.http_port >= 0) {
    TransportOptions http = zo1;
    http.port = options_.http_port;
    TransportHooks http_hooks;
    http_hooks.make_handler = [this](Channel* channel) {
      return std::make_unique<HttpHandler>(channel, this);
    };
    http_hooks.refusal_frame = [this](RefusalReason reason) {
      return HttpRefusalFrame(reason, options_.max_conns);
    };
    http_transport_ =
        std::make_unique<Transport>(http, std::move(http_hooks));
    ZO_RETURN_IF_ERROR(http_transport_->Bind());
  }
  ZO_RETURN_IF_ERROR(transport_->Serve());
  if (http_transport_ != nullptr) {
    ZO_RETURN_IF_ERROR(http_transport_->Serve());
  }
  return Status::Ok();
}

int Router::port() const {
  return transport_ != nullptr ? transport_->port() : 0;
}

int Router::http_port() const {
  return http_transport_ != nullptr ? http_transport_->port() : -1;
}

void Router::Notify() {
  if (notify_pipe_[1] >= 0) {
    char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(notify_pipe_[1], &byte, 1);
  }
}

void Router::WaitForShutdownRequest() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{notify_pipe_[0], POLLIN, 0};
    int rc = ::poll(&pfd, 1, 200);
    if (rc > 0 && (pfd.revents & POLLIN) != 0) return;
  }
}

void Router::BeginShutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  Notify();
  if (transport_ != nullptr) transport_->BeginShutdown();
  if (http_transport_ != nullptr) http_transport_->BeginShutdown();
}

void Router::Wait() {
  if (transport_ != nullptr) transport_->JoinReaders();
  if (http_transport_ != nullptr) http_transport_->JoinReaders();
  executor_->Drain();
  if (transport_ != nullptr) transport_->StopAndJoin();
  if (http_transport_ != nullptr) http_transport_->StopAndJoin();
}

void Router::Shutdown() {
  BeginShutdown();
  Wait();
}

// ---------------------------------------------------------------------------
// Request path

void Router::Submit(const std::shared_ptr<Channel>& channel,
                    std::string line, Encoder encoder) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_received;
  }
  ZO_COUNTER_INC("svc.router.requests");
  std::uint64_t seq = channel->ReserveSlot();
  // Parse before forwarding: a malformed line earns the server's exact
  // BAD_REQUEST here instead of wasting a backend round-trip, and the
  // forwarded form below is the parser's canonical re-serialization.
  StatusOr<Request> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_requests;
    }
    ZO_COUNTER_INC("svc.router.bad_requests");
    channel->CompleteSlot(seq,
                          encoder(Response{WireStatus::kBadRequest, "0",
                                           parsed.status().message()}));
    return;
  }
  Request request = std::move(*parsed);
  const std::string request_id = request.id;
  bool submitted = executor_->TrySubmit([this, channel, seq,
                                         request = std::move(request),
                                         encoder] {
    channel->CompleteSlot(seq, encoder(Forward(request)));
  });
  if (!submitted) {
    bool draining = stopping_.load(std::memory_order_relaxed) ||
                    executor_->draining();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (draining) {
        ++stats_.shutting_down_rejects;
      } else {
        ++stats_.overloaded;
      }
    }
    ZO_COUNTER_INC("svc.router.overloaded");
    channel->CompleteSlot(
        seq,
        encoder(Response{
            draining ? WireStatus::kShuttingDown : WireStatus::kOverloaded,
            request_id,
            draining
                ? std::string("server draining; request rejected")
                : StrCat("work queue full (capacity ",
                         options_.queue_capacity, "); retry later")}));
  }
}

void Router::OnWireError() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.bad_requests;
}

Response Router::Forward(const Request& request) {
  const std::vector<std::size_t> candidates =
      ring_.Preference(request.session, 1 + options_.retry_backends);
  // Two passes: first skip backends inside their failure cooldown, then —
  // if that leaves nothing — probe the skipped ones anyway. A fully-down
  // ring should probe rather than fail fast forever; a backend that just
  // failed in pass 0 is not retried in pass 1.
  std::size_t attempts = 0;
  std::vector<bool> tried(candidates.size(), false);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      Backend& backend = *backends_[candidates[i]];
      if (tried[i]) continue;
      if (pass == 0 && IsDown(backend)) continue;
      tried[i] = true;
      ++attempts;
      StatusOr<Response> result = CallBackend(backend, request);
      if (result.ok()) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.forwarded;
          if (i > 0) ++stats_.failovers;
          ++stats_.per_backend_forwarded[candidates[i]];
        }
        ZO_COUNTER_INC("svc.router.forwarded");
        if (i > 0) ZO_COUNTER_INC("svc.router.failovers");
        return std::move(*result);
      }
      MarkDown(backend);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.unavailable;
  }
  ZO_COUNTER_INC("svc.router.unavailable");
  return Response{
      WireStatus::kUnavailable, request.id,
      StrCat("no backend reachable for session '", request.session, "' (",
             attempts, " tried); retry later")};
}

StatusOr<Response> Router::CallBackend(Backend& backend,
                                       const Request& request) {
  std::unique_ptr<BlockingClient> client = AcquireClient(backend);
  if (client != nullptr) {
    StatusOr<Response> response = client->Call(request);
    if (response.ok()) {
      ReleaseClient(backend, std::move(client));
      return response;
    }
    // The pooled socket may simply be stale (backend restarted, idle
    // timeout); one fresh connection to the same backend disambiguates a
    // dead backend from a dead connection.
    client.reset();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.reconnects;
    }
    ZO_COUNTER_INC("svc.router.reconnects");
  }
  ClientOptions copts;
  copts.connect_timeout_ms = options_.connect_timeout_ms;
  copts.io_timeout_ms = options_.io_timeout_ms;
  auto fresh = std::make_unique<BlockingClient>(copts);
  ZO_RETURN_IF_ERROR(
      fresh->Connect(backend.endpoint.host, backend.endpoint.port));
  StatusOr<Response> response = fresh->Call(request);
  if (response.ok()) {
    ReleaseClient(backend, std::move(fresh));
  }
  return response;
}

std::unique_ptr<BlockingClient> Router::AcquireClient(Backend& backend) {
  std::lock_guard<std::mutex> lock(backend.mutex);
  if (backend.idle.empty()) return nullptr;
  std::unique_ptr<BlockingClient> client = std::move(backend.idle.back());
  backend.idle.pop_back();
  return client;
}

void Router::ReleaseClient(Backend& backend,
                           std::unique_ptr<BlockingClient> client) {
  std::lock_guard<std::mutex> lock(backend.mutex);
  // The pool never needs more than one connection per forwarding worker.
  if (backend.idle.size() < options_.threads) {
    backend.idle.push_back(std::move(client));
  }
  backend.down_until_ms.store(0, std::memory_order_relaxed);
}

std::int64_t Router::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool Router::IsDown(const Backend& backend) const {
  return backend.down_until_ms.load(std::memory_order_relaxed) > NowMs();
}

void Router::MarkDown(Backend& backend) {
  backend.down_until_ms.store(
      NowMs() + static_cast<std::int64_t>(options_.down_cooldown_ms),
      std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.backend_down_marks;
  }
  ZO_COUNTER_INC("svc.router.backend_down_marks");
  // Drop the idle pool: every socket to this backend is suspect.
  std::lock_guard<std::mutex> lock(backend.mutex);
  backend.idle.clear();
}

Router::Stats Router::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace svc
}  // namespace zeroone
