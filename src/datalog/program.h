#ifndef ZEROONE_DATALOG_PROGRAM_H_
#define ZEROONE_DATALOG_PROGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/value.h"
#include "query/formula.h"

namespace zeroone {

// Datalog with stratified negation. The paper's Theorem 1 requires only
// genericity, so its 0–1 law covers datalog — a language with no classical
// logical 0–1 law story of its own in this setting (fixed-point logics are
// explicitly cited). This module provides the language: programs, safety
// and stratification checking (program.h), semi-naive bottom-up evaluation
// (eval.h), and the measure glue lowering a program to a GenericInstance
// (measure.h).
//
// Terms reuse the first-order Term type: variables carry per-rule dense
// ids assigned by the parser or the builder.

struct DatalogAtom {
  std::string predicate;
  std::vector<Term> terms;

  std::string ToString(const std::vector<std::string>& variable_names) const;
};

struct DatalogLiteral {
  DatalogAtom atom;
  bool negated = false;
};

// head :- body₁, …, body_n. A rule with an empty body is a fact template
// (must then be variable-free by safety).
struct DatalogRule {
  DatalogAtom head;
  std::vector<DatalogLiteral> body;
  // Display names for the rule's variable ids.
  std::vector<std::string> variable_names;

  std::string ToString() const;
};

class DatalogProgram {
 public:
  DatalogProgram() = default;

  // Validates and freezes a program:
  //  - arity consistency per predicate;
  //  - safety: every variable of a rule head and of every negated literal
  //    occurs in some positive body literal;
  //  - stratification: no recursion through negation.
  // The goal predicate is the program's output relation.
  static StatusOr<DatalogProgram> Create(std::vector<DatalogRule> rules,
                                         std::string goal_predicate);

  const std::vector<DatalogRule>& rules() const { return rules_; }
  const std::string& goal_predicate() const { return goal_predicate_; }
  std::size_t goal_arity() const { return goal_arity_; }

  // Intensional predicates (heads of rules), in stratum order: evaluating
  // strata left to right respects negation.
  const std::vector<std::vector<std::string>>& strata() const {
    return strata_;
  }

  // True iff the predicate appears in some rule head.
  bool IsIntensional(const std::string& predicate) const;

  // The constants mentioned by the program (the genericity set C).
  std::vector<Value> MentionedConstants() const;

  std::string ToString() const;

 private:
  std::vector<DatalogRule> rules_;
  std::string goal_predicate_;
  std::size_t goal_arity_ = 0;
  std::vector<std::vector<std::string>> strata_;
};

}  // namespace zeroone

#endif  // ZEROONE_DATALOG_PROGRAM_H_
